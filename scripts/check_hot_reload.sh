#!/usr/bin/env bash
# Hot-reload acceptance loop: trains two small bundles with different
# seeds, serves the first through the model registry with the reload
# watcher enabled, and drives requests through a FIFO while publishing
# the second bundle via atomic rename. Requires:
#   - answers stream back before EOF (the head-of-line writer thread),
#   - the reload swaps predictions to the new bundle with zero failed
#     requests,
#   - a corrupt publish is rejected and the previous model keeps serving,
#   - "!stats" reports the failed reload,
#   - the server drains and exits 0 on EOF.
#
# Usage:
#   scripts/check_hot_reload.sh path/to/lipformer_cli
#
# Registered as the `hot_reload` ctest (tests/CMakeLists.txt).

set -euo pipefail

CLI="${1:?usage: check_hot_reload.sh path/to/lipformer_cli}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "${SERVE_PID}" ] && kill "${SERVE_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- serve log ----" >&2
  cat "${WORK}/serve.log" >&2 2>/dev/null || true
  exit 1
}

# Tiny but real config; seeds 7 and 8 give bundles with different
# weights, so their predictions for the same request differ.
FLAGS=(--dataset=etth1 --scale=0.05 --model=lipformer --input=48
       --horizon=12 --hidden=16 --epochs=1 --batch=32)

echo "== training bundles A and B"
"${CLI}" train "${FLAGS[@]}" --seed=7 --save="${WORK}/a.bundle" \
  >"${WORK}/train.log" 2>&1 || fail "training bundle A failed"
"${CLI}" train "${FLAGS[@]}" --seed=8 --save="${WORK}/b.bundle" \
  >>"${WORK}/train.log" 2>&1 || fail "training bundle B failed"

# One request line: flattened [48, 7] history (336 values).
REQ="$(awk 'BEGIN{for(i=0;i<336;i++)printf "%s%.4f",(i?",":""),sin(i/7.0)}')"
printf '%s\n' "${REQ}" >"${WORK}/req.txt"

echo "== reference answers from each bundle"
"${CLI}" serve --load="${WORK}/a.bundle" --requests="${WORK}/req.txt" \
  >"${WORK}/ans_a.txt" 2>"${WORK}/serve.log" || fail "reference serve A failed"
"${CLI}" serve --load="${WORK}/b.bundle" --requests="${WORK}/req.txt" \
  >"${WORK}/ans_b.txt" 2>"${WORK}/serve.log" || fail "reference serve B failed"
ANS_A="$(cat "${WORK}/ans_a.txt")"
ANS_B="$(cat "${WORK}/ans_b.txt")"
[ -n "${ANS_A}" ] || fail "empty reference answer from bundle A"
[ "${ANS_A}" != "${ANS_B}" ] || fail "bundles A and B predict identically"

# wait_for <timeout_s> <check...>: poll until the check passes.
wait_for() {
  local deadline=$((SECONDS + $1)); shift
  until "$@" >/dev/null 2>&1; do
    [ "${SECONDS}" -lt "${deadline}" ] || return 1
    sleep 0.05
  done
}

answer_count() { [ "$(wc -l <"${WORK}/answers.txt")" -ge "$1" ]; }

# nth_answer N: the N-th (1-based) line streamed back so far.
nth_answer() { sed -n "$1p" "${WORK}/answers.txt"; }

echo "== starting registry-backed server on a FIFO"
cp "${WORK}/a.bundle" "${WORK}/live.bundle"
mkfifo "${WORK}/req.fifo"
"${CLI}" serve --load="m=${WORK}/live.bundle" --reload-poll-ms=50 \
  --requests="${WORK}/req.fifo" \
  >"${WORK}/answers.txt" 2>"${WORK}/serve.log" &
SERVE_PID=$!
# Hold the FIFO open for writing across individual request sends.
exec 3>"${WORK}/req.fifo"

echo "== answers stream back before EOF"
printf 'm|%s\n' "${REQ}" >&3
wait_for 20 answer_count 1 \
  || fail "no answer streamed before EOF (writer-thread regression)"
[ "$(nth_answer 1)" = "${ANS_A}" ] || fail "pre-reload answer is not bundle A's"

echo "== atomic-rename publish of bundle B hot-swaps the model"
cp "${WORK}/b.bundle" "${WORK}/live.bundle.tmp"
mv "${WORK}/live.bundle.tmp" "${WORK}/live.bundle"
wait_for 20 grep -q "registry: reloaded model 'm'" "${WORK}/serve.log" \
  || fail "watcher never picked up the published bundle"
printf 'm|%s\n' "${REQ}" >&3
wait_for 20 answer_count 2 || fail "no answer after reload"
[ "$(nth_answer 2)" = "${ANS_B}" ] || fail "post-reload answer is not bundle B's"

echo "== corrupt publish is rejected; previous model keeps serving"
printf 'not a checkpoint\n' >"${WORK}/live.bundle.tmp"
mv "${WORK}/live.bundle.tmp" "${WORK}/live.bundle"
wait_for 20 grep -q "registry: reload failed for model 'm'" "${WORK}/serve.log" \
  || fail "corrupt publish was never rejected"
printf 'm|%s\n' "${REQ}" >&3
wait_for 20 answer_count 3 || fail "no answer after corrupt publish"
[ "$(nth_answer 3)" = "${ANS_B}" ] \
  || fail "corrupt publish changed the served predictions"

echo "== !stats reports the failed reload"
printf '!stats\n' >&3
wait_for 20 grep -Eq "registry: +m .* reloads=1 failures=1" "${WORK}/serve.log" \
  || fail "!stats did not report reloads=1 failures=1"

echo "== EOF drains and exits cleanly"
exec 3>&-
SERVE_RC=0
wait "${SERVE_PID}" || SERVE_RC=$?
SERVE_PID=""
[ "${SERVE_RC}" -eq 0 ] || fail "server exited ${SERVE_RC} on EOF"
[ "$(wc -l <"${WORK}/answers.txt")" -eq 3 ] \
  || fail "expected exactly 3 answers, got $(wc -l <"${WORK}/answers.txt")"
grep -q "^error:" "${WORK}/answers.txt" && fail "a request failed" || true

echo "== hot-reload checks passed"
