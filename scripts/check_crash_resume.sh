#!/usr/bin/env bash
# Crash-safety acceptance loop: trains a small model to completion, then
# kills the same training run at several distinct points (hard kill via
# fault injection, graceful SIGTERM-equivalent interrupt), resumes each
# one from its snapshot, and requires the resumed run's serving bundle to
# be BYTE-IDENTICAL to the uninterrupted reference. Also verifies that an
# injected write failure mid-snapshot leaves the previous snapshot intact
# and resumable.
#
# Usage:
#   scripts/check_crash_resume.sh path/to/lipformer_cli
#
# Registered as the `crash_resume` ctest (tests/CMakeLists.txt).

set -euo pipefail

CLI="${1:?usage: check_crash_resume.sh path/to/lipformer_cli}"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

# Small but real config: ~16 train batches/epoch on the scaled-down
# registry series, 4 epochs, dropout active (so the per-module RNG streams
# matter for exactness).
FLAGS=(--dataset=etth1 --scale=0.05 --model=lipformer --input=96
       --horizon=24 --hidden=32 --epochs=4 --batch=32 --seed=7
       --lr-schedule=cosine)

run_cli() {
  # Quiet on success, full log on unexpected failure (callers check $?).
  "${CLI}" "$@" >"${WORK}/last.log" 2>&1
}

fail() {
  echo "FAIL: $*" >&2
  echo "---- last cli log ----" >&2
  cat "${WORK}/last.log" >&2 || true
  exit 1
}

echo "== reference run (uninterrupted)"
run_cli train "${FLAGS[@]}" --snapshot="${WORK}/ref.snap" \
  --save="${WORK}/ref.bundle" \
  || fail "reference run failed"
[ -f "${WORK}/ref.bundle" ] || fail "reference bundle missing"

kill_resume_check() {
  local faults="$1" expect_rc="$2" label="$3"
  rm -f "${WORK}/run.snap" "${WORK}/run.bundle"
  echo "== ${label}: LIPF_FAULT=${faults}"
  local rc=0
  LIPF_FAULT="${faults}" "${CLI}" train "${FLAGS[@]}" \
    --snapshot="${WORK}/run.snap" --save="${WORK}/run.bundle" \
    >"${WORK}/last.log" 2>&1 || rc=$?
  [ "${rc}" -eq "${expect_rc}" ] \
    || fail "${label}: expected exit ${expect_rc}, got ${rc}"
  [ -f "${WORK}/run.snap" ] || fail "${label}: no snapshot left behind"
  run_cli train "${FLAGS[@]}" --resume="${WORK}/run.snap" \
    --snapshot="${WORK}/run.snap" --save="${WORK}/run.bundle" \
    || fail "${label}: resume failed"
  cmp -s "${WORK}/ref.bundle" "${WORK}/run.bundle" \
    || fail "${label}: resumed bundle differs from reference"
  echo "   resumed bundle is byte-identical to reference"
}

# Two distinct hard-kill points (SIGKILL semantics: _Exit(137) right after
# the optimizer step commits) plus a graceful interrupt (the SIGINT/
# SIGTERM path: snapshot after the in-flight step, exit 3).
kill_resume_check "kill_after_step=3" 137 "hard kill, early epoch 0"
kill_resume_check "kill_after_step=21" 137 "hard kill, later epoch"
kill_resume_check "interrupt_after_step=5" 3 "graceful interrupt"

echo "== torn snapshot write leaves the previous snapshot intact"
# run.snap currently holds the final snapshot of a completed run. A fresh
# training run pointed at it with an exhausted write budget must fail
# every snapshot write mid-stream without corrupting the existing file.
# (No --save here: the final bundle write would hit the same injected
# failure, and bundle-write errors are fatal by design.)
SNAP_SHA_BEFORE="$(sha256sum "${WORK}/run.snap" | cut -d' ' -f1)"
LIPF_FAULT="fail_write_after_bytes=512" run_cli train "${FLAGS[@]}" \
  --snapshot="${WORK}/run.snap" \
  || fail "torn-write run failed (snapshot failures must only warn)"
SNAP_SHA_AFTER="$(sha256sum "${WORK}/run.snap" | cut -d' ' -f1)"
[ "${SNAP_SHA_BEFORE}" = "${SNAP_SHA_AFTER}" ] \
  || fail "interrupted snapshot write corrupted the previous snapshot"
ls "${WORK}"/run.snap.tmp.* >/dev/null 2>&1 \
  && fail "torn temp file left behind"

echo "== surviving snapshot is still resumable"
rm -f "${WORK}/run.bundle"
run_cli train "${FLAGS[@]}" --resume="${WORK}/run.snap" \
  --snapshot="${WORK}/run.snap" --save="${WORK}/run.bundle" \
  || fail "resume from surviving snapshot failed"
cmp -s "${WORK}/ref.bundle" "${WORK}/run.bundle" \
  || fail "resume from surviving snapshot diverged from reference"

echo "== crash/resume checks passed"
