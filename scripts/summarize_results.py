#!/usr/bin/env python3
"""Builds the measured-results summary for EXPERIMENTS.md from results/*.csv.

Usage: python3 scripts/summarize_results.py [results_dir]
Prints a markdown block; EXPERIMENTS.md's `<!-- MEASURED_SUMMARY -->` marker
is replaced by this block when run with --apply.
"""

import csv
import json
import sys
from pathlib import Path


def read(path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def fmt(v, nd=3):
    return f"{float(v):.{nd}f}"


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 and not sys.argv[1].startswith("--") else "results")
    out = []

    # Table III summary: per-model mean MSE + count row.
    t3 = results / "table3_multivariate.csv"
    if t3.exists():
        rows = read(t3)
        models = {}
        for r in rows:
            models.setdefault(r["Model"], []).append(float(r["MSE"]))
        out.append("**Table III** mean test MSE over all dataset/horizon cells:")
        out.append("")
        out.append("| Model | mean MSE | cells |")
        out.append("|---|---|---|")
        for m, vals in sorted(models.items(), key=lambda kv: sum(kv[1]) / len(kv[1])):
            out.append(f"| {m} | {fmt(sum(vals)/len(vals))} | {len(vals)} |")
        counts = results / "table3_counts.csv"
        if counts.exists():
            out.append("")
            out.append("First-place / top-two finishes (MSE+MAE): " + ", ".join(
                f"{r['Model']} {r['FirstPlace']}/{r['TopTwo']}" for r in read(counts)))
        out.append("")

    # Efficiency snapshot from table3: LiPFormer vs PatchTST/iTransformer.
    if t3.exists():
        rows = read(t3)
        eff = {}
        for r in rows:
            if r["Dataset"] == "etth1" and r["L"] == rows[0]["L"]:
                eff[r["Model"]] = (r["MACs"], r["Params"], r["InferS"])
        if eff:
            out.append("**Efficiency** (ETTh1, shortest horizon): " + "; ".join(
                f"{m}: {v[0]} MACs, {v[1]} params, {v[2]}" for m, v in eff.items()))
            out.append("")

    # Table VII speedups.
    t7 = results / "table7_edge.csv"
    if t7.exists():
        rows = read(t7)
        out.append("**Table VII** Transformer/LiPFormer inference-latency ratio by input length:")
        out.append("")
        out.append("| Dataset | " + " | ".join(sorted({r["InputLen"] for r in rows}, key=int)) + " |")
        datasets = sorted({r["Dataset"] for r in rows})
        lens = sorted({r["InputLen"] for r in rows}, key=int)
        out.append("|---|" + "---|" * len(lens))
        for d in datasets:
            cells = []
            for ln in lens:
                match = [r for r in rows if r["Dataset"] == d and r["InputLen"] == ln]
                cells.append(match[0]["Speedup"] if match else "-")
            out.append(f"| {d} | " + " | ".join(cells) + " |")
        out.append("")

    # Simple per-file one-liners.
    for name, title, keyfn in [
        ("table6_pretrain.csv", "**Table VI** dMSE% (pretrain vs not): ",
         lambda r: f"{r['Dataset']} {r['dMSE%']}%"),
        ("fig6_covariate_ablation.csv", "**Figure 6** MSE increase without encoder: ",
         lambda r: f"L={r['L']}: +{r['dMSE%']}%"),
        ("fig7_stats.csv", "**Figure 7** diag vs off-diag mean logit / period peak: ",
         lambda r: f"{r['Dataset']} {r['DiagMean']}|{r['OffDiagMean']}, peak {r[[k for k in r if k.startswith('PeakOffset')][0]]} (expect {r['ExpectedPeriod(windows)']})"),
    ]:
        p = results / name
        if p.exists():
            out.append(title + "; ".join(keyfn(r) for r in read(p)))
            out.append("")

    # Table X / XI: mean MSE per variant.
    for name, title in [("table10_lightweight_ablation.csv", "**Table X** mean MSE by variant: "),
                        ("table11_attention_ablation.csv", "**Table XI** mean MSE by variant: ")]:
        p = results / name
        if p.exists():
            rows = read(p)
            variants = {}
            for r in rows:
                variants.setdefault(r["Variant"], []).append(float(r["MSE"]))
            out.append(title + "; ".join(
                f"{v} {fmt(sum(x)/len(x))}" for v, x in variants.items()))
            out.append("")

    # Table XII: per-model improvement.
    p = results / "table12_transplant.csv"
    if p.exists():
        rows = read(p)
        pieces = []
        for r in rows:
            base = float(r["MSE(base)"])
            enc = float(r["MSE(+enc)"])
            pieces.append(f"{r['Model']} L={r['L']}: {fmt(base)}->{fmt(enc)}")
        out.append("**Table XII** MSE base -> +encoder: " + "; ".join(pieces))
        out.append("")

    # Perf-gate summary written by scripts/check_perf.sh: one flat record
    # per gate (metric, value, baseline, ratio, status). The kernel gate
    # contributes dozens of per-benchmark rows; keep the table to the
    # serving gates plus any row that failed, and roll the rest up.
    summary = results / "BENCH_summary.json"
    if summary.exists():
        with open(summary) as fh:
            records = json.load(fh).get("records", [])
        failed = [r for r in records if r["status"] != "ok"]
        serving = [r for r in records if r["gate"] == "serving"]
        kernels = [r for r in records if r["gate"] == "kernels"]
        out.append(
            f"**Perf gates** ({len(records)} records, "
            f"{len(failed)} failed; kernel rows rolled up: "
            f"{len(kernels)} benchmarks, worst ratio "
            + (f"{max(r['ratio'] for r in kernels):.2f}x):"
               if kernels else "n/a):"))
        out.append("")
        out.append("| gate | metric | value | baseline | ratio | status |")
        out.append("|---|---|---|---|---|---|")
        for r in serving + [r for r in failed if r not in serving]:
            out.append(
                f"| {r['gate']} | {r['metric']} | {r['value']:.3f} "
                f"| {r['baseline']:.3f} | {r['ratio']:.3f} "
                f"| {r['status']} |")
        out.append("")

    block = "\n".join(out)
    if "--apply" in sys.argv:
        exp = Path("EXPERIMENTS.md")
        text = exp.read_text()
        text = text.replace("<!-- MEASURED_SUMMARY -->", block)
        exp.write_text(text)
        print("applied to EXPERIMENTS.md")
    else:
        print(block)


if __name__ == "__main__":
    main()
