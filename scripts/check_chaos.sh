#!/usr/bin/env bash
# Serving-path chaos gate: drives the registry through overload and
# injected faults and asserts the resilience invariants hold.
#
# Part 1 — bench_loadgen --chaos=1: open-loop Poisson load at 1.5x the
# box's calibrated capacity with per-request deadlines, first fault-free
# (the overload baseline), then with slow-infer and poison-output faults
# injected mid-run. The binary exits non-zero unless:
#   - the per-model circuit breaker trips on the poisoned forecasts and
#     recovers to closed via half-open probes once the faults clear,
#   - zero requests execute past their deadline (batcher invariant
#     counter),
#   - zero non-finite answers are delivered (poison surfaces as typed
#     Internal errors),
#   - zero torn answers (every delivered answer bitwise matches the
#     serial reference),
#   - goodput under faults stays >= LIPF_CHAOS_GOODPUT_FLOOR_PCT% (85 by
#     default) of the no-fault overload baseline.
#
# Part 2 — lipformer_cli serve under LIPF_FAULT: a registry-backed
# server runs with a stalled reload watcher (watcher_stall_ms) and an
# injected bundle-open failure on the first reload attempt (fail_open_at;
# open #1 is the initial --load). Asserted:
#   - serving continues while the watcher is stalled,
#   - the failed-open reload keeps the previous model serving (and is
#     retried successfully on the next publish),
#   - "!health" reports the breaker closed with machine-parseable
#     key=value fields,
#   - a client closing the answer stream mid-flight (EPIPE) drains the
#     server to a clean exit 0 instead of killing it via SIGPIPE.
#
# Usage:
#   scripts/check_chaos.sh path/to/bench_loadgen path/to/lipformer_cli
#
# Env knobs (for sanitizer/CI runs, see scripts/check_sanitize.sh):
#   LIPF_CHAOS_DURATION_MS       per-phase open-loop duration (def 4000)
#   LIPF_CHAOS_GOODPUT_FLOOR_PCT goodput floor vs no-fault baseline (85)
#
# Registered as the `chaos` ctest (tests/CMakeLists.txt).

set -euo pipefail

LOADGEN="${1:?usage: check_chaos.sh path/to/bench_loadgen path/to/lipformer_cli}"
CLI="${2:?usage: check_chaos.sh path/to/bench_loadgen path/to/lipformer_cli}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "${SERVE_PID}" ] && kill "${SERVE_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- serve log ----" >&2
  cat "${WORK}/serve.log" >&2 2>/dev/null || true
  exit 1
}

DURATION_MS="${LIPF_CHAOS_DURATION_MS:-4000}"
FLOOR_PCT="${LIPF_CHAOS_GOODPUT_FLOOR_PCT:-85}"

echo "== chaos part 1: bench_loadgen overload + fault injection" \
     "(duration ${DURATION_MS}ms/phase, goodput floor ${FLOOR_PCT}%)"
"${LOADGEN}" --chaos=1 --chaos-duration-ms="${DURATION_MS}" \
  --chaos-goodput-floor-pct="${FLOOR_PCT}" --json="${WORK}/chaos.json" \
  || fail "bench_loadgen --chaos=1 reported violations"
grep -q '"breaker_state": "closed"' "${WORK}/chaos.json" \
  || fail "chaos JSON does not record a closed breaker"

echo "== chaos part 2: CLI serve under LIPF_FAULT"
FLAGS=(--dataset=etth1 --scale=0.05 --model=lipformer --input=48
       --horizon=12 --hidden=16 --epochs=1 --batch=32)
"${CLI}" train "${FLAGS[@]}" --seed=7 --save="${WORK}/a.bundle" \
  >"${WORK}/train.log" 2>&1 || fail "training bundle A failed"
"${CLI}" train "${FLAGS[@]}" --seed=8 --save="${WORK}/b.bundle" \
  >>"${WORK}/train.log" 2>&1 || fail "training bundle B failed"

REQ="$(awk 'BEGIN{for(i=0;i<336;i++)printf "%s%.4f",(i?",":""),sin(i/7.0)}')"
printf '%s\n' "${REQ}" >"${WORK}/req.txt"

"${CLI}" serve --load="${WORK}/a.bundle" --requests="${WORK}/req.txt" \
  >"${WORK}/ans_a.txt" 2>"${WORK}/serve.log" || fail "reference serve A failed"
"${CLI}" serve --load="${WORK}/b.bundle" --requests="${WORK}/req.txt" \
  >"${WORK}/ans_b.txt" 2>"${WORK}/serve.log" || fail "reference serve B failed"
ANS_A="$(cat "${WORK}/ans_a.txt")"
ANS_B="$(cat "${WORK}/ans_b.txt")"
[ -n "${ANS_A}" ] && [ "${ANS_A}" != "${ANS_B}" ] \
  || fail "reference bundles unusable (empty or identical predictions)"

wait_for() {
  local deadline=$((SECONDS + $1)); shift
  until "$@" >/dev/null 2>&1; do
    [ "${SECONDS}" -lt "${deadline}" ] || return 1
    sleep 0.05
  done
}
answer_count() { [ "$(wc -l <"${WORK}/answers.txt")" -ge "$1" ]; }
nth_answer() { sed -n "$1p" "${WORK}/answers.txt"; }

# fail_open_at=2: bundle open #1 is the initial --load; #2 is the first
# reload attempt, which must fail without disturbing the serving model.
# watcher_stall_ms stalls every watcher wake; serving must not notice.
cp "${WORK}/a.bundle" "${WORK}/live.bundle"
mkfifo "${WORK}/req.fifo"
LIPF_FAULT="watcher_stall_ms=200,fail_open_at=2" \
  "${CLI}" serve --load="m=${WORK}/live.bundle" --reload-poll-ms=50 \
  --requests="${WORK}/req.fifo" \
  >"${WORK}/answers.txt" 2>"${WORK}/serve.log" &
SERVE_PID=$!
exec 3>"${WORK}/req.fifo"

echo "== serving continues while the watcher is stalled"
printf 'm|%s\n' "${REQ}" >&3
wait_for 20 answer_count 1 || fail "no answer while the watcher was stalled"
[ "$(nth_answer 1)" = "${ANS_A}" ] || fail "answer is not bundle A's"

echo "== injected open failure rejects the reload; old model keeps serving"
cp "${WORK}/b.bundle" "${WORK}/live.bundle.tmp"
mv "${WORK}/live.bundle.tmp" "${WORK}/live.bundle"
wait_for 30 grep -q "registry: reload failed for model 'm'" "${WORK}/serve.log" \
  || fail "injected open fault never failed a reload"
printf 'm|%s\n' "${REQ}" >&3
wait_for 20 answer_count 2 || fail "no answer after the failed reload"
[ "$(nth_answer 2)" = "${ANS_A}" ] \
  || fail "failed reload changed the served predictions"

echo "== next publish reloads cleanly (fault was one-shot)"
cp "${WORK}/b.bundle" "${WORK}/live.bundle.tmp"
mv "${WORK}/live.bundle.tmp" "${WORK}/live.bundle"
wait_for 30 grep -q "registry: reloaded model 'm'" "${WORK}/serve.log" \
  || fail "watcher never reloaded after the one-shot fault"
printf 'm|%s\n' "${REQ}" >&3
wait_for 20 answer_count 3 || fail "no answer after the reload"
[ "$(nth_answer 3)" = "${ANS_B}" ] || fail "post-reload answer is not bundle B's"

echo "== !health reports a closed breaker and the failed reload"
printf '!health\n' >&3
wait_for 20 answer_count 4 || fail "!health produced no answer line"
HEALTH="$(nth_answer 4)"
case "${HEALTH}" in
  "health model=m breaker=closed "*) : ;;
  *) fail "unexpected !health line: ${HEALTH}" ;;
esac
echo "${HEALTH}" | grep -q "reload_failures=1" \
  || fail "!health did not report the failed reload: ${HEALTH}"
echo "${HEALTH}" | grep -q "executed_past_deadline=0" \
  || fail "!health reports executed-past-deadline work: ${HEALTH}"

echo "== EOF drains and exits cleanly"
exec 3>&-
SERVE_RC=0
wait "${SERVE_PID}" || SERVE_RC=$?
SERVE_PID=""
[ "${SERVE_RC}" -eq 0 ] || fail "server exited ${SERVE_RC} on EOF"

echo "== chaos part 3: closing the answer stream must not kill the server"
mkfifo "${WORK}/req2.fifo"
rm -f "${WORK}/epipe.log"
( set +e
  LIPF_FAULT="" "${CLI}" serve --load="m=${WORK}/b.bundle" \
    --requests="${WORK}/req2.fifo" 2>"${WORK}/epipe.log" \
    | head -n 1 >"${WORK}/epipe_first.txt"
  echo "pipeline_rc=${PIPESTATUS[0]}" >>"${WORK}/epipe.log" ) &
PIPE_PID=$!
exec 4>"${WORK}/req2.fifo"
printf 'm|%s\n' "${REQ}" >&4
# head exits after the first answer, breaking the server's stdout; the
# next answers hit EPIPE, which must trigger a drain, not a SIGPIPE kill.
for _ in 1 2 3; do printf 'm|%s\n' "${REQ}" >&4; done
wait_for 30 grep -q "client closed the answer stream" "${WORK}/epipe.log" \
  || { cat "${WORK}/epipe.log" >&2; fail "server never detected EPIPE"; }
exec 4>&-
wait "${PIPE_PID}" || true
grep -q "pipeline_rc=0" "${WORK}/epipe.log" \
  || { cat "${WORK}/epipe.log" >&2; \
       fail "server did not exit 0 after the client closed the stream"; }
[ "$(cat "${WORK}/epipe_first.txt")" = "${ANS_B}" ] \
  || fail "first streamed answer wrong before the stream closed"

echo "== chaos checks passed"
