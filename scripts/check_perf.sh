#!/usr/bin/env bash
# Builds bench_kernels in Release mode, runs the GEMM shape sweep plus the
# end-to-end train-step and inference-step benchmarks, and fails if
# single-thread real time regressed more than the threshold against the
# committed baseline (results/BENCH_kernels.json), or if the storage-pool
# allocation counters of the step benchmarks increased at all (the pool
# makes steady-state steps allocation-free; any new heap alloc per step is
# a leak in that contract, not noise).
#
# Usage:
#   scripts/check_perf.sh            # compare against the baseline
#   scripts/check_perf.sh --update   # rewrite the baseline instead
#
# Only threads:1 (and the un-threaded reference) rows are compared:
# multi-thread wall times depend on how many cores the machine exposes,
# single-thread times only on the kernel code. Each side uses the MINIMUM
# over repetitions — the floor is the least noisy statistic on shared
# boxes, where means/medians absorb scheduler and frequency jitter.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"

BASELINE="results/BENCH_kernels.json"
FILTER='BM_MatMul(TransB)?/|BM_MatMulReference|BM_Gemm|BM_LiPFormerTrainStep|BM_LiPFormerInference'
THRESHOLD="${LIPF_PERF_THRESHOLD:-1.10}"
UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
elif [ -n "${1:-}" ]; then
  echo "usage: $0 [--update]" >&2
  exit 2
fi

echo "== building bench_kernels (Release)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)" --target bench_kernels

RUN_OUT="$(mktemp /tmp/bench_kernels.XXXXXX.json)"
trap 'rm -f "${RUN_OUT}"' EXIT

echo "== running GEMM + train/inference step sweep"
./build/bench/bench_kernels \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=5 \
  --benchmark_out="${RUN_OUT}" \
  --benchmark_out_format=json

if [ "${UPDATE}" = "1" ]; then
  mkdir -p results
  cp "${RUN_OUT}" "${BASELINE}"
  echo "== baseline updated: ${BASELINE}"
  exit 0
fi

if [ ! -f "${BASELINE}" ]; then
  echo "error: no baseline at ${BASELINE}; run $0 --update first" >&2
  exit 2
fi

echo "== comparing single-thread best-of-reps against ${BASELINE}" \
     "(threshold ${THRESHOLD}x)"
python3 - "${BASELINE}" "${RUN_OUT}" "${THRESHOLD}" <<'EOF'
import json
import sys

baseline_path, run_path, threshold = sys.argv[1], sys.argv[2], sys.argv[3]
threshold = float(threshold)


ALLOC_COUNTERS = ("acquires_per_step", "heap_allocs_per_step")


def best_times(path):
    """Minimum real_time per benchmark family over its repetitions, plus
    the minimum of each storage-pool allocation counter where present."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    allocs = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        name = b.get("run_name", b["name"])
        # Single-thread rows only; the reference benchmark has no
        # threads arg and is single-thread by construction.
        if "threads:" in name and "threads:1" not in name:
            continue
        t = float(b["real_time"])
        if name not in out or t < out[name]:
            out[name] = t
        for counter in ALLOC_COUNTERS:
            if counter in b:
                key = (name, counter)
                v = float(b[counter])
                if key not in allocs or v < allocs[key]:
                    allocs[key] = v
    return out, allocs


base, base_allocs = best_times(baseline_path)
run, run_allocs = best_times(run_path)
# Rows under this floor measure timer granularity and scheduler jitter
# more than kernel speed; they are reported but never gate.
MIN_GATED_NS = 100_000
failures = []
compared = 0
for name, base_ns in sorted(base.items()):
    run_ns = run.get(name)
    if run_ns is None:
        failures.append(f"{name}: missing from this run")
        continue
    if base_ns < MIN_GATED_NS:
        print(f"  skip {name}: {base_ns / 1e6:.3f} ms baseline "
              "(below gating floor)")
        continue
    compared += 1
    ratio = run_ns / base_ns
    mark = "FAIL" if ratio > threshold else "ok"
    print(f"  {mark:4} {name}: {base_ns / 1e6:.3f} ms -> "
          f"{run_ns / 1e6:.3f} ms ({ratio:.2f}x)")
    if ratio > threshold:
        failures.append(f"{name}: {ratio:.2f}x slower")

if compared == 0:
    failures.append("no comparable single-thread benchmarks found")

# Allocation counters gate absolutely, not by ratio: a steady-state step
# should acquire the same number of storages every run, so any increase
# over the baseline is a real regression. (+0.5 absorbs the per-step
# amortization rounding of the warmup acquisitions.)
for (name, counter), base_v in sorted(base_allocs.items()):
    run_v = run_allocs.get((name, counter))
    if run_v is None:
        failures.append(f"{name}: counter {counter} missing from this run")
        continue
    mark = "FAIL" if run_v > base_v + 0.5 else "ok"
    print(f"  {mark:4} {name} {counter}: {base_v:.1f} -> {run_v:.1f}")
    if run_v > base_v + 0.5:
        failures.append(f"{name}: {counter} rose {base_v:.1f} -> {run_v:.1f}")
if failures:
    print("\nperf check FAILED:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print(f"\nperf check passed ({compared} benchmarks within {threshold}x)")
EOF

echo "== perf check passed"
