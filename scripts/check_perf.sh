#!/usr/bin/env bash
# Builds bench_kernels in Release mode, runs the GEMM shape sweep plus the
# end-to-end train-step and inference-step benchmarks, and fails if
# single-thread real time regressed more than the threshold against the
# committed baseline (results/BENCH_kernels.json), or if the storage-pool
# allocation counters of the step benchmarks increased at all (the pool
# makes steady-state steps allocation-free; any new heap alloc per step is
# a leak in that contract, not noise).
#
# Also runs bench_serving (the micro-batching serving path). That binary
# exits non-zero if any prediction is not bitwise identical to the
# module-path serial prediction of the same window — the AOT plan path,
# the batched path and the int8 quantized session's — so correctness
# gates on every run. Throughput gates against results/BENCH_serving.json:
# plan/module serial and batched rps (fp32 and int8) must stay within the
# threshold of the recorded baseline; the AOT inference plan
# (serve/plan.h) must beat the module path by >= 1.15x serial batch-1 on
# every machine (the plan's win — no dispatch, no pool lookups, prepacked
# GEMM weights, compiled-in scaler — does not depend on core count); and
# the batched/single speedup must reach 2x on machines with >= 4 cores (the
# batcher's win comes from giving the thread pool a batch dimension to
# parallelize; on the 1-core container that records the committed
# baseline the floor only bounds coalescing overhead — see
# DESIGN.md "Serving architecture" for the profile). The module-path
# int8/fp32 serial speedup has its own floor on machines with AVX512-VNNI (where
# the int8 GEMM actually runs packed dot-products); without VNNI the
# portable fallback is a correctness path and the speedup is only
# reported. p99.9 is reported but not gated: at 256 requests it is the
# max, which is scheduler noise, not code.
#
# The plan compiler's fusion pass (GEMM epilogues + elementwise chains,
# DESIGN.md "Fusion pass") has its own floor: the fused plan vs the same
# plan compiled with LIPF_NO_FUSE=1, measured inside bench_serving as the
# median of interleaved paired passes. On this softmax-dominated model
# fusion touches ~15% of runtime so the true win is a few percent —
# inside shared-box noise — so the floor is set to catch fusion making
# plans SLOWER (a regressed epilogue or chain kernel), not to prove the
# win on every run.
#
# Also runs bench_loadgen (the open-loop multi-model registry path). The
# binary itself exits non-zero on hard correctness violations — any
# failed or bitwise-mismatched answer at the gated utilizations, any
# failed/torn request during the live hot-reload phase, or a corrupt
# publish not keeping the previous model serving — so those gate on
# every run. The SLO gates against results/BENCH_loadgen.json: goodput
# must reach 85% of the offered Poisson rate at each (models, util)
# point, and p50/p99 must stay within the wide absolute threshold of the
# recorded baseline (open-loop tails carry the box's noise bursts on
# both sides, like the serving numbers above). The overload point (1.5x
# calibrated capacity, per-request deadlines, retrying client) gates
# separately and self-normalized against the same run's base_rps: the
# admission-control shed rate stays bounded, goodput holds a floor, and
# the hard zeros (requests executed past their deadline, non-finite
# answers delivered, torn answers, breaker trips on the healthy path)
# are re-asserted from the JSON.
#
# Every gate also emits one flat record (metric, value, baseline, ratio,
# status); after the gates run they are merged into
# results/BENCH_summary.json for scripts/summarize_results.py.
#
# Usage:
#   scripts/check_perf.sh            # compare against the baseline
#   scripts/check_perf.sh --update   # rewrite the baselines, then run the
#                                    # gates against them (ratio gates are
#                                    # trivially 1.00x; floors still apply)
#
# Only threads:1 (and the un-threaded reference) rows are compared:
# multi-thread wall times depend on how many cores the machine exposes,
# single-thread times only on the kernel code. Each side uses the MINIMUM
# over repetitions — the floor is the least noisy statistic on shared
# boxes, where means/medians absorb scheduler and frequency jitter.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"

BASELINE="results/BENCH_kernels.json"
FILTER='BM_MatMul(TransB)?/|BM_MatMulReference|BM_Gemm|BM_LiPFormerTrainStep|BM_LiPFormerInference'
THRESHOLD="${LIPF_PERF_THRESHOLD:-1.10}"
UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
elif [ -n "${1:-}" ]; then
  echo "usage: $0 [--update]" >&2
  exit 2
fi

echo "== building bench_kernels + bench_serving + bench_loadgen (Release)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)" --target bench_kernels bench_serving \
  bench_loadgen

# All temp files live under this one trap; add new ones here, not in a
# second trap (a later `trap ... EXIT` replaces this one silently).
RUN_OUT="$(mktemp /tmp/bench_kernels.XXXXXX.json)"
SERVING_OUT="$(mktemp /tmp/bench_serving.XXXXXX.json)"
LOADGEN_OUT="$(mktemp /tmp/bench_loadgen.XXXXXX.json)"
KERNEL_RECORDS="$(mktemp /tmp/bench_summary_kernels.XXXXXX.json)"
SERVING_RECORDS="$(mktemp /tmp/bench_summary_serving.XXXXXX.json)"
LOADGEN_RECORDS="$(mktemp /tmp/bench_summary_loadgen.XXXXXX.json)"
trap 'rm -f "${RUN_OUT}" "${SERVING_OUT}" "${LOADGEN_OUT}" \
  "${KERNEL_RECORDS}" "${SERVING_RECORDS}" "${LOADGEN_RECORDS}"' EXIT

run_kernels() {
  echo "== running GEMM + train/inference step sweep"
  ./build/bench/bench_kernels \
    --benchmark_filter="${FILTER}" \
    --benchmark_min_time=0.2 \
    --benchmark_repetitions=5 \
    --benchmark_out="${RUN_OUT}" \
    --benchmark_out_format=json
}

run_serving() {
  echo "== running bench_serving (bitwise identity gates unconditionally)"
  ./build/bench/bench_serving --requests=256 --json="${SERVING_OUT}"
}

run_loadgen() {
  echo "== running bench_loadgen (registry/hot-reload correctness gates" \
       "unconditionally)"
  ./build/bench/bench_loadgen --json="${LOADGEN_OUT}"
}

SERVING_BASELINE="results/BENCH_serving.json"
LOADGEN_BASELINE="results/BENCH_loadgen.json"
run_kernels
run_serving
run_loadgen

if [ "${UPDATE}" = "1" ]; then
  mkdir -p results
  cp "${RUN_OUT}" "${BASELINE}"
  cp "${SERVING_OUT}" "${SERVING_BASELINE}"
  cp "${LOADGEN_OUT}" "${LOADGEN_BASELINE}"
  echo "== baselines updated: ${BASELINE}, ${SERVING_BASELINE}," \
       "${LOADGEN_BASELINE}"
  # Fall through to the gates: ratio comparisons are trivially 1.00x
  # against the fresh baselines, but the absolute floors (plan_speedup,
  # plan_fusion, batching) still validate the recording run, and the
  # pass writes results/BENCH_summary.json.
fi

if [ ! -f "${BASELINE}" ] || [ ! -f "${SERVING_BASELINE}" ] \
    || [ ! -f "${LOADGEN_BASELINE}" ]; then
  echo "error: missing baseline (${BASELINE}, ${SERVING_BASELINE} or" \
       "${LOADGEN_BASELINE}); run $0 --update first" >&2
  exit 2
fi

compare_kernels() {
  echo "== comparing single-thread best-of-reps against ${BASELINE}" \
       "(threshold ${THRESHOLD}x)"
  python3 - "${BASELINE}" "${RUN_OUT}" "${THRESHOLD}" \
      "${KERNEL_RECORDS}" <<'EOF'
import json
import sys

baseline_path, run_path, threshold, records_path = sys.argv[1:5]
threshold = float(threshold)
records = []


ALLOC_COUNTERS = ("acquires_per_step", "heap_allocs_per_step")


def best_times(path):
    """Minimum real_time per benchmark family over its repetitions, plus
    the minimum of each storage-pool allocation counter where present."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    allocs = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        name = b.get("run_name", b["name"])
        # Single-thread rows only; the reference benchmark has no
        # threads arg and is single-thread by construction.
        if "threads:" in name and "threads:1" not in name:
            continue
        t = float(b["real_time"])
        if name not in out or t < out[name]:
            out[name] = t
        for counter in ALLOC_COUNTERS:
            if counter in b:
                key = (name, counter)
                v = float(b[counter])
                if key not in allocs or v < allocs[key]:
                    allocs[key] = v
    return out, allocs


base, base_allocs = best_times(baseline_path)
run, run_allocs = best_times(run_path)
# Rows under this floor measure timer granularity and scheduler jitter
# more than kernel speed; they are reported but never gate.
MIN_GATED_NS = 100_000
failures = []
compared = 0
for name, base_ns in sorted(base.items()):
    run_ns = run.get(name)
    if run_ns is None:
        failures.append(f"{name}: missing from this run")
        continue
    if base_ns < MIN_GATED_NS:
        print(f"  skip {name}: {base_ns / 1e6:.3f} ms baseline "
              "(below gating floor)")
        continue
    compared += 1
    ratio = run_ns / base_ns
    mark = "FAIL" if ratio > threshold else "ok"
    print(f"  {mark:4} {name}: {base_ns / 1e6:.3f} ms -> "
          f"{run_ns / 1e6:.3f} ms ({ratio:.2f}x)")
    records.append({"gate": "kernels", "metric": name, "value": run_ns,
                    "baseline": base_ns, "ratio": round(ratio, 4),
                    "status": mark.strip()})
    if ratio > threshold:
        failures.append(f"{name}: {ratio:.2f}x slower")

if compared == 0:
    failures.append("no comparable single-thread benchmarks found")

# Allocation counters gate absolutely, not by ratio: a steady-state step
# should acquire the same number of storages every run, so any increase
# over the baseline is a real regression. (+0.5 absorbs the per-step
# amortization rounding of the warmup acquisitions.)
for (name, counter), base_v in sorted(base_allocs.items()):
    run_v = run_allocs.get((name, counter))
    if run_v is None:
        failures.append(f"{name}: counter {counter} missing from this run")
        continue
    mark = "FAIL" if run_v > base_v + 0.5 else "ok"
    print(f"  {mark:4} {name} {counter}: {base_v:.1f} -> {run_v:.1f}")
    records.append({"gate": "kernels", "metric": f"{name}/{counter}",
                    "value": run_v, "baseline": base_v,
                    "ratio": round(run_v / base_v, 4) if base_v else 1.0,
                    "status": mark.strip()})
    if run_v > base_v + 0.5:
        failures.append(f"{name}: {counter} rose {base_v:.1f} -> {run_v:.1f}")
with open(records_path, "w") as f:
    json.dump(records, f)
if failures:
    print("\nperf check FAILED:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print(f"\nperf check passed ({compared} benchmarks within {threshold}x)")
EOF
}

HAS_VNNI=0
if grep -q avx512_vnni /proc/cpuinfo 2>/dev/null; then
  HAS_VNNI=1
fi

compare_serving() {
  echo "== comparing serving throughput against ${SERVING_BASELINE}" \
       "(threshold ${THRESHOLD}x)"
  python3 - "${SERVING_BASELINE}" "${SERVING_OUT}" "${THRESHOLD}" \
      "$(nproc)" "${HAS_VNNI}" "${SERVING_RECORDS}" <<'EOF'
import json
import sys

baseline_path, run_path, threshold, cores, has_vnni, records_path = \
    sys.argv[1:7]
threshold = float(threshold)
cores = int(cores)
has_vnni = has_vnni == "1"
records = []

with open(baseline_path) as f:
    base = json.load(f)
with open(run_path) as f:
    run = json.load(f)

failures = []

# Absolute serving numbers compare one run against one recorded baseline
# run, so unlike the kernel mins they carry the box's noise bursts on
# both sides (observed: multi-ms scheduler stalls inflating p99 1.5x and
# depressing a whole serial phase 1.3x). Gate them at a wider margin —
# they exist to catch wholesale regressions, while the intra-run ratio
# floors below (plan vs module, measured seconds apart in the same
# process) carry the tight guarantees.
abs_threshold = max(threshold, 1.45)

# Throughput must not regress past the threshold (rps: higher is better).
for key in ("single_rps", "module_single_rps", "batched16_rps",
            "quant_single_rps", "quant_module_rps"):
    ratio = base[key] / max(run[key], 1e-9)
    mark = "FAIL" if ratio > abs_threshold else "ok"
    print(f"  {mark:4} {key}: {base[key]:.1f} -> {run[key]:.1f} rps "
          f"({ratio:.2f}x slower)")
    records.append({"gate": "serving", "metric": key, "value": run[key],
                    "baseline": base[key], "ratio": round(ratio, 4),
                    "status": mark.strip()})
    if ratio > abs_threshold:
        failures.append(f"{key}: {ratio:.2f}x below baseline")

# Tail latency within threshold of the recorded baseline.
ratio = run["p99_us"] / max(base["p99_us"], 1e-9)
mark = "FAIL" if ratio > abs_threshold else "ok"
print(f"  {mark:4} p99: {base['p99_us']:.0f} -> {run['p99_us']:.0f} us "
      f"({ratio:.2f}x)")
records.append({"gate": "serving", "metric": "p99_us",
                "value": run["p99_us"], "baseline": base["p99_us"],
                "ratio": round(ratio, 4), "status": mark.strip()})
if ratio > abs_threshold:
    failures.append(f"p99 latency: {ratio:.2f}x over baseline")
print(f"  info p99.9: {base['p999_us']:.0f} -> {run['p999_us']:.0f} us "
      "(reported, not gated)")

# The batching speedup itself: the batcher's win is the batch dimension it
# hands the thread pool, so the 2x requirement only holds where there are
# cores to parallelize over. On fewer than 4 cores there is nothing to
# parallelize AND the plan serial path leaves almost no per-request
# overhead to amortize, so coalescing costs (futures, condvars, row
# copies into the batch tensor) show up directly; the floor there only
# bounds that overhead at ~30% (observed 0.77-0.92x run to run — the
# denominator is the fused serial plan path, which keeps getting
# faster). Bitwise identity was already enforced by the bench exiting 0.
floor = 2.0 if cores >= 4 else 0.70
mark = "FAIL" if run["speedup"] < floor else "ok"
print(f"  {mark:4} speedup: {run['speedup']:.2f}x "
      f"(floor {floor:.1f}x on {cores} cores)")
records.append({"gate": "serving", "metric": "batching_speedup",
                "value": run["speedup"], "baseline": floor,
                "ratio": round(run["speedup"] / floor, 4),
                "status": mark.strip()})
if run["speedup"] < floor:
    failures.append(
        f"batching speedup {run['speedup']:.2f}x under the {floor:.1f}x "
        f"floor for {cores} cores")

# The AOT plan path must actually be faster than the module path it
# shadows — otherwise it is complexity without payoff. Unconditional:
# the plan's savings (no dispatch/pool lookups, prepacked weights,
# compiled-in scaler) do not depend on cores or ISA extensions.
pfloor = 1.15
mark = "FAIL" if run["plan_speedup"] < pfloor else "ok"
print(f"  {mark:4} plan_speedup: {run['plan_speedup']:.2f}x "
      f"(floor {pfloor:.2f}x, fp32 serial plan vs module)")
records.append({"gate": "serving", "metric": "plan_speedup",
                "value": run["plan_speedup"], "baseline": pfloor,
                "ratio": round(run["plan_speedup"] / pfloor, 4),
                "status": mark.strip()})
if run["plan_speedup"] < pfloor:
    failures.append(
        f"plan speedup {run['plan_speedup']:.2f}x under the "
        f"{pfloor:.2f}x floor")
print(f"  info quant_plan_speedup: {run['quant_plan_speedup']:.2f}x "
      "(int8 serial plan vs module; reported, not gated)")

# The fusion pass's own floor: fused plan vs the same plan compiled with
# LIPF_NO_FUSE=1, measured by bench_serving as the median of interleaved
# paired passes (the two sides run back to back inside one phase, so the
# statistic is immune to phase-to-phase frequency drift). On this
# softmax-dominated model fusion touches ~15% of runtime and the true
# effect is ~1-2% — inside shared-box noise — so the floor sits just
# under parity: it catches fusion making plans SLOWER (a regressed
# epilogue or chain kernel lands well below 0.98), which is the failure
# mode that matters. The measured median is printed for eyeballing.
ffloor = 0.98
mark = "FAIL" if run["fusion_speedup"] < ffloor else "ok"
print(f"  {mark:4} plan_fusion: {run['fusion_speedup']:.3f}x "
      f"(floor {ffloor:.2f}x, fused vs LIPF_NO_FUSE=1 plan, "
      "median of paired passes)")
records.append({"gate": "serving", "metric": "plan_fusion",
                "value": run["fusion_speedup"], "baseline": ffloor,
                "ratio": round(run["fusion_speedup"] / ffloor, 4),
                "status": mark.strip()})
if run["fusion_speedup"] < ffloor:
    failures.append(
        f"fusion speedup {run['fusion_speedup']:.3f}x under the "
        f"{ffloor:.2f}x floor")
print(f"  info plan fusion stats: {run['plan_fused_epilogues']} GEMM "
      f"epilogues, {run['plan_fused_chains']} chains, "
      f"{run['plan_passes_eliminated']} passes eliminated")

# The int8 serial path must actually be faster than fp32 serial where the
# VNNI micro-kernel runs; the portable fallback only promises identical
# answers, not speed, so without VNNI this is report-only. Compared on
# the module path (bench_serving computes it that way): on the plan
# path, compile-time prepacked fp32 B panels close most of the int8
# gap at this model size, which says nothing about the int8 kernel.
if has_vnni:
    # On a model this small the int8 GEMM win is single-digit percent —
    # inside shared-box noise (observed 0.93-1.06x run to run, the two
    # serial phases being minutes apart). The floor therefore only
    # catches a broken VNNI path (the portable fallback lands near
    # 0.5x), not the win itself; bench_serving prints the measured
    # ratio for eyeballing.
    qfloor = 0.90
    mark = "FAIL" if run["quant_speedup"] < qfloor else "ok"
    print(f"  {mark:4} quant_speedup: {run['quant_speedup']:.2f}x "
          f"(floor {qfloor:.2f}x module int8/fp32, AVX512-VNNI present)")
    records.append({"gate": "serving", "metric": "quant_speedup",
                    "value": run["quant_speedup"], "baseline": qfloor,
                    "ratio": round(run["quant_speedup"] / qfloor, 4),
                    "status": mark.strip()})
    if run["quant_speedup"] < qfloor:
        failures.append(
            f"int8 speedup {run['quant_speedup']:.2f}x under the "
            f"{qfloor:.2f}x floor")
else:
    print(f"  info quant_speedup: {run['quant_speedup']:.2f}x "
          "(no AVX512-VNNI: reported, not gated)")

with open(records_path, "w") as f:
    json.dump(records, f)

if failures:
    print("\nserving perf check FAILED:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print("\nserving perf check passed")
EOF
}

compare_loadgen() {
  echo "== comparing load-generator SLOs against ${LOADGEN_BASELINE}" \
       "(threshold ${THRESHOLD}x)"
  python3 - "${LOADGEN_BASELINE}" "${LOADGEN_OUT}" "${THRESHOLD}" \
      "${LOADGEN_RECORDS}" <<'EOF'
import json
import sys

baseline_path, run_path, threshold, records_path = sys.argv[1:5]
threshold = float(threshold)
records = []

with open(baseline_path) as f:
    base = json.load(f)
with open(run_path) as f:
    run = json.load(f)

failures = []

# Open-loop latencies compare one run against one recorded run, so the
# same wide margin as the serving gates applies (noise bursts land on
# either side of the ratio).
abs_threshold = max(threshold, 1.45)

base_points = {(p["models"], p["util"]): p for p in base["points"]}

# bench_loadgen already exited 0, which certifies failed == 0 and
# mismatched == 0 at every point; the gates here are the SLO curve.
for p in run["points"]:
    key = (p["models"], p["util"])
    label = f"m{p['models']}_u{p['util']:g}"
    bp = base_points.get(key)
    if bp is None:
        failures.append(f"{label}: missing from baseline (run --update)")
        continue

    # Goodput tracks the offered Poisson rate (which carries sampling
    # variance), so the floor is a fraction of the per-run target, not a
    # ratio against the baseline's goodput.
    floor = 0.85 * p["target_rps"]
    mark = "FAIL" if p["goodput_rps"] < floor else "ok"
    print(f"  {mark:4} {label} goodput: {p['goodput_rps']:.1f} rps "
          f"(target {p['target_rps']:.1f}, floor {floor:.1f})")
    records.append({"gate": "loadgen", "metric": f"{label}/goodput_rps",
                    "value": p["goodput_rps"], "baseline": floor,
                    "ratio": round(p["goodput_rps"] / max(floor, 1e-9), 4),
                    "status": mark.strip()})
    if p["goodput_rps"] < floor:
        failures.append(
            f"{label}: goodput {p['goodput_rps']:.1f} rps under the "
            f"{floor:.1f} floor")

    for metric in ("p50_us", "p99_us"):
        ratio = p[metric] / max(bp[metric], 1e-9)
        mark = "FAIL" if ratio > abs_threshold else "ok"
        print(f"  {mark:4} {label} {metric}: {bp[metric]:.0f} -> "
              f"{p[metric]:.0f} us ({ratio:.2f}x)")
        records.append({"gate": "loadgen", "metric": f"{label}/{metric}",
                        "value": p[metric], "baseline": bp[metric],
                        "ratio": round(ratio, 4), "status": mark.strip()})
        if ratio > abs_threshold:
            failures.append(f"{label}: {metric} {ratio:.2f}x over baseline")
    print(f"  info {label} p99.9: {bp['p999_us']:.0f} -> "
          f"{p['p999_us']:.0f} us (reported, not gated)")

# Overload point: 1.5x the calibrated capacity on one model with
# per-request deadlines, admission control and client retries. The
# floors are self-normalizing against the same run's calibrated
# base_rps, so no baseline entry is needed. The shed-rate ceiling bounds
# admission control from above (at 1.5x utilization the excess is ~1/3
# of offered; 0.50 leaves room for noise bursts), the goodput floor
# bounds it from below (shedding everything would also "meet" the
# deadline), and the zeros are the deadline/robustness invariants the
# chaos gate asserts under faults, re-checked here on the healthy path.
ov = run.get("overload")
if ov is not None:
    base_rps = run["base_rps"]
    terminal_shed = ov["shed"] + ov["expired"]
    shed_rate = terminal_shed / max(ov["offered"], 1)
    checks = [
        ("overload/shed_rate", shed_rate, 0.50, shed_rate <= 0.50),
        ("overload/goodput_vs_capacity", ov["goodput_rps"],
         0.50 * base_rps, ov["goodput_rps"] >= 0.50 * base_rps),
        ("overload/executed_past_deadline",
         ov["executed_past_deadline"], 0,
         ov["executed_past_deadline"] == 0),
        ("overload/nonfinite_delivered", ov["nonfinite"], 0,
         ov["nonfinite"] == 0),
        ("overload/server_nonfinite", ov["server_nonfinite"], 0,
         ov["server_nonfinite"] == 0),
        ("overload/mismatched", ov["mismatched"], 0,
         ov["mismatched"] == 0),
        ("overload/breaker_trips", ov["breaker_trips"], 0,
         ov["breaker_trips"] == 0),
    ]
    for metric, value, bound, passed in checks:
        mark = "ok" if passed else "FAIL"
        print(f"  {mark:4} {metric}: {value:.2f} (bound {bound:.2f})")
        records.append({"gate": "loadgen", "metric": metric,
                        "value": value, "baseline": bound,
                        "ratio": round(value / bound, 4) if bound else 1.0,
                        "status": mark})
        if not passed:
            failures.append(f"{metric}: {value:.2f} violates {bound:.2f}")
    print(f"  info overload: offered={ov['offered']} "
          f"completed={ov['completed']} shed={ov['shed']} "
          f"expired={ov['expired']} retries={ov['retries']} "
          f"deadline={ov['deadline_ms']:.0f}ms")

# Hot-reload hard facts, re-asserted from the JSON so the summary records
# them even though the binary's exit code already gates them.
hr = run.get("hot_reload")
if hr is not None:
    ok = (hr["failed"] == 0 and hr["torn"] == 0 and hr["old_model"] > 0
          and hr["new_model"] > 0 and hr["reload_failures"] >= 1
          and hr["post_corrupt_ok"] == hr.get("post_corrupt_expected", 16))
    mark = "ok" if ok else "FAIL"
    print(f"  {mark:4} hot_reload: {hr['requests']} requests, "
          f"{hr['failed']} failed, {hr['torn']} torn, "
          f"{hr['old_model']}/{hr['new_model']} old/new, "
          f"{hr['reload_failures']} rejected publish(es)")
    records.append({"gate": "loadgen", "metric": "hot_reload_failed",
                    "value": hr["failed"] + hr["torn"], "baseline": 0,
                    "ratio": 1.0, "status": mark})
    if not ok:
        failures.append("hot_reload invariants violated (see line above)")

with open(records_path, "w") as f:
    json.dump(records, f)

if failures:
    print("\nloadgen perf check FAILED:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print("\nloadgen perf check passed")
EOF
}

# One fresh-rerun retry per gate: this box's scheduler noise bursts
# routinely push untouched kernels (BM_MatMulReference included) past the
# threshold for one run, while a real regression reproduces on the
# retry's fresh measurements.
if ! compare_kernels; then
  echo "== kernel gate failed; retrying once against fresh measurements"
  run_kernels
  compare_kernels
fi

if ! compare_serving; then
  echo "== serving gate failed; retrying once against fresh measurements"
  run_serving
  compare_serving
fi

if ! compare_loadgen; then
  echo "== loadgen gate failed; retrying once against fresh measurements"
  run_loadgen
  compare_loadgen
fi

# Consolidate the per-gate records (written by the compare steps, retries
# overwrite them with the fresh measurements) into one flat summary.
mkdir -p results
python3 - "${KERNEL_RECORDS}" "${SERVING_RECORDS}" "${LOADGEN_RECORDS}" \
    "results/BENCH_summary.json" <<'EOF'
import json
import sys

records = []
for path in sys.argv[1:4]:
    with open(path) as f:
        records.extend(json.load(f))
out = sys.argv[4]
with open(out, "w") as f:
    json.dump({"records": records}, f, indent=1)
    f.write("\n")
print(f"== wrote {out} ({len(records)} gate records)")
EOF

echo "== perf check passed"
