#!/usr/bin/env bash
# Builds the repo under a sanitizer (ThreadSanitizer by default) and runs
# the test suite, so the thread-pool tensor backend stays race-free and
# the checkpoint/snapshot serialization code stays UB-free. The suite
# includes the AOT inference-plan tests (tests/plan_test.cc); under
# `thread`, PlanTest.ManyThreadsShareOnePlan hammers one immutable
# compiled plan from 8 threads, which is the race check for the
# plan-shared / arena-per-request contract of serve/plan.h. The plan
# suite also covers the fusion pass (PlanTest.FusionFiresOnDefaultConfig,
# bitwise-identity checks run with fusion both on and off via
# LIPF_NO_FUSE) and the arena liveness allocator's adversarial cases
# (PlanTest.Arena*: interleaved lifetimes, same-size reuse, alignment,
# overlap detection), so sanitizers see the fused kernels and the
# allocator edge paths too. The serving layer's concurrency edges ride
# along as well: SessionTest.SubmitRacingShutdownResolvesEveryFuture
# (32 submitters vs Shutdown), ResolvedCallerSeesItselfInCompletedStats
# (the stats commit-before-fulfill ordering contract),
# BlockingSubmitAppliesFlowControl / BlockingSubmitUnblocksOnShutdown
# (the kBlock producer path), and ModelRegistryTest.
# SubmitsNeverFailAcrossReloadStorm, which races four kBlock client
# threads against alternating good/corrupt hot-reload publishes — the
# TSan check for the registry's shared_ptr swap protocol. The `chaos`
# ctest (scripts/check_chaos.sh) also runs here, driving bench_loadgen's
# overload + fault-injection phases under the sanitizer; its goodput
# floor is relaxed below (sanitizer builds gate the correctness
# invariants — breaker recovery, deadline and non-finite zeros — not
# throughput, which the instrumented build cannot promise).
#
# Usage:
#   scripts/check_sanitize.sh [thread|address|undefined]
#
# Uses a dedicated build directory per sanitizer (build-tsan/build-asan/
# build-ubsan) so the regular build/ tree is untouched.

set -euo pipefail

SANITIZER="${1:-thread}"
case "${SANITIZER}" in
  thread)    BUILD_DIR="build-tsan" ;;
  address)   BUILD_DIR="build-asan" ;;
  undefined) BUILD_DIR="build-ubsan" ;;
  *)
    echo "usage: $0 [thread|address|undefined]" >&2
    exit 2
    ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"

echo "== configuring ${BUILD_DIR} with LIPF_SANITIZE=${SANITIZER}"
cmake -B "${BUILD_DIR}" -S . -DLIPF_SANITIZE="${SANITIZER}"
# lipformer_cli is needed too: the crash_resume ctest drives it, and
# bench_loadgen backs the chaos ctest.
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target lipformer_tests lipformer_cli bench_loadgen

echo "== running tests under ${SANITIZER} sanitizer"
# Sanitizer builds run the model 10-20x slower: the chaos gate keeps its
# correctness invariants but cannot hold a production goodput floor, and
# the open-loop phases need more wall-clock to see enough batches.
export LIPF_CHAOS_GOODPUT_FLOOR_PCT="${LIPF_CHAOS_GOODPUT_FLOOR_PCT:-50}"
export LIPF_CHAOS_DURATION_MS="${LIPF_CHAOS_DURATION_MS:-6000}"
# halt_on_error makes a single race fail the run instead of just logging.
if [ "${SANITIZER}" = "thread" ]; then
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
elif [ "${SANITIZER}" = "undefined" ]; then
  export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
else
  export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
fi
ctest --test-dir "${BUILD_DIR}" --output-on-failure

echo "== ${SANITIZER} sanitizer run passed"
