# Empty dependencies file for lipformer.
# This may be replaced when dependencies are built.
