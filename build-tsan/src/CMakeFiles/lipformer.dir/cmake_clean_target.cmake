file(REMOVE_RECURSE
  "liblipformer.a"
)
