
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/lipformer.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/lipformer.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/autograd/variable.cc.o.d"
  "/root/repo/src/bench_util/experiment.cc" "src/CMakeFiles/lipformer.dir/bench_util/experiment.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/bench_util/experiment.cc.o.d"
  "/root/repo/src/bench_util/profiler.cc" "src/CMakeFiles/lipformer.dir/bench_util/profiler.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/bench_util/profiler.cc.o.d"
  "/root/repo/src/bench_util/table_printer.cc" "src/CMakeFiles/lipformer.dir/bench_util/table_printer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/bench_util/table_printer.cc.o.d"
  "/root/repo/src/cli/cli.cc" "src/CMakeFiles/lipformer.dir/cli/cli.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/cli/cli.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/lipformer.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/lipformer.dir/common/random.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/lipformer.dir/common/status.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/lipformer.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/base_predictor.cc" "src/CMakeFiles/lipformer.dir/core/base_predictor.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/base_predictor.cc.o.d"
  "/root/repo/src/core/covariate_augmented.cc" "src/CMakeFiles/lipformer.dir/core/covariate_augmented.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/covariate_augmented.cc.o.d"
  "/root/repo/src/core/covariate_encoder.cc" "src/CMakeFiles/lipformer.dir/core/covariate_encoder.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/covariate_encoder.cc.o.d"
  "/root/repo/src/core/cross_patch_attention.cc" "src/CMakeFiles/lipformer.dir/core/cross_patch_attention.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/cross_patch_attention.cc.o.d"
  "/root/repo/src/core/dual_encoder.cc" "src/CMakeFiles/lipformer.dir/core/dual_encoder.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/dual_encoder.cc.o.d"
  "/root/repo/src/core/instance_norm.cc" "src/CMakeFiles/lipformer.dir/core/instance_norm.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/instance_norm.cc.o.d"
  "/root/repo/src/core/inter_patch_attention.cc" "src/CMakeFiles/lipformer.dir/core/inter_patch_attention.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/inter_patch_attention.cc.o.d"
  "/root/repo/src/core/lipformer.cc" "src/CMakeFiles/lipformer.dir/core/lipformer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/lipformer.cc.o.d"
  "/root/repo/src/core/multi_scale.cc" "src/CMakeFiles/lipformer.dir/core/multi_scale.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/multi_scale.cc.o.d"
  "/root/repo/src/core/patching.cc" "src/CMakeFiles/lipformer.dir/core/patching.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/core/patching.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/lipformer.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/lipformer.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/registry.cc" "src/CMakeFiles/lipformer.dir/data/registry.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/registry.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/CMakeFiles/lipformer.dir/data/scaler.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/scaler.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/lipformer.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/time_features.cc" "src/CMakeFiles/lipformer.dir/data/time_features.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/time_features.cc.o.d"
  "/root/repo/src/data/time_series.cc" "src/CMakeFiles/lipformer.dir/data/time_series.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/time_series.cc.o.d"
  "/root/repo/src/data/window_dataset.cc" "src/CMakeFiles/lipformer.dir/data/window_dataset.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/data/window_dataset.cc.o.d"
  "/root/repo/src/models/autoformer.cc" "src/CMakeFiles/lipformer.dir/models/autoformer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/autoformer.cc.o.d"
  "/root/repo/src/models/decomposition.cc" "src/CMakeFiles/lipformer.dir/models/decomposition.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/decomposition.cc.o.d"
  "/root/repo/src/models/dlinear.cc" "src/CMakeFiles/lipformer.dir/models/dlinear.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/dlinear.cc.o.d"
  "/root/repo/src/models/encoder_layer.cc" "src/CMakeFiles/lipformer.dir/models/encoder_layer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/encoder_layer.cc.o.d"
  "/root/repo/src/models/factory.cc" "src/CMakeFiles/lipformer.dir/models/factory.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/factory.cc.o.d"
  "/root/repo/src/models/fgnn.cc" "src/CMakeFiles/lipformer.dir/models/fgnn.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/fgnn.cc.o.d"
  "/root/repo/src/models/forecaster.cc" "src/CMakeFiles/lipformer.dir/models/forecaster.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/forecaster.cc.o.d"
  "/root/repo/src/models/informer.cc" "src/CMakeFiles/lipformer.dir/models/informer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/informer.cc.o.d"
  "/root/repo/src/models/itransformer.cc" "src/CMakeFiles/lipformer.dir/models/itransformer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/itransformer.cc.o.d"
  "/root/repo/src/models/patchtst.cc" "src/CMakeFiles/lipformer.dir/models/patchtst.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/patchtst.cc.o.d"
  "/root/repo/src/models/tide.cc" "src/CMakeFiles/lipformer.dir/models/tide.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/tide.cc.o.d"
  "/root/repo/src/models/timemixer.cc" "src/CMakeFiles/lipformer.dir/models/timemixer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/timemixer.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/CMakeFiles/lipformer.dir/models/transformer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/transformer.cc.o.d"
  "/root/repo/src/models/tsmixer.cc" "src/CMakeFiles/lipformer.dir/models/tsmixer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/models/tsmixer.cc.o.d"
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/lipformer.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/lipformer.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/lipformer.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/lipformer.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/lipformer.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/lipformer.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/lipformer.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/positional_encoding.cc" "src/CMakeFiles/lipformer.dir/nn/positional_encoding.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/nn/positional_encoding.cc.o.d"
  "/root/repo/src/optim/adamw.cc" "src/CMakeFiles/lipformer.dir/optim/adamw.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/optim/adamw.cc.o.d"
  "/root/repo/src/optim/early_stopping.cc" "src/CMakeFiles/lipformer.dir/optim/early_stopping.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/optim/early_stopping.cc.o.d"
  "/root/repo/src/optim/lr_scheduler.cc" "src/CMakeFiles/lipformer.dir/optim/lr_scheduler.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/optim/lr_scheduler.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/lipformer.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/optim/sgd.cc" "src/CMakeFiles/lipformer.dir/optim/sgd.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/optim/sgd.cc.o.d"
  "/root/repo/src/tensor/fft.cc" "src/CMakeFiles/lipformer.dir/tensor/fft.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/tensor/fft.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/lipformer.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/lipformer.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/train/extended_metrics.cc" "src/CMakeFiles/lipformer.dir/train/extended_metrics.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/train/extended_metrics.cc.o.d"
  "/root/repo/src/train/losses.cc" "src/CMakeFiles/lipformer.dir/train/losses.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/train/losses.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/CMakeFiles/lipformer.dir/train/metrics.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/train/metrics.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/lipformer.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/lipformer.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
