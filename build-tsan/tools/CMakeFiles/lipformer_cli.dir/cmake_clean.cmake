file(REMOVE_RECURSE
  "CMakeFiles/lipformer_cli.dir/lipformer_cli.cc.o"
  "CMakeFiles/lipformer_cli.dir/lipformer_cli.cc.o.d"
  "lipformer_cli"
  "lipformer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipformer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
