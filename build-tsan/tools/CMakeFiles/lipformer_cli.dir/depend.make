# Empty dependencies file for lipformer_cli.
# This may be replaced when dependencies are built.
