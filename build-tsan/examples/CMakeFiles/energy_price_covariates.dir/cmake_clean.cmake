file(REMOVE_RECURSE
  "CMakeFiles/energy_price_covariates.dir/energy_price_covariates.cpp.o"
  "CMakeFiles/energy_price_covariates.dir/energy_price_covariates.cpp.o.d"
  "energy_price_covariates"
  "energy_price_covariates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_price_covariates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
