# Empty dependencies file for energy_price_covariates.
# This may be replaced when dependencies are built.
