# Empty dependencies file for custom_csv.
# This may be replaced when dependencies are built.
