file(REMOVE_RECURSE
  "CMakeFiles/custom_csv.dir/custom_csv.cpp.o"
  "CMakeFiles/custom_csv.dir/custom_csv.cpp.o.d"
  "custom_csv"
  "custom_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
