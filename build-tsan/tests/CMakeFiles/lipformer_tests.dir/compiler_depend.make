# Empty compiler generated dependencies file for lipformer_tests.
# This may be replaced when dependencies are built.
