
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_stress_test.cc" "tests/CMakeFiles/lipformer_tests.dir/autograd_stress_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/autograd_stress_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/lipformer_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/lipformer_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/bench_util_test.cc" "tests/CMakeFiles/lipformer_tests.dir/bench_util_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/bench_util_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/lipformer_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/lipformer_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/lipformer_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/edge_case_test.cc" "tests/CMakeFiles/lipformer_tests.dir/edge_case_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/edge_case_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/lipformer_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fft_test.cc" "tests/CMakeFiles/lipformer_tests.dir/fft_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/fft_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/lipformer_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/lipformer_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/lipformer_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/optim_test.cc" "tests/CMakeFiles/lipformer_tests.dir/optim_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/optim_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/lipformer_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/lipformer_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/lipformer_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/train_test.cc" "tests/CMakeFiles/lipformer_tests.dir/train_test.cc.o" "gcc" "tests/CMakeFiles/lipformer_tests.dir/train_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/lipformer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
