# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lipformer_tests "/root/repo/build-tsan/tests/lipformer_tests")
set_tests_properties(lipformer_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
