file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_pretrain.dir/bench_table6_pretrain.cc.o"
  "CMakeFiles/bench_table6_pretrain.dir/bench_table6_pretrain.cc.o.d"
  "bench_table6_pretrain"
  "bench_table6_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
