# Empty dependencies file for bench_fig6_covariate_ablation.
# This may be replaced when dependencies are built.
