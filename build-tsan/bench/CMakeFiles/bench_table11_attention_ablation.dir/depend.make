# Empty dependencies file for bench_table11_attention_ablation.
# This may be replaced when dependencies are built.
