# Empty dependencies file for bench_table9_inputlen.
# This may be replaced when dependencies are built.
