file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_inputlen.dir/bench_table9_inputlen.cc.o"
  "CMakeFiles/bench_table9_inputlen.dir/bench_table9_inputlen.cc.o.d"
  "bench_table9_inputlen"
  "bench_table9_inputlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_inputlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
