file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_univariate.dir/bench_table5_univariate.cc.o"
  "CMakeFiles/bench_table5_univariate.dir/bench_table5_univariate.cc.o.d"
  "bench_table5_univariate"
  "bench_table5_univariate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_univariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
