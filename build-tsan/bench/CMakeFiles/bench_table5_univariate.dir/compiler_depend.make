# Empty compiler generated dependencies file for bench_table5_univariate.
# This may be replaced when dependencies are built.
