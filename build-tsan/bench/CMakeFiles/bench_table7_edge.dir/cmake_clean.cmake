file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_edge.dir/bench_table7_edge.cc.o"
  "CMakeFiles/bench_table7_edge.dir/bench_table7_edge.cc.o.d"
  "bench_table7_edge"
  "bench_table7_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
