file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_mapping.dir/bench_vector_mapping.cc.o"
  "CMakeFiles/bench_vector_mapping.dir/bench_vector_mapping.cc.o.d"
  "bench_vector_mapping"
  "bench_vector_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
