# Empty compiler generated dependencies file for bench_vector_mapping.
# This may be replaced when dependencies are built.
