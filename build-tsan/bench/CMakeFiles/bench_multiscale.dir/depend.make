# Empty dependencies file for bench_multiscale.
# This may be replaced when dependencies are built.
