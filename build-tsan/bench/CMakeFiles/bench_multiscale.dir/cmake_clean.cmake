file(REMOVE_RECURSE
  "CMakeFiles/bench_multiscale.dir/bench_multiscale.cc.o"
  "CMakeFiles/bench_multiscale.dir/bench_multiscale.cc.o.d"
  "bench_multiscale"
  "bench_multiscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
