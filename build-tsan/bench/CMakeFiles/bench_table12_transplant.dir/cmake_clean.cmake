file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_transplant.dir/bench_table12_transplant.cc.o"
  "CMakeFiles/bench_table12_transplant.dir/bench_table12_transplant.cc.o.d"
  "bench_table12_transplant"
  "bench_table12_transplant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_transplant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
