# Empty dependencies file for bench_fig7_logits.
# This may be replaced when dependencies are built.
