file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_logits.dir/bench_fig7_logits.cc.o"
  "CMakeFiles/bench_fig7_logits.dir/bench_fig7_logits.cc.o.d"
  "bench_fig7_logits"
  "bench_fig7_logits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_logits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
