# Empty compiler generated dependencies file for bench_table10_lightweight_ablation.
# This may be replaced when dependencies are built.
