file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_multivariate.dir/bench_table3_multivariate.cc.o"
  "CMakeFiles/bench_table3_multivariate.dir/bench_table3_multivariate.cc.o.d"
  "bench_table3_multivariate"
  "bench_table3_multivariate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_multivariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
