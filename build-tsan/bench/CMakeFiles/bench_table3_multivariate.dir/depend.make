# Empty dependencies file for bench_table3_multivariate.
# This may be replaced when dependencies are built.
