file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_patchsize.dir/bench_table8_patchsize.cc.o"
  "CMakeFiles/bench_table8_patchsize.dir/bench_table8_patchsize.cc.o.d"
  "bench_table8_patchsize"
  "bench_table8_patchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_patchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
