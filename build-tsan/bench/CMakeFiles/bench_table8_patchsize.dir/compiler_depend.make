# Empty compiler generated dependencies file for bench_table8_patchsize.
# This may be replaced when dependencies are built.
