// Edge-deployment scenario (Table VII of the paper): compare CPU-only
// inference latency of LiPFormer against a point-wise Transformer as the
// input length grows. LiPFormer's patching keeps latency nearly flat while
// the Transformer's O(T^2) attention blows up.
//
//   ./build/examples/edge_inference

#include <cstdio>
#include <vector>

#include "bench_util/profiler.h"
#include "core/lipformer.h"
#include "data/registry.h"
#include "models/transformer.h"

using namespace lipformer;  // NOLINT: example brevity

int main() {
  DatasetSpec spec = MakeDataset("etth1", /*scale=*/0.2);
  std::printf("%-12s %-14s %-14s\n", "input_len", "Transformer",
              "LiPFormer");

  for (int64_t input_len : std::vector<int64_t>{96, 192, 336}) {
    WindowDataset::Options options;
    options.input_len = input_len;
    options.pred_len = 96;
    options.train_ratio = spec.train_ratio;
    options.val_ratio = spec.val_ratio;
    options.test_ratio = spec.test_ratio;
    WindowDataset data(spec.series, options);

    ForecasterDims dims;
    dims.input_len = input_len;
    dims.pred_len = 96;
    dims.channels = data.channels();

    TransformerConfig tconfig;  // untrained weights: latency only
    VanillaTransformer transformer(dims, tconfig);

    LiPFormerConfig lconfig;
    lconfig.input_len = input_len;
    lconfig.pred_len = 96;
    lconfig.channels = dims.channels;
    lconfig.patch_len = input_len % 48 == 0 ? 48 : 24;
    LiPFormer lip(lconfig);

    ModelProfile pt = ProfileModel(&transformer, data, /*batch_size=*/8);
    ModelProfile pl = ProfileModel(&lip, data, /*batch_size=*/8);
    std::printf("%-12lld %-14s %-14s\n", static_cast<long long>(input_len),
                FormatSeconds(pt.seconds_per_inference).c_str(),
                FormatSeconds(pl.seconds_per_inference).c_str());
  }
  return 0;
}
