// Forecasting your own data: write a CSV, read it back (the loader accepts
// the public benchmark layout: a `date` column plus numeric channels),
// train LiPFormer, and export predictions next to the ground truth.
//
//   ./build/examples/custom_csv [input.csv]

#include <cstdio>
#include <string>

#include "core/lipformer.h"
#include "data/csv.h"
#include "data/registry.h"
#include "train/trainer.h"

using namespace lipformer;  // NOLINT: example brevity

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No file supplied: synthesize one so the example is self-contained.
    path = "/tmp/lipformer_example.csv";
    DatasetSpec spec = MakeDataset("weather", /*scale=*/0.05);
    Status st = WriteCsvTimeSeries(path, spec.series);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo data to %s\n", path.c_str());
  }

  Result<TimeSeries> loaded = ReadCsvTimeSeries(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  TimeSeries series = loaded.MoveValue();
  std::printf("loaded %lld steps x %lld channels\n",
              static_cast<long long>(series.steps()),
              static_cast<long long>(series.channels()));

  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  WindowDataset data(series, options);

  LiPFormerConfig config;
  config.input_len = options.input_len;
  config.pred_len = options.pred_len;
  config.channels = data.channels();
  config.patch_len = 24;
  config.hidden_dim = 32;
  LiPFormer model(config);

  TrainConfig train_config;
  train_config.epochs = 3;
  train_config.patience = 2;
  TrainResult result = TrainAndEvaluate(&model, data, train_config);
  std::printf("test MSE %.4f MAE %.4f (standardized scale)\n",
              result.test.mse, result.test.mae);

  // Forecast the last test window and export prediction vs truth in the
  // original units.
  const int64_t last = data.NumWindows(Split::kTest) - 1;
  Batch batch = data.MakeBatch(Split::kTest, {last});
  model.SetTraining(false);
  NoGradGuard no_grad;
  Tensor pred_scaled = model.Forward(batch).value().Reshape(
      {options.pred_len, data.channels()});
  Tensor truth_scaled =
      batch.y.Reshape({options.pred_len, data.channels()});

  TimeSeries out;
  out.values = Concat({data.scaler().InverseTransform(pred_scaled),
                       data.scaler().InverseTransform(truth_scaled)},
                      1);
  for (int64_t j = 0; j < data.channels(); ++j) {
    out.channel_names.push_back("pred_ch" + std::to_string(j));
  }
  for (int64_t j = 0; j < data.channels(); ++j) {
    out.channel_names.push_back("true_ch" + std::to_string(j));
  }
  out.timestamps.assign(series.timestamps.end() - options.pred_len,
                        series.timestamps.end());
  const std::string out_path = "/tmp/lipformer_forecast.csv";
  Status st = WriteCsvTimeSeries(out_path, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote forecast vs truth to %s\n", out_path.c_str());
  return 0;
}
