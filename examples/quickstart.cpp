// Quickstart: train LiPFormer on a synthetic hourly dataset and compare it
// with the DLinear baseline.
//
//   ./build/examples/quickstart
//
// Walks through the whole public API: dataset registry -> windowing ->
// model -> trainer -> metrics -> profiling.

#include <cstdio>

#include "bench_util/profiler.h"
#include "core/lipformer.h"
#include "data/registry.h"
#include "models/dlinear.h"
#include "train/trainer.h"

using namespace lipformer;  // NOLINT: example brevity

int main() {
  // 1. Data: an ETTh1-like synthetic series (7 channels, hourly). Swap in
  //    ReadCsvTimeSeries("etth1.csv") to run on the real data.
  DatasetSpec spec = MakeDataset("etth1", /*scale=*/0.2);
  std::printf("dataset %s: %lld steps x %lld channels\n", spec.name.c_str(),
              static_cast<long long>(spec.series.steps()),
              static_cast<long long>(spec.series.channels()));

  WindowDataset::Options window_options;
  window_options.input_len = 96;
  window_options.pred_len = 24;
  window_options.train_ratio = spec.train_ratio;
  window_options.val_ratio = spec.val_ratio;
  window_options.test_ratio = spec.test_ratio;
  WindowDataset data(spec.series, window_options);

  // 2. Model: LiPFormer backbone (no covariate encoder in the quickstart;
  //    see energy_price_covariates.cpp for weak-data enriching).
  LiPFormerConfig config;
  config.input_len = window_options.input_len;
  config.pred_len = window_options.pred_len;
  config.channels = data.channels();
  config.patch_len = 24;
  config.hidden_dim = 48;
  config.dropout = 0.1f;
  LiPFormer model(config);

  // 3. Train with the paper's protocol (AdamW + SmoothL1 + early stop).
  TrainConfig train_config;
  train_config.epochs = 5;
  train_config.patience = 2;
  train_config.batch_size = 32;
  train_config.verbose = true;
  TrainResult result = TrainAndEvaluate(&model, data, train_config);
  std::printf("LiPFormer  test MSE %.4f  MAE %.4f  (%.2fs/epoch)\n",
              result.test.mse, result.test.mae, result.seconds_per_epoch);

  // 4. Baseline for comparison.
  ForecasterDims dims;
  dims.input_len = config.input_len;
  dims.pred_len = config.pred_len;
  dims.channels = config.channels;
  DLinear dlinear(dims);
  TrainResult dl = TrainAndEvaluate(&dlinear, data, train_config);
  std::printf("DLinear    test MSE %.4f  MAE %.4f  (%.2fs/epoch)\n",
              dl.test.mse, dl.test.mae, dl.seconds_per_epoch);

  // 5. Efficiency profile (the paper's params / MACs / latency columns).
  ModelProfile profile = ProfileModel(&model, data);
  std::printf("LiPFormer  params %s  MACs %s  inference %s\n",
              FormatCount(static_cast<double>(profile.parameters)).c_str(),
              FormatCount(static_cast<double>(profile.macs)).c_str(),
              FormatSeconds(profile.seconds_per_inference).c_str());
  return 0;
}
