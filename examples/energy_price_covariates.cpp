// Weak-data enriching on a covariate-driven dataset (the Electri-Price
// scenario from the paper): contrastively pre-train the dual encoder on
// future-known covariates, freeze the Covariate Encoder, attach it to
// LiPFormer, and compare against the same backbone without weak labels.
//
//   ./build/examples/energy_price_covariates

#include <cstdio>

#include "core/lipformer.h"
#include "data/registry.h"
#include "train/trainer.h"

using namespace lipformer;  // NOLINT: example brevity

int main() {
  DatasetSpec spec = MakeDataset("electri_price", /*scale=*/0.1);
  const auto& schema = spec.series.covariate_schema;
  std::printf("dataset %s: %lld steps, %lld channels, %lld numeric + %lld "
              "categorical future covariates\n",
              spec.name.c_str(),
              static_cast<long long>(spec.series.steps()),
              static_cast<long long>(spec.series.channels()),
              static_cast<long long>(schema.num_numeric()),
              static_cast<long long>(schema.num_categorical()));

  WindowDataset::Options window_options;
  window_options.input_len = 96;
  window_options.pred_len = 24;
  window_options.train_ratio = spec.train_ratio;
  window_options.val_ratio = spec.val_ratio;
  window_options.test_ratio = spec.test_ratio;
  WindowDataset data(spec.series, window_options);

  LiPFormerConfig config;
  config.input_len = 96;
  config.pred_len = 24;
  config.channels = data.channels();
  config.patch_len = 24;
  config.hidden_dim = 48;
  TrainConfig train_config;
  train_config.epochs = 5;
  train_config.patience = 3;

  // --- Without weak-data enriching ---
  LiPFormer plain(config);
  TrainResult base = TrainAndEvaluate(&plain, data, train_config);
  std::printf("LiPFormer (no covariates):   MSE %.4f  MAE %.4f\n",
              base.test.mse, base.test.mae);

  // --- With the dual-encoder pipeline (Figure 1) ---
  LiPFormer enriched(config);
  Rng rng(7);
  DualEncoder dual(MakeCovariateConfig(data, config.pred_len,
                                       /*hidden_dim=*/32),
                   data.channels(), rng);
  PretrainConfig pretrain;
  pretrain.epochs = 4;
  pretrain.verbose = true;
  LiPFormerPipelineResult result =
      TrainLiPFormerPipeline(&enriched, &dual, data, pretrain, train_config);
  std::printf("contrastive pre-train loss: %.3f -> %.3f (%lld steps)\n",
              result.pretrain.first_epoch_loss, result.pretrain.final_loss,
              static_cast<long long>(result.pretrain.steps));
  std::printf("LiPFormer (with covariates): MSE %.4f  MAE %.4f\n",
              result.train.test.mse, result.train.test.mae);

  const float gain =
      100.0f * (base.test.mse - result.train.test.mse) / base.test.mse;
  std::printf("weak-data enriching changed test MSE by %+.1f%%\n", -gain);
  return 0;
}
