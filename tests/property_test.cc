// Property-style parameterized sweeps over configuration space: the base
// predictor and attentions must behave across patch lengths, hidden sizes
// and head counts, and core invariants (instance-norm identities,
// channel-independence weight sharing) must hold for random inputs.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/base_predictor.h"
#include "core/instance_norm.h"
#include "core/lipformer.h"
#include "data/synthetic.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

// (input_len, patch_len, hidden_dim, num_heads)
using BaseParams = std::tuple<int64_t, int64_t, int64_t, int64_t>;

class BasePredictorSweep : public ::testing::TestWithParam<BaseParams> {};

TEST_P(BasePredictorSweep, ForwardAndBackwardAcrossConfigs) {
  const auto [input_len, patch_len, hidden_dim, num_heads] = GetParam();
  BasePredictorConfig config;
  config.input_len = input_len;
  config.pred_len = 40;  // exercises the ragged-horizon slice for most pl
  config.patch_len = patch_len;
  config.hidden_dim = hidden_dim;
  config.num_heads = num_heads;
  config.dropout = 0.0f;
  Rng rng(1);
  BasePredictor base(config, rng);

  Variable x(RandomTensor({5, input_len}, 2), /*requires_grad=*/true);
  Variable y = base.Forward(x);
  ASSERT_EQ(y.shape(), (Shape{5, 40}));
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(x.has_grad());
  for (const Variable& p : base.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
  // Output must be finite.
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.value().data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BasePredictorSweep,
    ::testing::Values(BaseParams{48, 6, 8, 1}, BaseParams{48, 12, 16, 2},
                      BaseParams{48, 24, 16, 4}, BaseParams{96, 24, 32, 4},
                      BaseParams{96, 48, 64, 4}, BaseParams{96, 8, 24, 3},
                      BaseParams{144, 48, 32, 2}));

class PatchLenSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(PatchLenSweep, LiPFormerEndToEndAcrossPatchLens) {
  const int64_t pl = GetParam();
  LiPFormerConfig config;
  config.input_len = 96;
  config.pred_len = 24;
  config.channels = 3;
  config.patch_len = pl;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  LiPFormer model(config);

  SeasonalConfig gen;
  gen.steps = 500;
  gen.channels = 3;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  WindowDataset data(series, options);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1});
  Variable pred = model.Forward(batch);
  EXPECT_EQ(pred.shape(), (Shape{2, 24, 3}));
  MseLoss(pred, batch.y).Backward();
}

INSTANTIATE_TEST_SUITE_P(PatchLens, PatchLenSweep,
                         ::testing::Values(6, 12, 24, 48, 96));

TEST(ChannelIndependenceProperty, PermutingChannelsPermutesOutputs) {
  // LiPFormer shares weights across channels; permuting the input
  // channels must permute the outputs identically (no cross-channel
  // leakage in the backbone).
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 3;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  LiPFormer model(config);
  model.SetTraining(false);
  NoGradGuard ng;

  Batch batch;
  batch.size = 2;
  batch.x = RandomTensor({2, 48, 3}, 7);
  batch.y = Tensor::Zeros({2, 12, 3});
  Tensor out = model.Forward(batch).value().Clone();

  // Swap channels 0 and 2 of the input.
  Batch swapped = batch;
  swapped.x = IndexSelect(batch.x, 2, {2, 1, 0});
  Tensor out_swapped = model.Forward(swapped).value().Clone();
  Tensor expected = IndexSelect(out, 2, {2, 1, 0});
  EXPECT_TRUE(AllClose(out_swapped, expected, 1e-5f, 1e-4f));
}

TEST(InstanceNormProperty, ShiftInvarianceOfTheBackbone) {
  // Adding a constant offset to the history shifts the prediction by the
  // same constant (last-value normalization makes the backbone
  // shift-equivariant).
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  LiPFormer model(config);
  model.SetTraining(false);
  NoGradGuard ng;

  Batch batch;
  batch.size = 1;
  batch.x = RandomTensor({1, 48, 2}, 9);
  batch.y = Tensor::Zeros({1, 12, 2});
  Tensor base = model.Forward(batch).value().Clone();

  Batch shifted = batch;
  shifted.x = AddScalar(batch.x, 5.0f);
  Tensor out = model.Forward(shifted).value().Clone();
  EXPECT_TRUE(AllClose(out, AddScalar(base, 5.0f), 1e-4f, 1e-3f));
}

TEST(SeedProperty, SameSeedSameModelDifferentSeedDifferent) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  config.seed = 123;
  LiPFormer a(config);
  LiPFormer b(config);
  config.seed = 124;
  LiPFormer c(config);

  Batch batch;
  batch.size = 1;
  batch.x = RandomTensor({1, 48, 2}, 10);
  batch.y = Tensor::Zeros({1, 12, 2});
  a.SetTraining(false);
  b.SetTraining(false);
  c.SetTraining(false);
  NoGradGuard ng;
  EXPECT_TRUE(AllClose(a.Forward(batch).value(), b.Forward(batch).value(),
                       0.0f, 0.0f));
  EXPECT_FALSE(AllClose(a.Forward(batch).value(), c.Forward(batch).value(),
                        1e-4f, 1e-4f));
}

class HiddenDimSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(HiddenDimSweep, ParameterCountScalesWithHiddenDim) {
  auto count = [](int64_t hd) {
    BasePredictorConfig config;
    config.input_len = 48;
    config.pred_len = 24;
    config.patch_len = 12;
    config.hidden_dim = hd;
    config.num_heads = 1;
    Rng rng(1);
    return BasePredictor(config, rng).ParameterCount();
  };
  const int64_t hd = GetParam();
  // Inter-patch attention dominates: ~4 hd^2; doubling hd must grow the
  // count at least 2x (and far less than 8x).
  EXPECT_GT(count(2 * hd), 2 * count(hd));
  EXPECT_LT(count(2 * hd), 8 * count(hd));
}

INSTANTIATE_TEST_SUITE_P(Dims, HiddenDimSweep,
                         ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace lipformer
