#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/decomposition.h"
#include "models/dlinear.h"
#include "models/factory.h"
#include "tests/test_util.h"
#include "train/trainer.h"

namespace lipformer {
namespace {

// Small shared fixture: a seasonal dataset + windows every model can run.
class ModelSuite : public ::testing::TestWithParam<std::string> {
 protected:
  static WindowDataset MakeData() {
    SeasonalConfig config;
    config.steps = 700;
    config.channels = 3;
    config.seed = 77;
    TimeSeries series = GenerateSeasonal(config);
    WindowDataset::Options options;
    options.input_len = 48;
    options.pred_len = 24;
    return WindowDataset(series, options);
  }

  static std::unique_ptr<Forecaster> MakeModel(const std::string& name,
                                               const WindowDataset& data) {
    ForecasterDims dims;
    dims.input_len = 48;
    dims.pred_len = 24;
    dims.channels = 3;
    ModelOptions options;
    options.hidden_dim = 16;
    options.num_heads = 2;
    options.num_layers = 1;
    options.num_covariates = data.num_numeric_covariates();
    return CreateModel(name, dims, options);
  }
};

TEST_P(ModelSuite, ForwardShapeIsBatchHorizonChannels) {
  WindowDataset data = MakeData();
  auto model = MakeModel(GetParam(), data);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2, 3});
  Variable pred = model->Forward(batch);
  EXPECT_EQ(pred.shape(), (Shape{4, 24, 3}));
}

TEST_P(ModelSuite, HasTrainableParameters) {
  WindowDataset data = MakeData();
  auto model = MakeModel(GetParam(), data);
  EXPECT_GT(model->ParameterCount(), 0);
}

TEST_P(ModelSuite, GradientsReachEveryParameter) {
  WindowDataset data = MakeData();
  auto model = MakeModel(GetParam(), data);
  model->SetTraining(false);  // disable dropout so all paths are exercised
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1});
  Variable pred = model->Forward(batch);
  MseLoss(pred, batch.y).Backward();
  const auto params = model->Parameters();
  const auto names = model->ParameterNames();
  for (size_t i = 0; i < params.size(); ++i) {
    // Autoformer's q/k projections only feed the (intentionally detached)
    // FFT lag scores; gradients reach every other parameter.
    if (GetParam() == "autoformer" &&
        (names[i].find(".wq.") != std::string::npos ||
         names[i].find(".wk.") != std::string::npos)) {
      continue;
    }
    EXPECT_TRUE(params[i].has_grad())
        << GetParam() << " parameter " << names[i] << " got no gradient";
  }
}

TEST_P(ModelSuite, OneTrainingEpochReducesTrainingLoss) {
  WindowDataset data = MakeData();
  auto model = MakeModel(GetParam(), data);
  TrainConfig config;
  config.epochs = 1;
  config.patience = 1;
  config.batch_size = 16;
  config.max_batches_per_epoch = 20;
  config.max_eval_batches = 5;
  config.loss = LossKind::kMse;

  // Loss on a fixed batch before vs after an epoch of training.
  Batch probe = data.MakeBatch(Split::kTrain, {0, 1, 2, 3, 4, 5, 6, 7});
  model->SetTraining(false);
  const float before = [&] {
    NoGradGuard ng;
    return MseLoss(model->Forward(probe), probe.y).value().item();
  }();
  TrainAndEvaluate(model.get(), data, config);
  model->SetTraining(false);
  const float after = [&] {
    NoGradGuard ng;
    return MseLoss(model->Forward(probe), probe.y).value().item();
  }();
  EXPECT_LT(after, before) << GetParam();
}

TEST_P(ModelSuite, EvalIsDeterministic) {
  WindowDataset data = MakeData();
  auto model = MakeModel(GetParam(), data);
  model->SetTraining(false);
  NoGradGuard ng;
  Batch batch = data.MakeBatch(Split::kTest, {0, 1});
  Tensor a = model->Forward(batch).value().Clone();
  Tensor b = model->Forward(batch).value().Clone();
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelSuite,
    ::testing::Values("lipformer", "dlinear", "patchtst", "transformer",
                      "itransformer", "tsmixer", "timemixer", "tide",
                      "informer", "autoformer", "fgnn"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(FactoryTest, RegisteredNamesAllConstruct) {
  for (const std::string& name : RegisteredModelNames()) {
    ForecasterDims dims;
    dims.input_len = 48;
    dims.pred_len = 24;
    dims.channels = 2;
    ModelOptions options;
    options.hidden_dim = 8;
    options.num_heads = 2;
    options.num_layers = 1;
    options.num_covariates = 4;
    auto model = CreateModel(name, dims, options);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_FALSE(model->name().empty());
  }
}

TEST(DecompositionTest, MovingAverageRowsAreStochastic) {
  Tensor w = MovingAverageMatrix(10, 3);
  // Columns index outputs here (x @ W): each output's weights sum to 1.
  for (int64_t out = 0; out < 10; ++out) {
    float sum = 0.0f;
    for (int64_t src = 0; src < 10; ++src) sum += w.at({src, out});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(DecompositionTest, ConstantSignalHasZeroSeasonal) {
  Tensor w = MovingAverageMatrix(16, 5);
  Variable x(Tensor::Full({2, 16}, 3.0f));
  auto [seasonal, trend] = DecomposeSeries(x, w);
  for (int64_t i = 0; i < seasonal.numel(); ++i) {
    EXPECT_NEAR(seasonal.value().data()[i], 0.0f, 1e-5f);
    EXPECT_NEAR(trend.value().data()[i], 3.0f, 1e-5f);
  }
}

TEST(DecompositionTest, SmoothsHighFrequency) {
  // Alternating +1/-1 signal: a 2-point average kills most of it.
  Tensor w = MovingAverageMatrix(20, 4);
  Tensor sig(Shape{1, 20});
  for (int64_t t = 0; t < 20; ++t) sig.data()[t] = (t % 2 == 0) ? 1.f : -1.f;
  auto [seasonal, trend] = DecomposeSeries(Variable(sig), w);
  for (int64_t t = 2; t < 18; ++t) {
    EXPECT_NEAR(trend.value().at({0, t}), 0.0f, 1e-5f);
  }
}

TEST(DLinearConvergence, FitsLinearTrendExactly) {
  // DLinear can represent linear extrapolation; with enough steps on a
  // clean trend it should fit it well.
  const int64_t steps = 400;
  TimeSeries series;
  series.values = Tensor(Shape{steps, 1});
  for (int64_t t = 0; t < steps; ++t) {
    series.values.data()[t] = 0.01f * static_cast<float>(t);
  }
  series.timestamps = MakeTimestamps({2020, 1, 1, 0, 0}, 60, steps);
  series.numeric_covariates = Tensor(Shape{steps, 0});
  series.categorical_covariates = Tensor(Shape{steps, 0});

  WindowDataset::Options options;
  options.input_len = 24;
  options.pred_len = 8;
  WindowDataset data(series, options);
  ForecasterDims dims{24, 8, 1};
  DLinear model(dims, 3);
  TrainConfig config;
  config.epochs = 30;
  config.patience = 30;
  config.batch_size = 32;
  config.loss = LossKind::kMse;
  config.lr = 5e-3f;
  config.weight_decay = 0.0f;
  TrainResult result = TrainAndEvaluate(&model, data, config);
  EXPECT_LT(result.test.mse, 0.05f);
}

}  // namespace
}  // namespace lipformer
