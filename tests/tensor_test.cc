#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  Tensor o = Tensor::Ones({2, 3});
  Tensor f = Tensor::Full({2, 3}, 2.5f);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(z.data()[i], 0.0f);
    EXPECT_FLOAT_EQ(o.data()[i], 1.0f);
    EXPECT_FLOAT_EQ(f.data()[i], 2.5f);
  }
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_FLOAT_EQ(t.at({1, 0}), 4.0f);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 6.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  r.data()[0] = 42.0f;
  EXPECT_FLOAT_EQ(t.data()[0], 42.0f);
}

TEST(TensorTest, ReshapeInfersDim) {
  Tensor t = Tensor::Zeros({4, 6});
  EXPECT_EQ(t.Reshape({2, -1}).shape(), (Shape{2, 12}));
  EXPECT_EQ(t.Reshape({-1}).shape(), (Shape{24}));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Ones({3});
  Tensor c = t.Clone();
  c.data()[0] = 7.0f;
  EXPECT_FLOAT_EQ(t.data()[0], 1.0f);
}

TEST(TensorTest, UnsqueezeSqueeze) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.Unsqueeze(0).shape(), (Shape{1, 2, 3}));
  EXPECT_EQ(t.Unsqueeze(-1).shape(), (Shape{2, 3, 1}));
  EXPECT_EQ(t.Unsqueeze(1).Squeeze(1).shape(), (Shape{2, 3}));
}

TEST(TensorTest, ArangeAndRandomDeterminism) {
  Tensor a = Tensor::Arange(5);
  EXPECT_FLOAT_EQ(a.data()[4], 4.0f);
  Rng r1(5);
  Rng r2(5);
  Tensor x = Tensor::Randn({16}, r1);
  Tensor y = Tensor::Randn({16}, r2);
  EXPECT_TRUE(AllClose(x, y, 0.0f, 0.0f));
}

TEST(OpsTest, BroadcastShape) {
  EXPECT_EQ(BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShape({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(BroadcastShape({}, {5}), (Shape{5}));
}

TEST(OpsTest, AddBroadcastBias) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  Tensor y = Add(x, b);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(y.at({1, 2}), 36.0f);
}

TEST(OpsTest, ElementwiseBasics) {
  Tensor a({3}, {1, -2, 3});
  Tensor b({3}, {2, 2, 2});
  EXPECT_TRUE(AllClose(Sub(a, b), Tensor({3}, {-1, -4, 1})));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor({3}, {2, -4, 6})));
  EXPECT_TRUE(AllClose(Div(a, b), Tensor({3}, {0.5f, -1.0f, 1.5f})));
  EXPECT_TRUE(AllClose(Maximum(a, b), Tensor({3}, {2, 2, 3})));
  EXPECT_TRUE(AllClose(Relu(a), Tensor({3}, {1, 0, 3})));
  EXPECT_TRUE(AllClose(Abs(a), Tensor({3}, {1, 2, 3})));
}

TEST(OpsTest, MatMul2D) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(OpsTest, MatMulMatchesNaiveOnRandom) {
  Rng rng(9);
  const int64_t m = 5, k = 7, n = 4;
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.at({i, kk}) * b.at({kk, j});
      }
      EXPECT_NEAR(c.at({i, j}), acc, 1e-4f);
    }
  }
}

TEST(OpsTest, MatMulBatchBroadcast) {
  Rng rng(10);
  Tensor a = Tensor::Randn({2, 4, 3, 5}, rng);
  Tensor b = Tensor::Randn({5, 6}, rng);  // broadcast over batch dims
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 4, 3, 6}));
  // Check one batch element against 2-d matmul.
  Tensor a00 = Slice(Slice(a, 0, 0, 1), 1, 0, 1).Reshape({3, 5});
  Tensor c00 = Slice(Slice(c, 0, 0, 1), 1, 0, 1).Reshape({3, 6});
  EXPECT_TRUE(AllClose(MatMul(a00, b), c00, 1e-4f, 1e-4f));
}

TEST(OpsTest, MatMulVectorPromotion) {
  Tensor a({3}, {1, 2, 3});
  Tensor m({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor v = MatMul(a, m);
  EXPECT_EQ(v.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(v.data()[0], 4.0f);
  EXPECT_FLOAT_EQ(v.data()[1], 5.0f);
}

TEST(OpsTest, TransposeAndPermute) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = Transpose(t, 0, 1);
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(tt.at({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(tt.at({2, 0}), 3.0f);

  Rng rng(11);
  Tensor x = Tensor::Randn({2, 3, 4}, rng);
  Tensor p = Permute(x, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_FLOAT_EQ(p.at({1, 0, 2}), x.at({0, 2, 1}));
}

TEST(OpsTest, TransposeRoundTrip) {
  Rng rng(12);
  Tensor x = Tensor::Randn({3, 5, 7}, rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(x, 1, 2), 1, 2), x, 0.0f, 0.0f));
}

TEST(OpsTest, SliceAndConcatRoundTrip) {
  Rng rng(13);
  Tensor x = Tensor::Randn({4, 6}, rng);
  Tensor left = Slice(x, 1, 0, 2);
  Tensor right = Slice(x, 1, 2, 6);
  EXPECT_EQ(left.shape(), (Shape{4, 2}));
  Tensor joined = Concat({left, right}, 1);
  EXPECT_TRUE(AllClose(joined, x, 0.0f, 0.0f));
}

TEST(OpsTest, SliceNegativeIndices) {
  Tensor x({5}, {0, 1, 2, 3, 4});
  Tensor tail = Slice(x, 0, -2, 5);
  EXPECT_EQ(tail.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(tail.data()[0], 3.0f);
}

TEST(OpsTest, IndexSelect) {
  Tensor x({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor sel = IndexSelect(x, 0, {2, 0, 2});
  EXPECT_EQ(sel.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(sel.at({0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(sel.at({1, 1}), 2.0f);
  EXPECT_FLOAT_EQ(sel.at({2, 0}), 5.0f);
}

TEST(OpsTest, PadZeros) {
  Tensor x({2, 2}, {1, 2, 3, 4});
  Tensor p = Pad(x, 1, 1, 2);
  EXPECT_EQ(p.shape(), (Shape{2, 5}));
  EXPECT_FLOAT_EQ(p.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(p.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(p.at({1, 2}), 4.0f);
  EXPECT_FLOAT_EQ(p.at({1, 4}), 0.0f);
}

TEST(OpsTest, Reductions) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(x, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.data()[0], 5.0f);
  Tensor s1 = Sum(x, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.data()[1], 15.0f);
  EXPECT_FLOAT_EQ(MeanAll(x), 3.5f);
  auto [values, argmax] = Max(x, 1);
  EXPECT_FLOAT_EQ(values.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(argmax.data()[1], 2.0f);
}

TEST(OpsTest, ReduceToShape) {
  Rng rng(14);
  Tensor x = Tensor::Randn({4, 3}, rng);
  Tensor r = ReduceToShape(x, {3});
  EXPECT_TRUE(AllClose(r, Sum(x, 0), 1e-5f, 1e-5f));
  Tensor r2 = ReduceToShape(x, {4, 1});
  EXPECT_TRUE(AllClose(r2, Sum(x, 1, true), 1e-5f, 1e-5f));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(15);
  Tensor x = Tensor::Randn({5, 9}, rng, 3.0f);
  Tensor s = Softmax(x, 1);
  Tensor row_sums = Sum(s, 1);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(row_sums.data()[i], 1.0f, 1e-5f);
  }
  // Stability under large offsets.
  Tensor shifted = AddScalar(x, 1000.0f);
  EXPECT_TRUE(AllClose(Softmax(shifted, 1), s, 1e-4f, 1e-3f));
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(16);
  Tensor x = Tensor::Randn({3, 7}, rng, 2.0f);
  EXPECT_TRUE(AllClose(LogSoftmax(x, 1), Log(Softmax(x, 1)), 1e-4f, 1e-3f));
}

TEST(OpsTest, SoftmaxAlongMiddleDim) {
  Rng rng(17);
  Tensor x = Tensor::Randn({2, 4, 3}, rng);
  Tensor s = Softmax(x, 1);
  Tensor sums = Sum(s, 1);
  for (int64_t i = 0; i < sums.numel(); ++i) {
    EXPECT_NEAR(sums.data()[i], 1.0f, 1e-5f);
  }
}

TEST(OpsTest, MacCounting) {
  ResetMacCount();
  SetMacCountingEnabled(true);
  Rng rng(18);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor b = Tensor::Randn({2, 4, 5}, rng);
  (void)MatMul(a, b);
  SetMacCountingEnabled(false);
  EXPECT_EQ(MacCount(), 2 * 3 * 5 * 4);
  (void)MatMul(a, b);  // disabled: unchanged
  EXPECT_EQ(MacCount(), 2 * 3 * 5 * 4);
  ResetMacCount();
  EXPECT_EQ(MacCount(), 0);
}

TEST(OpsTest, GeluMatchesReference) {
  // Reference values from the tanh approximation.
  Tensor x({3}, {-1.0f, 0.0f, 2.0f});
  Tensor y = Gelu(x);
  EXPECT_NEAR(y.data()[0], -0.1588f, 1e-3f);
  EXPECT_NEAR(y.data()[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y.data()[2], 1.9546f, 1e-3f);
}

// Property sweep: elementwise ops agree with std:: on random data for many
// shapes.
class UnaryOpShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(UnaryOpShapeTest, ExpLogSqrtConsistency) {
  Rng rng(21);
  Tensor x = Tensor::RandUniform(GetParam(), rng, 0.1f, 4.0f);
  EXPECT_TRUE(AllClose(Exp(Log(x)), x, 1e-4f, 1e-3f));
  EXPECT_TRUE(AllClose(Mul(Sqrt(x), Sqrt(x)), x, 1e-4f, 1e-3f));
  EXPECT_TRUE(AllClose(Sigmoid(Neg(x)),
                       AddScalar(Neg(Sigmoid(x)), 1.0f), 1e-5f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, UnaryOpShapeTest,
                         ::testing::Values(Shape{1}, Shape{7}, Shape{3, 5},
                                           Shape{2, 3, 4},
                                           Shape{2, 1, 4, 3}));

}  // namespace
}  // namespace lipformer
