// Stress/fuzz tests of the autograd engine: randomly composed expression
// graphs are checked against finite differences, and structural edge cases
// (deep chains, wide fan-out, mixed broadcast batches) are exercised.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::CheckGradient;
using testing::RandomTensor;

TEST(AutogradStress, DeepChainOfSmoothOps) {
  CheckGradient(
      [](const Variable& x) {
        Variable h = x;
        for (int i = 0; i < 12; ++i) {
          h = Tanh(AddScalar(MulScalar(h, 0.9f), 0.05f));
        }
        return MeanAll(Mul(h, h));
      },
      RandomTensor({2, 3}, 1));
}

TEST(AutogradStress, WideFanOutSharedInput) {
  // One input feeding 8 independent branches summed together.
  CheckGradient(
      [](const Variable& x) {
        Variable total;
        for (int i = 0; i < 8; ++i) {
          Variable branch =
              MulScalar(Sigmoid(AddScalar(x, 0.1f * i)), 1.0f + i);
          total = i == 0 ? SumAll(branch) : Add(total, SumAll(branch));
        }
        return total;
      },
      RandomTensor({6}, 2));
}

TEST(AutogradStress, MixedBroadcastBatchMatMul) {
  Tensor a = RandomTensor({3, 1, 2, 4}, 100, 0.5f);
  Tensor c = RandomTensor({1, 2, 4, 2}, 101, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        // x [4, 2] enters a doubly-broadcast batched matmul chain.
        Variable left = MatMul(Variable(a), x);       // [3,1,2,2]
        Variable right = MatMul(Variable(a), Variable(c));  // [3,2,2,2]
        return SumAll(Mul(left, right));
      },
      RandomTensor({4, 2}, 3), 1e-2f, 3e-2f, 6e-2f);
}

TEST(AutogradStress, ConcatOfManyPieces) {
  CheckGradient(
      [](const Variable& x) {
        std::vector<Variable> pieces;
        for (int64_t i = 0; i < 4; ++i) {
          pieces.push_back(MulScalar(Slice(x, 1, i, i + 1), 1.0f + i));
        }
        Variable joined = Concat(pieces, 1);
        return SumAll(Mul(joined, joined));
      },
      RandomTensor({3, 4}, 4));
}

TEST(AutogradStress, SoftmaxOverLeadingDim) {
  CheckGradient(
      [](const Variable& x) {
        Tensor w = RandomTensor({4, 2, 3}, 102);
        return SumAll(MulConst(Softmax(x, 0), w));
      },
      RandomTensor({4, 2, 3}, 5));
}

TEST(AutogradStress, AttentionLikeComposite) {
  // Full scaled-dot-product attention built from primitives, gradient
  // checked w.r.t. the packed qkv input.
  Tensor wq = RandomTensor({4, 4}, 103, 0.5f);
  Tensor wk = RandomTensor({4, 4}, 104, 0.5f);
  Tensor wv = RandomTensor({4, 4}, 105, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        Variable q = MatMul(x, Variable(wq));
        Variable k = MatMul(x, Variable(wk));
        Variable v = MatMul(x, Variable(wv));
        Variable scores = MulScalar(MatMul(q, Transpose(k, -2, -1)), 0.5f);
        Variable ctx = MatMul(Softmax(scores, -1), v);
        return MeanAll(Mul(ctx, ctx));
      },
      RandomTensor({1, 5, 4}, 6), 1e-2f, 3e-2f, 8e-2f);
}

TEST(AutogradStress, LayerNormLikeComposite) {
  CheckGradient(
      [](const Variable& x) {
        Variable mu = Mean(x, -1, true);
        Variable centered = Sub(x, mu);
        Variable var = Mean(Mul(centered, centered), -1, true);
        Variable normed = Div(centered, Sqrt(AddScalar(var, 1e-3f)));
        Tensor w = RandomTensor({3, 6}, 106);
        return SumAll(MulConst(normed, w));
      },
      RandomTensor({3, 6}, 7));
}

TEST(AutogradStress, RepeatedBackwardOnFreshGraphsAccumulates) {
  Variable w(Tensor({2}, {1.0f, -2.0f}), true);
  for (int i = 0; i < 5; ++i) {
    SumAll(Mul(w, w)).Backward();
  }
  // d/dw sum(w^2) = 2w, accumulated 5 times.
  EXPECT_FLOAT_EQ(w.grad().data()[0], 10.0f);
  EXPECT_FLOAT_EQ(w.grad().data()[1], -20.0f);
}

TEST(AutogradStress, GraphWithDetachedBranch) {
  Variable x(Tensor({3}, {1.0f, 2.0f, 3.0f}), true);
  Variable live = Mul(x, x);
  Variable frozen = Mul(x, x).Detach();
  Variable loss = SumAll(Mul(live, Variable(frozen.value())));
  loss.Backward();
  // d/dx (x^2 * const(x^2)) = 2x * x^2.
  EXPECT_FLOAT_EQ(x.grad().data()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[1], 2.0f * 2.0f * 4.0f);
}

TEST(AutogradStress, LargeTensorSingleOpIsExact) {
  Rng rng(8);
  Tensor big = Tensor::Randn({64, 64}, rng);
  Variable x(big, true);
  SumAll(MulScalar(x, 3.0f)).Backward();
  for (int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_FLOAT_EQ(x.grad().data()[i], 3.0f);
  }
}

// Parameterized random-graph fuzz: a fixed recipe of ops whose random
// constants are derived from the seed; all must pass finite differences.
class RandomGraphFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphFuzz, MatchesFiniteDifferences) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int64_t rows = 2 + static_cast<int64_t>(rng.UniformInt(3));
  const int64_t cols = 2 + static_cast<int64_t>(rng.UniformInt(3));
  Tensor m = RandomTensor({cols, cols}, seed * 7 + 1, 0.4f);
  Tensor bias = RandomTensor({cols}, seed * 7 + 2, 0.4f);
  const float scale = static_cast<float>(rng.Uniform(0.5, 1.5));
  CheckGradient(
      [&](const Variable& x) {
        Variable h = Add(MatMul(x, Variable(m)), Variable(bias));
        h = Gelu(MulScalar(h, scale));
        Variable pooled = Mean(h, 0);
        Variable smax = Softmax(pooled, 0);
        return SumAll(Mul(smax, pooled));
      },
      RandomTensor({rows, cols}, seed * 7 + 3), 1e-2f, 3e-2f, 8e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace lipformer
