// Fused elementwise kernels must be drop-in replacements for the op
// chains they collapse: identical float operations in identical order, so
// forward values AND gradients are bitwise equal to the unfused chain.

#include <cstring>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(FusedOpsTest, ScaledMaskedSoftmaxMatchesUnfusedChain) {
  const Tensor x0 = RandomTensor({3, 4, 6, 6}, 11);
  Tensor mask = Tensor::Empty(Shape{6, 6});
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      mask.data()[i * 6 + j] = j > i ? -1e9f : 0.0f;
    }
  }
  const float scale = 0.40824829f;  // 1/sqrt(6)

  Variable xa(x0.Clone(), /*requires_grad=*/true);
  Variable unfused = Softmax(AddConst(MulScalar(xa, scale), mask), -1);
  SumAll(Mul(unfused, unfused)).Backward();

  Variable xb(x0.Clone(), /*requires_grad=*/true);
  Variable fused = ScaledMaskedSoftmax(xb, scale, &mask);
  SumAll(Mul(fused, fused)).Backward();

  EXPECT_TRUE(BitwiseEqual(unfused.value(), fused.value()));
  EXPECT_TRUE(BitwiseEqual(xa.grad(), xb.grad()));
}

TEST(FusedOpsTest, ScaledMaskedSoftmaxWithoutMaskMatchesUnfusedChain) {
  const Tensor x0 = RandomTensor({8, 5, 7}, 12);
  const float scale = 0.25f;

  Variable xa(x0.Clone(), /*requires_grad=*/true);
  Variable unfused = Softmax(MulScalar(xa, scale), -1);
  SumAll(Mul(unfused, unfused)).Backward();

  Variable xb(x0.Clone(), /*requires_grad=*/true);
  Variable fused = ScaledMaskedSoftmax(xb, scale, nullptr);
  SumAll(Mul(fused, fused)).Backward();

  EXPECT_TRUE(BitwiseEqual(unfused.value(), fused.value()));
  EXPECT_TRUE(BitwiseEqual(xa.grad(), xb.grad()));
}

class AddBiasActSweep : public ::testing::TestWithParam<FusedAct> {};

TEST_P(AddBiasActSweep, MatchesUnfusedAddThenActivation) {
  const FusedAct act = GetParam();
  const Tensor x0 = RandomTensor({6, 9, 13}, 21);
  const Tensor b0 = RandomTensor({13}, 22);

  auto unfused_chain = [&](const Variable& x, const Variable& b) {
    Variable z = Add(x, b);
    switch (act) {
      case FusedAct::kNone:
        return z;
      case FusedAct::kRelu:
        return Relu(z);
      case FusedAct::kGelu:
        return Gelu(z);
    }
    return z;
  };

  Variable xa(x0.Clone(), /*requires_grad=*/true);
  Variable ba(b0.Clone(), /*requires_grad=*/true);
  Variable unfused = unfused_chain(xa, ba);
  SumAll(Mul(unfused, unfused)).Backward();

  Variable xb(x0.Clone(), /*requires_grad=*/true);
  Variable bb(b0.Clone(), /*requires_grad=*/true);
  Variable fused = AddBiasAct(xb, bb, act);
  SumAll(Mul(fused, fused)).Backward();

  EXPECT_TRUE(BitwiseEqual(unfused.value(), fused.value()));
  EXPECT_TRUE(BitwiseEqual(xa.grad(), xb.grad()));
  EXPECT_TRUE(BitwiseEqual(ba.grad(), bb.grad()));
}

INSTANTIATE_TEST_SUITE_P(Acts, AddBiasActSweep,
                         ::testing::Values(FusedAct::kNone, FusedAct::kRelu,
                                           FusedAct::kGelu));

TEST(FusedOpsTest, SubAndAddBroadcastMidMatchUnfusedBroadcasts) {
  const Tensor x0 = RandomTensor({4, 10, 3}, 31);
  const Tensor s0 = RandomTensor({4, 1, 3}, 32);

  Variable xa(x0.Clone(), /*requires_grad=*/true);
  Variable sa(s0.Clone(), /*requires_grad=*/true);
  Variable unfused = Add(Sub(xa, sa), sa);
  SumAll(Mul(unfused, unfused)).Backward();

  Variable xb(x0.Clone(), /*requires_grad=*/true);
  Variable sb(s0.Clone(), /*requires_grad=*/true);
  Variable fused = AddBroadcastMid(SubBroadcastMid(xb, sb), sb);
  SumAll(Mul(fused, fused)).Backward();

  EXPECT_TRUE(BitwiseEqual(unfused.value(), fused.value()));
  EXPECT_TRUE(BitwiseEqual(xa.grad(), xb.grad()));
  EXPECT_TRUE(BitwiseEqual(sa.grad(), sb.grad()));
}

TEST(FusedOpsTest, LinearFusedForwardMatchesSeparateActivation) {
  Rng rng(41);
  Linear layer(12, 20, rng);
  const Tensor x0 = RandomTensor({5, 12}, 42);

  for (Activation act : {Activation::kNone, Activation::kRelu,
                         Activation::kGelu, Activation::kTanh,
                         Activation::kSigmoid}) {
    Variable x(x0.Clone());
    Tensor fused = layer.Forward(x, act).value().Clone();
    Tensor separate =
        ApplyActivation(layer.Forward(x), act).value().Clone();
    EXPECT_TRUE(BitwiseEqual(fused, separate))
        << "activation " << ActivationName(act);
  }
}

}  // namespace
}  // namespace lipformer
