#include "tensor/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

TEST(FftTest, RoundTrip) {
  Rng rng(1);
  std::vector<std::complex<float>> data(64);
  std::vector<std::complex<float>> orig(64);
  for (auto& v : data) v = std::complex<float>(rng.Normal(), rng.Normal());
  orig = data;
  Fft(data, false);
  Fft(data, true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-4f);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-4f);
  }
}

TEST(FftTest, PureToneHasSingleBin) {
  const int64_t n = 32;
  std::vector<std::complex<float>> data(n);
  for (int64_t t = 0; t < n; ++t) {
    data[t] = std::cos(2.0 * M_PI * 4.0 * t / n);
  }
  Fft(data, false);
  // Energy concentrated at bins 4 and n-4.
  for (int64_t f = 0; f < n; ++f) {
    const float mag = std::abs(data[f]);
    if (f == 4 || f == n - 4) {
      EXPECT_NEAR(mag, n / 2.0f, 1e-3f);
    } else {
      EXPECT_NEAR(mag, 0.0f, 1e-3f);
    }
  }
}

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(64), 64);
  EXPECT_EQ(NextPowerOfTwo(65), 128);
}

TEST(AutocorrelationTest, PeriodicSignalPeaksAtPeriod) {
  const int64_t n = 96;
  const int64_t period = 24;
  Tensor x(Shape{1, n});
  for (int64_t t = 0; t < n; ++t) {
    x.data()[t] = std::sin(2.0 * M_PI * t / period);
  }
  Tensor ac = Autocorrelation(x);
  // Lag 0 is max; lag == period close to it; lag == period/2 negative.
  const float at0 = ac.at({0, 0});
  const float at_period = ac.at({0, period});
  const float at_half = ac.at({0, period / 2});
  EXPECT_GT(at0, 0.0f);
  EXPECT_GT(at_period, 0.5f * at0);
  EXPECT_LT(at_half, 0.0f);
}

TEST(AutocorrelationTest, WhiteNoiseDecorrelates) {
  Rng rng(7);
  Tensor x = Tensor::Randn({1, 256}, rng);
  Tensor ac = Autocorrelation(x);
  const float at0 = ac.at({0, 0});
  for (int64_t tau = 5; tau < 20; ++tau) {
    EXPECT_LT(std::fabs(ac.at({0, tau})), 0.3f * at0);
  }
}

TEST(DftBasisTest, TruncatedSpectrumReconstructsBandlimited) {
  // A signal with only low-frequency content is exactly reconstructed from
  // the truncated DFT.
  const int64_t n = 48;
  const int64_t k = 6;
  Tensor x(Shape{1, n});
  for (int64_t t = 0; t < n; ++t) {
    x.data()[t] = 1.5f + std::cos(2.0 * M_PI * 2 * t / n) -
                  0.5f * std::sin(2.0 * M_PI * 5 * t / n);
  }
  Tensor dc, ds, ic, is;
  DftBasis(n, k, &dc, &ds);
  InverseDftBasis(n, k, &ic, &is);
  Tensor real = MatMul(x, dc);  // [1, k]
  Tensor imag = MatMul(x, ds);
  Tensor recon = Add(MatMul(real, ic), MatMul(imag, is));
  EXPECT_TRUE(AllClose(recon, x, 1e-3f, 1e-3f));
}

TEST(DftBasisTest, HighFrequencyIsFilteredOut) {
  const int64_t n = 32;
  const int64_t k = 4;  // keep only bins 0..3
  Tensor x(Shape{1, n});
  for (int64_t t = 0; t < n; ++t) {
    x.data()[t] = std::cos(2.0 * M_PI * 10 * t / n);  // bin 10 > k
  }
  Tensor dc, ds, ic, is;
  DftBasis(n, k, &dc, &ds);
  InverseDftBasis(n, k, &ic, &is);
  Tensor recon = Add(MatMul(MatMul(x, dc), ic), MatMul(MatMul(x, ds), is));
  for (int64_t t = 0; t < n; ++t) {
    EXPECT_NEAR(recon.data()[t], 0.0f, 1e-3f);
  }
}

}  // namespace
}  // namespace lipformer
