#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "train/losses.h"
#include "train/metrics.h"

namespace lipformer {
namespace {

using testing::CheckGradient;
using testing::RandomTensor;

TEST(LossTest, MseValue) {
  Variable pred(Tensor({2}, {1.0f, 3.0f}));
  Tensor target({2}, {0.0f, 1.0f});
  EXPECT_NEAR(MseLoss(pred, target).value().item(), (1.0f + 4.0f) / 2.0f,
              1e-6f);
}

TEST(LossTest, MaeValue) {
  Variable pred(Tensor({2}, {1.0f, -3.0f}));
  Tensor target({2}, {0.0f, 1.0f});
  EXPECT_NEAR(MaeLoss(pred, target).value().item(), (1.0f + 4.0f) / 2.0f,
              1e-6f);
}

TEST(LossTest, SmoothL1MatchesQuadraticBranch) {
  // |err| < beta -> err^2 / (2 beta).
  Variable pred(Tensor({1}, {0.5f}));
  Tensor target({1}, {0.0f});
  EXPECT_NEAR(SmoothL1Loss(pred, target, 1.0f).value().item(),
              0.5f * 0.25f, 1e-6f);
}

TEST(LossTest, SmoothL1MatchesLinearBranch) {
  // |err| >= beta -> |err| - beta/2.
  Variable pred(Tensor({1}, {3.0f}));
  Tensor target({1}, {0.0f});
  EXPECT_NEAR(SmoothL1Loss(pred, target, 1.0f).value().item(), 2.5f, 1e-6f);
}

TEST(LossTest, SmoothL1ContinuousAtSeam) {
  Tensor target({1}, {0.0f});
  const float beta = 0.7f;
  const float below =
      SmoothL1Loss(Variable(Tensor({1}, {beta - 1e-4f})), target, beta)
          .value()
          .item();
  const float above =
      SmoothL1Loss(Variable(Tensor({1}, {beta + 1e-4f})), target, beta)
          .value()
          .item();
  EXPECT_NEAR(below, above, 1e-3f);
}

// Property sweep over beta: SmoothL1 is bounded above by 0.5*MSE/beta and
// approaches MAE for large errors.
class SmoothL1BetaTest : public ::testing::TestWithParam<float> {};

TEST_P(SmoothL1BetaTest, GradCheckAndBranches) {
  const float beta = GetParam();
  Tensor target = RandomTensor({8}, 301);
  Tensor x0 = RandomTensor({8}, 302, 2.0f);
  // Keep |err| away from the beta seam for the finite-difference check.
  for (int64_t i = 0; i < x0.numel(); ++i) {
    const float err = std::fabs(x0.data()[i] - target.data()[i]);
    if (std::fabs(err - beta) < 0.05f) x0.data()[i] += 0.2f;
  }
  CheckGradient(
      [&](const Variable& p) { return SmoothL1Loss(p, target, beta); }, x0);
}

INSTANTIATE_TEST_SUITE_P(Betas, SmoothL1BetaTest,
                         ::testing::Values(0.25f, 0.5f, 1.0f, 2.0f));

TEST(LossTest, ForecastLossDispatch) {
  Variable pred(Tensor({2}, {1.0f, 2.0f}));
  Tensor target({2}, {0.0f, 0.0f});
  EXPECT_NEAR(ForecastLoss(LossKind::kMse, pred, target).value().item(),
              2.5f, 1e-6f);
  EXPECT_NEAR(ForecastLoss(LossKind::kMae, pred, target).value().item(),
              1.5f, 1e-6f);
}

TEST(ContrastiveLossTest, PerfectAlignmentBeatsRandom) {
  // Strongly diagonal logits -> low loss; uniform logits -> log(b).
  const int64_t b = 6;
  Tensor diag = Tensor::Zeros({b, b});
  for (int64_t i = 0; i < b; ++i) diag.at({i, i}) = 20.0f;
  const float aligned =
      SymmetricContrastiveLoss(Variable(diag)).value().item();
  const float uniform =
      SymmetricContrastiveLoss(Variable(Tensor::Zeros({b, b})))
          .value()
          .item();
  EXPECT_LT(aligned, 0.01f);
  EXPECT_NEAR(uniform, std::log(static_cast<float>(b)), 1e-4f);
  EXPECT_LT(aligned, uniform);
}

TEST(ContrastiveLossTest, GradCheck) {
  CheckGradient(
      [](const Variable& logits) {
        return SymmetricContrastiveLoss(logits);
      },
      RandomTensor({4, 4}, 303));
}

TEST(ContrastiveLossTest, SymmetricInRowsAndColumns) {
  // Transposing the logits leaves the symmetric loss unchanged.
  Tensor logits = RandomTensor({5, 5}, 304, 2.0f);
  const float a = SymmetricContrastiveLoss(Variable(logits)).value().item();
  const float b =
      SymmetricContrastiveLoss(Variable(Transpose(logits, 0, 1)))
          .value()
          .item();
  EXPECT_NEAR(a, b, 1e-5f);
}

TEST(MetricsTest, MatchesDirectComputation) {
  Tensor pred({2, 2}, {1, 2, 3, 4});
  Tensor target({2, 2}, {0, 2, 5, 4});
  EXPECT_NEAR(MseMetric(pred, target), (1.0f + 0 + 4 + 0) / 4.0f, 1e-6f);
  EXPECT_NEAR(MaeMetric(pred, target), (1.0f + 0 + 2 + 0) / 4.0f, 1e-6f);
}

TEST(MetricsTest, AccumulatorWeightsByElements) {
  MetricAccumulator acc;
  acc.Add(Tensor({1}, {1.0f}), Tensor({1}, {0.0f}));    // sq err 1
  acc.Add(Tensor({3}, {0, 0, 0}), Tensor({3}, {0, 0, 0}));
  EXPECT_NEAR(acc.mse(), 0.25f, 1e-6f);
  EXPECT_EQ(acc.count(), 4);
}

}  // namespace
}  // namespace lipformer
