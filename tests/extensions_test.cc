// Tests for the library extensions: extended metrics, multi-scale
// patching, Vector-Mapping variants and trainer checkpointing.

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "core/lipformer.h"
#include "core/multi_scale.h"
#include "data/synthetic.h"
#include "tests/test_util.h"
#include "train/extended_metrics.h"
#include "train/trainer.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

TEST(ExtendedMetricsTest, PerfectPredictionIsZeroErrorFullCorr) {
  Rng rng(1);
  Tensor y = Tensor::Randn({4, 8, 2}, rng);
  ExtendedMetrics m = ComputeExtendedMetrics(y, y);
  EXPECT_FLOAT_EQ(m.mse, 0.0f);
  EXPECT_FLOAT_EQ(m.mae, 0.0f);
  EXPECT_FLOAT_EQ(m.rse, 0.0f);
  EXPECT_NEAR(m.corr, 1.0f, 1e-5f);
  EXPECT_NEAR(m.smape, 0.0f, 1e-5f);
}

TEST(ExtendedMetricsTest, RseOfMeanPredictorIsOne) {
  Rng rng(2);
  Tensor y = Tensor::Randn({256}, rng);
  float mean = MeanAll(y);
  Tensor pred = Tensor::Full({256}, mean);
  EXPECT_NEAR(RseMetric(pred, y), 1.0f, 1e-3f);
}

TEST(ExtendedMetricsTest, CorrDetectsAntiCorrelation) {
  Rng rng(3);
  Tensor y = Tensor::Randn({128}, rng);
  EXPECT_NEAR(CorrMetric(Neg(y), y), -1.0f, 1e-5f);
  // Affine transforms keep correlation 1.
  EXPECT_NEAR(CorrMetric(AddScalar(MulScalar(y, 2.0f), 3.0f), y), 1.0f,
              1e-4f);
}

TEST(ExtendedMetricsTest, SmapeBoundedByTwo) {
  Tensor pred({3}, {1.0f, -1.0f, 5.0f});
  Tensor target({3}, {-1.0f, 1.0f, -5.0f});  // opposite signs -> max sMAPE
  EXPECT_NEAR(SmapeMetric(pred, target), 2.0f, 1e-5f);
}

TEST(ExtendedMetricsTest, MaseOfSeasonalNaiveIsOne) {
  // If the prediction errors equal the in-sample seasonal-naive errors,
  // MASE ~ 1. Construct: target random walk, prediction = target shifted
  // by the seasonality.
  Rng rng(4);
  const int64_t l = 64;
  Tensor target({1, l, 1});
  float acc = 0.0f;
  for (int64_t t = 0; t < l; ++t) {
    acc += static_cast<float>(rng.Normal());
    target.data()[t] = acc;
  }
  Tensor pred = target.Clone();
  // pred[t] = target[t-1] (same construction as the scale denominator).
  for (int64_t t = l - 1; t >= 1; --t) {
    pred.data()[t] = target.data()[t - 1];
  }
  pred.data()[0] = target.data()[0];
  const float mase = MaseMetric(pred, target, 1);
  EXPECT_NEAR(mase, 1.0f, 0.1f);
}

TEST(MultiScaleTest, ForwardShapeAndScaleWeightsSumToOne) {
  MultiScaleConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_lens = {6, 12, 24};
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  MultiScaleLiPFormer model(config);

  Batch batch;
  batch.size = 3;
  batch.x = RandomTensor({3, 48, 2}, 5);
  batch.y = Tensor::Zeros({3, 12, 2});
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{3, 12, 2}));

  float sum = 0.0f;
  for (float w : model.ScaleWeights()) sum += w;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(MultiScaleTest, GradientsReachEveryScaleAndTheLogits) {
  MultiScaleConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_lens = {12, 24};
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  MultiScaleLiPFormer model(config);
  Batch batch;
  batch.size = 2;
  batch.x = RandomTensor({2, 48, 2}, 6);
  batch.y = RandomTensor({2, 12, 2}, 7);
  MseLoss(model.Forward(batch), batch.y).Backward();
  for (const Variable& p : model.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(MultiScaleTest, RejectsNonDividingPatchLen) {
  MultiScaleConfig config;
  config.input_len = 48;
  config.patch_lens = {7};
  EXPECT_DEATH({ MultiScaleLiPFormer bad(config); }, "divide");
}

TEST(MultiScaleTest, TrainsOnSeasonalData) {
  SeasonalConfig gen;
  gen.steps = 800;
  gen.channels = 2;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);

  MultiScaleConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_lens = {12, 24};
  config.hidden_dim = 16;
  MultiScaleLiPFormer model(config);
  TrainConfig train;
  train.epochs = 2;
  train.patience = 2;
  train.max_batches_per_epoch = 20;
  train.max_eval_batches = 5;
  TrainResult result = TrainAndEvaluate(&model, data, train);
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_TRUE(std::isfinite(result.test.mse));
}

class VectorMappingSweep
    : public ::testing::TestWithParam<VectorMappingKind> {};

TEST_P(VectorMappingSweep, ForwardShapeAndTrainableMapping) {
  CovariateDrivenConfig gen;
  gen.steps = 600;
  gen.channels = 2;
  TimeSeries series = GenerateCovariateDriven(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);

  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  config.vector_mapping = GetParam();
  LiPFormer model(config);

  Rng rng(8);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  dual.SetRequiresGrad(false);
  model.AttachCovariateEncoder(dual.covariate_encoder());

  Batch batch = data.MakeBatch(Split::kTrain, {0, 1});
  Variable pred = model.Forward(batch);
  EXPECT_EQ(pred.shape(), (Shape{2, 12, 2}));
  MseLoss(pred, batch.y).Backward();
  // Every mapping variant has at least the channel gain learning.
  bool gain_grad = false;
  const auto params = model.Parameters();
  const auto names = model.ParameterNames();
  for (size_t i = 0; i < params.size(); ++i) {
    if (names[i] == "channel_gain" && params[i].has_grad()) {
      gain_grad = true;
    }
  }
  EXPECT_TRUE(gain_grad);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, VectorMappingSweep,
    ::testing::Values(VectorMappingKind::kSharedLinearWithGain,
                      VectorMappingKind::kPerChannelLinear,
                      VectorMappingKind::kGainOnly));

TEST(VectorMappingTest, PerChannelLinearIsHeavier) {
  auto params_for = [](VectorMappingKind kind) {
    CovariateDrivenConfig gen;
    gen.steps = 500;
    gen.channels = 3;
    TimeSeries series = GenerateCovariateDriven(gen);
    WindowDataset::Options options;
    options.input_len = 48;
    options.pred_len = 12;
    WindowDataset data(series, options);
    LiPFormerConfig config;
    config.input_len = 48;
    config.pred_len = 12;
    config.channels = 3;
    config.patch_len = 12;
    config.hidden_dim = 16;
    config.vector_mapping = kind;
    auto model = std::make_unique<LiPFormer>(config);
    Rng rng(9);
    DualEncoder dual(MakeCovariateConfig(data, 12, 8), 3, rng);
    model->AttachCovariateEncoder(dual.covariate_encoder());
    return model->ParameterCount();
  };
  const int64_t gain_only = params_for(VectorMappingKind::kGainOnly);
  const int64_t shared = params_for(VectorMappingKind::kSharedLinearWithGain);
  const int64_t per_channel =
      params_for(VectorMappingKind::kPerChannelLinear);
  EXPECT_LT(gain_only, shared);
  EXPECT_LT(shared, per_channel);
}

TEST(CheckpointTest, BestValidationWeightsWrittenDuringTraining) {
  SeasonalConfig gen;
  gen.steps = 700;
  gen.channels = 2;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);

  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  LiPFormer model(config);

  TrainConfig train;
  train.epochs = 2;
  train.patience = 2;
  train.max_batches_per_epoch = 10;
  train.max_eval_batches = 4;
  train.checkpoint_path = ::testing::TempDir() + "/ckpt.bin";
  TrainAndEvaluate(&model, data, train);

  // The checkpoint must exist and reproduce the restored best weights.
  LiPFormer loaded(config);
  ASSERT_TRUE(loaded.LoadParameters(train.checkpoint_path).ok());
  model.SetTraining(false);
  loaded.SetTraining(false);
  NoGradGuard ng;
  Batch batch = data.MakeBatch(Split::kTest, {0});
  EXPECT_TRUE(AllClose(model.Forward(batch).value(),
                       loaded.Forward(batch).value(), 1e-6f, 1e-6f));
}

}  // namespace
}  // namespace lipformer
