// Edge cases and contract-violation death tests across the stack: shape
// mismatches abort with a clear message, degenerate sizes work, and the
// data pipeline rejects impossible configurations.

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "nn/linear.h"
#include "tests/test_util.h"
#include "train/losses.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH((void)t.Reshape({4, 2}), "reshape");
}

TEST(TensorDeathTest, OutOfBoundsAtAborts) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH((void)t.at({2, 0}), "CHECK");
}

TEST(TensorDeathTest, IncompatibleBroadcastAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH((void)Add(a, b), "broadcast");
}

TEST(TensorDeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH((void)MatMul(a, b), "matmul");
}

TEST(TensorDeathTest, ItemOnNonScalarAborts) {
  Tensor t = Tensor::Zeros({2});
  EXPECT_DEATH((void)t.item(), "item");
}

TEST(TensorEdge, SizeOneDimensionsBroadcastEverywhere) {
  Tensor a = Tensor::Ones({1, 1, 1});
  Tensor b = Tensor::Full({2, 3, 4}, 2.0f);
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 4}));
  EXPECT_FLOAT_EQ(c.data()[0], 2.0f);
}

TEST(TensorEdge, SingleElementSoftmaxIsOne) {
  Tensor t({1, 1}, {5.0f});
  EXPECT_FLOAT_EQ(Softmax(t, 1).item(), 1.0f);
}

TEST(TensorEdge, SliceCanBeEmpty) {
  Tensor t = Tensor::Ones({3, 4});
  Tensor empty = Slice(t, 1, 2, 2);
  EXPECT_EQ(empty.shape(), (Shape{3, 0}));
  EXPECT_EQ(empty.numel(), 0);
}

TEST(TensorEdge, ConcatWithEmptyPiece) {
  Tensor a = Tensor::Ones({2, 2});
  Tensor empty(Shape{2, 0});
  Tensor out = Concat({a, empty}, 1);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
}

TEST(AutogradEdge, BackwardOnNonScalarAborts) {
  Variable x(Tensor::Ones({2}), true);
  Variable y = Mul(x, x);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(AutogradEdge, BackwardWithoutGradAborts) {
  Variable x(Tensor::Ones({1}), false);
  Variable y = Mul(x, x);
  EXPECT_DEATH(y.Backward(), "non-grad");
}

TEST(LinearDeathTest, WrongInputWidthAborts) {
  Rng rng(1);
  Linear lin(4, 2, rng);
  EXPECT_DEATH((void)lin.Forward(Variable(Tensor::Zeros({2, 5}))),
               "last dim");
}

TEST(LossDeathTest, ShapeMismatchAborts) {
  Variable pred(Tensor::Zeros({2, 3}));
  Tensor target = Tensor::Zeros({3, 2});
  EXPECT_DEATH((void)MseLoss(pred, target), "CHECK");
}

TEST(WindowDatasetDeathTest, SeriesTooShortAborts) {
  SeasonalConfig gen;
  gen.steps = 60;
  gen.channels = 1;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 48;  // train region cannot hold one window
  EXPECT_DEATH({ WindowDataset bad(series, options); }, "too short");
}

TEST(WindowDatasetEdge, MinimalViableSeries) {
  SeasonalConfig gen;
  gen.steps = 200;
  gen.channels = 1;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 24;
  options.pred_len = 8;
  WindowDataset data(series, options);
  EXPECT_GT(data.NumWindows(Split::kTrain), 0);
  EXPECT_GT(data.NumWindows(Split::kTest), 0);
  Batch batch = data.MakeBatch(Split::kTest, {0});
  EXPECT_EQ(batch.x.shape(), (Shape{1, 24, 1}));
}

TEST(WindowDatasetDeathTest, OutOfRangeWindowIdAborts) {
  SeasonalConfig gen;
  gen.steps = 300;
  gen.channels = 1;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 24;
  options.pred_len = 8;
  WindowDataset data(series, options);
  const int64_t n = data.NumWindows(Split::kTest);
  EXPECT_DEATH((void)data.MakeBatch(Split::kTest, {n}), "CHECK");
}

TEST(RngEdge, UniformIntCoversRangeWithoutBias) {
  Rng rng(99);
  std::vector<int64_t> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    counts[rng.UniformInt(5)] += 1;
  }
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 500.0);
  }
}

TEST(RngEdge, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace lipformer
