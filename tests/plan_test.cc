#include "serve/plan.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/arena.h"
#include "serve/batcher.h"
#include "serve/quantize.h"
#include "serve/session.h"
#include "tests/test_util.h"

// AOT inference plans (serve/plan.h): the contract under test is bitwise
// identity with the module path — same bundle, same input, byte-equal
// output — for fp32 and quantized bundles, serial and batched, plus
// clean fallback when a model's forward cannot be compiled.

namespace lipformer {
namespace {

using testing::RandomTensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FreshTempPath(const std::string& name) {
  const std::string path = TempPath(name);
  std::remove(path.c_str());
  return path;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

serve::SessionOptions NoPlan() {
  serve::SessionOptions o;
  o.use_plan = false;
  return o;
}

class PlanTest : public ::testing::Test {
 protected:
  // Same small-but-real LiPFormer bundle the session tests use:
  // 24 -> 6 over 2 channels, hidden 8 (below the quantizer floor).
  void SetUp() override {
    dims_.input_len = 24;
    dims_.pred_len = 6;
    dims_.channels = 2;
    options_.hidden_dim = 8;
    options_.num_heads = 2;
    options_.patch_len = 8;
    options_.seed = 11;
    std::unique_ptr<Forecaster> model =
        CreateModel("lipformer", dims_, options_);
    Rng rng(12);
    scaler_.Fit(Tensor::Randn({64, dims_.channels}, rng));
    path_ = TempPath("plan_bundle.ckpt");
    ASSERT_TRUE(serve::SaveModelBundle(path_, "lipformer", options_, *model,
                                       scaler_)
                    .ok());
  }

  // Bundle whose attention projections (hidden 16) clear the quantizer's
  // shape floor, so the int8 plan path actually has quantized Linears.
  std::string QuantizedBundlePath() {
    ModelOptions options = options_;
    options.hidden_dim = 16;
    std::unique_ptr<Forecaster> model =
        CreateModel("lipformer", dims_, options);
    const std::string fp32 = TempPath("plan_bundle_h16.ckpt");
    EXPECT_TRUE(serve::SaveModelBundle(fp32, "lipformer", options, *model,
                                       scaler_)
                    .ok());
    const std::string int8 = FreshTempPath("plan_bundle_h16_int8.ckpt");
    EXPECT_TRUE(serve::QuantizeBundleFile(fp32, int8, /*force=*/false).ok());
    return int8;
  }

  // Predictions from a plan-enabled session must be bitwise identical to
  // a module-only session opened from the same bundle, at every batch
  // size, and must actually have been served by a plan.
  void ExpectPlanMatchesModule(const std::string& bundle,
                               const std::vector<int64_t>& batch_sizes) {
    auto planned = serve::InferenceSession::Open(bundle);
    auto module = serve::InferenceSession::Open(bundle, NoPlan());
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    ASSERT_TRUE(module.ok()) << module.status().ToString();
    ASSERT_TRUE(planned.value()->plan_enabled());
    ASSERT_FALSE(module.value()->plan_enabled());

    const int64_t in = planned.value()->input_len();
    const int64_t ch = planned.value()->channels();
    int64_t requests = 0;
    for (size_t i = 0; i < batch_sizes.size(); ++i) {
      const int64_t b = batch_sizes[i];
      const Tensor histories =
          RandomTensor({b, in, ch}, 900 + static_cast<uint64_t>(i));
      auto got = planned.value()->PredictBatch(histories);
      auto want = module.value()->PredictBatch(histories);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_TRUE(BitwiseEqual(got.value(), want.value()))
          << "batch size " << b;
      ++requests;
    }

    const serve::SessionPlanStats stats = planned.value()->plan_stats();
    EXPECT_EQ(stats.compile_error, "");
    EXPECT_EQ(stats.plan_requests, requests);
    EXPECT_EQ(stats.module_requests, 0);
    EXPECT_EQ(stats.plans_compiled,
              static_cast<int64_t>(batch_sizes.size()) +
                  (std::count(batch_sizes.begin(), batch_sizes.end(), 1)
                       ? 0
                       : 1));  // batch-1 plan precompiled at Open
  }

  ForecasterDims dims_;
  ModelOptions options_;
  StandardScaler scaler_;
  std::string path_;
};

TEST_F(PlanTest, CompilesForLipformerBundleAtOpen) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serve::InferenceSession* session = opened.value().get();

  ASSERT_TRUE(session->plan_enabled());
  const serve::SessionPlanStats stats = session->plan_stats();
  // Open precompiles the batch-1 plan; a compile failure would be a
  // silent fallback every other test could miss, so pin it here.
  EXPECT_EQ(stats.compile_error, "") << stats.compile_error;
  EXPECT_EQ(stats.plans_compiled, 1);
  EXPECT_EQ(stats.plan.batch_size, 1);
  EXPECT_GT(stats.plan.num_ops, 0);
  EXPECT_GE(stats.plan.num_traced, stats.plan.num_ops);
  EXPECT_GT(stats.plan.num_elided, 0);  // head split/merge, full slices
  // num_heads > 1 makes the attention head-split permutes non-identity;
  // all of them feed GEMM operands and must fold into the pack phase.
  EXPECT_GT(stats.plan.fused_gemm_operands, 0);
  EXPECT_GT(stats.plan.arena_bytes, 0);
  EXPECT_GT(stats.plan.num_constants, 0);
  EXPECT_GT(stats.plan.prepacked_gemms, 0);

  std::shared_ptr<const serve::InferencePlan> plan = session->PlanForBatch(1);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->input_shape(), (Shape{1, 24, 2}));
  EXPECT_EQ(plan->output_shape(), (Shape{1, 6, 2}));
}

TEST_F(PlanTest, Fp32BitwiseMatchesModulePath) {
  ExpectPlanMatchesModule(path_, {1, 3, 16});
}

TEST_F(PlanTest, QuantizedBitwiseMatchesModulePath) {
  const std::string bundle = QuantizedBundlePath();
  auto opened = serve::InferenceSession::Open(bundle);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened.value()->quantized());
  ExpectPlanMatchesModule(bundle, {1, 3, 16});
}

TEST_F(PlanTest, OddShapesBitwiseMatchModulePath) {
  // Non-power-of-two everything: input 35 with patch 7, pred 9, three
  // channels — exercises remainder slices and unaligned arena values.
  ForecasterDims dims;
  dims.input_len = 35;
  dims.pred_len = 9;
  dims.channels = 3;
  ModelOptions options;
  options.hidden_dim = 12;
  options.num_heads = 2;
  options.patch_len = 7;
  options.seed = 29;
  std::unique_ptr<Forecaster> model = CreateModel("lipformer", dims, options);
  StandardScaler scaler;
  Rng rng(30);
  scaler.Fit(Tensor::Randn({48, dims.channels}, rng));
  const std::string path = TempPath("plan_bundle_odd.ckpt");
  ASSERT_TRUE(
      serve::SaveModelBundle(path, "lipformer", options, *model, scaler)
          .ok());
  ExpectPlanMatchesModule(path, {1, 3, 5});
}

TEST_F(PlanTest, ManyThreadsShareOnePlan) {
  // The plan is immutable and runs without the module mutex; hammer one
  // session from many threads and require every result bitwise-correct.
  // check_sanitize.sh runs this under TSan.
  auto planned = serve::InferenceSession::Open(path_);
  auto module = serve::InferenceSession::Open(path_, NoPlan());
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(module.ok());
  serve::InferenceSession* session = planned.value().get();

  const int kThreads = 8;
  const int kPerThread = 16;
  std::vector<Tensor> windows;
  std::vector<Tensor> expected;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    windows.push_back(RandomTensor({24, 2}, 500 + i));
    auto want = module.value()->Predict(windows.back());
    ASSERT_TRUE(want.ok());
    expected.push_back(want.value());
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int idx = t * kPerThread + i;
        auto got = session->Predict(windows[idx]);
        if (!got.ok() || !BitwiseEqual(got.value(), expected[idx])) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }

  const serve::SessionPlanStats stats = session->plan_stats();
  EXPECT_EQ(stats.plan_requests, kThreads * kPerThread);
  EXPECT_EQ(stats.module_requests, 0);
  std::shared_ptr<const serve::InferencePlan> plan = session->PlanForBatch(1);
  ASSERT_NE(plan, nullptr);
  // +3: Compile ran the program twice for bitwise validation, and Open's
  // timed admission-control probe executed it once more.
  EXPECT_EQ(plan->executions(), kThreads * kPerThread + 3);
}

TEST_F(PlanTest, BatcherServesConcurrentRequestsFromOnePlan) {
  auto planned = serve::InferenceSession::Open(path_);
  auto module = serve::InferenceSession::Open(path_, NoPlan());
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(module.ok());

  const int kClients = 6;
  const int kPerClient = 4;
  std::vector<Tensor> windows;
  std::vector<Tensor> expected;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    windows.push_back(RandomTensor({24, 2}, 700 + i));
    auto want = module.value()->Predict(windows[i]);
    ASSERT_TRUE(want.ok());
    expected.push_back(want.value());
  }

  serve::BatcherOptions opts;
  opts.max_batch_size = 4;
  opts.max_delay = std::chrono::microseconds(200);
  serve::Batcher batcher(planned.value().get(), opts);
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  for (int cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      for (int i = 0; i < kPerClient; ++i) {
        const int idx = cl * kPerClient + i;
        auto got = batcher.Submit(windows[idx]).get();
        if (!got.ok() || !BitwiseEqual(got.value(), expected[idx])) {
          ++mismatches[cl];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int cl = 0; cl < kClients; ++cl) {
    EXPECT_EQ(mismatches[cl], 0) << "client " << cl;
  }

  // Coalesced batches hit plans for their exact sizes; nothing fell
  // back to the module path.
  const serve::SessionPlanStats stats = planned.value()->plan_stats();
  EXPECT_GT(stats.plan_requests, 0);
  EXPECT_EQ(stats.module_requests, 0);
}

TEST_F(PlanTest, UncompilableModelFallsBackToModulePath) {
  // Autoformer selects top autocorrelation lags with IndexSelect —
  // data-dependent control flow poisons the trace, compilation fails, and
  // the session must serve correct results from the module path.
  std::unique_ptr<Forecaster> model =
      CreateModel("autoformer", dims_, options_);
  const std::string path = TempPath("plan_bundle_autoformer.ckpt");
  ASSERT_TRUE(
      serve::SaveModelBundle(path, "autoformer", options_, *model, scaler_)
          .ok());

  auto planned = serve::InferenceSession::Open(path);
  auto module = serve::InferenceSession::Open(path, NoPlan());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_TRUE(module.ok());

  EXPECT_TRUE(planned.value()->plan_enabled());
  EXPECT_EQ(planned.value()->PlanForBatch(1), nullptr);
  const Tensor histories = RandomTensor({2, 24, 2}, 41);
  auto got = planned.value()->PredictBatch(histories);
  auto want = module.value()->PredictBatch(histories);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(BitwiseEqual(got.value(), want.value()));

  const serve::SessionPlanStats stats = planned.value()->plan_stats();
  EXPECT_EQ(stats.plans_compiled, 0);
  EXPECT_NE(stats.compile_error, "");
  EXPECT_NE(stats.compile_error.find("data-dependent"), std::string::npos)
      << stats.compile_error;
  EXPECT_EQ(stats.plan_requests, 0);
  EXPECT_EQ(stats.module_requests, 1);
}

TEST_F(PlanTest, SessionOptionDisablesPlanPath) {
  auto opened = serve::InferenceSession::Open(path_, NoPlan());
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  EXPECT_FALSE(session->plan_enabled());
  EXPECT_EQ(session->PlanForBatch(1), nullptr);
  auto pred = session->Predict(RandomTensor({24, 2}, 55));
  ASSERT_TRUE(pred.ok());

  const serve::SessionPlanStats stats = session->plan_stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.plans_compiled, 0);
  EXPECT_EQ(stats.plan_requests, 0);
  EXPECT_EQ(stats.module_requests, 1);
}

TEST_F(PlanTest, ProfilingReportsPerOpTimings) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  // Off by default: no timings even after traffic.
  ASSERT_TRUE(session->Predict(RandomTensor({24, 2}, 60)).ok());
  EXPECT_TRUE(session->plan_stats().timings.empty());

  session->SetPlanProfiling(true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session->Predict(RandomTensor({24, 2}, 61 + i)).ok());
  }
  const serve::SessionPlanStats stats = session->plan_stats();
  ASSERT_FALSE(stats.timings.empty());
  int64_t calls = 0;
  for (const serve::PlanOpTiming& t : stats.timings) {
    EXPECT_NE(t.name, nullptr);
    EXPECT_GT(t.calls, 0);
    calls += t.calls;
  }
  // Three profiled executions of a fixed program.
  EXPECT_EQ(calls, 3 * stats.plan.num_ops);
}

// The fusion pass must actually fire on the default LiPFormer config:
// every Linear is bias+GEMM (epilogue fusion) and the de/normalization
// around the model is an elementwise run (chain fusion). If these drop
// to zero the pass has silently stopped matching and every fusion
// benchmark measures nothing.
TEST_F(PlanTest, FusionFiresOnDefaultConfig) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const serve::SessionPlanStats stats = opened.value()->plan_stats();
  EXPECT_EQ(stats.compile_error, "");
  EXPECT_GE(stats.plan.fused_epilogues, 1);
  EXPECT_GE(stats.plan.fused_chains, 1);
  // A chain absorbs at least two elementwise ops by construction.
  EXPECT_GE(stats.plan.fused_chain_ops, 2 * stats.plan.fused_chains);
  // Each absorbed epilogue op and each chained op beyond the first
  // removes one whole read-modify-write pass. (>= because one GEMM can
  // absorb both a bias and a residual and count once.)
  EXPECT_GE(stats.plan.passes_eliminated,
            stats.plan.fused_epilogues +
                (stats.plan.fused_chain_ops - stats.plan.fused_chains));
  EXPECT_GE(stats.plan.arena_saved_bytes, 0);
}

// LIPF_NO_FUSE=1 must disable the pass (counters at zero) and the
// unfused plan must still serve bitwise-identical predictions — it is
// the baseline side of the bench_serving fusion gate.
TEST_F(PlanTest, NoFuseEnvDisablesFusionAndStaysBitwise) {
  ASSERT_EQ(setenv("LIPF_NO_FUSE", "1", 1), 0);
  auto unfused = serve::InferenceSession::Open(path_);
  unsetenv("LIPF_NO_FUSE");
  auto module = serve::InferenceSession::Open(path_, NoPlan());
  ASSERT_TRUE(unfused.ok()) << unfused.status().ToString();
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ASSERT_TRUE(unfused.value()->plan_enabled());

  const serve::SessionPlanStats stats = unfused.value()->plan_stats();
  EXPECT_EQ(stats.compile_error, "");
  EXPECT_EQ(stats.plan.fused_epilogues, 0);
  EXPECT_EQ(stats.plan.fused_chains, 0);
  EXPECT_EQ(stats.plan.fused_chain_ops, 0);
  EXPECT_EQ(stats.plan.passes_eliminated, 0);

  const Tensor histories = RandomTensor({3, 24, 2}, 77);
  auto got = unfused.value()->PredictBatch(histories);
  auto want = module.value()->PredictBatch(histories);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_TRUE(BitwiseEqual(got.value(), want.value()));
}

// ---------------------------------------------------------------------
// ArenaLayout (serve/arena.h): the liveness allocator behind plan
// arenas. The invariants: offsets are 16-float (64-byte) aligned, two
// simultaneously-live allocations never overlap, freed space is reused
// (same-size churn must not grow the slab), and adjacent holes coalesce
// so a large value fits where several small ones died.

// Tracks live [off, off+len) intervals and fails on any overlap — the
// one bug class an arena allocator must never have.
class ArenaChecker {
 public:
  explicit ArenaChecker(serve::ArenaLayout* arena) : arena_(arena) {}

  int64_t Alloc(int64_t numel) {
    const int64_t off = arena_->Alloc(numel);
    const int64_t len = serve::ArenaAlignUp(numel);
    EXPECT_EQ(off % serve::kArenaAlignFloats, 0) << "unaligned offset";
    for (size_t i = 0; i < live_.size(); ++i) {
      const bool disjoint = off + len <= live_[i].off ||
                            live_[i].off + live_[i].len <= off;
      EXPECT_TRUE(disjoint) << "overlap: [" << off << "," << off + len
                            << ") vs [" << live_[i].off << ","
                            << live_[i].off + live_[i].len << ")";
    }
    live_.push_back({off, len});
    return off;
  }

  void Free(int64_t off, int64_t numel) {
    arena_->Free(off, numel);
    for (size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].off == off) {
        live_.erase(live_.begin() + i);
        return;
      }
    }
    FAIL() << "freed an offset that was not live: " << off;
  }

 private:
  struct Interval {
    int64_t off;
    int64_t len;
  };
  serve::ArenaLayout* arena_;
  std::vector<Interval> live_;
};

TEST(ArenaLayoutTest, SameSizeChurnReusesTheHole) {
  serve::ArenaLayout arena;
  const int64_t a = arena.Alloc(100);
  const int64_t grown = arena.end();
  arena.Free(a, 100);
  // Ten generations of the same size must keep landing in a's hole.
  for (int i = 0; i < 10; ++i) {
    const int64_t b = arena.Alloc(100);
    EXPECT_EQ(b, a);
    arena.Free(b, 100);
  }
  EXPECT_EQ(arena.end(), grown);
}

TEST(ArenaLayoutTest, InterleavedLongAndShortLifetimes) {
  serve::ArenaLayout arena;
  ArenaChecker check(&arena);
  // A long-lived value pinned at the bottom while short-lived pairs of
  // different sizes churn above it — the pattern plan residuals create
  // (defined early, consumed late, dozens of temporaries in between).
  const int64_t pinned = check.Alloc(64);
  int64_t high_water = 0;
  for (int i = 0; i < 50; ++i) {
    const int64_t s = check.Alloc(16 + (i % 7) * 16);
    const int64_t t = check.Alloc(128);
    check.Free(s, 16 + (i % 7) * 16);
    const int64_t u = check.Alloc(48);
    check.Free(t, 128);
    check.Free(u, 48);
    high_water = std::max(high_water, arena.end());
  }
  check.Free(pinned, 64);
  // Reuse must keep the slab at its steady-state size, not 50 rounds of
  // growth: one pinned value + the widest in-flight trio.
  EXPECT_EQ(arena.end(), high_water);
  EXPECT_LE(arena.end(),
            serve::ArenaAlignUp(64) + serve::ArenaAlignUp(16 + 6 * 16) +
                serve::ArenaAlignUp(128) + serve::ArenaAlignUp(48));
}

TEST(ArenaLayoutTest, AdjacentHolesCoalesceForLargeValues) {
  serve::ArenaLayout arena;
  ArenaChecker check(&arena);
  // Four 32-float neighbors; free them out of order (middle pair last)
  // so coalescing has to merge on both sides.
  const int64_t a = check.Alloc(32);
  const int64_t b = check.Alloc(32);
  const int64_t c = check.Alloc(32);
  const int64_t d = check.Alloc(32);
  const int64_t grown = arena.end();
  check.Free(a, 32);
  check.Free(d, 32);
  check.Free(b, 32);
  check.Free(c, 32);
  // One value the size of all four must fit in the merged hole.
  const int64_t big = check.Alloc(128);
  EXPECT_EQ(big, a);
  EXPECT_EQ(arena.end(), grown);
}

TEST(ArenaLayoutTest, AdversarialChurnNeverOverlapsAndStaysAligned) {
  serve::ArenaLayout arena;
  ArenaChecker check(&arena);
  // Deterministic pseudo-random alloc/free storm with odd (unaligned)
  // sizes; ArenaChecker asserts alignment and non-overlap on every step.
  std::vector<std::pair<int64_t, int64_t>> live;  // {off, numel}
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int step = 0; step < 400; ++step) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const int64_t roll = static_cast<int64_t>((state >> 33) % 100);
    if (live.size() > 8 || (roll < 40 && !live.empty())) {
      const size_t victim = static_cast<size_t>((state >> 17) % live.size());
      check.Free(live[victim].first, live[victim].second);
      live.erase(live.begin() + victim);
    } else {
      const int64_t numel = 1 + static_cast<int64_t>((state >> 7) % 517);
      live.push_back({check.Alloc(numel), numel});
    }
  }
  for (size_t i = 0; i < live.size(); ++i) {
    check.Free(live[i].first, live[i].second);
  }
  // Everything freed: the next allocation must reuse offset 0.
  EXPECT_EQ(arena.Alloc(8), 0);
}

}  // namespace
}  // namespace lipformer
