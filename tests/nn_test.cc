#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/positional_encoding.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::CheckGradient;
using testing::RandomTensor;

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  Tensor x = RandomTensor({4, 3}, 2);
  Variable y = lin.Forward(Variable(x));
  EXPECT_EQ(y.shape(), (Shape{4, 2}));
  Tensor expected = Add(MatMul(x, lin.weight().value()), lin.bias().value());
  EXPECT_TRUE(AllClose(y.value(), expected, 1e-5f, 1e-4f));
}

TEST(LinearTest, NoBias) {
  Rng rng(1);
  Linear lin(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.ParameterCount(), 6);
  Variable y = lin.Forward(Variable(Tensor::Zeros({1, 3})));
  EXPECT_FLOAT_EQ(y.value().data()[0], 0.0f);
}

TEST(LinearTest, AppliesToLastDimOfAnyRank) {
  Rng rng(2);
  Linear lin(5, 7, rng);
  Variable y = lin.Forward(Variable(Tensor::Zeros({2, 3, 5})));
  EXPECT_EQ(y.shape(), (Shape{2, 3, 7}));
}

TEST(LinearTest, GradientFlowsToWeightAndBias) {
  Rng rng(3);
  Linear lin(3, 2, rng);
  Variable y = lin.Forward(Variable(RandomTensor({4, 3}, 4)));
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(lin.weight().has_grad());
  EXPECT_TRUE(lin.bias().has_grad());
  EXPECT_GT(std::fabs(lin.weight().grad().data()[0]), 0.0f);
}

TEST(MlpTest, HiddenLayersAndShapes) {
  Rng rng(5);
  Mlp mlp({4, 8, 8, 2}, rng);
  Variable y = mlp.Forward(Variable(RandomTensor({3, 4}, 6)));
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  // 4*8+8 + 8*8+8 + 8*2+2 = 40 + 72 + 18
  EXPECT_EQ(mlp.ParameterCount(), 130);
}

TEST(LayerNormTest, NormalizesLastDim) {
  Rng rng(7);
  LayerNorm ln(16, rng);
  Variable y = ln.Forward(Variable(RandomTensor({4, 16}, 8, 5.0f)));
  // With default gamma=1, beta=0 each row must be ~zero-mean unit-var.
  for (int64_t i = 0; i < 4; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 16; ++j) mean += y.value().at({i, j});
    mean /= 16.0;
    for (int64_t j = 0; j < 16; ++j) {
      const double d = y.value().at({i, j}) - mean;
      var += d * d;
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradCheckThroughNormalization) {
  Rng rng(9);
  LayerNorm ln(6, rng);
  CheckGradient(
      [&](const Variable& x) {
        Tensor w = RandomTensor({3, 6}, 200);
        return SumAll(MulConst(ln.Forward(x), w));
      },
      RandomTensor({3, 6}, 10));
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(11);
  Dropout drop(0.5f, rng);
  drop.SetTraining(false);
  Tensor x = RandomTensor({100}, 12);
  Variable y = drop.Forward(Variable(x));
  EXPECT_TRUE(AllClose(y.value(), x, 0.0f, 0.0f));
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
  Rng rng(13);
  Dropout drop(0.5f, rng);
  drop.SetTraining(true);
  Tensor x = Tensor::Ones({10000});
  Variable y = drop.Forward(Variable(x));
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // survivors scaled by 1/(1-p)
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // expectation preserved
}

TEST(DropoutTest, ZeroProbabilityIsIdentityInTraining) {
  Rng rng(14);
  Dropout drop(0.0f, rng);
  drop.SetTraining(true);
  Tensor x = RandomTensor({32}, 15);
  EXPECT_TRUE(AllClose(drop.Forward(Variable(x)).value(), x, 0.0f, 0.0f));
}

TEST(EmbeddingTest, LookupAndGradScatter) {
  Rng rng(17);
  Embedding emb(5, 3, rng);
  Variable out = emb.Forward(std::vector<int64_t>{1, 1, 4});
  EXPECT_EQ(out.shape(), (Shape{3, 3}));
  SumAll(out).Backward();
  const std::vector<Variable> params = emb.Parameters();
  const Tensor& grad = params[0].grad();
  // Row 1 selected twice, row 4 once, others never.
  EXPECT_FLOAT_EQ(grad.at({1, 0}), 2.0f);
  EXPECT_FLOAT_EQ(grad.at({4, 0}), 1.0f);
  EXPECT_FLOAT_EQ(grad.at({0, 0}), 0.0f);
}

TEST(EmbeddingTest, TensorInputAppendsDim) {
  Rng rng(18);
  Embedding emb(7, 4, rng);
  Tensor ids({2, 3}, {0, 1, 2, 3, 4, 5});
  Variable out = emb.Forward(ids);
  EXPECT_EQ(out.shape(), (Shape{2, 3, 4}));
}

TEST(AttentionTest, OutputShapeAndGradients) {
  Rng rng(19);
  MultiHeadSelfAttention attn(8, 2, rng);
  Variable x(RandomTensor({2, 5, 8}, 20), true);
  Variable y = attn.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
  SumAll(Mul(y, y)).Backward();
  for (const Variable& p : attn.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
  EXPECT_TRUE(x.has_grad());
}

TEST(AttentionTest, SoftmaxRowsSumToOneViaUniformValues) {
  // With V = const vector, attention output must equal that constant
  // regardless of the scores (rows of attention weights sum to 1).
  Rng rng(21);
  Tensor q = RandomTensor({1, 4, 6}, 22);
  Tensor k = RandomTensor({1, 4, 6}, 23);
  Tensor v = Tensor::Full({1, 4, 6}, 3.25f);
  Variable out = ScaledDotProductAttention(Variable(q), Variable(k),
                                           Variable(v));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.value().data()[i], 3.25f, 1e-4f);
  }
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  Rng rng(24);
  Tensor q = RandomTensor({1, 4, 2}, 25);
  Tensor k = RandomTensor({1, 4, 2}, 26);
  // Value rows are one-hot per position; causal output at position 0 can
  // only see position 0.
  Tensor v = Tensor::Zeros({1, 4, 4});
  for (int64_t i = 0; i < 4; ++i) v.at({0, i, i}) = 1.0f;
  Variable out = ScaledDotProductAttention(Variable(q), Variable(k),
                                           Variable(v), /*causal=*/true);
  EXPECT_NEAR(out.value().at({0, 0, 0}), 1.0f, 1e-5f);
  for (int64_t j = 1; j < 4; ++j) {
    EXPECT_NEAR(out.value().at({0, 0, j}), 0.0f, 1e-5f);
  }
}

TEST(AttentionTest, CrossAttentionShape) {
  Rng rng(27);
  MultiHeadSelfAttention attn(8, 2, rng);
  Variable q(RandomTensor({2, 3, 8}, 28));
  Variable kv(RandomTensor({2, 7, 8}, 29));
  EXPECT_EQ(attn.Forward(q, kv).shape(), (Shape{2, 3, 8}));
}

TEST(PositionalEncodingTest, AddsSinusoidalTable) {
  PositionalEncoding pe(16, 8);
  Variable x(Tensor::Zeros({2, 4, 8}));
  Variable y = pe.Forward(x);
  // Position 0: sin(0)=0, cos(0)=1 alternating.
  EXPECT_NEAR(y.value().at({0, 0, 0}), 0.0f, 1e-6f);
  EXPECT_NEAR(y.value().at({0, 0, 1}), 1.0f, 1e-6f);
  // Both batch rows identical.
  EXPECT_NEAR(y.value().at({1, 3, 5}), y.value().at({0, 3, 5}), 1e-6f);
}

TEST(ModuleTest, ParameterNamesAndCount) {
  Rng rng(31);
  Mlp mlp({2, 3, 1}, rng);
  const auto names = mlp.ParameterNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "layer0.weight");
  EXPECT_EQ(names[3], "layer1.bias");
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(33);
  Mlp a({3, 4, 2}, rng);
  Mlp b({3, 4, 2}, rng);  // different init
  const std::string path = ::testing::TempDir() + "/mlp_params.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  Tensor x = RandomTensor({2, 3}, 34);
  EXPECT_TRUE(AllClose(a.Forward(Variable(x)).value(),
                       b.Forward(Variable(x)).value(), 1e-6f, 1e-6f));
}

TEST(ModuleTest, LoadRejectsMismatchedShape) {
  Rng rng(35);
  Mlp a({3, 4, 2}, rng);
  Mlp b({3, 5, 2}, rng);
  const std::string path = ::testing::TempDir() + "/mlp_params2.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  EXPECT_FALSE(b.LoadParameters(path).ok());
}

TEST(ModuleTest, SetRequiresGradFreezes) {
  Rng rng(37);
  Linear lin(2, 2, rng);
  lin.SetRequiresGrad(false);
  Variable y = lin.Forward(Variable(RandomTensor({1, 2}, 38)));
  EXPECT_FALSE(y.requires_grad());
}

}  // namespace
}  // namespace lipformer
