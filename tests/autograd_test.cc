#include "autograd/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::CheckGradient;
using testing::RandomTensor;

TEST(AutogradTest, LeafAccumulatesGradient) {
  Variable x(Tensor({2}, {1.0f, 2.0f}), /*requires_grad=*/true);
  Variable loss = SumAll(Mul(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[1], 4.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Variable x(Tensor({1}, {3.0f}), true);
  Variable l1 = SumAll(x);
  l1.Backward();
  Variable l2 = SumAll(MulScalar(x, 2.0f));
  l2.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 3.0f);
  x.ZeroGrad();
  Variable l3 = SumAll(x);
  l3.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 1.0f);
}

TEST(AutogradTest, NoGradGuardStopsTaping) {
  Variable x(Tensor({1}, {2.0f}), true);
  Variable y;
  {
    NoGradGuard guard;
    y = Mul(x, x);
  }
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, DetachCutsTape) {
  Variable x(Tensor({1}, {2.0f}), true);
  Variable y = Mul(x, x).Detach();
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // loss = x*x + x*x via two separate paths.
  Variable x(Tensor({1}, {3.0f}), true);
  Variable a = Mul(x, x);
  Variable b = Mul(x, x);
  Variable loss = SumAll(Add(a, b));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 12.0f);
}

TEST(AutogradTest, ReusedSubexpression) {
  Variable x(Tensor({1}, {2.0f}), true);
  Variable y = Mul(x, x);       // x^2
  Variable z = Mul(y, y);       // x^4 -> d/dx = 4 x^3 = 32
  SumAll(z).Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 32.0f);
}

// ---- Finite-difference checks per op ----

TEST(GradCheck, AddBroadcast) {
  Tensor b = RandomTensor({3}, 100);
  CheckGradient(
      [&](const Variable& x) {
        return SumAll(Mul(Add(x, Variable(b)), Add(x, Variable(b))));
      },
      RandomTensor({2, 3}, 1));
}

TEST(GradCheck, BroadcastOperandReceivesReducedGrad) {
  // x is the small (broadcast) operand.
  Tensor big = RandomTensor({4, 3}, 101);
  CheckGradient(
      [&](const Variable& x) { return SumAll(Mul(Add(x, Variable(big)),
                                                 Variable(big))); },
      RandomTensor({3}, 2));
}

TEST(GradCheck, SubMulDiv) {
  Tensor other = RandomTensor({2, 3}, 102);
  // Keep denominators away from zero.
  for (int64_t i = 0; i < other.numel(); ++i) {
    other.data()[i] = 1.5f + 0.2f * other.data()[i] * other.data()[i];
  }
  CheckGradient(
      [&](const Variable& x) {
        Variable o(other);
        return SumAll(Div(Mul(Sub(x, o), x), o));
      },
      RandomTensor({2, 3}, 3));
}

TEST(GradCheck, DivDenominator) {
  Tensor num = RandomTensor({2, 3}, 103);
  CheckGradient(
      [&](const Variable& x) {
        // shift x away from 0 inside f to keep the quotient smooth
        Variable denom = AddScalar(Mul(x, x), 1.0f);
        return SumAll(Div(Variable(num), denom));
      },
      RandomTensor({2, 3}, 4));
}

TEST(GradCheck, UnaryChain) {
  CheckGradient(
      [](const Variable& x) {
        return MeanAll(Tanh(AddScalar(MulScalar(x, 0.5f), 0.1f)));
      },
      RandomTensor({3, 4}, 5));
}

TEST(GradCheck, ExpLogSqrt) {
  CheckGradient(
      [](const Variable& x) {
        Variable pos = AddScalar(Mul(x, x), 0.5f);
        return SumAll(Log(Sqrt(Exp(MulScalar(pos, 0.3f)))));
      },
      RandomTensor({6}, 6));
}

TEST(GradCheck, SigmoidGelu) {
  CheckGradient(
      [](const Variable& x) { return SumAll(Sigmoid(Gelu(x))); },
      RandomTensor({2, 5}, 7));
}

TEST(GradCheck, ReluAwayFromKink) {
  Tensor x0 = RandomTensor({10}, 8);
  // Push values away from 0 so finite differences are valid.
  for (int64_t i = 0; i < x0.numel(); ++i) {
    if (std::fabs(x0.data()[i]) < 0.1f) x0.data()[i] = 0.5f;
  }
  CheckGradient([](const Variable& x) { return SumAll(Relu(x)); }, x0);
}

TEST(GradCheck, AbsAwayFromKink) {
  Tensor x0 = RandomTensor({10}, 9);
  for (int64_t i = 0; i < x0.numel(); ++i) {
    if (std::fabs(x0.data()[i]) < 0.1f) x0.data()[i] = -0.5f;
  }
  CheckGradient([](const Variable& x) { return SumAll(Abs(x)); }, x0);
}

TEST(GradCheck, PowScalar) {
  Tensor x0 = RandomTensor({5}, 10);
  for (int64_t i = 0; i < x0.numel(); ++i) {
    x0.data()[i] = 0.5f + std::fabs(x0.data()[i]);
  }
  CheckGradient(
      [](const Variable& x) { return SumAll(PowScalar(x, 3.0f)); }, x0);
}

TEST(GradCheck, MatMulLeft) {
  Tensor b = RandomTensor({4, 3}, 104);
  CheckGradient(
      [&](const Variable& x) {
        Variable y = MatMul(x, Variable(b));
        return SumAll(Mul(y, y));
      },
      RandomTensor({2, 4}, 11), 1e-2f, 3e-2f, 5e-2f);
}

TEST(GradCheck, MatMulRight) {
  Tensor a = RandomTensor({3, 4}, 105);
  CheckGradient(
      [&](const Variable& x) {
        Variable y = MatMul(Variable(a), x);
        return SumAll(Mul(y, y));
      },
      RandomTensor({4, 2}, 12), 1e-2f, 3e-2f, 5e-2f);
}

TEST(GradCheck, MatMulBatchBroadcastGrad) {
  Tensor a = RandomTensor({2, 3, 4}, 106);
  CheckGradient(
      [&](const Variable& x) {
        // x [4, 2] broadcasts across the two batch matrices.
        Variable y = MatMul(Variable(a), x);
        return SumAll(Mul(y, y));
      },
      RandomTensor({4, 2}, 13), 1e-2f, 3e-2f, 5e-2f);
}

TEST(GradCheck, MatMulVector) {
  Tensor m = RandomTensor({3, 3}, 107);
  CheckGradient(
      [&](const Variable& x) {
        Variable y = MatMul(x, Variable(m));  // 1-d x
        return SumAll(Mul(y, y));
      },
      RandomTensor({3}, 14));
}

TEST(GradCheck, ReshapePermuteTranspose) {
  CheckGradient(
      [](const Variable& x) {
        Variable r = Reshape(x, {3, 4});
        Variable p = Permute(Reshape(r, {3, 2, 2}), {2, 0, 1});
        Variable t = Transpose(p, 0, 2);
        return SumAll(Mul(t, t));
      },
      RandomTensor({2, 6}, 15));
}

TEST(GradCheck, SliceConcat) {
  CheckGradient(
      [](const Variable& x) {
        Variable a = Slice(x, 1, 0, 2);
        Variable b = Slice(x, 1, 2, 5);
        Variable joined = Concat({b, a}, 1);
        return SumAll(Mul(joined, joined));
      },
      RandomTensor({2, 5}, 16));
}

TEST(GradCheck, IndexSelectWithRepeats) {
  CheckGradient(
      [](const Variable& x) {
        Variable sel = IndexSelect(x, 0, {0, 2, 2, 1});
        return SumAll(Mul(sel, sel));
      },
      RandomTensor({3, 2}, 17));
}

TEST(GradCheck, SumMeanDims) {
  CheckGradient(
      [](const Variable& x) {
        Variable s = Sum(x, 0);
        Variable m = Mean(x, 1, /*keepdim=*/true);
        return Add(SumAll(Mul(s, s)), SumAll(Mul(m, m)));
      },
      RandomTensor({3, 4}, 18));
}

TEST(GradCheck, SoftmaxGrad) {
  CheckGradient(
      [](const Variable& x) {
        Variable s = Softmax(x, 1);
        // Weighted sum to make the loss non-trivial.
        Tensor w = RandomTensor({2, 4}, 108);
        return SumAll(MulConst(s, w));
      },
      RandomTensor({2, 4}, 19));
}

TEST(GradCheck, LogSoftmaxGrad) {
  CheckGradient(
      [](const Variable& x) {
        Tensor w = RandomTensor({2, 4}, 109);
        return SumAll(MulConst(LogSoftmax(x, 1), w));
      },
      RandomTensor({2, 4}, 20));
}

TEST(GradCheck, SoftmaxMiddleDim) {
  CheckGradient(
      [](const Variable& x) {
        Tensor w = RandomTensor({2, 3, 2}, 110);
        return SumAll(MulConst(Softmax(x, 1), w));
      },
      RandomTensor({2, 3, 2}, 21));
}

// Parameterized sweep: a composite expression gradient-checks across many
// shapes.
class CompositeGradTest : public ::testing::TestWithParam<Shape> {};

TEST_P(CompositeGradTest, MlpLikeComposite) {
  const Shape shape = GetParam();
  const int64_t features = shape.back();
  Tensor w = RandomTensor({features, features}, 111, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        Variable h = Tanh(MatMul(x, Variable(w)));
        return MeanAll(Mul(h, h));
      },
      RandomTensor(shape, 22));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompositeGradTest,
                         ::testing::Values(Shape{2, 3}, Shape{1, 5},
                                           Shape{4, 2, 3},
                                           Shape{2, 2, 2, 4}));

}  // namespace
}  // namespace lipformer
