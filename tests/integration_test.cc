// End-to-end behavioural tests of the headline claims, on small synthetic
// workloads: the backbone learns real structure, weak-data enriching helps
// when covariates drive the target, the covariate encoder transplants onto
// other models, and the lightweight design wins on inference latency.

#include <cmath>

#include <gtest/gtest.h>

#include "bench_util/profiler.h"
#include "core/covariate_augmented.h"
#include "core/lipformer.h"
#include "data/registry.h"
#include "data/synthetic.h"
#include "models/transformer.h"
#include "tests/test_util.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace lipformer {
namespace {

WindowDataset SeasonalWindows() {
  SeasonalConfig config;
  config.steps = 1200;
  config.channels = 4;
  config.seed = 5;
  config.noise_std = 0.2;
  TimeSeries series = GenerateSeasonal(config);
  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  return WindowDataset(series, options);
}

LiPFormerConfig SmallLiPFormer(int64_t channels) {
  LiPFormerConfig config;
  config.input_len = 96;
  config.pred_len = 24;
  config.channels = channels;
  config.patch_len = 24;
  config.hidden_dim = 32;
  config.dropout = 0.1f;
  return config;
}

TrainConfig FastTrain() {
  TrainConfig config;
  config.epochs = 4;
  config.patience = 4;
  config.batch_size = 32;
  config.max_batches_per_epoch = 30;
  config.max_eval_batches = 10;
  return config;
}

// MSE of the repeat-last-value baseline on the test split.
float NaiveRepeatLastMse(const WindowDataset& data) {
  MetricAccumulator acc;
  const int64_t n = std::min<int64_t>(data.NumWindows(Split::kTest), 128);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(i);
  Batch batch = data.MakeBatch(Split::kTest, ids);
  const int64_t t = batch.x.size(1);
  Tensor last = Slice(batch.x, 1, t - 1, t);       // [b, 1, c]
  Tensor pred = Add(last, Tensor::Zeros(batch.y.shape()));
  acc.Add(pred, batch.y);
  return acc.mse();
}

TEST(IntegrationTest, LiPFormerBeatsRepeatLastOnSeasonalData) {
  WindowDataset data = SeasonalWindows();
  LiPFormer model(SmallLiPFormer(data.channels()));
  TrainResult result = TrainAndEvaluate(&model, data, FastTrain());
  const float naive = NaiveRepeatLastMse(data);
  EXPECT_LT(result.test.mse, naive)
      << "trained LiPFormer should beat repeat-last (naive=" << naive << ")";
}

TEST(IntegrationTest, WeakDataEnrichingHelpsOnCovariateDrivenData) {
  CovariateDrivenConfig gen;
  gen.steps = 1500;
  gen.channels = 2;
  gen.seed = 31;
  gen.covariate_strength = 1.5;
  gen.seasonal_strength = 0.2;
  gen.noise_std = 0.1;
  TimeSeries series = GenerateCovariateDriven(gen);
  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  WindowDataset data(series, options);

  LiPFormerConfig config = SmallLiPFormer(2);
  TrainConfig train = FastTrain();

  LiPFormer plain(config);
  TrainResult base = TrainAndEvaluate(&plain, data, train);

  LiPFormer enriched(config);
  Rng rng(33);
  DualEncoder dual(MakeCovariateConfig(data, 24, 16), 2, rng);
  PretrainConfig pretrain;
  pretrain.epochs = 4;
  pretrain.batch_size = 32;
  LiPFormerPipelineResult piped =
      TrainLiPFormerPipeline(&enriched, &dual, data, pretrain, train);

  EXPECT_LT(piped.train.test.mse, base.test.mse)
      << "covariate guidance should reduce MSE on covariate-driven data";
}

TEST(IntegrationTest, CovariateEncoderTransplantsOntoTransformer) {
  CovariateDrivenConfig gen;
  gen.steps = 1200;
  gen.channels = 2;
  gen.seed = 35;
  gen.covariate_strength = 1.5;
  gen.seasonal_strength = 0.2;
  gen.noise_std = 0.1;
  TimeSeries series = GenerateCovariateDriven(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);

  ForecasterDims dims{48, 12, 2};
  TransformerConfig tconfig;
  tconfig.model_dim = 32;
  tconfig.num_heads = 2;
  tconfig.num_layers = 1;
  tconfig.ffn_dim = 64;
  TrainConfig train = FastTrain();
  train.max_batches_per_epoch = 20;

  auto plain = std::make_unique<VanillaTransformer>(dims, tconfig, 1);
  TrainResult base = TrainAndEvaluate(plain.get(), data, train);

  // Pre-train the weak-label encoder, freeze, wrap the same architecture.
  Rng rng(37);
  DualEncoder dual(MakeCovariateConfig(data, 12, 16), 2, rng);
  PretrainConfig pretrain;
  pretrain.epochs = 4;
  pretrain.batch_size = 32;
  PretrainDualEncoder(&dual, data, pretrain);
  dual.SetTraining(false);
  dual.SetRequiresGrad(false);

  CovariateAugmentedForecaster wrapped(
      std::make_unique<VanillaTransformer>(dims, tconfig, 1),
      dual.covariate_encoder());
  TrainResult augmented = TrainAndEvaluate(&wrapped, data, train);

  EXPECT_LT(augmented.test.mse, base.test.mse)
      << "Table XII behaviour: the plug-in encoder should improve the "
         "vanilla Transformer";
}

TEST(IntegrationTest, LiPFormerIsLighterAndFasterThanTransformer) {
  WindowDataset data = SeasonalWindows();
  LiPFormer lip(SmallLiPFormer(data.channels()));
  ForecasterDims dims{96, 24, data.channels()};
  TransformerConfig tconfig;  // default heavyweight settings
  VanillaTransformer transformer(dims, tconfig, 1);

  ModelProfile lp = ProfileModel(&lip, data, 8);
  ModelProfile tp = ProfileModel(&transformer, data, 8);
  EXPECT_LT(lp.macs, tp.macs);
  EXPECT_LT(lp.seconds_per_inference, tp.seconds_per_inference);
}

TEST(IntegrationTest, TrainedModelSurvivesSaveLoad) {
  WindowDataset data = SeasonalWindows();
  LiPFormerConfig config = SmallLiPFormer(data.channels());
  config.dropout = 0.0f;
  LiPFormer model(config);
  TrainConfig train = FastTrain();
  train.epochs = 1;
  TrainAndEvaluate(&model, data, train);

  const std::string path = ::testing::TempDir() + "/lipformer.bin";
  ASSERT_TRUE(model.SaveParameters(path).ok());

  LiPFormer restored(config);
  ASSERT_TRUE(restored.LoadParameters(path).ok());
  model.SetTraining(false);
  restored.SetTraining(false);
  NoGradGuard ng;
  Batch batch = data.MakeBatch(Split::kTest, {0, 1, 2});
  EXPECT_TRUE(AllClose(model.Forward(batch).value(),
                       restored.Forward(batch).value(), 1e-6f, 1e-6f));
}

TEST(IntegrationTest, EvaluateMatchesManualMetricComputation) {
  WindowDataset data = SeasonalWindows();
  LiPFormerConfig config = SmallLiPFormer(data.channels());
  config.dropout = 0.0f;
  LiPFormer model(config);
  EvalResult eval = Evaluate(&model, data, Split::kTest, 16);

  // Manual pass over the same split.
  model.SetTraining(false);
  NoGradGuard ng;
  MetricAccumulator acc;
  DataLoader loader(&data, Split::kTest, 16, false, Rng(0));
  for (loader.Reset(); loader.HasNext();) {
    Batch batch = loader.Next();
    acc.Add(model.Forward(batch).value(), batch.y);
  }
  EXPECT_NEAR(eval.mse, acc.mse(), 1e-5f);
  EXPECT_NEAR(eval.mae, acc.mae(), 1e-5f);
}

}  // namespace
}  // namespace lipformer
