#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "bench_util/experiment.h"
#include "bench_util/profiler.h"
#include "bench_util/table_printer.h"
#include "data/synthetic.h"
#include "models/dlinear.h"

namespace lipformer {
namespace {

TEST(TablePrinterTest, TextAndCsvForms) {
  TablePrinter table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(text.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(table.ToCsv(), "a,bb\n1,2\n333,4\n");
}

TEST(TablePrinterTest, WriteCsvRoundTrip) {
  TablePrinter table({"x"});
  table.AddRow({"42"});
  const std::string path = ::testing::TempDir() + "/table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "42");
}

TEST(TablePrinterTest, FmtFloatPrecision) {
  EXPECT_EQ(FmtFloat(3.14159, 3), "3.142");
  EXPECT_EQ(FmtFloat(2.0, 1), "2.0");
}

TEST(FormatTest, CountSuffixes) {
  EXPECT_EQ(FormatCount(512), "512.00");
  EXPECT_EQ(FormatCount(1500), "1.50K");
  EXPECT_EQ(FormatCount(2.5e6), "2.50M");
  EXPECT_EQ(FormatCount(3.2e9), "3.20G");
  EXPECT_EQ(FormatCount(1.42e12), "1.42T");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3ms");
  EXPECT_EQ(FormatSeconds(45e-6), "45.0us");
}

TEST(ProfilerTest, CountsParamsMacsAndTime) {
  SeasonalConfig gen;
  gen.steps = 500;
  gen.channels = 2;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);
  ForecasterDims dims{48, 12, 2};
  DLinear model(dims);
  ModelProfile profile = ProfileModel(&model, data, /*batch_size=*/4);
  // DLinear: two Linear(48 -> 12) = 2 * (48*12 + 12).
  EXPECT_EQ(profile.parameters, 2 * (48 * 12 + 12));
  // MACs: decomposition matmul (B*48*48) + 2 heads (B*48*12), B = b*c = 8.
  EXPECT_EQ(profile.macs, 8 * 48 * 48 + 2 * 8 * 48 * 12);
  EXPECT_GT(profile.seconds_per_inference, 0.0);
  // Profiling must not leave MAC counting on.
  EXPECT_FALSE(MacCountingEnabled());
}

TEST(BenchEnvTest, DefaultsAndFullPreset) {
  BenchEnv quick = ParseBenchArgs(1, nullptr);
  EXPECT_FALSE(quick.full);
  EXPECT_EQ(quick.input_len, 96);

  char prog[] = "bench";
  char full[] = "--full";
  char* argv[] = {prog, full};
  BenchEnv env = ParseBenchArgs(2, argv);
  EXPECT_TRUE(env.full);
  EXPECT_EQ(env.input_len, 336);
  EXPECT_EQ(env.horizons.back(), 720);
}

TEST(BenchEnvTest, ScaleAndEpochsOverrides) {
  char prog[] = "bench";
  char scale[] = "--scale=0.07";
  char epochs[] = "--epochs=9";
  char* argv[] = {prog, scale, epochs};
  BenchEnv env = ParseBenchArgs(3, argv);
  EXPECT_NEAR(env.data_scale, 0.07, 1e-9);
  EXPECT_EQ(env.epochs, 9);
}

TEST(BenchEnvTest, ResultsPathCreatesDirectory) {
  BenchEnv env;
  env.results_dir = ::testing::TempDir() + "/bench_results";
  const std::string path = ResultsPath(env, "foo");
  EXPECT_EQ(path, env.results_dir + "/foo.csv");
  std::ofstream probe(path);
  EXPECT_TRUE(static_cast<bool>(probe));  // directory exists and writable
}

}  // namespace
}  // namespace lipformer
