// Storage pool contract: size-class rounding, release-to-freelist reuse,
// refcounted sharing, cross-thread traffic, zero-fill semantics on top of
// recycled (dirty) blocks, and the end-to-end guarantee that the pool
// never changes numerics — a model forward/backward is bitwise identical
// with the pool on and off, at any thread count.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/lipformer.h"
#include "data/synthetic.h"
#include "tensor/storage_pool.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

// Restores pool enablement and thread count on scope exit so a failing
// assertion cannot leak state into later tests.
class PoolStateScope {
 public:
  PoolStateScope() : enabled_(StoragePoolEnabled()) {}
  ~PoolStateScope() {
    SetStoragePoolEnabled(enabled_);
    SetNumThreads(DefaultNumThreads());
  }

 private:
  bool enabled_;
};

TEST(StoragePoolTest, SizeClassRounding) {
  EXPECT_EQ(StorageCapacityForNumel(0), 16);
  EXPECT_EQ(StorageCapacityForNumel(1), 16);
  EXPECT_EQ(StorageCapacityForNumel(16), 16);
  EXPECT_EQ(StorageCapacityForNumel(17), 32);
  EXPECT_EQ(StorageCapacityForNumel(32), 32);
  EXPECT_EQ(StorageCapacityForNumel(33), 64);
  EXPECT_EQ(StorageCapacityForNumel(1000), 1024);
  EXPECT_EQ(StorageCapacityForNumel(1024), 1024);
  EXPECT_EQ(StorageCapacityForNumel(1025), 2048);
}

TEST(StoragePoolTest, ReleaseParksBlockAndNextAcquireReusesIt) {
  PoolStateScope scope;
  SetStoragePoolEnabled(true);
  ClearStoragePool();
  ResetStoragePoolCounters();

  float* first = nullptr;
  {
    Storage s = Storage::Acquire(100);
    first = s.data();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(s.capacity(), 128);
  }  // released -> parked on the 128-float freelist

  Storage t = Storage::Acquire(100);
  EXPECT_EQ(t.data(), first) << "same size class must pop the parked block";

  const StoragePoolStats stats = GetStoragePoolStats();
  EXPECT_EQ(stats.acquires, 2);
  EXPECT_EQ(stats.pool_hits, 1);
  EXPECT_EQ(stats.heap_allocs, 1);
}

TEST(StoragePoolTest, CopiedHandlesShareTheBlock) {
  Storage s = Storage::Acquire(10);
  s.data()[3] = 42.0f;
  Storage t = s;
  EXPECT_TRUE(t.SharesWith(s));
  EXPECT_EQ(t.data(), s.data());
  EXPECT_EQ(t.data()[3], 42.0f);
  t.data()[3] = 7.0f;
  EXPECT_EQ(s.data()[3], 7.0f);

  Storage moved = std::move(t);
  EXPECT_TRUE(moved.SharesWith(s));
  EXPECT_EQ(t.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(StoragePoolTest, ZerosIsZeroOnTopOfDirtyRecycledBlocks) {
  PoolStateScope scope;
  SetStoragePoolEnabled(true);
  // Dirty a block, release it, then ask for zeros of the same class: the
  // recycled block must still come back fully zeroed.
  { Tensor dirty = Tensor::Full(Shape{100}, 3.25f); }
  Tensor z = Tensor::Zeros(Shape{100});
  for (int64_t i = 0; i < z.numel(); ++i) {
    ASSERT_EQ(z.data()[i], 0.0f) << "index " << i;
  }
  { Tensor dirty = Tensor::Full(Shape{100}, -1.5f); }
  Tensor f = Tensor::Full(Shape{100}, 2.0f);
  for (int64_t i = 0; i < f.numel(); ++i) {
    ASSERT_EQ(f.data()[i], 2.0f) << "index " << i;
  }
}

TEST(StoragePoolTest, DisabledPoolStillWorksAndDoesNotPark) {
  PoolStateScope scope;
  SetStoragePoolEnabled(false);
  ClearStoragePool();
  ResetStoragePoolCounters();
  {
    Storage s = Storage::Acquire(64);
    ASSERT_NE(s.data(), nullptr);
    s.data()[0] = 1.0f;
  }
  const StoragePoolStats stats = GetStoragePoolStats();
  EXPECT_EQ(stats.pool_hits, 0);
  EXPECT_EQ(stats.heap_allocs, 1);
  EXPECT_EQ(stats.bytes_pooled, 0) << "disabled pool must not park blocks";
}

TEST(StoragePoolTest, CrossThreadAcquireReleaseIsSafe) {
  PoolStateScope scope;
  SetStoragePoolEnabled(true);
  ResetStoragePoolCounters();

  // Blocks allocated on the main thread, released on workers, and
  // re-acquired concurrently — the sanitizer build (scripts/
  // check_sanitize.sh) runs this under TSan.
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::vector<Storage>> handoff(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 8; ++i) {
      Storage s = Storage::Acquire(64 * (i + 1));
      s.data()[0] = static_cast<float>(t);
      handoff[t].push_back(std::move(s));
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&handoff, t] {
      handoff[t].clear();  // release main-thread blocks on this thread
      for (int i = 0; i < kIters; ++i) {
        Storage s = Storage::Acquire(16 + (i % 7) * 100);
        s.data()[0] = static_cast<float>(i);
        Storage copy = s;
        ASSERT_EQ(copy.data()[0], static_cast<float>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const StoragePoolStats stats = GetStoragePoolStats();
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.heap_allocs);
  EXPECT_GE(stats.acquires, kThreads * kIters);
}

TEST(StoragePoolTest, EmptyTensorHasShapeAndWritableStorage) {
  Tensor t = Tensor::Empty(Shape{3, 5});
  EXPECT_EQ(t.shape(), (Shape{3, 5}));
  EXPECT_EQ(t.numel(), 15);
  t.Fill(1.5f);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 1.5f);
}

// Runs one deterministic forward/backward and returns the prediction bits
// plus every parameter-gradient tensor (cloned: grad buffers are reused
// across steps).
struct StepResult {
  Tensor pred;
  std::vector<Tensor> grads;
};

StepResult RunTrainStep(const Batch& batch) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 3;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  config.seed = 77;
  LiPFormer model(config);
  Variable pred = model.Forward(batch);
  MseLoss(pred, batch.y).Backward();
  StepResult result;
  result.pred = pred.value().Clone();
  for (const Variable& p : model.Parameters()) {
    result.grads.push_back(p.grad().Clone());
  }
  return result;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(StoragePoolTest, ModelStepBitwiseIdenticalPoolOnVsOffAcrossThreads) {
  PoolStateScope scope;
  SeasonalConfig gen;
  gen.steps = 200;
  gen.channels = 3;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2});

  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    SetStoragePoolEnabled(true);
    StepResult pooled = RunTrainStep(batch);
    SetStoragePoolEnabled(false);
    ClearStoragePool();
    StepResult heap = RunTrainStep(batch);

    EXPECT_TRUE(BitwiseEqual(pooled.pred, heap.pred))
        << "prediction differs with pool on vs off at threads=" << threads;
    ASSERT_EQ(pooled.grads.size(), heap.grads.size());
    for (size_t i = 0; i < pooled.grads.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(pooled.grads[i], heap.grads[i]))
          << "grad " << i << " differs at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace lipformer
