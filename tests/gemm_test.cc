// Tests for the cache-blocked packed GEMM (ISSUE 2): the packed kernel
// against the retained naive reference on awkward shapes, the
// transpose-free MatMulTransB/MatMulTransA variants and their autograd
// rules, MAC accounting for the new entry points, and the cached causal
// mask in attention.

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/attention.h"
#include "tensor/gemm_int8.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::CheckGradient;
using testing::RandomTensor;

// The packed GEMM is allowed to differ from the reference only by FMA
// contraction and association inside a k-block, so the ISSUE tolerance
// (1e-5 abs / 1e-4 rel) is comfortably loose.
void ExpectMatchesReference(const Tensor& got, const Tensor& want) {
  ASSERT_TRUE(SameShape(got.shape(), want.shape()));
  EXPECT_TRUE(AllClose(got, want, 1e-5f, 1e-4f));
}

TEST(PackedGemmTest, MatchesReferenceOnOddAndPrimeShapes) {
  // {m, k, n} triples chosen to hit every tail case: single element,
  // sub-tile, around one MR/NR tile, prime sizes, and shapes straddling
  // the MR=4 / NR=16 / KC=256 block boundaries.
  const int64_t shapes[][3] = {
      {1, 1, 1},   {2, 3, 5},     {7, 11, 13},   {17, 19, 23},
      {4, 16, 16}, {5, 17, 16},   {129, 63, 65}, {31, 300, 33},
      {3, 257, 2}, {64, 64, 129},
  };
  int seed = 100;
  for (const auto& s : shapes) {
    Tensor a = RandomTensor({s[0], s[1]}, seed++);
    Tensor b = RandomTensor({s[1], s[2]}, seed++);
    ExpectMatchesReference(MatMul(a, b), MatMulReference(a, b));
  }
}

TEST(PackedGemmTest, MatchesReferenceOnBroadcastBatchDims) {
  Tensor a = RandomTensor({2, 1, 3, 5, 7}, 1);
  Tensor b = RandomTensor({3, 7, 6}, 2);
  ExpectMatchesReference(MatMul(a, b), MatMulReference(a, b));

  Tensor c = RandomTensor({4, 1, 6, 5}, 3);
  Tensor d = RandomTensor({1, 3, 5, 2}, 4);
  ExpectMatchesReference(MatMul(c, d), MatMulReference(c, d));
}

TEST(PackedGemmTest, MatchesReferenceOnVectorPromotion) {
  Tensor v = RandomTensor({7}, 5);
  Tensor m = RandomTensor({7, 4}, 6);
  ExpectMatchesReference(MatMul(v, m), MatMulReference(v, m));

  Tensor m2 = RandomTensor({5, 7}, 7);
  ExpectMatchesReference(MatMul(m2, v), MatMulReference(m2, v));

  Tensor b3 = RandomTensor({3, 7, 4}, 8);
  ExpectMatchesReference(MatMul(v, b3), MatMulReference(v, b3));
}

TEST(PackedGemmTest, ZeroSizedDimsProduceZeroOrEmpty) {
  // k == 0 contracts over nothing: the output must be exactly zero.
  Tensor a({3, 0});
  Tensor b({0, 4});
  Tensor c = MatMul(a, b);
  ASSERT_TRUE(SameShape(c.shape(), Shape{3, 4}));
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

TEST(MatMulTransBTest, MatchesMaterializedTranspose) {
  // [.., m, k] x [.., n, k] -> [.., m, n] without materializing b^T.
  for (const auto& s : {Shape{9, 6, 5}, Shape{2, 3, 17, 7}}) {
    Shape bs = s;
    bs[bs.size() - 2] = 11;  // n
    Tensor a = RandomTensor(s, 20);
    Tensor b = RandomTensor(bs, 21);
    ExpectMatchesReference(MatMulTransB(a, b),
                           MatMulReference(a, Transpose(b, -2, -1)));
  }
}

TEST(MatMulTransATest, MatchesMaterializedTranspose) {
  // [.., k, m] x [.., k, n] -> [.., m, n] without materializing a^T.
  Tensor a = RandomTensor({4, 13, 6}, 22);  // k=13, m=6
  Tensor b = RandomTensor({4, 13, 9}, 23);  // k=13, n=9
  ExpectMatchesReference(MatMulTransA(a, b),
                         MatMulReference(Transpose(a, -2, -1), b));
}

TEST(MatMulTransBTest, BroadcastsBatchDims) {
  Tensor a = RandomTensor({2, 1, 5, 7}, 24);
  Tensor b = RandomTensor({3, 6, 7}, 25);
  ExpectMatchesReference(MatMulTransB(a, b),
                         MatMulReference(a, Transpose(b, -2, -1)));
}

TEST(MatMulTransBTest, ChargesTheoreticalMacs) {
  Tensor a = RandomTensor({3, 5, 8}, 26);
  Tensor b = RandomTensor({3, 7, 8}, 27);
  ResetMacCount();
  SetMacCountingEnabled(true);
  (void)MatMulTransB(a, b);
  const int64_t trans_b_macs = MacCount();
  ResetMacCount();
  (void)MatMulTransA(Transpose(a, -2, -1), Transpose(b, -2, -1));
  const int64_t trans_a_macs = MacCount();
  SetMacCountingEnabled(false);
  ResetMacCount();
  EXPECT_EQ(trans_b_macs, 3 * 5 * 7 * 8);  // nbatch * m * n * k
  EXPECT_EQ(trans_a_macs, 3 * 5 * 7 * 8);
}

// ---- autograd rules for the transpose-folded variants ----

TEST(MatMulTransBGradTest, GradientMatchesFiniteDifference) {
  Tensor b0 = RandomTensor({6, 5}, 30, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        return SumAll(Mul(MatMulTransB(x, Variable(b0)),
                       Variable(RandomTensor({4, 6}, 31))));
      },
      RandomTensor({4, 5}, 32, 0.5f));
  Tensor a0 = RandomTensor({4, 5}, 33, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        return SumAll(Mul(MatMulTransB(Variable(a0), x),
                       Variable(RandomTensor({4, 6}, 34))));
      },
      RandomTensor({6, 5}, 35, 0.5f));
}

TEST(MatMulTransAGradTest, GradientMatchesFiniteDifference) {
  Tensor b0 = RandomTensor({5, 6}, 40, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        return SumAll(Mul(MatMulTransA(x, Variable(b0)),
                       Variable(RandomTensor({4, 6}, 41))));
      },
      RandomTensor({5, 4}, 42, 0.5f));
  Tensor a0 = RandomTensor({5, 4}, 43, 0.5f);
  CheckGradient(
      [&](const Variable& x) {
        return SumAll(Mul(MatMulTransA(Variable(a0), x),
                       Variable(RandomTensor({4, 6}, 44))));
      },
      RandomTensor({5, 6}, 45, 0.5f));
}

TEST(MatMulTransBGradTest, BatchedWithBroadcastReducesGrads) {
  Tensor b0 = RandomTensor({3, 6, 5}, 50, 0.5f);
  // a is broadcast over the batch dim, so its gradient must reduce.
  CheckGradient(
      [&](const Variable& x) {
        return SumAll(Mul(MatMulTransB(x, Variable(b0)),
                       Variable(RandomTensor({3, 2, 6}, 51))));
      },
      RandomTensor({2, 5}, 52, 0.5f));
}

// ---- the cached causal mask ----

TEST(CausalMaskTest, MakeCausalMaskValues) {
  Tensor mask = MakeCausalMask(3, 4);
  ASSERT_TRUE(SameShape(mask.shape(), Shape{3, 4}));
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (j <= i) {
        EXPECT_EQ(mask.at({i, j}), 0.0f) << i << "," << j;
      } else {
        EXPECT_LT(mask.at({i, j}), -1e8f) << i << "," << j;
      }
    }
  }
}

TEST(CausalMaskTest, MaskOverloadMatchesCausalFlag) {
  Variable q(RandomTensor({2, 5, 8}, 60));
  Variable k(RandomTensor({2, 5, 8}, 61));
  Variable v(RandomTensor({2, 5, 8}, 62));
  Tensor causal = ScaledDotProductAttention(q, k, v, /*causal=*/true).value();
  Tensor masked =
      ScaledDotProductAttention(q, k, v, MakeCausalMask(5, 5)).value();
  EXPECT_TRUE(AllClose(causal, masked, 0.0f, 0.0f));
}

// ---- Int8 quantized GEMM (ISSUE 6) ----

// Deterministic int8 fill in [-127, 127] (-128 never occurs, matching
// what QuantizeWeightPerChannel produces).
std::vector<int8_t> RandomInt8(int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(-127, 127);
  std::vector<int8_t> out(static_cast<size_t>(n));
  for (int8_t& v : out) v = static_cast<int8_t>(dist(rng));
  return out;
}

TEST(Int8GemmTest, BlockedMatchesReferenceBitwise) {
  // Same tail-case philosophy as the fp32 table: single element,
  // sub-tile, around one MR/NR tile, primes, and shapes straddling the
  // MR=4 / NR=16 / KC=256 / MC=128 block boundaries. Integer
  // accumulation is exact, so the match is memcmp, not AllClose.
  const int64_t shapes[][3] = {
      {1, 1, 1},   {2, 3, 5},     {7, 11, 13},   {17, 19, 23},
      {4, 16, 16}, {5, 17, 16},   {129, 63, 65}, {31, 300, 33},
      {3, 257, 2}, {64, 64, 129}, {130, 513, 17},
  };
  uint64_t seed = 900;
  for (const auto& s : shapes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    std::vector<int8_t> a = RandomInt8(m * k, seed++);
    std::vector<int8_t> b = RandomInt8(k * n, seed++);
    Int8PackedWeight packed = PackInt8Weight(b.data(), k, n);
    std::vector<int32_t> got(static_cast<size_t>(m * n), -1);
    std::vector<int32_t> want(static_cast<size_t>(m * n), -2);
    Int8GemmBlocked(a.data(), packed, m, got.data());
    Int8GemmReference(a.data(), b.data(), m, n, k, want.data());
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(int32_t)))
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(Int8GemmTest, QuantizeRoundTripWithinHalfScale) {
  const int64_t k = 37, n = 29;
  Tensor w = RandomTensor({k, n}, 901, 3.0f);
  std::vector<int8_t> w8(static_cast<size_t>(k * n));
  std::vector<float> scale(static_cast<size_t>(n));
  QuantizeWeightPerChannel(w.data(), k, n, w8.data(), scale.data());
  std::vector<float> back(static_cast<size_t>(k * n));
  DequantizeWeightPerChannel(w8.data(), scale.data(), k, n, back.data());
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_LE(static_cast<int>(std::abs(w8[p * n + j])), 127);
      // Round-to-nearest never moves a value by more than scale/2.
      EXPECT_LE(std::abs(back[p * n + j] - w.data()[p * n + j]),
                scale[j] * 0.5f + 1e-7f);
    }
  }
  // A second quantize -> dequantize pass is a fixed point: the values are
  // already exact multiples of their scale.
  std::vector<int8_t> w8_again(static_cast<size_t>(k * n));
  std::vector<float> scale_again(static_cast<size_t>(n));
  QuantizeWeightPerChannel(back.data(), k, n, w8_again.data(),
                           scale_again.data());
  std::vector<float> back_again(static_cast<size_t>(k * n));
  DequantizeWeightPerChannel(w8_again.data(), scale_again.data(), k, n,
                             back_again.data());
  EXPECT_EQ(0, std::memcmp(back.data(), back_again.data(),
                           back.size() * sizeof(float)));
}

TEST(Int8GemmTest, QuantizeHandlesZeroColumnsAndRows) {
  const int64_t k = 5, n = 3;
  std::vector<float> w(static_cast<size_t>(k * n), 0.0f);
  for (int64_t p = 0; p < k; ++p) w[p * n + 1] = 2.0f;  // only column 1
  std::vector<int8_t> w8(w.size());
  std::vector<float> scale(static_cast<size_t>(n));
  QuantizeWeightPerChannel(w.data(), k, n, w8.data(), scale.data());
  EXPECT_EQ(1.0f, scale[0]);  // all-zero column: unit scale, zero codes
  EXPECT_EQ(1.0f, scale[2]);
  for (int64_t p = 0; p < k; ++p) {
    EXPECT_EQ(0, w8[p * n + 0]);
    EXPECT_EQ(127, w8[p * n + 1]);
    EXPECT_EQ(0, w8[p * n + 2]);
  }

  std::vector<float> zero_row(7, 0.0f);
  std::vector<int8_t> x8(7, 42);
  EXPECT_EQ(1.0f, QuantizeRowDynamic(zero_row.data(), 7, x8.data()));
  for (int8_t v : x8) EXPECT_EQ(0, v);
}

TEST(CausalMaskTest, AttentionCacheSurvivesShapeChanges) {
  Rng rng(7);
  MultiHeadSelfAttention attn(32, 4, rng, /*dropout=*/0.0f, /*causal=*/true);
  attn.SetTraining(false);
  NoGradGuard ng;
  Variable x5(RandomTensor({2, 5, 32}, 63));
  Variable x9(RandomTensor({2, 9, 32}, 64));
  Tensor first = attn.Forward(x5).value();
  // Grow, shrink back: the cache must rebuild for each (sq, sk) change and
  // reproduce the original output exactly when the shape returns.
  (void)attn.Forward(x9);
  Tensor again = attn.Forward(x5).value();
  EXPECT_TRUE(AllClose(first, again, 0.0f, 0.0f));
}

}  // namespace
}  // namespace lipformer
