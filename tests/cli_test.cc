#include "cli/cli.h"

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/synthetic.h"

namespace lipformer {
namespace cli {
namespace {

CliArgs ParseVec(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  return Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParseTest, CommandAndOptions) {
  CliArgs args = ParseVec({"prog", "train", "--model=dlinear",
                           "--epochs=7", "--covariates"});
  EXPECT_EQ(args.command, "train");
  EXPECT_EQ(args.Get("model", ""), "dlinear");
  EXPECT_EQ(args.GetInt("epochs", 0), 7);
  EXPECT_TRUE(args.Has("covariates"));
  EXPECT_FALSE(args.Has("csv"));
}

TEST(CliParseTest, DefaultsWhenMissing) {
  CliArgs args = ParseVec({"prog", "train"});
  EXPECT_EQ(args.Get("model", "lipformer"), "lipformer");
  EXPECT_EQ(args.GetInt("input", 96), 96);
  EXPECT_DOUBLE_EQ(args.GetDouble("scale", 0.2), 0.2);
}

TEST(CliParseTest, NonOptionArgumentsIgnored) {
  CliArgs args = ParseVec({"prog", "list", "stray", "--x=1"});
  EXPECT_EQ(args.command, "list");
  EXPECT_EQ(args.GetInt("x", 0), 1);
}

TEST(CliLoadSeriesTest, RegistryDataset) {
  CliArgs args = ParseVec({"prog", "train", "--dataset=etth1",
                           "--scale=0.05"});
  TimeSeries series;
  double tr, va, te;
  ASSERT_TRUE(LoadSeries(args, &series, &tr, &va, &te));
  EXPECT_EQ(series.channels(), 7);
  EXPECT_DOUBLE_EQ(tr, 0.6);  // ETT split
}

TEST(CliLoadSeriesTest, UnknownDatasetFails) {
  CliArgs args = ParseVec({"prog", "train", "--dataset=nope"});
  TimeSeries series;
  double tr, va, te;
  EXPECT_FALSE(LoadSeries(args, &series, &tr, &va, &te));
}

TEST(CliLoadSeriesTest, CsvPath) {
  SeasonalConfig gen;
  gen.steps = 80;
  gen.channels = 2;
  const std::string path = ::testing::TempDir() + "/cli_series.csv";
  ASSERT_TRUE(WriteCsvTimeSeries(path, GenerateSeasonal(gen)).ok());
  CliArgs args = ParseVec({"prog", "train", std::string("--csv=") + path});
  TimeSeries series;
  double tr, va, te;
  ASSERT_TRUE(LoadSeries(args, &series, &tr, &va, &te));
  EXPECT_EQ(series.steps(), 80);
  EXPECT_DOUBLE_EQ(tr, 0.7);  // generic split for user CSVs
}

TEST(CliLoadSeriesTest, MissingCsvFails) {
  CliArgs args = ParseVec({"prog", "train", "--csv=/no/such/file.csv"});
  TimeSeries series;
  double tr, va, te;
  EXPECT_FALSE(LoadSeries(args, &series, &tr, &va, &te));
}

TEST(CliMainTest, UnknownCommandReturnsUsageCode) {
  std::vector<std::string> argv_strings = {"prog", "frobnicate"};
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  EXPECT_EQ(Main(static_cast<int>(argv.size()), argv.data()), 2);
}

TEST(CliMainTest, ListSucceeds) {
  std::vector<std::string> argv_strings = {"prog", "list"};
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  EXPECT_EQ(Main(static_cast<int>(argv.size()), argv.data()), 0);
}

}  // namespace
}  // namespace cli
}  // namespace lipformer
