#include "cli/cli.h"

#include <gtest/gtest.h>

#include "common/parse.h"
#include "data/csv.h"
#include "data/synthetic.h"

namespace lipformer {
namespace cli {
namespace {

CliArgs ParseVec(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  return Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParseTest, CommandAndOptions) {
  CliArgs args = ParseVec({"prog", "train", "--model=dlinear",
                           "--epochs=7", "--covariates"});
  EXPECT_EQ(args.command, "train");
  EXPECT_EQ(args.Get("model", ""), "dlinear");
  EXPECT_EQ(args.GetInt("epochs", 0), 7);
  EXPECT_TRUE(args.Has("covariates"));
  EXPECT_FALSE(args.Has("csv"));
}

TEST(CliParseTest, DefaultsWhenMissing) {
  CliArgs args = ParseVec({"prog", "train"});
  EXPECT_EQ(args.Get("model", "lipformer"), "lipformer");
  EXPECT_EQ(args.GetInt("input", 96), 96);
  EXPECT_DOUBLE_EQ(args.GetDouble("scale", 0.2), 0.2);
}

TEST(CliParseTest, NonOptionArgumentsRecordedAsStragglers) {
  CliArgs args = ParseVec({"prog", "list", "stray", "--seed=1"});
  EXPECT_EQ(args.command, "list");
  EXPECT_EQ(args.GetInt("seed", 0), 1);
  ASSERT_EQ(args.stragglers.size(), 1u);
  EXPECT_EQ(args.stragglers[0], "stray");
}

TEST(CliParseTest, TrainingHyperparameterOptions) {
  CliArgs args = ParseVec({"prog", "train", "--lr=0.005", "--loss=huber",
                           "--patience=3"});
  EXPECT_TRUE(ValidateArgs(args).ok());
  EXPECT_DOUBLE_EQ(args.GetDouble("lr", 1e-3), 0.005);
  EXPECT_EQ(args.Get("loss", "mse"), "huber");
  EXPECT_EQ(args.GetInt("patience", 0), 3);
}

TEST(CliValidateTest, AcceptsKnownWellFormedOptions) {
  CliArgs args = ParseVec({"prog", "train", "--model=dlinear", "--epochs=2",
                           "--scale=0.1", "--covariates"});
  EXPECT_TRUE(ValidateArgs(args).ok());
}

TEST(CliValidateTest, RejectsUnknownOption) {
  CliArgs args = ParseVec({"prog", "train", "--learning-rate=0.01"});
  Status st = ValidateArgs(args);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("unknown option --learning-rate"),
            std::string::npos);
}

TEST(CliValidateTest, RejectsStragglerArgument) {
  CliArgs args = ParseVec({"prog", "train", "etth1"});
  Status st = ValidateArgs(args);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("'etth1'"), std::string::npos);
}

TEST(CliValidateTest, RejectsMalformedInteger) {
  CliArgs args = ParseVec({"prog", "train", "--epochs=five"});
  Status st = ValidateArgs(args);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("--epochs expects an integer"),
            std::string::npos);
}

TEST(CliValidateTest, RejectsMalformedDouble) {
  CliArgs args = ParseVec({"prog", "train", "--lr=0.01x"});
  Status st = ValidateArgs(args);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("--lr expects a number"), std::string::npos);
}

TEST(CliNumberParseTest, ParseInt64IsStrict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999", &v));  // overflow
}

TEST(CliNumberParseTest, ParseDoubleIsStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("0.1x", &v));
  EXPECT_FALSE(ParseDouble("nanx", &v));
}

TEST(CliNumberParseTest, ParseFloatIsStrict) {
  // The shared strict parser (common/parse.h) behind the bundle
  // metadata's dropout field.
  float v = 0;
  EXPECT_TRUE(lipformer::ParseFloat("0.1", &v));
  EXPECT_FLOAT_EQ(v, 0.1f);
  EXPECT_FALSE(lipformer::ParseFloat("", &v));
  EXPECT_FALSE(lipformer::ParseFloat("0.1garbage", &v));
  EXPECT_FALSE(lipformer::ParseFloat("1e99999", &v));  // overflow
}

TEST(CliLoadSeriesTest, RegistryDataset) {
  CliArgs args = ParseVec({"prog", "train", "--dataset=etth1",
                           "--scale=0.05"});
  TimeSeries series;
  double tr, va, te;
  ASSERT_TRUE(LoadSeries(args, &series, &tr, &va, &te));
  EXPECT_EQ(series.channels(), 7);
  EXPECT_DOUBLE_EQ(tr, 0.6);  // ETT split
}

TEST(CliLoadSeriesTest, UnknownDatasetFails) {
  CliArgs args = ParseVec({"prog", "train", "--dataset=nope"});
  TimeSeries series;
  double tr, va, te;
  EXPECT_FALSE(LoadSeries(args, &series, &tr, &va, &te));
}

TEST(CliLoadSeriesTest, CsvPath) {
  SeasonalConfig gen;
  gen.steps = 80;
  gen.channels = 2;
  const std::string path = ::testing::TempDir() + "/cli_series.csv";
  ASSERT_TRUE(WriteCsvTimeSeries(path, GenerateSeasonal(gen)).ok());
  CliArgs args = ParseVec({"prog", "train", std::string("--csv=") + path});
  TimeSeries series;
  double tr, va, te;
  ASSERT_TRUE(LoadSeries(args, &series, &tr, &va, &te));
  EXPECT_EQ(series.steps(), 80);
  EXPECT_DOUBLE_EQ(tr, 0.7);  // generic split for user CSVs
}

TEST(CliLoadSeriesTest, MissingCsvFails) {
  CliArgs args = ParseVec({"prog", "train", "--csv=/no/such/file.csv"});
  TimeSeries series;
  double tr, va, te;
  EXPECT_FALSE(LoadSeries(args, &series, &tr, &va, &te));
}

TEST(CliMainTest, UnknownCommandReturnsUsageCode) {
  std::vector<std::string> argv_strings = {"prog", "frobnicate"};
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  EXPECT_EQ(Main(static_cast<int>(argv.size()), argv.data()), 2);
}

TEST(CliMainTest, UnknownOptionReturnsUsageCode) {
  std::vector<std::string> argv_strings = {"prog", "list", "--frobnicate=1"};
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  EXPECT_EQ(Main(static_cast<int>(argv.size()), argv.data()), 2);
}

TEST(CliMainTest, ListSucceeds) {
  std::vector<std::string> argv_strings = {"prog", "list"};
  std::vector<char*> argv;
  for (auto& s : argv_strings) argv.push_back(s.data());
  EXPECT_EQ(Main(static_cast<int>(argv.size()), argv.data()), 0);
}

TEST(CliParseTest, RepeatedOptionsKeepEveryOccurrenceInOrder) {
  CliArgs args = ParseVec({"prog", "serve", "--load=a=one.ckpt",
                           "--max-batch=8", "--load=b=two.ckpt"});
  EXPECT_TRUE(ValidateArgs(args).ok());
  const std::vector<std::string> loads = args.GetAll("load");
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0], "a=one.ckpt");
  EXPECT_EQ(loads[1], "b=two.ckpt");
  // The last-wins map still answers single-value lookups.
  EXPECT_EQ(args.Get("load", ""), "b=two.ckpt");
  EXPECT_EQ(args.GetAll("max-batch"), std::vector<std::string>{"8"});
  EXPECT_TRUE(args.GetAll("absent").empty());
}

TEST(CliValidateTest, RejectsMalformedEarlierOccurrenceOfRepeatedOption) {
  // The map keeps only "--epochs=3"; the malformed first occurrence must
  // still be a usage error.
  CliArgs args = ParseVec({"prog", "train", "--epochs=zz", "--epochs=3"});
  const Status valid = ValidateArgs(args);
  ASSERT_FALSE(valid.ok());
  EXPECT_NE(valid.message().find("zz"), std::string::npos);
}

TEST(CliServeProtocolTest, SplitModelPrefix) {
  std::string model;
  std::string rest;
  ASSERT_TRUE(SplitModelPrefix("m1|1,2,3", &model, &rest));
  EXPECT_EQ(model, "m1");
  EXPECT_EQ(rest, "1,2,3");

  ASSERT_TRUE(SplitModelPrefix("1,2,3", &model, &rest));
  EXPECT_EQ(model, "");
  EXPECT_EQ(rest, "1,2,3");

  EXPECT_FALSE(SplitModelPrefix("|1,2,3", &model, &rest));
}

TEST(CliServeProtocolTest, ParseRequestValuesHappyPath) {
  std::vector<float> values;
  std::string error;
  ASSERT_TRUE(ParseRequestValues("1,2.5,-3,4e0", 4, &values, &error));
  ASSERT_EQ(values.size(), 4u);
  EXPECT_FLOAT_EQ(values[1], 2.5f);
  EXPECT_FLOAT_EQ(values[2], -3.0f);
}

TEST(CliServeProtocolTest, ParseErrorReportsTrueFieldCountAndBadToken) {
  std::vector<float> values;
  std::string error;
  // Bugfix: the old message reported the count at the first malformed
  // field ("got 2"), not the line's true field count.
  ASSERT_FALSE(ParseRequestValues("1,2,oops,4,5", 4, &values, &error));
  EXPECT_NE(error.find("needs 4"), std::string::npos);
  EXPECT_NE(error.find("got 5"), std::string::npos);
  EXPECT_NE(error.find("field 3"), std::string::npos);
  EXPECT_NE(error.find("'oops'"), std::string::npos);
}

TEST(CliServeProtocolTest, ParseErrorOnWrongCountAlone) {
  std::vector<float> values;
  std::string error;
  ASSERT_FALSE(ParseRequestValues("1,2", 4, &values, &error));
  EXPECT_NE(error.find("needs 4"), std::string::npos);
  EXPECT_NE(error.find("got 2"), std::string::npos);
  // All fields numeric: no offending token to name.
  EXPECT_EQ(error.find("field"), std::string::npos);
}

}  // namespace
}  // namespace cli
}  // namespace lipformer
