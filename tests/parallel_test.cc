// Tests for the thread-pool tensor backend (ISSUE 1) and the eval /
// MAC-accounting bugfixes that rode along with it:
//  - ParallelFor covers every index exactly once at any chunking;
//  - kernel outputs are bitwise identical for 1, 2 and 8 threads on the
//    shapes LiPFormer exercises (batched matmul, broadcast elementwise,
//    softmax, reductions);
//  - the MAC counter reports the theoretical shape-based count at every
//    thread count, independent of data sparsity, and sums exactly under
//    concurrent MatMuls;
//  - an evaluation over an empty split reports NaN (not a perfect 0.0)
//    and EarlyStopping never treats NaN as an improvement;
//  - dropout masks are deterministic per seed at any thread count.

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "nn/dropout.h"
#include "optim/early_stopping.h"
#include "tensor/ops.h"
#include "tests/test_util.h"
#include "train/trainer.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

// Runs fn with the global kernel thread count pinned to `threads` and
// restores the default afterwards.
template <typename Fn>
void WithThreads(int threads, Fn fn) {
  SetNumThreads(threads);
  fn();
  SetNumThreads(DefaultNumThreads());
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!SameShape(a.shape(), b.shape())) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 3, 8}) {
    WithThreads(threads, [&] {
      for (int64_t n : {0LL, 1LL, 7LL, 1000LL, 100000LL}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        ParallelFor(n, /*grain=*/128, [&](int64_t begin, int64_t end) {
          ASSERT_LE(0, begin);
          ASSERT_LE(begin, end);
          ASSERT_LE(end, n);
          for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                       << threads << " threads";
        }
      }
    });
  }
}

TEST(ThreadPoolTest, NestedParallelForFallsBackToSerial) {
  WithThreads(4, [&] {
    std::atomic<int64_t> total{0};
    ParallelFor(64, 1, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        ParallelFor(100, 1, [&](int64_t b2, int64_t e2) {
          total.fetch_add(e2 - b2);
        });
      }
    });
    EXPECT_EQ(total.load(), 64 * 100);
  });
}

TEST(ThreadPoolTest, EnvDefaultIsAtLeastOne) {
  EXPECT_GE(DefaultNumThreads(), 1);
  EXPECT_GE(HardwareThreads(), 1);
  EXPECT_GE(GetNumThreads(), 1);
}

// Computes every kernel the backend parallelizes on LiPFormer-sized
// shapes; returns the results in a fixed order for bitwise comparison.
std::vector<Tensor> RunKernelSuite() {
  std::vector<Tensor> out;
  // Batched matmul on the acceptance workload shape [b*c, n, hd].
  Tensor ma = RandomTensor({64, 96, 128}, 11);
  Tensor mb = RandomTensor({64, 128, 96}, 12);
  out.push_back(MatMul(ma, mb));
  // Broadcast batch dims and vector promotion.
  out.push_back(MatMul(RandomTensor({2, 1, 3, 5, 7}, 13),
                       RandomTensor({3, 7, 6}, 14)));
  out.push_back(MatMul(RandomTensor({7}, 15), RandomTensor({7, 4}, 16)));
  out.push_back(MatMul(RandomTensor({5, 7}, 17), RandomTensor({7}, 18)));
  // Packed GEMM spanning several KC/MC blocks, plus the transpose-folded
  // variants used by attention scores and the Linear backward pass.
  out.push_back(MatMul(RandomTensor({300, 270, 130}, 61),
                       RandomTensor({130, 140}, 62)));
  out.push_back(MatMulTransB(RandomTensor({6, 24, 14}, 63),
                             RandomTensor({6, 24, 14}, 64)));
  out.push_back(MatMulTransA(RandomTensor({6, 14, 24}, 65),
                             RandomTensor({6, 14, 24}, 66)));
  // Data-movement kernels parallelized on the same grain scheme.
  Tensor dm = RandomTensor({12, 34, 56}, 67);
  out.push_back(Permute(dm, {2, 0, 1}));
  out.push_back(Concat({dm, RandomTensor({12, 10, 56}, 68)}, 1));
  out.push_back(Slice(dm, 1, 3, 29));
  out.push_back(IndexSelect(dm, 2, {55, 0, 17, 17, 3}));
  out.push_back(Pad(dm, 1, 2, 5));
  // Elementwise, same-shape and broadcast.
  Tensor ea = RandomTensor({8, 4, 16, 32}, 19);
  Tensor eb = RandomTensor({8, 4, 16, 32}, 20);
  out.push_back(Add(ea, eb));
  out.push_back(Mul(ea, RandomTensor({16, 1}, 21)));
  out.push_back(Gelu(RandomTensor({100000}, 22)));
  out.push_back(Relu(RandomTensor({33333}, 23)));
  // Softmax / LogSoftmax along last and middle dims.
  Tensor sm = RandomTensor({8, 12, 64}, 24);
  out.push_back(Softmax(sm, -1));
  out.push_back(Softmax(sm, 1));
  out.push_back(LogSoftmax(sm, -1));
  // Reductions.
  Tensor rd = RandomTensor({16, 24, 32}, 25);
  out.push_back(Sum(rd, 0));
  out.push_back(Sum(rd, 2, /*keepdim=*/true));
  out.push_back(Mean(rd, 1));
  auto mx = Max(rd, 1);
  out.push_back(mx.first);
  out.push_back(mx.second);
  return out;
}

TEST(ThreadInvarianceTest, KernelsAreBitwiseIdenticalAcrossThreadCounts) {
  std::vector<Tensor> reference;
  WithThreads(1, [&] { reference = RunKernelSuite(); });
  for (int threads : {2, 8}) {
    std::vector<Tensor> got;
    WithThreads(threads, [&] { got = RunKernelSuite(); });
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(got[i], reference[i]))
          << "kernel " << i << " differs at " << threads << " threads";
    }
  }
}

TEST(MacCountTest, TheoreticalCountAtEveryThreadCount) {
  const int64_t expected = 4 * 8 * 16 * 8;  // nbatch * m * n * k
  for (int threads : {1, 2, 8}) {
    WithThreads(threads, [&] {
      Tensor a = RandomTensor({4, 8, 16}, 31);
      Tensor b = RandomTensor({4, 16, 8}, 32);
      ResetMacCount();
      SetMacCountingEnabled(true);
      (void)MatMul(a, b);
      SetMacCountingEnabled(false);
      EXPECT_EQ(MacCount(), expected) << threads << " threads";
      ResetMacCount();
    });
  }
}

TEST(MacCountTest, CountIndependentOfDataSparsity) {
  // Regression: the old serial kernel skipped multiply-adds for zero
  // activations but still charged the full m*n*k, so reported MACs
  // over-counted the executed work on sparse (e.g. post-ReLU) inputs.
  // The counter and the kernel now both use the theoretical count.
  const int64_t expected = 2 * 8 * 8 * 16;
  Tensor dense_a = RandomTensor({2, 8, 16}, 33);
  Tensor b = RandomTensor({2, 16, 8}, 34);
  Tensor sparse_a = Tensor::Zeros({2, 8, 16});

  ResetMacCount();
  SetMacCountingEnabled(true);
  (void)MatMul(dense_a, b);
  const int64_t dense_macs = MacCount();
  ResetMacCount();
  (void)MatMul(sparse_a, b);
  const int64_t sparse_macs = MacCount();
  SetMacCountingEnabled(false);
  ResetMacCount();

  EXPECT_EQ(dense_macs, expected);
  EXPECT_EQ(sparse_macs, expected);
}

TEST(MacCountTest, SumsExactlyUnderConcurrentMatMuls) {
  const int64_t per_call = 2 * 16 * 16 * 8;
  const int num_threads = 4;
  const int calls_per_thread = 8;
  ResetMacCount();
  SetMacCountingEnabled(true);
  std::vector<std::thread> workers;
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Tensor a = RandomTensor({2, 16, 8}, 40 + t);
      Tensor b = RandomTensor({2, 8, 16}, 50 + t);
      for (int c = 0; c < calls_per_thread; ++c) (void)MatMul(a, b);
    });
  }
  for (auto& w : workers) w.join();
  SetMacCountingEnabled(false);
  EXPECT_EQ(MacCount(), per_call * num_threads * calls_per_thread);
  ResetMacCount();
}

// A dataset whose val range is too short to hold a single window: 200
// rows, 160 train / 40 test leaves n_val = 0, and 0 + input_len rows of
// extended lookback < input_len + pred_len.
WindowDataset MakeEmptyValDataset() {
  SeasonalConfig gen;
  gen.steps = 200;
  gen.channels = 2;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 24;
  options.pred_len = 8;
  options.train_ratio = 0.8;
  options.val_ratio = 0.0;
  options.test_ratio = 0.2;
  return WindowDataset(series, options);
}

TEST(EmptySplitTest, EvaluateReturnsNaNNotZero) {
  WindowDataset data = MakeEmptyValDataset();
  ASSERT_EQ(data.NumWindows(Split::kVal), 0);
  ASSERT_GT(data.NumWindows(Split::kTest), 0);

  ForecasterDims dims{24, 8, data.channels()};
  std::unique_ptr<Forecaster> model = CreateModel("dlinear", dims);

  const EvalResult empty = Evaluate(model.get(), data, Split::kVal);
  EXPECT_TRUE(std::isnan(empty.mse));
  EXPECT_TRUE(std::isnan(empty.mae));

  const EvalResult test = Evaluate(model.get(), data, Split::kTest);
  EXPECT_FALSE(std::isnan(test.mse));
  EXPECT_FALSE(std::isnan(test.mae));
}

TEST(EmptySplitTest, TrainingWithEmptyValDoesNotSnapshotAsBest) {
  WindowDataset data = MakeEmptyValDataset();
  ForecasterDims dims{24, 8, data.channels()};
  std::unique_ptr<Forecaster> model = CreateModel("dlinear", dims);

  TrainConfig config;
  config.epochs = 5;
  config.patience = 2;
  config.max_batches_per_epoch = 4;
  const TrainResult result = TrainAndEvaluate(model.get(), data, config);

  // Every validation score is NaN, so no epoch ever becomes "best": the
  // stopper halts after `patience` epochs and best_val_loss stays at the
  // +inf sentinel instead of the old bogus 0.0.
  EXPECT_EQ(result.epochs_run, config.patience);
  EXPECT_TRUE(std::isinf(result.best_val_loss));
  EXPECT_FALSE(std::isnan(result.test.mse));
}

TEST(EarlyStoppingTest, NaNIsNeverAnImprovement) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EarlyStopping stopper(/*patience=*/2);
  EXPECT_FALSE(stopper.Update(nan));
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_TRUE(stopper.Update(1.0f));  // finite score still improves
  EXPECT_FLOAT_EQ(stopper.best_score(), 1.0f);
  EXPECT_FALSE(stopper.Update(nan));  // NaN does not beat 1.0
  EXPECT_FLOAT_EQ(stopper.best_score(), 1.0f);
  EXPECT_FALSE(stopper.Update(nan));
  EXPECT_TRUE(stopper.ShouldStop());
  EXPECT_EQ(stopper.best_epoch(), 1);
}

TEST(EarlyStoppingTest, AllNaNStopsAtPatienceWithInfBest) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EarlyStopping stopper(/*patience=*/3);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(stopper.Update(nan));
  EXPECT_TRUE(stopper.ShouldStop());
  EXPECT_TRUE(std::isinf(stopper.best_score()));
}

TEST(DropoutTest, MaskDeterministicPerSeedAcrossThreadCounts) {
  const Tensor x = Tensor::Ones({4096});
  Tensor reference;
  for (int threads : {1, 8}) {
    WithThreads(threads, [&] {
      Rng rng(77);
      Dropout dropout(0.5f, rng);
      dropout.SetTraining(true);
      const Tensor out = dropout.Forward(Variable(x)).value();
      if (threads == 1) {
        reference = out;
      } else {
        EXPECT_TRUE(BitwiseEqual(out, reference));
      }
    });
  }
  // Sanity: the mask actually dropped something and scaled survivors.
  int64_t zeros = 0;
  for (int64_t i = 0; i < reference.numel(); ++i) {
    if (reference.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(reference.data()[i], 2.0f);
    }
  }
  EXPECT_GT(zeros, 0);
  EXPECT_LT(zeros, reference.numel());
}

TEST(ThreadInvarianceTest, ModelForwardIdenticalAcrossThreadCounts) {
  SeasonalConfig gen;
  gen.steps = 400;
  gen.channels = 3;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  WindowDataset data(series, options);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2, 3});

  auto forward = [&]() {
    ForecasterDims dims{48, 12, data.channels()};
    ModelOptions mo;
    mo.seed = 5;
    mo.dropout = 0.0f;
    std::unique_ptr<Forecaster> model = CreateModel("patchtst", dims, mo);
    model->SetTraining(false);
    NoGradGuard ng;
    return model->Forward(batch).value();
  };

  Tensor reference;
  WithThreads(1, [&] { reference = forward(); });
  for (int threads : {2, 8}) {
    Tensor got;
    WithThreads(threads, [&] { got = forward(); });
    EXPECT_TRUE(BitwiseEqual(got, reference))
        << "forward differs at " << threads << " threads";
  }
}

}  // namespace
}  // namespace lipformer
