#ifndef LIPFORMER_TESTS_TEST_UTIL_H_
#define LIPFORMER_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/random.h"
#include "tensor/ops.h"

namespace lipformer {
namespace testing {

// Central finite-difference gradient check: builds loss = f(x) twice per
// coordinate and compares the numeric derivative with the autograd
// gradient. Uses double-friendly epsilons tuned for float32 tensors.
inline void CheckGradient(
    const std::function<Variable(const Variable&)>& f, Tensor x0,
    float eps = 1e-2f, float atol = 2e-2f, float rtol = 5e-2f) {
  Variable x(x0.Clone(), /*requires_grad=*/true);
  Variable loss = f(x);
  ASSERT_EQ(loss.numel(), 1) << "gradient check needs a scalar loss";
  loss.Backward();
  const Tensor grad = x.grad().Clone();

  Tensor probe = x0.Clone();
  Variable xp(probe, /*requires_grad=*/false);
  float* p = probe.data();
  for (int64_t i = 0; i < probe.numel(); ++i) {
    const float orig = p[i];
    p[i] = orig + eps;
    const float up = f(xp).value().item();
    p[i] = orig - eps;
    const float down = f(xp).value().item();
    p[i] = orig;
    const float numeric = (up - down) / (2.0f * eps);
    const float analytic = grad.data()[i];
    const float tol = atol + rtol * std::fabs(numeric);
    EXPECT_NEAR(analytic, numeric, tol)
        << "coordinate " << i << " of " << probe.numel();
  }
}

inline Tensor RandomTensor(Shape shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale);
}

}  // namespace testing
}  // namespace lipformer

#endif  // LIPFORMER_TESTS_TEST_UTIL_H_
