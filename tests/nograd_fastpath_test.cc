// Inference fast path: under NoGradGuard, ops must return plain value
// Variables — no tape nodes (MakeNode never reached), no parent capture,
// no requires_grad — and the produced values must be bitwise identical to
// the ones computed through the recorded-tape path.

#include <cstring>

#include <gtest/gtest.h>

#include "core/lipformer.h"
#include "data/synthetic.h"
#include "nn/attention.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(NoGradFastPathTest, OpsSkipMakeNodeUnderNoGradGuard) {
  Variable a(RandomTensor({4, 8}, 1), /*requires_grad=*/true);
  Variable b(RandomTensor({4, 8}, 2), /*requires_grad=*/true);
  NoGradGuard ng;
  internal::ResetMakeNodeCalls();
  Variable c = Mul(Add(a, b), a);
  Variable d = Softmax(MatMulTransB(c, b), -1);
  Variable e = SumAll(Gelu(d));
  EXPECT_EQ(internal::MakeNodeCalls(), 0)
      << "no tape nodes may be built inside NoGradGuard";
  EXPECT_FALSE(e.requires_grad());
  EXPECT_TRUE(c.impl()->parents.empty()) << "fast path must not capture parents";
  EXPECT_FALSE(static_cast<bool>(c.impl()->backward_fn));
}

TEST(NoGradFastPathTest, ModelForwardSkipsMakeNode) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  config.seed = 5;
  LiPFormer model(config);
  model.SetTraining(false);

  Batch batch;
  batch.size = 2;
  batch.x = RandomTensor({2, 48, 2}, 3);
  batch.y = Tensor::Zeros({2, 12, 2});

  NoGradGuard ng;
  internal::ResetMakeNodeCalls();
  Variable pred = model.Forward(batch);
  EXPECT_EQ(internal::MakeNodeCalls(), 0);
  EXPECT_FALSE(pred.requires_grad());
  EXPECT_TRUE(pred.impl()->parents.empty());
}

TEST(NoGradFastPathTest, FastPathOutputBitwiseMatchesTapedPath) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  config.seed = 5;
  LiPFormer model(config);
  model.SetTraining(false);

  Batch batch;
  batch.size = 2;
  batch.x = RandomTensor({2, 48, 2}, 3);
  batch.y = Tensor::Zeros({2, 12, 2});

  Tensor taped;
  {
    internal::ResetMakeNodeCalls();
    Variable pred = model.Forward(batch);
    EXPECT_GT(internal::MakeNodeCalls(), 0)
        << "sanity: the taped path must actually build nodes";
    taped = pred.value().Clone();
  }
  Tensor fast;
  {
    NoGradGuard ng;
    fast = model.Forward(batch).value().Clone();
  }
  EXPECT_TRUE(BitwiseEqual(taped, fast))
      << "fast-path inference must be bitwise identical to the taped path";
}

}  // namespace
}  // namespace lipformer
