// Crash-safety tests: the atomic write layer, checkpoint truncation
// handling, training-state snapshots, exact (bitwise) resume, the
// non-finite step guard with rollback, and fault injection itself.
//
// Hard kills (_Exit) are exercised by scripts/check_crash_resume.sh (the
// `crash_resume` ctest) — in-process tests cover everything that does not
// require killing the test binary.

#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/interrupt.h"
#include "core/lipformer.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "serve/checkpoint.h"
#include "train/snapshot.h"
#include "train/trainer.h"

namespace lipformer {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool ParamsBitwiseEqual(Module& a, Module& b) {
  std::vector<Variable> pa = a.Parameters();
  std::vector<Variable> pb = b.Parameters();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (!BitwiseEqual(pa[i].value(), pb[i].value())) return false;
  }
  return true;
}

bool ParamsAllFinite(Module& m) {
  for (const Variable& p : m.Parameters()) {
    const float* d = p.value().data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      if (!std::isfinite(d[i])) return false;
    }
  }
  return true;
}

// Small real workload shared by the resume tests: seasonal series, small
// LiPFormer with dropout ACTIVE so the per-module RNG streams matter.
WindowDataset SmallWindows() {
  SeasonalConfig config;
  config.steps = 800;
  config.channels = 3;
  config.seed = 9;
  config.noise_std = 0.2;
  TimeSeries series = GenerateSeasonal(config);
  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  return WindowDataset(series, options);
}

LiPFormer SmallModel() {
  LiPFormerConfig config;
  config.input_len = 96;
  config.pred_len = 24;
  config.channels = 3;
  config.patch_len = 24;
  config.hidden_dim = 16;
  config.dropout = 0.1f;
  config.seed = 3;
  return LiPFormer(config);
}

TrainConfig FastConfig() {
  TrainConfig config;
  config.epochs = 4;
  config.patience = 4;
  config.batch_size = 32;
  config.max_batches_per_epoch = 10;
  config.max_eval_batches = 5;
  config.seed = 21;
  return config;
}

// Every test starts and ends with fault injection disarmed and the
// interrupt flag clear; leaking either would poison unrelated tests.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Disarm();
    ClearInterrupt();
  }
  void TearDown() override {
    fault::Disarm();
    ClearInterrupt();
  }
};

// ---- Atomic write layer ----

TEST_F(RobustnessTest, AtomicWritePublishesOnCommitOnly) {
  const std::string path = TempPath("atomic_commit.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "v1", 2).ok());
  EXPECT_EQ(ReadFileOrDie(path), "v1");

  {
    // Appended but never committed: the target must keep its old bytes
    // and the temp file must be unlinked on destruction.
    Result<AtomicFile> created = AtomicFile::Create(path);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    AtomicFile file = std::move(created.value());
    ASSERT_TRUE(file.Append("partial garbage", 15).ok());
  }
  EXPECT_EQ(ReadFileOrDie(path), "v1");

  ASSERT_TRUE(AtomicWriteFile(path, "v2!", 3).ok());
  EXPECT_EQ(ReadFileOrDie(path), "v2!");
}

TEST_F(RobustnessTest, InjectedWriteFailureLeavesTargetByteIdentical) {
  const std::string path = TempPath("atomic_torn.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "precious", 8).ok());

  fault::Arm("fail_write_after_bytes=4");
  const char big[64] = "this write is doomed past byte four";
  const Status st = AtomicWriteFile(path, big, sizeof(big));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  fault::Disarm();

  EXPECT_EQ(ReadFileOrDie(path), "precious");
  // And the layer still works once the fault is gone.
  ASSERT_TRUE(AtomicWriteFile(path, big, sizeof(big)).ok());
}

TEST_F(RobustnessTest, CheckpointWriteFailureLeavesPreviousCheckpoint) {
  const std::string path = TempPath("ckpt_torn.ckpt");
  serve::Checkpoint ckpt;
  ckpt.metadata["k"] = "v";
  ckpt.tensors.push_back({"w", Tensor::Ones({4, 3})});
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());
  const std::string before = ReadFileOrDie(path);

  fault::Arm("fail_write_after_bytes=10");
  EXPECT_FALSE(serve::WriteCheckpoint(path, ckpt).ok());
  fault::Disarm();

  EXPECT_EQ(ReadFileOrDie(path), before);
  EXPECT_TRUE(serve::ReadCheckpoint(path).ok());
}

// ---- Truncation sweep ----

// Every strict prefix of a valid v2 checkpoint must yield a typed error —
// never a crash, never a silent partial load.
TEST_F(RobustnessTest, CheckpointTruncationSweepAlwaysFailsCleanly) {
  const std::string path = TempPath("sweep_full.ckpt");
  serve::Checkpoint ckpt;
  ckpt.metadata["model"] = "test";
  ckpt.metadata["empty"] = "";
  ckpt.tensors.push_back({"a", Tensor::Ones({2, 3})});
  ckpt.tensors.push_back({"__opt__.m.a", Tensor::Full({2, 3}, 0.5f)});
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());

  const std::string bytes = ReadFileOrDie(path);
  ASSERT_GT(bytes.size(), 0u);
  ASSERT_TRUE(serve::ReadCheckpoint(path).ok());

  const std::string trunc = TempPath("sweep_trunc.ckpt");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileOrDie(trunc, bytes.substr(0, len));
    Result<serve::Checkpoint> loaded = serve::ReadCheckpoint(trunc);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes (of "
                              << bytes.size() << ") loaded successfully";
  }
}

// ---- Training-state snapshots ----

TEST_F(RobustnessTest, SnapshotSaveLoadRestoreRoundTrip) {
  WindowDataset data = SmallWindows();
  LiPFormer model = SmallModel();
  AdamW optimizer(model.Parameters(), 1e-3f);
  EarlyStopping stopper(3);
  stopper.Update(0.5f);
  Rng loader_rng(77);
  loader_rng.UniformInt(10);  // advance off the seed state

  TrainCursor cursor;
  cursor.epoch = 2;
  cursor.batch = 5;
  cursor.global_step = 25;
  cursor.epochs_run = 2;
  cursor.epoch_loss = 1.25;
  cursor.nonfinite_steps = 1;
  cursor.rollbacks = 1;
  cursor.lr = 0.5e-3f;
  cursor.lr_scale = 0.5f;

  std::vector<Tensor> best;
  for (const Variable& p : model.Parameters()) best.push_back(p.value().Clone());

  const TrainState state = CaptureTrainState(&model, best, optimizer, stopper,
                                             loader_rng, cursor);
  const std::string path = TempPath("train_state.snap");
  ASSERT_TRUE(SaveTrainState(path, state).ok());

  Result<TrainState> loaded = LoadTrainState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().cursor.epoch, 2);
  EXPECT_EQ(loaded.value().cursor.batch, 5);
  EXPECT_EQ(loaded.value().cursor.global_step, 25);
  EXPECT_EQ(loaded.value().cursor.epoch_loss, 1.25);
  EXPECT_EQ(loaded.value().cursor.lr, 0.5e-3f);
  EXPECT_EQ(loaded.value().cursor.lr_scale, 0.5f);
  EXPECT_EQ(loaded.value().opt_step, optimizer.step_count());
  EXPECT_EQ(loaded.value().stopper_best, 0.5f);
  EXPECT_EQ(loaded.value().loader_rng, state.loader_rng);
  EXPECT_EQ(loaded.value().module_rngs.size(), state.module_rngs.size());

  // Restore into a DIFFERENTLY seeded twin: params and rng streams must
  // become bitwise identical to the captured model's.
  LiPFormerConfig other_config = SmallModel().config();
  other_config.seed = 12345;
  LiPFormer twin(other_config);
  ASSERT_FALSE(ParamsBitwiseEqual(model, twin));
  AdamW twin_opt(twin.Parameters(), 1e-3f);
  EarlyStopping twin_stopper(3);
  Rng twin_rng(1);
  TrainCursor twin_cursor;
  ASSERT_TRUE(RestoreTrainState(loaded.value(), &twin, &best, &twin_opt,
                                &twin_stopper, &twin_rng, &twin_cursor)
                  .ok());
  EXPECT_TRUE(ParamsBitwiseEqual(model, twin));
  EXPECT_EQ(twin_stopper.best_score(), 0.5f);
  EXPECT_EQ(twin_opt.step_count(), optimizer.step_count());
  EXPECT_EQ(twin_cursor.global_step, 25);
  // The loader stream continues exactly where the captured one stood.
  Rng captured_copy(0);
  captured_copy.ImportState(state.loader_rng.data());
  EXPECT_EQ(captured_copy.UniformInt(1000000), twin_rng.UniformInt(1000000));
  // Module streams too.
  auto model_rngs = model.NamedRngs();
  auto twin_rngs = twin.NamedRngs();
  ASSERT_EQ(model_rngs.size(), twin_rngs.size());
  ASSERT_GT(model_rngs.size(), 0u) << "dropout streams should be registered";
  for (size_t i = 0; i < model_rngs.size(); ++i) {
    EXPECT_EQ(model_rngs[i].second->UniformInt(1000000),
              twin_rngs[i].second->UniformInt(1000000))
        << model_rngs[i].first;
  }
}

TEST_F(RobustnessTest, ResumeRejectsPlainCheckpointsAndCorruptSnapshots) {
  WindowDataset data = SmallWindows();
  LiPFormer model = SmallModel();

  // A plain parameter checkpoint is not a training snapshot.
  const std::string plain = TempPath("plain_params.ckpt");
  ASSERT_TRUE(model.SaveParameters(plain).ok());
  TrainConfig config = FastConfig();
  config.resume_path = plain;
  TrainResult result = TrainAndEvaluate(&model, data, config);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.epochs_run, 0);
  EXPECT_NE(result.status.message().find("training snapshot"),
            std::string::npos)
      << result.status.message();

  // A truncated snapshot fails with a typed error, not a crash.
  const std::string snap = TempPath("to_corrupt.snap");
  {
    LiPFormer fresh = SmallModel();
    TrainConfig one = FastConfig();
    one.epochs = 1;
    one.snapshot_path = snap;
    TrainAndEvaluate(&fresh, data, one);
  }
  const std::string bytes = ReadFileOrDie(snap);
  WriteFileOrDie(snap, bytes.substr(0, bytes.size() / 2));
  LiPFormer victim = SmallModel();
  TrainConfig corrupt = FastConfig();
  corrupt.resume_path = snap;
  result = TrainAndEvaluate(&victim, data, corrupt);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.epochs_run, 0);
}

// ---- Exact resume ----

TEST_F(RobustnessTest, ResumeFromEpochBoundaryIsBitwiseIdentical) {
  WindowDataset data = SmallWindows();

  LiPFormer reference = SmallModel();
  const TrainResult ref = TrainAndEvaluate(&reference, data, FastConfig());

  // Same run, stopped cleanly after 2 of 4 epochs...
  const std::string snap = TempPath("boundary.snap");
  LiPFormer half = SmallModel();
  TrainConfig first = FastConfig();
  first.epochs = 2;
  first.snapshot_path = snap;
  TrainAndEvaluate(&half, data, first);

  // ...then finished from the snapshot in a fresh process-equivalent
  // (fresh model object, fresh optimizer, fresh loader).
  LiPFormer resumed = SmallModel();
  TrainConfig second = FastConfig();
  second.resume_path = snap;
  const TrainResult res = TrainAndEvaluate(&resumed, data, second);

  ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  EXPECT_TRUE(ParamsBitwiseEqual(reference, resumed))
      << "resumed weights diverged from the uninterrupted run";
  EXPECT_EQ(ref.best_val_loss, res.best_val_loss);
  EXPECT_EQ(ref.test.mse, res.test.mse);
  // epochs_run is cumulative across resume (2 restored + 2 new).
  EXPECT_EQ(ref.epochs_run, res.epochs_run);
}

TEST_F(RobustnessTest, ResumeFromMidEpochInterruptIsBitwiseIdentical) {
  WindowDataset data = SmallWindows();

  LiPFormer reference = SmallModel();
  const TrainResult ref = TrainAndEvaluate(&reference, data, FastConfig());

  // Interrupt mid-epoch (step 5 of 10-batch epochs) via the same flag the
  // SIGINT/SIGTERM handlers set.
  const std::string snap = TempPath("midepoch.snap");
  fault::Arm("interrupt_after_step=5");
  LiPFormer killed = SmallModel();
  TrainConfig first = FastConfig();
  first.snapshot_path = snap;
  const TrainResult stopped = TrainAndEvaluate(&killed, data, first);
  EXPECT_TRUE(stopped.interrupted);
  fault::Disarm();
  ClearInterrupt();

  LiPFormer resumed = SmallModel();
  TrainConfig second = FastConfig();
  second.resume_path = snap;
  const TrainResult res = TrainAndEvaluate(&resumed, data, second);

  ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  EXPECT_FALSE(res.interrupted);
  EXPECT_TRUE(ParamsBitwiseEqual(reference, resumed))
      << "mid-epoch resume diverged from the uninterrupted run";
  EXPECT_EQ(ref.best_val_loss, res.best_val_loss);
  EXPECT_EQ(ref.test.mse, res.test.mse);
}

// ---- Non-finite guard ----

TEST_F(RobustnessTest, PoisonedStepIsSkippedAndCounted) {
  WindowDataset data = SmallWindows();
  fault::Arm("poison_grad_at_step=3");
  LiPFormer model = SmallModel();
  TrainConfig config = FastConfig();
  config.epochs = 2;
  const TrainResult result = TrainAndEvaluate(&model, data, config);
  fault::Disarm();

  EXPECT_EQ(result.nonfinite_steps, 1);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_TRUE(result.status.ok());
  EXPECT_TRUE(ParamsAllFinite(model))
      << "a skipped NaN step must not reach the weights";
  EXPECT_TRUE(std::isfinite(result.test.mse));
}

TEST_F(RobustnessTest, RepeatedPoisonTriggersRollbackWithHalvedLr) {
  WindowDataset data = SmallWindows();
  // Steps 2..13 all poisoned: with patience 3 the guard must roll back to
  // the epoch start (several times, halving the lr each time) and still
  // finish training once the window passes.
  fault::Arm("poison_grad_at_step=2,poison_grad_steps=12");
  LiPFormer model = SmallModel();
  TrainConfig config = FastConfig();
  config.epochs = 2;
  config.nonfinite_patience = 3;
  const TrainResult result = TrainAndEvaluate(&model, data, config);
  fault::Disarm();

  EXPECT_TRUE(result.status.ok());
  EXPECT_GE(result.rollbacks, 1);
  EXPECT_GE(result.nonfinite_steps, 3);
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_TRUE(ParamsAllFinite(model));
  EXPECT_TRUE(std::isfinite(result.test.mse));
}

// ---- Snapshot writes under injected write failures ----

TEST_F(RobustnessTest, FailedSnapshotWritesOnlyWarnAndPreserveOldSnapshot) {
  WindowDataset data = SmallWindows();
  const std::string snap = TempPath("surviving.snap");
  {
    LiPFormer model = SmallModel();
    TrainConfig config = FastConfig();
    config.epochs = 1;
    config.snapshot_path = snap;
    ASSERT_TRUE(TrainAndEvaluate(&model, data, config).status.ok());
  }
  const std::string before = ReadFileOrDie(snap);

  fault::Arm("fail_write_after_bytes=256");
  LiPFormer model = SmallModel();
  TrainConfig config = FastConfig();
  config.epochs = 2;
  config.snapshot_path = snap;
  const TrainResult result = TrainAndEvaluate(&model, data, config);
  fault::Disarm();

  EXPECT_TRUE(result.status.ok())
      << "snapshot write failures must not fail training";
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_EQ(ReadFileOrDie(snap), before)
      << "a torn snapshot write corrupted the previous snapshot";
  EXPECT_TRUE(LoadTrainState(snap).ok());
}

// ---- Serving-path fault directive parsing ----

TEST_F(RobustnessTest, TryArmRejectsMalformedAndUnknownDirectives) {
  std::string error;
  EXPECT_FALSE(fault::TryArm("slow_infer_ms", &error));
  EXPECT_NE(error.find("key=value"), std::string::npos) << error;

  EXPECT_FALSE(fault::TryArm("slow_infer_ms=abc", &error));
  EXPECT_NE(error.find("non-negative integer"), std::string::npos) << error;

  EXPECT_FALSE(fault::TryArm("slow_infer_ms=-3", &error));
  EXPECT_FALSE(fault::TryArm("slow_infer_ms=5ms", &error));  // trailing junk

  EXPECT_FALSE(fault::TryArm("bogus_point=1", &error));
  EXPECT_NE(error.find("bogus_point"), std::string::npos) << error;
}

// A spec that mixes one valid directive with one bad directive must arm
// nothing at all — a half-armed fault plan would make chaos runs
// unreproducible.
TEST_F(RobustnessTest, TryArmIsAllOrNothing) {
  std::string error;
  EXPECT_FALSE(fault::TryArm("fail_open_at=1,bogus=2", &error));
  EXPECT_FALSE(fault::ShouldFailOpen());
}

TEST_F(RobustnessTest, ServingCallCountersAreOneBasedAndResetOnArm) {
  std::string error;
  ASSERT_TRUE(fault::TryArm("fail_open_at=2", &error)) << error;
  EXPECT_FALSE(fault::ShouldFailOpen());  // call 1
  EXPECT_TRUE(fault::ShouldFailOpen());   // call 2 (default count = 1)
  EXPECT_FALSE(fault::ShouldFailOpen());  // call 3: window closed

  // Re-arming resets the counter, so the window is "from now" — the
  // chaos harness relies on this to retarget faults mid-run.
  ASSERT_TRUE(fault::TryArm("fail_open_at=2,fail_open_count=2", &error))
      << error;
  EXPECT_FALSE(fault::ShouldFailOpen());  // call 1
  EXPECT_TRUE(fault::ShouldFailOpen());   // call 2
  EXPECT_TRUE(fault::ShouldFailOpen());   // call 3 (count = 2)
  EXPECT_FALSE(fault::ShouldFailOpen());  // call 4
}

TEST_F(RobustnessTest, SlowAndPoisonWindowsComposeOnInferCalls) {
  std::string error;
  ASSERT_TRUE(fault::TryArm(
      "slow_infer_ms=7,slow_infer_at=2,slow_infer_count=1,poison_output_at=3",
      &error))
      << error;
  const fault::InferFault first = fault::OnInferCall();
  EXPECT_EQ(first.delay_ms, 0);
  EXPECT_FALSE(first.poison_output);
  const fault::InferFault second = fault::OnInferCall();
  EXPECT_EQ(second.delay_ms, 7);
  EXPECT_FALSE(second.poison_output);
  const fault::InferFault third = fault::OnInferCall();
  EXPECT_EQ(third.delay_ms, 0);
  EXPECT_TRUE(third.poison_output);
  const fault::InferFault fourth = fault::OnInferCall();
  EXPECT_EQ(fourth.delay_ms, 0);
  EXPECT_FALSE(fourth.poison_output);
}

TEST_F(RobustnessTest, WatcherStallDirectiveArmsAndDisarms) {
  std::string error;
  ASSERT_TRUE(fault::TryArm("watcher_stall_ms=40", &error)) << error;
  EXPECT_EQ(fault::WatcherStallMs(), 40);
  fault::Disarm();
  EXPECT_EQ(fault::WatcherStallMs(), 0);
}

}  // namespace
}  // namespace lipformer
