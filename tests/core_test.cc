#include <cmath>

#include <gtest/gtest.h>

#include "core/covariate_augmented.h"
#include "core/instance_norm.h"
#include "core/lipformer.h"
#include "core/patching.h"
#include "data/synthetic.h"
#include "models/transformer.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

TEST(PatchingTest, ReshapesWithoutReordering) {
  Tensor x({1, 8}, {0, 1, 2, 3, 4, 5, 6, 7});
  Variable patches = MakePatches(Variable(x), 4);
  EXPECT_EQ(patches.shape(), (Shape{1, 2, 4}));
  EXPECT_FLOAT_EQ(patches.value().at({0, 0, 3}), 3.0f);
  EXPECT_FLOAT_EQ(patches.value().at({0, 1, 0}), 4.0f);
}

TEST(PatchingTest, TrendSequencesCollectFixedOffsets) {
  // Figure 2: trend j = (x_j, x_{j+pl}, x_{j+2pl}, ...).
  Tensor x({1, 9}, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  Variable patches = MakePatches(Variable(x), 3);
  Variable trends = TrendSequences(patches);
  EXPECT_EQ(trends.shape(), (Shape{1, 3, 3}));
  // Trend 0 = {0, 3, 6}; trend 2 = {2, 5, 8}.
  EXPECT_FLOAT_EQ(trends.value().at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(trends.value().at({0, 0, 1}), 3.0f);
  EXPECT_FLOAT_EQ(trends.value().at({0, 0, 2}), 6.0f);
  EXPECT_FLOAT_EQ(trends.value().at({0, 2, 1}), 5.0f);
}

TEST(PatchingTest, NumTargetPatchesCeils) {
  EXPECT_EQ(NumTargetPatches(96, 48), 2);
  EXPECT_EQ(NumTargetPatches(100, 48), 3);
  EXPECT_EQ(NumTargetPatches(24, 48), 1);
}

TEST(InstanceNormTest, SubtractsLastValueAndRestores) {
  Tensor x({1, 3, 2}, {1, 10, 2, 20, 3, 30});
  auto [normalized, state] = InstanceNormalize(Variable(x));
  // Last row (3, 30) subtracted everywhere.
  EXPECT_FLOAT_EQ(normalized.value().at({0, 0, 0}), -2.0f);
  EXPECT_FLOAT_EQ(normalized.value().at({0, 2, 1}), 0.0f);
  Variable restored = InstanceDenormalize(normalized, state);
  EXPECT_TRUE(AllClose(restored.value(), x, 1e-6f, 1e-6f));
}

BasePredictorConfig SmallBaseConfig() {
  BasePredictorConfig config;
  config.input_len = 48;
  config.pred_len = 20;  // deliberately not a multiple of patch_len
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.dropout = 0.0f;
  return config;
}

TEST(BasePredictorTest, OutputShapeWithRaggedHorizon) {
  Rng rng(1);
  BasePredictor base(SmallBaseConfig(), rng);
  Variable y = base.Forward(Variable(RandomTensor({6, 48}, 2)));
  EXPECT_EQ(y.shape(), (Shape{6, 20}));
}

TEST(BasePredictorTest, AblationFlagsChangeParameterCounts) {
  Rng rng(1);
  BasePredictorConfig config = SmallBaseConfig();
  BasePredictor vanilla(config, rng);

  BasePredictorConfig with_ffn = config;
  with_ffn.use_ffn = true;
  Rng rng2(1);
  BasePredictor ffn(with_ffn, rng2);
  EXPECT_GT(ffn.ParameterCount(), vanilla.ParameterCount());

  BasePredictorConfig with_ln = config;
  with_ln.use_layer_norm = true;
  Rng rng3(1);
  BasePredictor ln(with_ln, rng3);
  EXPECT_EQ(ln.ParameterCount(),
            vanilla.ParameterCount() + 2 * config.hidden_dim);

  BasePredictorConfig no_cross = config;
  no_cross.use_cross_patch = false;
  Rng rng4(1);
  BasePredictor nc(no_cross, rng4);
  EXPECT_LT(nc.ParameterCount(), vanilla.ParameterCount());
}

TEST(BasePredictorTest, RejectsIndivisiblePatchLength) {
  BasePredictorConfig config = SmallBaseConfig();
  config.patch_len = 13;
  Rng rng(1);
  EXPECT_DEATH({ BasePredictor bad(config, rng); }, "divide");
}

CovariateEncoderConfig SmallCovConfig() {
  CovariateEncoderConfig config;
  config.pred_len = 12;
  config.num_numeric = 3;
  config.categorical_cardinalities = {5, 2};
  config.embed_dim = 4;
  config.hidden_dim = 8;
  config.num_heads = 2;
  return config;
}

TEST(CovariateEncoderTest, EncodesToHorizonVector) {
  Rng rng(3);
  CovariateEncoder encoder(SmallCovConfig(), rng);
  Tensor num = RandomTensor({4, 12, 3}, 5);
  Tensor cat = Tensor::Zeros({4, 12, 2});
  Variable vc = encoder.Encode(num, cat);
  EXPECT_EQ(vc.shape(), (Shape{4, 12}));
}

TEST(CovariateEncoderTest, CategoricalCodesChangeOutput) {
  Rng rng(3);
  CovariateEncoder encoder(SmallCovConfig(), rng);
  Tensor num = RandomTensor({2, 12, 3}, 5);
  Tensor cat0 = Tensor::Zeros({2, 12, 2});
  Tensor cat1 = Tensor::Ones({2, 12, 2});
  Tensor a = encoder.Encode(num, cat0).value().Clone();
  Tensor b = encoder.Encode(num, cat1).value().Clone();
  EXPECT_FALSE(AllClose(a, b, 1e-4f, 1e-4f));
}

TEST(TargetEncoderTest, EncodesTargets) {
  Rng rng(7);
  TargetEncoder encoder(12, 3, 8, 2, rng);
  Variable vt = encoder.Encode(RandomTensor({4, 12, 3}, 8));
  EXPECT_EQ(vt.shape(), (Shape{4, 12}));
}

WindowDataset CovariateWindows(int64_t steps = 900) {
  CovariateDrivenConfig config;
  config.steps = steps;
  config.channels = 2;
  config.seed = 21;
  config.numeric_covariates = 4;
  config.categorical_covariates = 1;
  config.categorical_cardinality = 3;
  config.covariate_strength = 1.5;
  config.seasonal_strength = 0.2;
  config.noise_std = 0.1;
  TimeSeries series = GenerateCovariateDriven(config);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 12;
  return WindowDataset(series, options);
}

TEST(DualEncoderTest, LogitsAreSquareAndScaled) {
  WindowDataset data = CovariateWindows();
  Rng rng(9);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2, 3, 4});
  Variable logits = dual.Logits(batch);
  EXPECT_EQ(logits.shape(), (Shape{5, 5}));
  // Cosine-similarity logits are bounded by the temperature.
  const float temp = dual.temperature();
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_LE(std::fabs(logits.value().data()[i]), temp * 1.001f);
  }
}

TEST(DualEncoderTest, PretrainingReducesContrastiveLoss) {
  WindowDataset data = CovariateWindows();
  Rng rng(11);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  PretrainConfig config;
  config.epochs = 4;
  config.batch_size = 32;
  config.lr = 2e-3f;
  PretrainResult result = PretrainDualEncoder(&dual, data, config);
  EXPECT_GT(result.steps, 0);
  EXPECT_LT(result.final_loss, result.first_epoch_loss);
}

TEST(DualEncoderTest, PretrainingAlignsDiagonal) {
  WindowDataset data = CovariateWindows();
  Rng rng(13);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  PretrainConfig config;
  config.epochs = 5;
  config.batch_size = 32;
  config.lr = 2e-3f;
  PretrainDualEncoder(&dual, data, config);

  dual.SetTraining(false);
  NoGradGuard ng;
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < 16; ++i) ids.push_back(i * 4);
  Batch batch = data.MakeBatch(Split::kVal, ids);
  Tensor logits = dual.Logits(batch).value();
  // Diagonal mean should exceed off-diagonal mean after alignment.
  double diag = 0.0, off = 0.0;
  const int64_t b = 16;
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < b; ++j) {
      if (i == j) {
        diag += logits.at({i, j});
      } else {
        off += logits.at({i, j});
      }
    }
  }
  diag /= b;
  off /= b * (b - 1);
  EXPECT_GT(diag, off);
}

TEST(LiPFormerTest, ForwardShapeWithoutEncoder) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  LiPFormer model(config);
  WindowDataset data = CovariateWindows();
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2});
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{3, 12, 2}));
  EXPECT_FALSE(model.has_covariate_encoder());
}

TEST(LiPFormerTest, AttachingEncoderAddsMappingParameters) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  LiPFormer model(config);
  const int64_t before = model.ParameterCount();

  WindowDataset data = CovariateWindows();
  Rng rng(15);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  model.AttachCovariateEncoder(dual.covariate_encoder());
  EXPECT_TRUE(model.has_covariate_encoder());
  // Vector mapping (L x L + L) plus channel gain (c).
  EXPECT_EQ(model.ParameterCount(), before + 12 * 12 + 12 + 2);

  Batch batch = data.MakeBatch(Split::kTrain, {0, 1});
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{2, 12, 2}));
}

TEST(LiPFormerTest, FrozenEncoderGetsNoGradients) {
  WindowDataset data = CovariateWindows();
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  LiPFormer model(config);
  Rng rng(17);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  dual.SetRequiresGrad(false);
  model.AttachCovariateEncoder(dual.covariate_encoder());

  Batch batch = data.MakeBatch(Split::kTrain, {0, 1});
  MseLoss(model.Forward(batch), batch.y).Backward();
  for (const Variable& p : dual.covariate_encoder()->Parameters()) {
    EXPECT_FALSE(p.has_grad());
  }
  // But the vector mapping does learn.
  bool mapping_has_grad = false;
  const auto params = model.Parameters();
  const auto names = model.ParameterNames();
  for (size_t i = 0; i < params.size(); ++i) {
    if (names[i].rfind("vector_mapping", 0) == 0 && params[i].has_grad()) {
      mapping_has_grad = true;
    }
  }
  EXPECT_TRUE(mapping_has_grad);
}

TEST(LiPFormerTest, AblationSwitchesAffectParameters) {
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 12;
  config.channels = 2;
  config.patch_len = 12;
  config.hidden_dim = 16;
  LiPFormer lean(config);

  LiPFormerConfig heavy_config = config;
  heavy_config.use_ffn = true;
  heavy_config.use_layer_norm = true;
  LiPFormer heavy(heavy_config);
  EXPECT_GT(heavy.ParameterCount(), lean.ParameterCount());
}

TEST(CovariateAugmentedTest, WrapsAnyForecasterAndKeepsShape) {
  WindowDataset data = CovariateWindows();
  ForecasterDims dims{48, 12, 2};
  TransformerConfig tconfig;
  tconfig.model_dim = 16;
  tconfig.num_heads = 2;
  tconfig.num_layers = 1;
  tconfig.ffn_dim = 32;
  tconfig.dropout = 0.0f;
  auto base = std::make_unique<VanillaTransformer>(dims, tconfig, 1);
  Rng rng(19);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  dual.SetRequiresGrad(false);

  CovariateAugmentedForecaster wrapped(std::move(base),
                                       dual.covariate_encoder());
  EXPECT_EQ(wrapped.name(), "Transformer+CovariateEncoder");
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2});
  EXPECT_EQ(wrapped.Forward(batch).shape(), (Shape{3, 12, 2}));

  // Gradients reach the wrapped base model.
  MseLoss(wrapped.Forward(batch), batch.y).Backward();
  bool base_has_grad = false;
  const auto params = wrapped.Parameters();
  const auto names = wrapped.ParameterNames();
  for (size_t i = 0; i < params.size(); ++i) {
    if (names[i].rfind("base.", 0) == 0 && params[i].has_grad()) {
      base_has_grad = true;
    }
  }
  EXPECT_TRUE(base_has_grad);
}

TEST(CoreDeathTest, EncoderHorizonMismatchIsRejected) {
  WindowDataset data = CovariateWindows();
  Rng rng(23);
  DualEncoder dual(MakeCovariateConfig(data, 12, 8), 2, rng);
  LiPFormerConfig config;
  config.input_len = 48;
  config.pred_len = 24;  // mismatched horizon
  config.channels = 2;
  config.patch_len = 12;
  LiPFormer model(config);
  EXPECT_DEATH(model.AttachCovariateEncoder(dual.covariate_encoder()),
               "horizon");
}

}  // namespace
}  // namespace lipformer
