#include <cmath>

#include <gtest/gtest.h>

#include "optim/adamw.h"
#include "optim/early_stopping.h"
#include "optim/lr_scheduler.h"
#include "optim/sgd.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

// Minimizes f(w) = ||w - target||^2 and returns the final w.
template <typename MakeOpt>
Tensor Minimize(MakeOpt make_opt, int64_t steps) {
  Variable w(Tensor({3}, {5.0f, -4.0f, 2.0f}), /*requires_grad=*/true);
  Tensor target({3}, {1.0f, 2.0f, 3.0f});
  auto opt = make_opt(std::vector<Variable>{w});
  for (int64_t i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Variable diff = AddConst(w, Neg(target));
    SumAll(Mul(diff, diff)).Backward();
    opt->Step();
  }
  return w.value().Clone();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Minimize(
      [](std::vector<Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      100);
  EXPECT_NEAR(w.data()[0], 1.0f, 1e-3f);
  EXPECT_NEAR(w.data()[1], 2.0f, 1e-3f);
  EXPECT_NEAR(w.data()[2], 3.0f, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesFirstSteps) {
  Tensor plain = Minimize(
      [](std::vector<Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.01f);
      },
      5);
  Tensor momentum = Minimize(
      [](std::vector<Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.01f, 0.9f);
      },
      5);
  // After a few steps the momentum variant has moved further from the
  // start (5.0) toward the target (1.0).
  EXPECT_LT(momentum.data()[0], plain.data()[0]);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  Tensor w = Minimize(
      [](std::vector<Variable> p) {
        return std::make_unique<AdamW>(std::move(p), 0.1f, 0.9f, 0.999f,
                                       1e-8f, 0.0f);
      },
      300);
  EXPECT_NEAR(w.data()[0], 1.0f, 1e-2f);
  EXPECT_NEAR(w.data()[2], 3.0f, 1e-2f);
}

TEST(AdamWTest, DecoupledWeightDecayShrinksWeights) {
  // With zero gradient, AdamW's decoupled decay still shrinks weights
  // multiplicatively -- the defining difference from L2-in-gradient Adam.
  Variable w(Tensor({1}, {2.0f}), true);
  AdamW opt({w}, /*lr=*/0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  // Install an explicit zero gradient.
  Variable zero_loss = MulScalar(SumAll(w), 0.0f);
  zero_loss.Backward();
  opt.Step();
  EXPECT_NEAR(w.value().data()[0], 2.0f * (1.0f - 0.1f * 0.5f), 1e-5f);
}

TEST(AdamWTest, SkipsParamsWithoutGrad) {
  Variable a(Tensor({1}, {1.0f}), true);
  Variable b(Tensor({1}, {1.0f}), true);
  AdamW opt({a, b}, 0.1f);
  SumAll(Mul(a, a)).Backward();  // only a gets a gradient
  opt.Step();
  EXPECT_NE(a.value().data()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.value().data()[0], 1.0f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Variable w(Tensor({2}, {0.0f, 0.0f}), true);
  Variable loss = SumAll(MulConst(w, Tensor({2}, {3.0f, 4.0f})));
  loss.Backward();  // grad = (3, 4), norm 5
  const float norm = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad().data()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad().data()[1], 0.8f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable w(Tensor({1}, {0.0f}), true);
  SumAll(MulConst(w, Tensor({1}, {0.5f}))).Backward();
  ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(w.grad().data()[0], 0.5f, 1e-6f);
}

TEST(StepLrTest, HalvesEverySteps) {
  Variable w(Tensor({1}, {0.0f}), true);
  Sgd opt({w}, 1.0f);
  StepLr sched(&opt, /*step_size=*/2, /*gamma=*/0.5f);
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);  // epoch 1
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);  // epoch 2
  sched.Step();
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.25f);  // epoch 4
}

TEST(CosineLrTest, DecaysToMin) {
  Variable w(Tensor({1}, {0.0f}), true);
  Sgd opt({w}, 1.0f);
  CosineLr sched(&opt, /*total_epochs=*/10, /*min_lr=*/0.1f);
  for (int i = 0; i < 10; ++i) sched.Step();
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
  sched.Step();  // past the end: clamped
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
}

TEST(EarlyStoppingTest, StopsAfterPatienceBadEpochs) {
  EarlyStopping stop(2);
  EXPECT_TRUE(stop.Update(1.0f));
  EXPECT_FALSE(stop.ShouldStop());
  EXPECT_FALSE(stop.Update(1.1f));
  EXPECT_FALSE(stop.ShouldStop());
  EXPECT_FALSE(stop.Update(1.2f));
  EXPECT_TRUE(stop.ShouldStop());
  EXPECT_FLOAT_EQ(stop.best_score(), 1.0f);
  EXPECT_EQ(stop.best_epoch(), 0);
}

TEST(EarlyStoppingTest, ImprovementResetsCounter) {
  EarlyStopping stop(2);
  stop.Update(1.0f);
  stop.Update(1.5f);
  EXPECT_TRUE(stop.Update(0.5f));
  EXPECT_FALSE(stop.ShouldStop());
  EXPECT_EQ(stop.best_epoch(), 2);
}

}  // namespace
}  // namespace lipformer
