// Tests for the multi-tenant model registry (serve/registry.h): named
// lookup and routing, manual + watcher-driven hot reload over atomic
// renames, the failed-validation-keeps-serving contract, and — under
// TSan via scripts/check_sanitize.sh — zero-downtime submits racing a
// storm of hot swaps.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.h"
#include "models/factory.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

class ModelRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dims_.input_len = 24;
    dims_.pred_len = 6;
    dims_.channels = 2;
    path_a_ = TempPath("registry_a.ckpt");
    path_b_ = TempPath("registry_b.ckpt");
    path_live_ = TempPath("registry_live.ckpt");
    ASSERT_TRUE(SaveBundle(path_a_, dims_, /*seed=*/11));
    ASSERT_TRUE(SaveBundle(path_b_, dims_, /*seed=*/21));
  }

  // Saves a small LiPFormer bundle with weights derived from `seed`, so
  // distinct seeds give bitwise-distinguishable models. Bundle writes go
  // through WriteCheckpoint's atomic temp+rename, i.e. every SaveBundle
  // onto an existing path is an atomic publish.
  bool SaveBundle(const std::string& path, const ForecasterDims& dims,
                  uint64_t seed) {
    ModelOptions options;
    options.hidden_dim = 8;
    options.num_heads = 2;
    options.patch_len = 8;
    options.seed = seed;
    std::unique_ptr<Forecaster> model = CreateModel("lipformer", dims, options);
    Rng rng(12);
    StandardScaler scaler;
    scaler.Fit(Tensor::Randn({64, dims.channels}, rng));
    return serve::SaveModelBundle(path, "lipformer", options, *model, scaler)
        .ok();
  }

  // The serial prediction a direct session of `path` gives for `window`
  // — the bitwise reference for everything the registry returns.
  Tensor DirectPrediction(const std::string& path, const Tensor& window) {
    auto session = serve::InferenceSession::Open(path);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    auto prediction = session.value()->Predict(window);
    EXPECT_TRUE(prediction.ok()) << prediction.status().ToString();
    return prediction.value();
  }

  ForecasterDims dims_;
  std::string path_a_;
  std::string path_b_;
  std::string path_live_;
};

TEST_F(ModelRegistryTest, LoadFindAndRoutedSubmit) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("a", path_a_).ok());
  ASSERT_TRUE(registry.Load("b", path_b_).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.Find("a"), nullptr);
  EXPECT_NE(registry.Find("b"), nullptr);
  EXPECT_EQ(registry.Find("missing"), nullptr);

  const Tensor window = RandomTensor({24, 2}, 31);
  auto answer_a = registry.Submit("a", window).get();
  auto answer_b = registry.Submit("b", window).get();
  ASSERT_TRUE(answer_a.ok()) << answer_a.status().ToString();
  ASSERT_TRUE(answer_b.ok()) << answer_b.status().ToString();
  // Each tenant answers with its own weights, bitwise equal to a direct
  // serial session of its bundle.
  EXPECT_TRUE(BitwiseEqual(answer_a.value(), DirectPrediction(path_a_, window)));
  EXPECT_TRUE(BitwiseEqual(answer_b.value(), DirectPrediction(path_b_, window)));
  EXPECT_FALSE(BitwiseEqual(answer_a.value(), answer_b.value()));

  auto missing = registry.Submit("missing", window).get();
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(ModelRegistryTest, RejectsReservedCharactersInNames) {
  serve::ModelRegistry registry;
  EXPECT_FALSE(registry.Load("", path_a_).ok());
  EXPECT_FALSE(registry.Load("a|b", path_a_).ok());
  EXPECT_FALSE(registry.Load("a,b", path_a_).ok());
  EXPECT_FALSE(registry.Load("a=b", path_a_).ok());
  EXPECT_FALSE(registry.Load("a b", path_a_).ok());
}

TEST_F(ModelRegistryTest, ManualReloadSwapsToNewBundle) {
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/11));
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", path_live_).ok());

  const Tensor window = RandomTensor({24, 2}, 32);
  const Tensor before = DirectPrediction(path_a_, window);  // same seed 11
  auto answer = registry.Submit("m", window).get();
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(BitwiseEqual(answer.value(), before));

  // Atomic publish of different weights at the same path, then reload.
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/21));
  ASSERT_TRUE(registry.Reload("m").ok());

  answer = registry.Submit("m", window).get();
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(BitwiseEqual(answer.value(), DirectPrediction(path_b_, window)));

  ASSERT_EQ(registry.Models().size(), 1u);
  EXPECT_EQ(registry.Models()[0].reloads, 1);
  EXPECT_EQ(registry.Models()[0].reload_failures, 0);
}

TEST_F(ModelRegistryTest, FailedReloadKeepsOldModelServing) {
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/11));
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", path_live_).ok());
  const Tensor window = RandomTensor({24, 2}, 33);
  const Tensor before = registry.Submit("m", window).get().value();

  // Corrupt publish: not a checkpoint at all.
  const char garbage[] = "garbage, not a checkpoint";
  ASSERT_TRUE(AtomicWriteFile(path_live_, garbage, sizeof(garbage)).ok());

  Status reloaded = registry.Reload("m");
  EXPECT_FALSE(reloaded.ok());

  // The previous generation still serves, bitwise unchanged.
  auto answer = registry.Submit("m", window).get();
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(BitwiseEqual(answer.value(), before));

  ASSERT_EQ(registry.Models().size(), 1u);
  EXPECT_EQ(registry.Models()[0].reloads, 0);
  EXPECT_EQ(registry.Models()[0].reload_failures, 1);
  EXPECT_FALSE(registry.Models()[0].last_error.empty());
}

TEST_F(ModelRegistryTest, ReloadRejectsTensorShapeChange) {
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/11));
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", path_live_).ok());
  const Tensor window = RandomTensor({24, 2}, 34);
  const Tensor before = registry.Submit("m", window).get().value();

  // A valid bundle with a different window shape: reload must refuse
  // (the slot's shape is part of the serving contract) and keep serving.
  ForecasterDims other = dims_;
  other.input_len = 16;
  ASSERT_TRUE(SaveBundle(path_live_, other, /*seed=*/21));
  Status reloaded = registry.Reload("m");
  ASSERT_FALSE(reloaded.ok());
  EXPECT_NE(reloaded.message().find("shape"), std::string::npos);

  auto answer = registry.Submit("m", window).get();
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(BitwiseEqual(answer.value(), before));
  EXPECT_EQ(registry.Models()[0].reload_failures, 1);
}

TEST_F(ModelRegistryTest, WatcherPicksUpAtomicRenamePublish) {
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/11));
  serve::RegistryOptions options;
  options.reload_poll = std::chrono::milliseconds(5);
  serve::ModelRegistry registry(options);
  ASSERT_TRUE(registry.Load("m", path_live_).ok());

  const Tensor window = RandomTensor({24, 2}, 35);
  const Tensor old_expected = DirectPrediction(path_a_, window);
  const Tensor new_expected = DirectPrediction(path_b_, window);

  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/21));

  // The watcher must swap within its poll cadence; while it does, every
  // answer is one generation or the other — never anything else.
  bool saw_new = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!saw_new) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "watcher never picked up the publish";
    auto answer = registry.Submit("m", window).get();
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    if (BitwiseEqual(answer.value(), new_expected)) {
      saw_new = true;
    } else {
      ASSERT_TRUE(BitwiseEqual(answer.value(), old_expected));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(registry.Models()[0].reloads, 1);
}

TEST_F(ModelRegistryTest, WatcherAttemptsBadPublishOnlyOnce) {
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/11));
  serve::RegistryOptions options;
  options.reload_poll = std::chrono::milliseconds(2);
  serve::ModelRegistry registry(options);
  ASSERT_TRUE(registry.Load("m", path_live_).ok());

  const char garbage[] = "garbage";
  ASSERT_TRUE(AtomicWriteFile(path_live_, garbage, sizeof(garbage)).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (registry.Models()[0].reload_failures == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Many more polls pass; the same bad file must not be re-attempted
  // every poll (its signature is remembered).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(registry.Models()[0].reload_failures, 1);

  // A FRESH publish (new inode/mtime) is attempted again — and a good
  // one swaps in.
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/21));
  const Tensor window = RandomTensor({24, 2}, 36);
  const Tensor new_expected = DirectPrediction(path_b_, window);
  while (true) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    auto answer = registry.Submit("m", window).get();
    ASSERT_TRUE(answer.ok());
    if (BitwiseEqual(answer.value(), new_expected)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// The zero-downtime contract under TSan: concurrent submitters race a
// storm of hot swaps (good and bad publishes); no request may fail and
// every answer must be bitwise one of the two generations.
TEST_F(ModelRegistryTest, SubmitsNeverFailAcrossReloadStorm) {
  ASSERT_TRUE(SaveBundle(path_live_, dims_, /*seed=*/11));
  serve::RegistryOptions options;
  options.reload_poll = std::chrono::milliseconds(1);
  serve::ModelRegistry registry(options);
  ASSERT_TRUE(registry.Load("m", path_live_).ok());

  const Tensor window = RandomTensor({24, 2}, 37);
  const Tensor expected_a = DirectPrediction(path_a_, window);
  const Tensor expected_b = DirectPrediction(path_b_, window);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> clients;
  std::vector<std::string> failures(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto answer =
            registry
                .Submit("m", window, std::chrono::microseconds::zero(),
                        serve::SubmitMode::kBlock)
                .get();
        if (!answer.ok()) {
          failures[c] = answer.status().ToString();
          return;
        }
        if (!BitwiseEqual(answer.value(), expected_a) &&
            !BitwiseEqual(answer.value(), expected_b)) {
          failures[c] = "torn prediction";
          return;
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Alternate good publishes with corrupt ones while clients hammer.
  const char garbage[] = "garbage";
  for (int swap = 0; swap < 6; ++swap) {
    if (swap % 2 == 0) {
      ASSERT_TRUE(
          SaveBundle(path_live_, dims_, swap % 4 == 0 ? 21 : 11));
    } else {
      ASSERT_TRUE(AtomicWriteFile(path_live_, garbage, sizeof(garbage)).ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (std::thread& client : clients) client.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  EXPECT_GT(answered.load(), 0);
  EXPECT_GE(registry.Models()[0].reloads, 1);
}

TEST_F(ModelRegistryTest, ShutdownDrainsAndRejectsLateSubmits) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("a", path_a_).ok());
  const Tensor window = RandomTensor({24, 2}, 38);
  std::future<Result<Tensor>> in_flight = registry.Submit("a", window);
  registry.Shutdown();
  auto answer = in_flight.get();
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();  // drained

  auto late = registry.Submit("a", window).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  // Stats stay readable after shutdown (the CLI prints a final summary).
  EXPECT_EQ(registry.Models().size(), 1u);
}

}  // namespace
}  // namespace lipformer
