#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataloader.h"
#include "data/registry.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/time_features.h"
#include "data/window_dataset.h"
#include "tensor/fft.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

TEST(DateTimeTest, DayOfWeekKnownDates) {
  // 2024-01-01 was a Monday; 2016-07-01 a Friday.
  EXPECT_EQ(DayOfWeek({2024, 1, 1, 0, 0}), 0);
  EXPECT_EQ(DayOfWeek({2016, 7, 1, 0, 0}), 4);
  EXPECT_EQ(DayOfWeek({2021, 12, 25, 0, 0}), 5);  // Saturday
}

TEST(DateTimeTest, AddMinutesRollsOver) {
  DateTime d{2023, 12, 31, 23, 45};
  DateTime e = AddMinutes(d, 30);
  EXPECT_EQ(e.year, 2024);
  EXPECT_EQ(e.month, 1);
  EXPECT_EQ(e.day, 1);
  EXPECT_EQ(e.hour, 0);
  EXPECT_EQ(e.minute, 15);
}

TEST(DateTimeTest, LeapYearFebruary) {
  EXPECT_EQ(DaysInMonth(2024, 2), 29);
  EXPECT_EQ(DaysInMonth(2023, 2), 28);
  EXPECT_EQ(DaysInMonth(2000, 2), 29);
  EXPECT_EQ(DaysInMonth(1900, 2), 28);
  DateTime d{2024, 2, 28, 12, 0};
  EXPECT_EQ(AddMinutes(d, 24 * 60).day, 29);
}

TEST(DateTimeTest, MakeTimestampsSpacing) {
  auto ts = MakeTimestamps({2020, 1, 1, 0, 0}, 15, 5);
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts[4].hour, 1);
  EXPECT_EQ(ts[4].minute, 0);
}

TEST(TimeFeaturesTest, RangesAndValues) {
  auto ts = MakeTimestamps({2020, 6, 15, 0, 0}, 60, 48);
  Tensor f = EncodeTimeFeatures(ts);
  EXPECT_EQ(f.shape(), (Shape{48, kNumTimeFeatures}));
  for (int64_t i = 0; i < f.numel(); ++i) {
    EXPECT_GE(f.data()[i], -0.5f);
    EXPECT_LE(f.data()[i], 0.5f);
  }
  // Hour 0 encodes to -0.5; hour 23 to +0.5.
  EXPECT_FLOAT_EQ(f.at({0, 0}), -0.5f);
  EXPECT_FLOAT_EQ(f.at({23, 0}), 0.5f);
  // Daily periodicity: rows 0 and 24 share the hour feature.
  EXPECT_FLOAT_EQ(f.at({0, 0}), f.at({24, 0}));
}

TEST(TimeFeaturesTest, CategoricalSchemaMatches) {
  auto ts = MakeTimestamps({2024, 1, 6, 0, 0}, 60, 24);  // a Saturday
  Tensor f = EncodeCategoricalTimeFeatures(ts);
  CovariateSchema schema = CategoricalTimeFeatureSchema();
  EXPECT_EQ(f.size(1), schema.num_categorical());
  EXPECT_FLOAT_EQ(f.at({0, 2}), 1.0f);  // weekend flag
  for (int64_t i = 0; i < f.size(0); ++i) {
    EXPECT_LT(f.at({i, 0}), 24.0f);
    EXPECT_LT(f.at({i, 1}), 7.0f);
  }
}

TEST(ScalerTest, TransformInverseRoundTrip) {
  Rng rng(3);
  Tensor data = Tensor::Randn({100, 4}, rng, 3.0f);
  StandardScaler scaler;
  scaler.Fit(data);
  Tensor scaled = scaler.Transform(data);
  EXPECT_TRUE(AllClose(scaler.InverseTransform(scaled), data, 1e-3f, 1e-3f));
  // Scaled data is standardized per channel.
  for (int64_t j = 0; j < 4; ++j) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < 100; ++i) mean += scaled.at({i, j});
    mean /= 100.0;
    for (int64_t i = 0; i < 100; ++i) {
      const double d = scaled.at({i, j}) - mean;
      var += d * d;
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 100.0, 1.0, 1e-3);
  }
}

TEST(ScalerTest, FitsOnTrainRowsOnly) {
  Tensor data({4, 1}, {0.0f, 2.0f, 100.0f, 100.0f});
  StandardScaler scaler;
  scaler.Fit(data, /*fit_rows=*/2);
  EXPECT_FLOAT_EQ(scaler.mean().data()[0], 1.0f);
}

TEST(ScalerTest, ConstantChannelDoesNotBlowUp) {
  Tensor data({10, 1});
  data.Fill(5.0f);
  StandardScaler scaler;
  scaler.Fit(data);
  Tensor scaled = scaler.Transform(data);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(scaled.data()[i], 0.0f);
  }
}

SeasonalConfig SmallSeasonal() {
  SeasonalConfig config;
  config.steps = 600;
  config.channels = 3;
  config.seed = 42;
  return config;
}

TEST(SyntheticTest, DeterministicPerSeed) {
  TimeSeries a = GenerateSeasonal(SmallSeasonal());
  TimeSeries b = GenerateSeasonal(SmallSeasonal());
  EXPECT_TRUE(AllClose(a.values, b.values, 0.0f, 0.0f));
  SeasonalConfig other = SmallSeasonal();
  other.seed = 43;
  TimeSeries c = GenerateSeasonal(other);
  EXPECT_FALSE(AllClose(a.values, c.values, 1e-3f, 1e-3f));
}

TEST(SyntheticTest, DailySeasonalityIsPresent) {
  SeasonalConfig config = SmallSeasonal();
  config.noise_std = 0.05;
  config.trend = 0.0;
  config.regime_shifts = 0;
  TimeSeries series = GenerateSeasonal(config);
  // Hourly data: autocorrelation at lag 24 should be strongly positive.
  Tensor ch0 = Transpose(series.values, 0, 1);  // [c, time]
  Tensor row = Slice(ch0, 0, 0, 1);
  Tensor ac = Autocorrelation(row);
  EXPECT_GT(ac.at({0, 24}), 0.4f * ac.at({0, 0}));
}

TEST(SyntheticTest, CovariateDrivenTargetsCorrelateWithCovariates) {
  CovariateDrivenConfig config;
  config.steps = 2000;
  config.channels = 2;
  config.seed = 5;
  config.noise_std = 0.05;
  config.seasonal_strength = 0.1;
  TimeSeries series = GenerateCovariateDriven(config);
  ASSERT_TRUE(series.has_explicit_covariates());
  EXPECT_EQ(series.numeric_covariates.size(1), config.numeric_covariates);
  EXPECT_EQ(series.categorical_covariates.size(1),
            config.categorical_covariates);

  // A linear least-squares fit of target0 on the covariates should explain
  // most of the variance (that is the generator's causal structure).
  // Cheap proxy: correlation between target and its best single covariate
  // must be nontrivial.
  const int64_t n = series.steps();
  const int64_t cn = config.numeric_covariates;
  double best_corr = 0.0;
  for (int64_t k = 0; k < cn; ++k) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int64_t t = 0; t < n; ++t) {
      const double x = series.numeric_covariates.at({t, k});
      const double y = series.values.at({t, 0});
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    best_corr = std::max(best_corr, std::fabs(cov / std::sqrt(vx * vy)));
  }
  EXPECT_GT(best_corr, 0.3);
}

TEST(SyntheticTest, CategoricalCodesWithinCardinality) {
  CovariateDrivenConfig config;
  config.steps = 500;
  config.categorical_cardinality = 4;
  TimeSeries series = GenerateCovariateDriven(config);
  for (int64_t i = 0; i < series.categorical_covariates.numel(); ++i) {
    const float v = series.categorical_covariates.data()[i];
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 4.0f);
    EXPECT_FLOAT_EQ(v, std::floor(v));
  }
}

TEST(WindowDatasetTest, WindowAlignment) {
  SeasonalConfig config = SmallSeasonal();
  TimeSeries series = GenerateSeasonal(config);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  WindowDataset data(series, options);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 5});
  EXPECT_EQ(batch.x.shape(), (Shape{2, 48, 3}));
  EXPECT_EQ(batch.y.shape(), (Shape{2, 24, 3}));
  // y of window 0 must equal x of a window shifted by input_len.
  Batch shifted = data.MakeBatch(Split::kTrain, {48});
  for (int64_t t = 0; t < 24; ++t) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(batch.y.at({0, t, c}), shifted.x.at({0, t, c}));
    }
  }
}

TEST(WindowDatasetTest, SplitSizesFollowRatios) {
  TimeSeries series = GenerateSeasonal(SmallSeasonal());  // 600 steps
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  options.train_ratio = 0.6;
  options.val_ratio = 0.2;
  options.test_ratio = 0.2;
  WindowDataset data(series, options);
  // train rows 360 -> 360-48-24+1 = 289 windows.
  EXPECT_EQ(data.NumWindows(Split::kTrain), 289);
  // val range [312, 480) = 168 rows -> 97 windows.
  EXPECT_EQ(data.NumWindows(Split::kVal), 97);
  // test range [432, 600) = 168 rows -> 97 windows.
  EXPECT_EQ(data.NumWindows(Split::kTest), 97);
}

TEST(WindowDatasetTest, ImplicitCovariatesAreTimeFeatures) {
  TimeSeries series = GenerateSeasonal(SmallSeasonal());
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  WindowDataset data(series, options);
  EXPECT_FALSE(data.has_explicit_covariates());
  EXPECT_EQ(data.num_numeric_covariates(), kNumTimeFeatures);
  EXPECT_EQ(data.num_categorical_covariates(), 0);
  Batch batch = data.MakeBatch(Split::kTrain, {0});
  // Covariates of the horizon equal the y_time features.
  EXPECT_TRUE(AllClose(batch.y_cov_num, batch.y_time, 0.0f, 0.0f));
}

TEST(WindowDatasetTest, ExplicitCovariatesExposed) {
  CovariateDrivenConfig config;
  config.steps = 800;
  TimeSeries series = GenerateCovariateDriven(config);
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  WindowDataset data(series, options);
  EXPECT_TRUE(data.has_explicit_covariates());
  EXPECT_EQ(data.num_numeric_covariates(), config.numeric_covariates);
  EXPECT_EQ(data.num_categorical_covariates(),
            config.categorical_covariates);
  Batch batch = data.MakeBatch(Split::kVal, {0, 1, 2});
  EXPECT_EQ(batch.y_cov_num.shape(),
            (Shape{3, 24, config.numeric_covariates}));
  EXPECT_EQ(batch.y_cov_cat.shape(),
            (Shape{3, 24, config.categorical_covariates}));
}

TEST(WindowDatasetTest, SelectChannelKeepsCovariates) {
  CovariateDrivenConfig config;
  config.steps = 500;
  TimeSeries series = GenerateCovariateDriven(config);
  TimeSeries uni = SelectChannel(series, 1);
  EXPECT_EQ(uni.channels(), 1);
  EXPECT_EQ(uni.steps(), series.steps());
  EXPECT_TRUE(uni.has_explicit_covariates());
  for (int64_t t = 0; t < 20; ++t) {
    EXPECT_FLOAT_EQ(uni.values.at({t, 0}), series.values.at({t, 1}));
  }
}

TEST(DataLoaderTest, CoversAllWindowsOnce) {
  TimeSeries series = GenerateSeasonal(SmallSeasonal());
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  WindowDataset data(series, options);
  DataLoader loader(&data, Split::kVal, 16, /*shuffle=*/true, Rng(9));
  int64_t seen = 0;
  for (loader.Reset(); loader.HasNext();) {
    seen += loader.Next().size;
  }
  EXPECT_EQ(seen, data.NumWindows(Split::kVal));
  EXPECT_EQ(loader.NumBatches(), (data.NumWindows(Split::kVal) + 15) / 16);
}

TEST(DataLoaderTest, DropLastKeepsFullBatches) {
  TimeSeries series = GenerateSeasonal(SmallSeasonal());
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  WindowDataset data(series, options);
  DataLoader loader(&data, Split::kVal, 16, false, Rng(9),
                    /*drop_last=*/true);
  for (loader.Reset(); loader.HasNext();) {
    EXPECT_EQ(loader.Next().size, 16);
  }
}

TEST(DataLoaderTest, ShuffleChangesOrderButNotSet) {
  TimeSeries series = GenerateSeasonal(SmallSeasonal());
  WindowDataset::Options options;
  options.input_len = 48;
  options.pred_len = 24;
  WindowDataset data(series, options);
  DataLoader a(&data, Split::kTrain, 1, true, Rng(1));
  DataLoader b(&data, Split::kTrain, 1, false, Rng(1));
  // Same first window value would be a miracle under shuffling of ~289.
  Batch ba = a.Next();
  Batch bb = b.Next();
  (void)ba;
  (void)bb;
  SUCCEED();  // structural check: both produce valid batches
}

TEST(RegistryTest, AllNamesBuild) {
  for (const std::string& name : RegisteredDatasetNames()) {
    DatasetSpec spec = MakeDataset(name, /*scale=*/0.05);
    EXPECT_GT(spec.series.steps(), 0) << name;
    EXPECT_GT(spec.series.channels(), 0) << name;
    EXPECT_EQ(spec.series.timestamps.size(),
              static_cast<size_t>(spec.series.steps()))
        << name;
  }
}

TEST(RegistryTest, CovariateDatasetsHaveCovariates) {
  EXPECT_TRUE(MakeDataset("electri_price", 0.05)
                  .series.has_explicit_covariates());
  EXPECT_TRUE(MakeDataset("cycle", 0.05).series.has_explicit_covariates());
  EXPECT_FALSE(MakeDataset("etth1", 0.05).series.has_explicit_covariates());
}

TEST(RegistryTest, EttUsesSixTwoTwoSplit) {
  DatasetSpec spec = MakeDataset("etth1", 0.05);
  EXPECT_DOUBLE_EQ(spec.train_ratio, 0.6);
  DatasetSpec weather = MakeDataset("weather", 0.05);
  EXPECT_DOUBLE_EQ(weather.train_ratio, 0.7);
}

TEST(CsvTest, RoundTrip) {
  SeasonalConfig config = SmallSeasonal();
  config.steps = 50;
  TimeSeries series = GenerateSeasonal(config);
  const std::string path = ::testing::TempDir() + "/series.csv";
  ASSERT_TRUE(WriteCsvTimeSeries(path, series).ok());
  Result<TimeSeries> loaded = ReadCsvTimeSeries(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().steps(), 50);
  EXPECT_EQ(loaded.value().channels(), 3);
  EXPECT_TRUE(AllClose(loaded.value().values, series.values, 1e-4f, 1e-3f));
  EXPECT_EQ(loaded.value().timestamps[10], series.timestamps[10]);
}

TEST(CsvTest, MissingFileReturnsError) {
  Result<TimeSeries> r = ReadCsvTimeSeries("/nonexistent/nope.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, MalformedRowReturnsError) {
  const std::string path = ::testing::TempDir() + "/bad.csv";
  {
    std::ofstream out(path);
    out << "date,a\n2020-01-01 00:00:00,1.5\nnot-a-date,2.0\n";
  }
  Result<TimeSeries> r = ReadCsvTimeSeries(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lipformer
