#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/interrupt.h"
#include "data/synthetic.h"
#include "nn/linear.h"
#include "serve/batcher.h"
#include "serve/checkpoint.h"
#include "serve/quantize.h"
#include "serve/session.h"
#include "tests/test_util.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// TempDir() contents survive across test-binary runs; tests exercising
// the quantizer's don't-overwrite guard need their outputs absent.
std::string FreshTempPath(const std::string& name) {
  const std::string path = TempPath(name);
  std::remove(path.c_str());
  return path;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Minimal module with one named parameter of a chosen shape, for
// exercising the per-tensor name/shape verification in LoadParameters.
struct OneParamModule : Module {
  OneParamModule(const std::string& name, Shape shape) {
    param = RegisterParameter(name, Variable(Tensor::Zeros(shape)));
  }
  Variable param;
};

// ---- Checkpoint v2 container ----

TEST(CheckpointV2Test, WriteReadRoundTripIsBitwise) {
  serve::Checkpoint ckpt;
  ckpt.metadata["model"] = "lipformer";
  ckpt.metadata["note"] = "";
  ckpt.tensors.push_back({"a.weight", RandomTensor({3, 4}, 1)});
  ckpt.tensors.push_back({"a.bias", RandomTensor({4}, 2)});
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());

  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Meta("model", ""), "lipformer");
  EXPECT_EQ(loaded.value().Meta("note", "x"), "");
  EXPECT_EQ(loaded.value().Meta("absent", "def"), "def");
  ASSERT_EQ(loaded.value().tensors.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.value().tensors[i].name, ckpt.tensors[i].name);
    EXPECT_EQ(loaded.value().tensors[i].data.shape(),
              ckpt.tensors[i].data.shape());
    EXPECT_TRUE(BitwiseEqual(loaded.value().tensors[i].data,
                             ckpt.tensors[i].data));
  }
}

TEST(CheckpointV2Test, RejectsLegacyV1WithMigrationAdvice) {
  // A legacy v1 file: u64 count, then u64 numel + raw floats per param.
  const std::string path = TempPath("legacy.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t count = 1, numel = 2;
    const float data[2] = {1.0f, 2.0f};
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out.write(reinterpret_cast<const char*>(data), sizeof(data));
  }
  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("not a v2 checkpoint"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("checkpoint_convert"),
            std::string::npos);
}

TEST(CheckpointV2Test, RejectsShortHeader) {
  const std::string path = TempPath("short.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("LPF", 3);  // shorter than the 8-byte magic
  }
  EXPECT_FALSE(serve::ReadCheckpoint(path).ok());
}

TEST(CheckpointV2Test, RejectsTruncatedTensorData) {
  serve::Checkpoint ckpt;
  ckpt.tensors.push_back({"w", RandomTensor({8, 8}, 3)});
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());
  // Chop off the last 16 bytes of tensor data.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  out.close();

  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST(CheckpointV2Test, RejectsTrailingBytes) {
  serve::Checkpoint ckpt;
  ckpt.tensors.push_back({"w", RandomTensor({2, 2}, 4)});
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("junk", 4);
  }
  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing bytes"),
            std::string::npos);
}

// ---- Module save/load on top of v2 ----

TEST(ModuleCheckpointTest, RoundTripIsBitwise) {
  Rng rng(5);
  Mlp a({3, 4, 2}, rng);
  Mlp b({3, 4, 2}, rng);  // different init
  const std::string path = TempPath("mlp_v2.ckpt");
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pa[i].value(), pb[i].value()));
  }
}

TEST(ModuleCheckpointTest, RejectsWrongShapeWithEqualFlatSize) {
  // The exact bug the v2 format exists to catch: [2, 6] and [3, 4] have
  // the same 12 floats, so the legacy loader accepted the transplant and
  // produced garbage. v2 must name the offending parameter.
  OneParamModule saved("weight", {2, 6});
  OneParamModule loaded_into("weight", {3, 4});
  const std::string path = TempPath("transposed.ckpt");
  ASSERT_TRUE(saved.SaveParameters(path).ok());
  Status st = loaded_into.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shape mismatch"), std::string::npos);
  EXPECT_NE(st.message().find("'weight'"), std::string::npos);
  EXPECT_NE(st.message().find("[2, 6]"), std::string::npos)
      << st.message();
}

TEST(ModuleCheckpointTest, RejectsWrongParameterName) {
  OneParamModule saved("weight", {2, 2});
  OneParamModule loaded_into("kernel", {2, 2});
  const std::string path = TempPath("renamed.ckpt");
  ASSERT_TRUE(saved.SaveParameters(path).ok());
  Status st = loaded_into.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no tensor named 'kernel'"),
            std::string::npos);
}

TEST(ModuleCheckpointTest, RejectsParameterCountMismatch) {
  Rng rng(6);
  Mlp saved({3, 4, 2}, rng);
  Linear loaded_into(3, 2, rng);
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(saved.SaveParameters(path).ok());
  Status st = loaded_into.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("parameter count mismatch"),
            std::string::npos);
}

TEST(ModuleCheckpointTest, LoadRejectsLegacyV1File) {
  Rng rng(7);
  Linear lin(2, 2, rng);
  // v1 layout matching the module exactly — still rejected by the v2
  // loader (only checkpoint_convert may read it).
  const std::string path = TempPath("legacy_exact.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t count = 2;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Variable& v : lin.Parameters()) {
      const uint64_t numel = static_cast<uint64_t>(v.numel());
      out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
      out.write(reinterpret_cast<const char*>(v.value().data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
    }
  }
  Status st = lin.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checkpoint_convert"), std::string::npos);
}

TEST(ModuleCheckpointTest, LegacyLoaderRoundTripsAndChecksBounds) {
  Rng rng(8);
  Linear a(3, 2, rng);
  Linear b(3, 2, rng);
  const std::string path = TempPath("legacy_ok.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t count = 2;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Variable& v : a.Parameters()) {
      const uint64_t numel = static_cast<uint64_t>(v.numel());
      out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
      out.write(reinterpret_cast<const char*>(v.value().data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
    }
  }
  ASSERT_TRUE(b.LoadParametersLegacyV1(path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pa[i].value(), pb[i].value()));
  }

  // Trailing bytes are an error.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("x", 1);
  }
  Status st = b.LoadParametersLegacyV1(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing bytes"), std::string::npos);

  // A file shorter than the 8-byte header is an error, not a crash.
  const std::string stub = TempPath("legacy_stub.bin");
  {
    std::ofstream out(stub, std::ios::binary);
    out.write("abc", 3);
  }
  st = b.LoadParametersLegacyV1(stub);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("8-byte header"), std::string::npos);
}

TEST(ModuleCheckpointTest, LegacyLoaderRejectsV2File) {
  // Running the migration tool on an already-converted file must say so,
  // not report the magic reinterpreted as a garbage parameter count.
  Rng rng(8);
  Linear a(3, 2, rng);
  const std::string path = TempPath("already_v2.ckpt");
  ASSERT_TRUE(a.SaveParameters(path).ok());
  Status st = a.LoadParametersLegacyV1(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("already a v2 checkpoint"), std::string::npos);
}

// ---- Serving bundle + InferenceSession ----

class SessionTest : public ::testing::Test {
 protected:
  // Small but real LiPFormer bundle: 24 -> 6 over 2 channels.
  void SetUp() override {
    dims_.input_len = 24;
    dims_.pred_len = 6;
    dims_.channels = 2;
    options_.hidden_dim = 8;
    options_.num_heads = 2;
    options_.patch_len = 8;
    options_.seed = 11;
    model_ = CreateModel("lipformer", dims_, options_);
    Rng rng(12);
    scaler_.Fit(Tensor::Randn({64, dims_.channels}, rng));
    path_ = TempPath("session_bundle.ckpt");
    ASSERT_TRUE(serve::SaveModelBundle(path_, "lipformer", options_, *model_,
                                       scaler_)
                    .ok());
  }

  // A bundle whose attention projections (hidden 16) clear the
  // quantizer's kQuantMinLinearDim shape floor; the shared fixture
  // model (hidden 8) has no eligible Linear at all. The patch head and
  // embedding stay fp32 even here, so sessions opened from this bundle
  // exercise the mixed int8/fp32 load path.
  std::string QuantizableBundlePath() {
    ModelOptions options = options_;
    options.hidden_dim = 16;
    std::unique_ptr<Forecaster> model =
        CreateModel("lipformer", dims_, options);
    const std::string path = TempPath("session_bundle_h16.ckpt");
    EXPECT_TRUE(serve::SaveModelBundle(path, "lipformer", options, *model,
                                       scaler_)
                    .ok());
    return path;
  }

  ForecasterDims dims_;
  ModelOptions options_;
  std::unique_ptr<Forecaster> model_;
  StandardScaler scaler_;
  std::string path_;
};

TEST_F(SessionTest, OpenPredictShapesAndConfig) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serve::InferenceSession* session = opened.value().get();
  EXPECT_EQ(session->model_name(), "lipformer");
  EXPECT_EQ(session->input_len(), 24);
  EXPECT_EQ(session->pred_len(), 6);
  EXPECT_EQ(session->channels(), 2);

  auto pred = session->Predict(RandomTensor({24, 2}, 13));
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_EQ(pred.value().shape(), (Shape{6, 2}));

  // Wrong shapes are rejected, not crashed on.
  EXPECT_FALSE(session->Predict(RandomTensor({23, 2}, 14)).ok());
  EXPECT_FALSE(session->PredictBatch(RandomTensor({24, 2}, 15)).ok());
}

TEST_F(SessionTest, BatchRowsBitwiseMatchSingles) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  const int64_t b = 5;
  Tensor batch = RandomTensor({b, 24, 2}, 16);
  auto batched = session->PredictBatch(batch);
  ASSERT_TRUE(batched.ok());
  for (int64_t i = 0; i < b; ++i) {
    Tensor window = Tensor::Empty({24, 2});
    std::memcpy(window.data(), batch.data() + i * 24 * 2,
                sizeof(float) * 24 * 2);
    auto single = session->Predict(window);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(0, std::memcmp(single.value().data(),
                             batched.value().data() + i * 6 * 2,
                             sizeof(float) * 6 * 2))
        << "row " << i << " of the batch diverged from its solo forward";
  }
}

TEST_F(SessionTest, MismatchedArchitectureNamesTheParameter) {
  // Same flat parameter layout categories, different hidden width: the
  // bundle metadata rebuilds hidden 8, the file below claims hidden 4.
  ModelOptions other = options_;
  other.hidden_dim = 4;
  std::unique_ptr<Forecaster> smaller =
      CreateModel("lipformer", dims_, other);
  const std::string wrong = TempPath("wrong_arch.ckpt");
  // Force the mismatch: bundle says hidden 8 but carries hidden-4 weights.
  serve::Checkpoint ckpt;
  {
    auto loaded = serve::ReadCheckpoint(path_);
    ASSERT_TRUE(loaded.ok());
    ckpt.metadata = loaded.value().metadata;
  }
  ASSERT_TRUE(smaller->SaveParameters(wrong).ok());
  auto weights = serve::ReadCheckpoint(wrong);
  ASSERT_TRUE(weights.ok());
  ckpt.tensors = weights.value().tensors;
  ASSERT_TRUE(serve::WriteCheckpoint(wrong, ckpt).ok());

  auto opened = serve::InferenceSession::Open(wrong);
  ASSERT_FALSE(opened.ok());
  // Either the count differs or a tensor's shape does; both must name the
  // problem precisely rather than load garbage.
  const std::string& msg = opened.status().message();
  EXPECT_TRUE(msg.find("mismatch") != std::string::npos) << msg;
}

TEST_F(SessionTest, RejectsBareParameterCheckpoint) {
  const std::string bare = TempPath("bare.ckpt");
  ASSERT_TRUE(model_->SaveParameters(bare).ok());
  auto opened = serve::InferenceSession::Open(bare);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("bundle"), std::string::npos);
}

TEST_F(SessionTest, UnscaledBundleServesInModelUnits) {
  const std::string unscaled = TempPath("unscaled.ckpt");
  ASSERT_TRUE(serve::SaveModelBundle(unscaled, "lipformer", options_,
                                     *model_, StandardScaler())
                  .ok());
  auto opened = serve::InferenceSession::Open(unscaled);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value()->Predict(RandomTensor({24, 2}, 17)).ok());
}

// ---- Strict bundle metadata parsing ----

// Rewrites one metadata key of the fixture bundle and returns the new
// path.
std::string BundleWithMeta(const std::string& src, const std::string& key,
                           const std::string& value,
                           const std::string& name) {
  auto loaded = serve::ReadCheckpoint(src);
  EXPECT_TRUE(loaded.ok());
  serve::Checkpoint ckpt = std::move(loaded.value());
  ckpt.metadata[key] = value;
  const std::string path = TempPath(name);
  EXPECT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());
  return path;
}

TEST_F(SessionTest, RejectsOverflowingIntegerMetadata) {
  // Pre-fix, strtoll silently clamped this to LLONG_MAX (errno was never
  // checked) and Open proceeded with a garbage dimension.
  const std::string path = BundleWithMeta(
      path_, "input_len", "99999999999999999999999999", "overflow.ckpt");
  auto opened = serve::InferenceSession::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("input_len"), std::string::npos);
}

TEST_F(SessionTest, RejectsTrailingJunkInIntegerMetadata) {
  const std::string path =
      BundleWithMeta(path_, "channels", "2abc", "junk_int.ckpt");
  auto opened = serve::InferenceSession::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("channels"), std::string::npos);
}

TEST_F(SessionTest, RejectsTrailingJunkInDropoutMetadata) {
  // Pre-fix, the bare strtof accepted "0.1garbage" (and even pure
  // garbage, yielding dropout 0.0) without complaint.
  const std::string path =
      BundleWithMeta(path_, "dropout", "0.1garbage", "junk_dropout.ckpt");
  auto opened = serve::InferenceSession::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("dropout"), std::string::npos);
}

// ---- Int8 quantized bundles ----

TEST_F(SessionTest, QuantizeBundleGuardsItsInputsAndOutputs) {
  const std::string out = FreshTempPath("quant_guard.ckpt");

  // Not a bundle: a bare parameter checkpoint.
  const std::string bare = TempPath("quant_bare.ckpt");
  ASSERT_TRUE(model_->SaveParameters(bare).ok());
  Status st = serve::QuantizeBundleFile(bare, out, /*force=*/false);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bundle"), std::string::npos);

  // The fixture model (hidden 8) has no Linear above the eligibility
  // floor: refused outright instead of emitting an all-fp32 "int8"
  // bundle.
  st = serve::QuantizeBundleFile(path_, FreshTempPath("quant_small.ckpt"),
                                 /*force=*/false);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("large enough"), std::string::npos);

  // A bundle with eligible layers quantizes fine...
  const std::string qbundle = QuantizableBundlePath();
  ASSERT_TRUE(
      serve::QuantizeBundleFile(qbundle, out, /*force=*/false).ok());
  // ...but not twice onto the same output without --force...
  st = serve::QuantizeBundleFile(qbundle, out, /*force=*/false);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("force"), std::string::npos);
  ASSERT_TRUE(serve::QuantizeBundleFile(qbundle, out, /*force=*/true).ok());

  // ...and an already-quantized bundle is refused as input.
  st = serve::QuantizeBundleFile(out, FreshTempPath("quant_twice.ckpt"),
                                 /*force=*/false);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("already quantized"), std::string::npos);
}

TEST_F(SessionTest, QuantizedSessionServesCloseToFp32) {
  const std::string qbundle = QuantizableBundlePath();
  const std::string qpath = FreshTempPath("quant_session.ckpt");
  ASSERT_TRUE(
      serve::QuantizeBundleFile(qbundle, qpath, /*force=*/false).ok());

  auto fp32 = serve::InferenceSession::Open(qbundle);
  auto quant = serve::InferenceSession::Open(qpath);
  ASSERT_TRUE(fp32.ok()) << fp32.status().ToString();
  ASSERT_TRUE(quant.ok()) << quant.status().ToString();
  EXPECT_FALSE(fp32.value()->quantized());
  EXPECT_TRUE(quant.value()->quantized());

  Tensor window = RandomTensor({24, 2}, 700);
  auto pf = fp32.value()->Predict(window);
  auto pq = quant.value()->Predict(window);
  ASSERT_TRUE(pf.ok());
  ASSERT_TRUE(pq.ok());
  // Per-channel int8 weights + row-wise int8 activations: predictions
  // track fp32 closely but not bitwise. Bound the energy of the error
  // relative to the prediction itself.
  double err = 0, ref = 0;
  for (int64_t i = 0; i < pf.value().numel(); ++i) {
    const double d = pf.value().data()[i] - pq.value().data()[i];
    err += d * d;
    ref += pf.value().data()[i] * pf.value().data()[i];
  }
  EXPECT_LT(err, 0.02 * ref) << "quantized prediction drifted: err=" << err
                             << " ref=" << ref;
}

TEST_F(SessionTest, QuantizedBatchRowsBitwiseMatchSingles) {
  // Row-wise (not per-tensor) activation scales exist exactly so this
  // invariant survives quantization: each row's codes are independent of
  // what shares the batch.
  const std::string qpath = FreshTempPath("quant_bitwise.ckpt");
  ASSERT_TRUE(
      serve::QuantizeBundleFile(QuantizableBundlePath(), qpath,
                                /*force=*/false).ok());
  auto opened = serve::InferenceSession::Open(qpath);
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  const int64_t b = 5;
  Tensor batch = RandomTensor({b, 24, 2}, 701);
  auto batched = session->PredictBatch(batch);
  ASSERT_TRUE(batched.ok());
  for (int64_t i = 0; i < b; ++i) {
    Tensor window = Tensor::Empty({24, 2});
    std::memcpy(window.data(), batch.data() + i * 24 * 2,
                sizeof(float) * 24 * 2);
    auto single = session->Predict(window);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(0, std::memcmp(single.value().data(),
                             batched.value().data() + i * 6 * 2,
                             sizeof(float) * 6 * 2))
        << "quantized row " << i << " diverged from its solo forward";
  }
}

TEST(QuantizedMseTest, TrainedModelStaysWithinTwoPercentOfFp32) {
  // The acceptance bound from ISSUE 6: on a *trained* model the int8
  // path's test MSE must sit within 2% relative of fp32. Quick-train a
  // small LiPFormer on synthetic seasonal data (integration_test.cc
  // pattern), bundle, quantize, evaluate both sessions on the same
  // windows.
  SeasonalConfig gen;
  gen.steps = 700;
  gen.channels = 2;
  gen.seed = 41;
  gen.noise_std = 0.2;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options wopts;
  wopts.input_len = 48;
  wopts.pred_len = 12;
  WindowDataset data(series, wopts);

  ForecasterDims dims;
  dims.input_len = 48;
  dims.pred_len = 12;
  dims.channels = data.channels();
  ModelOptions mopts;
  mopts.patch_len = 12;
  mopts.hidden_dim = 16;
  mopts.num_heads = 2;
  mopts.seed = 42;
  std::unique_ptr<Forecaster> model = CreateModel("lipformer", dims, mopts);

  TrainConfig train;
  train.epochs = 3;
  train.patience = 3;
  train.batch_size = 32;
  train.max_batches_per_epoch = 20;
  train.max_eval_batches = 8;
  (void)TrainAndEvaluate(model.get(), data, train);

  const std::string fp32_path = TempPath("mse_fp32.ckpt");
  const std::string q_path = FreshTempPath("mse_int8.ckpt");
  ASSERT_TRUE(serve::SaveModelBundle(fp32_path, "lipformer", mopts, *model,
                                     StandardScaler())
                  .ok());
  ASSERT_TRUE(
      serve::QuantizeBundleFile(fp32_path, q_path, /*force=*/false).ok());
  auto fp32 = serve::InferenceSession::Open(fp32_path);
  auto quant = serve::InferenceSession::Open(q_path);
  ASSERT_TRUE(fp32.ok()) << fp32.status().ToString();
  ASSERT_TRUE(quant.ok()) << quant.status().ToString();

  const int64_t n = std::min<int64_t>(data.NumWindows(Split::kTest), 64);
  ASSERT_GT(n, 0);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(i);
  Batch batch = data.MakeBatch(Split::kTest, ids);

  auto pf = fp32.value()->PredictBatch(batch.x);
  auto pq = quant.value()->PredictBatch(batch.x);
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  MetricAccumulator acc_f, acc_q;
  acc_f.Add(pf.value(), batch.y);
  acc_q.Add(pq.value(), batch.y);
  const float mse_f = acc_f.mse();
  const float mse_q = acc_q.mse();
  EXPECT_LE(std::abs(mse_q - mse_f), 0.02f * mse_f)
      << "fp32 mse=" << mse_f << " int8 mse=" << mse_q;
}

// ---- Dynamic micro-batcher ----

TEST_F(SessionTest, BatcherConcurrentResultsBitwiseMatchSerial) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  const int kClients = 8;
  const int kPerClient = 4;
  std::vector<Tensor> windows;
  std::vector<Tensor> expected;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    windows.push_back(RandomTensor({24, 2}, 100 + i));
    auto serial = session->Predict(windows.back());
    ASSERT_TRUE(serial.ok());
    expected.push_back(serial.value());
  }

  serve::BatcherOptions opts;
  opts.max_batch_size = 4;
  opts.max_delay = std::chrono::microseconds(200);
  serve::Batcher batcher(session, opts);
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      for (int i = 0; i < kPerClient; ++i) {
        const int idx = cl * kPerClient + i;
        auto result = batcher.Submit(windows[idx]).get();
        if (!result.ok() ||
            !BitwiseEqual(result.value(), expected[idx])) {
          ++mismatches[cl];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int cl = 0; cl < kClients; ++cl) {
    EXPECT_EQ(mismatches[cl], 0) << "client " << cl;
  }

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.rejected_full, 0);
  EXPECT_EQ(stats.expired, 0);
  int64_t in_batches = 0;
  for (size_t s = 0; s < stats.batch_size_histogram.size(); ++s) {
    in_batches += stats.batch_size_histogram[s] * (s + 1);
  }
  EXPECT_EQ(in_batches, kClients * kPerClient);
  EXPECT_GT(stats.p99_latency_seconds, 0.0);
  EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
  EXPECT_GE(stats.p999_latency_seconds, stats.p99_latency_seconds);
}

TEST_F(SessionTest, BatcherBackpressureAndDrainOnShutdown) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());

  // max_batch unreachable and max_delay long: the worker coalesces
  // indefinitely, so the queue fills deterministically.
  serve::BatcherOptions opts;
  opts.max_batch_size = 64;
  opts.max_delay = std::chrono::seconds(30);
  opts.queue_capacity = 2;
  serve::Batcher batcher(opened.value().get(), opts);

  auto f1 = batcher.Submit(RandomTensor({24, 2}, 200));
  auto f2 = batcher.Submit(RandomTensor({24, 2}, 201));
  auto f3 = batcher.Submit(RandomTensor({24, 2}, 202));

  // Third is bounced immediately with a typed error.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto r3 = f3.get();
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kUnavailable);

  // Shutdown executes the two accepted requests instead of dropping them.
  batcher.Shutdown();
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1.value().shape(), (Shape{6, 2}));

  // After shutdown new submissions are rejected.
  auto f4 = batcher.Submit(RandomTensor({24, 2}, 203));
  auto r4 = f4.get();
  ASSERT_FALSE(r4.ok());
  EXPECT_EQ(r4.status().code(), StatusCode::kUnavailable);

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.rejected_full, 1);
}

TEST_F(SessionTest, BatcherExpiresMissedDeadlines) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());

  serve::BatcherOptions opts;
  opts.max_batch_size = 64;
  opts.max_delay = std::chrono::seconds(30);
  serve::Batcher batcher(opened.value().get(), opts);

  auto fast = batcher.Submit(RandomTensor({24, 2}, 300),
                             /*deadline=*/std::chrono::microseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  batcher.Shutdown();  // drains: deadline is long past by now
  auto result = fast.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batcher.Stats().expired, 1);
}

TEST_F(SessionTest, ExpiredRequestsDoNotPinQueueCapacity) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());

  // Capacity 2 and an unreachable batch size with a long coalescing
  // delay: the queue fills with two requests whose deadlines pass while
  // the worker is still waiting for more.
  serve::BatcherOptions opts;
  opts.max_batch_size = 64;
  opts.max_delay = std::chrono::seconds(30);
  opts.queue_capacity = 2;
  serve::Batcher batcher(opened.value().get(), opts);

  auto stale1 = batcher.Submit(RandomTensor({24, 2}, 600),
                               /*deadline=*/std::chrono::microseconds(1));
  auto stale2 = batcher.Submit(RandomTensor({24, 2}, 601),
                               /*deadline=*/std::chrono::microseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Pre-fix, this bounced with Unavailable: the full check counted the
  // two dead entries. The fix sweeps them on the full path, so the fresh
  // request is accepted and the stale futures resolve immediately.
  auto fresh = batcher.Submit(RandomTensor({24, 2}, 602));
  auto r1 = stale1.get();
  auto r2 = stale2.get();
  EXPECT_EQ(r1.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r2.status().code(), StatusCode::kDeadlineExceeded);

  batcher.Shutdown();
  auto rf = fresh.get();
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();
  EXPECT_EQ(rf.value().shape(), (Shape{6, 2}));

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.rejected_full, 0);
  EXPECT_EQ(stats.expired, 2);
  EXPECT_EQ(stats.completed, 1);
}

TEST_F(SessionTest, BatcherRejectsWrongShapeImmediately) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});
  auto f = batcher.Submit(RandomTensor({7, 2}, 400));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto r = f.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// The serve loop's graceful shutdown (cli.cc CmdServe): SIGTERM flips the
// interrupt flag that stops the accept loop, and everything already
// submitted still drains through the batcher and resolves.
TEST_F(SessionTest, SigtermStopsAcceptingButDrainsInFlightRequests) {
  ClearInterrupt();
  InstallInterruptHandlers();
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});

  std::vector<std::future<Result<Tensor>>> pending;
  for (int i = 0; i < 8; ++i) {
    pending.push_back(batcher.Submit(RandomTensor({24, 2}, 500 + i)));
  }
  // One signal only: the handlers are one-shot (SA_RESETHAND), a second
  // SIGTERM would kill the test binary by design.
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_TRUE(InterruptRequested());

  for (auto& f : pending) {
    Result<Tensor> r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().shape(), (Shape{6, 2}));
  }
  batcher.Shutdown();
  EXPECT_EQ(batcher.Stats().completed, 8);
  ClearInterrupt();
}

// Submit racing Shutdown: whatever the interleaving, every future must
// resolve — either accepted-then-drained (ok) or rejected (Unavailable)
// — and the stats must account for exactly the accepted ones.
TEST_F(SessionTest, SubmitRacingShutdownResolvesEveryFuture) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::vector<std::future<Result<Tensor>>> futures(kClients * kPerClient);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futures[c * kPerClient + i] =
            batcher.Submit(RandomTensor({24, 2}, 600 + c * kPerClient + i));
      }
    });
  }
  batcher.Shutdown();  // races the submitters
  for (std::thread& client : clients) client.join();

  int64_t drained = 0;
  int64_t rejected = 0;
  for (auto& future : futures) {
    Result<Tensor> result = future.get();
    if (result.ok()) {
      ++drained;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(drained + rejected, kClients * kPerClient);
  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, drained);   // accepted == drained: no loss
  EXPECT_EQ(stats.completed, drained);
}

// Stats visibility ordering: a caller whose future resolved must already
// see itself counted in completed (stats are committed before promises
// are fulfilled).
TEST_F(SessionTest, ResolvedCallerSeesItselfInCompletedStats) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int64_t my_resolved = 0;
      for (int i = 0; i < 8; ++i) {
        auto result =
            batcher.Submit(RandomTensor({24, 2}, 700 + c * 8 + i)).get();
        if (!result.ok()) {
          failures[c] = result.status().ToString();
          return;
        }
        ++my_resolved;
        // At least my own completions must be visible; other clients
        // only add to the count.
        if (batcher.Stats().completed < my_resolved) {
          failures[c] = "completed count ran behind a resolved future";
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

// The CLI flow-control path (SubmitMode::kBlock): producers outrunning a
// tiny queue block for slots instead of harvesting Unavailable.
TEST_F(SessionTest, BlockingSubmitAppliesFlowControl) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.queue_capacity = 2;  // far smaller than the request count
  options.max_batch_size = 2;
  serve::Batcher batcher(opened.value().get(), options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto result =
            batcher
                .Submit(RandomTensor({24, 2}, 800 + c * kPerClient + i),
                        std::chrono::microseconds::zero(),
                        serve::SubmitMode::kBlock)
                .get();
        if (!result.ok()) {
          failures[c] = result.status().ToString();
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.rejected_full, 0);  // nothing bounced
  EXPECT_EQ(stats.completed, kClients * kPerClient);
}

// A blocked submitter must not deadlock on shutdown: it wakes and gets
// the Unavailable rejection while the queued request still drains.
TEST_F(SessionTest, BlockingSubmitUnblocksOnShutdown) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.queue_capacity = 1;
  // A coalescing wait long enough that the worker is still waiting for
  // batch fill when Shutdown arrives (the queued request executes then).
  options.max_batch_size = 64;
  options.max_delay = std::chrono::seconds(30);
  serve::Batcher batcher(opened.value().get(), options);

  std::future<Result<Tensor>> queued =
      batcher.Submit(RandomTensor({24, 2}, 900));  // fills the queue
  std::promise<void> blocked_started;
  std::future<Result<Tensor>> blocked_result;
  std::thread blocked([&] {
    blocked_started.set_value();
    blocked_result = batcher.Submit(RandomTensor({24, 2}, 901),
                                    std::chrono::microseconds::zero(),
                                    serve::SubmitMode::kBlock);
  });
  blocked_started.get_future().get();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  batcher.Shutdown();
  blocked.join();

  Result<Tensor> drained = queued.get();
  EXPECT_TRUE(drained.ok()) << drained.status().ToString();
  Result<Tensor> rejected = blocked_result.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
}

// ---- Overload & degradation (DESIGN.md "Overload & degradation") ----

// Admission control: with a seeded cost estimate of 10s/batch, any
// deadline under ~20s is unmeetable, so the shed decision is
// deterministic — no load generation needed.
TEST_F(SessionTest, AdmissionShedsWithOverloadedAndRetryAfter) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.max_batch_size = 4;
  options.cost_hint_seconds = 10.0;
  serve::Batcher batcher(opened.value().get(), options);

  auto shed = batcher.Submit(RandomTensor({24, 2}, 1000),
                             /*deadline=*/std::chrono::microseconds(100000));
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<Tensor> rejected = shed.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  EXPECT_NE(rejected.status().message().find("retry after"),
            std::string::npos)
      << rejected.status().ToString();

  // No deadline and no queue-delay cap: the same backlog estimate is not
  // a reason to shed.
  auto accepted = batcher.Submit(RandomTensor({24, 2}, 1001));
  batcher.Shutdown();
  Result<Tensor> answered = accepted.get();
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.shed_overload, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.expired, 0);
}

// The queue-delay cap sheds deadline-less requests too once the
// estimated backlog drain exceeds it.
TEST_F(SessionTest, QueueDelayCapShedsBacklogOnlyRequests) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.max_batch_size = 4;
  options.max_delay = std::chrono::seconds(30);  // hold the first in queue
  options.cost_hint_seconds = 10.0;
  options.max_queue_delay = std::chrono::microseconds(1000);
  serve::Batcher batcher(opened.value().get(), options);

  // First request: empty queue, zero batches ahead — admitted.
  auto first = batcher.Submit(RandomTensor({24, 2}, 1010));
  // Second: one live request ahead means one 10s batch to drain, far
  // over the 1ms cap.
  auto second = batcher.Submit(RandomTensor({24, 2}, 1011));
  ASSERT_EQ(second.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<Tensor> capped = second.get();
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kOverloaded);

  batcher.Shutdown();
  Result<Tensor> drained = first.get();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(batcher.Stats().shed_overload, 1);
}

// Satellite bugfix: a kBlock submit used to wait indefinitely for queue
// space even when its own deadline had already passed. It must give up
// at the deadline with the typed error instead of blocking behind a
// 30-second coalescing wait.
TEST_F(SessionTest, BlockingSubmitRespectsDeadlineWhileWaitingForSpace) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.queue_capacity = 1;
  options.max_batch_size = 64;
  options.max_delay = std::chrono::seconds(30);
  serve::Batcher batcher(opened.value().get(), options);

  auto queued = batcher.Submit(RandomTensor({24, 2}, 1020));  // fills queue
  const auto start = std::chrono::steady_clock::now();
  Result<Tensor> blocked =
      batcher
          .Submit(RandomTensor({24, 2}, 1021),
                  /*deadline=*/std::chrono::microseconds(30000),
                  serve::SubmitMode::kBlock)
          .get();
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kDeadlineExceeded);
  // Generous bound: far under the 30s coalescing wait a slot would take,
  // far over the 30ms deadline so scheduler noise cannot flake it.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(waited).count(),
            10);
  EXPECT_EQ(batcher.Stats().expired, 1);

  batcher.Shutdown();
  Result<Tensor> drained = queued.get();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
}

// A non-finite forecast must surface as a typed Internal error, never as
// silent garbage delivered to the caller.
TEST_F(SessionTest, NonFiniteForecastBecomesTypedInternalError) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});

  fault::Arm("poison_output_at=1");  // poison the next batched forward
  Result<Tensor> poisoned =
      batcher.Submit(RandomTensor({24, 2}, 1100)).get();
  fault::Disarm();
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal);
  EXPECT_NE(poisoned.status().message().find("non-finite"),
            std::string::npos)
      << poisoned.status().ToString();
  EXPECT_EQ(batcher.Stats().nonfinite_answers, 1);

  // The fault window closed; the model is healthy again.
  Result<Tensor> clean = batcher.Submit(RandomTensor({24, 2}, 1101)).get();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  batcher.Shutdown();
}

// Full breaker cycle: consecutive model failures trip it (instant typed
// rejections), the cooldown admits a half-open probe, and the probe's
// success closes it again.
TEST_F(SessionTest, BreakerTripsAndRecoversViaHalfOpenProbes) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.max_batch_size = 1;  // one request per batch: failures count 1:1
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown = std::chrono::milliseconds(50);
  options.breaker.half_open_successes = 1;
  serve::Batcher batcher(opened.value().get(), options);

  fault::Arm("poison_output_at=1,poison_output_count=2");
  for (int i = 0; i < 2; ++i) {
    Result<Tensor> bad = batcher.Submit(RandomTensor({24, 2}, 1200 + i)).get();
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
  }
  fault::Disarm();

  // Tripped: the next submit bounces instantly, naming the breaker.
  auto bounced = batcher.Submit(RandomTensor({24, 2}, 1210));
  ASSERT_EQ(bounced.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<Tensor> open_rejection = bounced.get();
  ASSERT_FALSE(open_rejection.ok());
  EXPECT_EQ(open_rejection.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(open_rejection.status().message().find("circuit breaker"),
            std::string::npos)
      << open_rejection.status().ToString();

  std::this_thread::sleep_for(std::chrono::milliseconds(70));  // > cooldown
  // First submit after the cooldown rides as the half-open probe; its
  // success closes the breaker for everyone after it.
  Result<Tensor> probe = batcher.Submit(RandomTensor({24, 2}, 1211)).get();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  Result<Tensor> after = batcher.Submit(RandomTensor({24, 2}, 1212)).get();
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.breaker.trips, 1);
  EXPECT_GE(stats.breaker.probes, 1);
  EXPECT_GE(stats.breaker.rejected, 1);
  EXPECT_EQ(stats.breaker.state, serve::BreakerState::kClosed);
  EXPECT_EQ(stats.nonfinite_answers, 2);
  batcher.Shutdown();
}

// TSan coverage for the breaker's state transitions under concurrent
// submitters while faults arm and clear underneath: every future must
// resolve with a typed outcome (answer, Internal, or breaker/queue
// Unavailable) — never hang, crash, or race.
TEST_F(SessionTest, BreakerChurnUnderConcurrentSubmitsResolvesEverything) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::BatcherOptions options;
  options.max_batch_size = 2;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown = std::chrono::milliseconds(1);
  options.breaker.half_open_successes = 1;
  serve::Batcher batcher(opened.value().get(), options);

  constexpr int kClients = 8;
  constexpr int kPerClient = 16;
  std::atomic<int> resolved{0};
  std::atomic<int> untyped{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        Result<Tensor> result =
            batcher.Submit(RandomTensor({24, 2}, 1300 + c * kPerClient + i))
                .get();
        ++resolved;
        if (result.ok()) continue;
        const StatusCode code = result.status().code();
        if (code != StatusCode::kInternal &&
            code != StatusCode::kUnavailable) {
          ++untyped;
        }
      }
    });
  }
  // Concurrent stats reader: Stats() must never race the commit path.
  std::atomic<bool> stop_stats{false};
  std::thread stats_reader([&] {
    while (!stop_stats.load()) {
      (void)batcher.Stats();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int round = 0; round < 6; ++round) {
    fault::Arm("poison_output_at=1,poison_output_count=2");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fault::Disarm();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::thread& client : clients) client.join();
  stop_stats.store(true);
  stats_reader.join();
  fault::Disarm();

  EXPECT_EQ(resolved.load(), kClients * kPerClient);
  EXPECT_EQ(untyped.load(), 0);
  batcher.Shutdown();
  // The breaker must be in a coherent terminal state, not wedged by a
  // lost probe.
  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_GE(stats.breaker.trips, 0);
  EXPECT_EQ(stats.completed + stats.expired + stats.rejected_full +
                stats.shed_overload + stats.breaker.rejected,
            kClients * kPerClient);
}

}  // namespace
}  // namespace lipformer
