#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/interrupt.h"
#include "nn/linear.h"
#include "serve/batcher.h"
#include "serve/checkpoint.h"
#include "serve/session.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Minimal module with one named parameter of a chosen shape, for
// exercising the per-tensor name/shape verification in LoadParameters.
struct OneParamModule : Module {
  OneParamModule(const std::string& name, Shape shape) {
    param = RegisterParameter(name, Variable(Tensor::Zeros(shape)));
  }
  Variable param;
};

// ---- Checkpoint v2 container ----

TEST(CheckpointV2Test, WriteReadRoundTripIsBitwise) {
  serve::Checkpoint ckpt;
  ckpt.metadata["model"] = "lipformer";
  ckpt.metadata["note"] = "";
  ckpt.tensors.push_back({"a.weight", RandomTensor({3, 4}, 1)});
  ckpt.tensors.push_back({"a.bias", RandomTensor({4}, 2)});
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());

  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Meta("model", ""), "lipformer");
  EXPECT_EQ(loaded.value().Meta("note", "x"), "");
  EXPECT_EQ(loaded.value().Meta("absent", "def"), "def");
  ASSERT_EQ(loaded.value().tensors.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.value().tensors[i].name, ckpt.tensors[i].name);
    EXPECT_EQ(loaded.value().tensors[i].data.shape(),
              ckpt.tensors[i].data.shape());
    EXPECT_TRUE(BitwiseEqual(loaded.value().tensors[i].data,
                             ckpt.tensors[i].data));
  }
}

TEST(CheckpointV2Test, RejectsLegacyV1WithMigrationAdvice) {
  // A legacy v1 file: u64 count, then u64 numel + raw floats per param.
  const std::string path = TempPath("legacy.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t count = 1, numel = 2;
    const float data[2] = {1.0f, 2.0f};
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out.write(reinterpret_cast<const char*>(data), sizeof(data));
  }
  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("not a v2 checkpoint"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("checkpoint_convert"),
            std::string::npos);
}

TEST(CheckpointV2Test, RejectsShortHeader) {
  const std::string path = TempPath("short.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("LPF", 3);  // shorter than the 8-byte magic
  }
  EXPECT_FALSE(serve::ReadCheckpoint(path).ok());
}

TEST(CheckpointV2Test, RejectsTruncatedTensorData) {
  serve::Checkpoint ckpt;
  ckpt.tensors.push_back({"w", RandomTensor({8, 8}, 3)});
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());
  // Chop off the last 16 bytes of tensor data.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  out.close();

  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST(CheckpointV2Test, RejectsTrailingBytes) {
  serve::Checkpoint ckpt;
  ckpt.tensors.push_back({"w", RandomTensor({2, 2}, 4)});
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(serve::WriteCheckpoint(path, ckpt).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("junk", 4);
  }
  auto loaded = serve::ReadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing bytes"),
            std::string::npos);
}

// ---- Module save/load on top of v2 ----

TEST(ModuleCheckpointTest, RoundTripIsBitwise) {
  Rng rng(5);
  Mlp a({3, 4, 2}, rng);
  Mlp b({3, 4, 2}, rng);  // different init
  const std::string path = TempPath("mlp_v2.ckpt");
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pa[i].value(), pb[i].value()));
  }
}

TEST(ModuleCheckpointTest, RejectsWrongShapeWithEqualFlatSize) {
  // The exact bug the v2 format exists to catch: [2, 6] and [3, 4] have
  // the same 12 floats, so the legacy loader accepted the transplant and
  // produced garbage. v2 must name the offending parameter.
  OneParamModule saved("weight", {2, 6});
  OneParamModule loaded_into("weight", {3, 4});
  const std::string path = TempPath("transposed.ckpt");
  ASSERT_TRUE(saved.SaveParameters(path).ok());
  Status st = loaded_into.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shape mismatch"), std::string::npos);
  EXPECT_NE(st.message().find("'weight'"), std::string::npos);
  EXPECT_NE(st.message().find("[2, 6]"), std::string::npos)
      << st.message();
}

TEST(ModuleCheckpointTest, RejectsWrongParameterName) {
  OneParamModule saved("weight", {2, 2});
  OneParamModule loaded_into("kernel", {2, 2});
  const std::string path = TempPath("renamed.ckpt");
  ASSERT_TRUE(saved.SaveParameters(path).ok());
  Status st = loaded_into.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no tensor named 'kernel'"),
            std::string::npos);
}

TEST(ModuleCheckpointTest, RejectsParameterCountMismatch) {
  Rng rng(6);
  Mlp saved({3, 4, 2}, rng);
  Linear loaded_into(3, 2, rng);
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(saved.SaveParameters(path).ok());
  Status st = loaded_into.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("parameter count mismatch"),
            std::string::npos);
}

TEST(ModuleCheckpointTest, LoadRejectsLegacyV1File) {
  Rng rng(7);
  Linear lin(2, 2, rng);
  // v1 layout matching the module exactly — still rejected by the v2
  // loader (only checkpoint_convert may read it).
  const std::string path = TempPath("legacy_exact.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t count = 2;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Variable& v : lin.Parameters()) {
      const uint64_t numel = static_cast<uint64_t>(v.numel());
      out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
      out.write(reinterpret_cast<const char*>(v.value().data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
    }
  }
  Status st = lin.LoadParameters(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checkpoint_convert"), std::string::npos);
}

TEST(ModuleCheckpointTest, LegacyLoaderRoundTripsAndChecksBounds) {
  Rng rng(8);
  Linear a(3, 2, rng);
  Linear b(3, 2, rng);
  const std::string path = TempPath("legacy_ok.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t count = 2;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Variable& v : a.Parameters()) {
      const uint64_t numel = static_cast<uint64_t>(v.numel());
      out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
      out.write(reinterpret_cast<const char*>(v.value().data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
    }
  }
  ASSERT_TRUE(b.LoadParametersLegacyV1(path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pa[i].value(), pb[i].value()));
  }

  // Trailing bytes are an error.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("x", 1);
  }
  Status st = b.LoadParametersLegacyV1(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing bytes"), std::string::npos);

  // A file shorter than the 8-byte header is an error, not a crash.
  const std::string stub = TempPath("legacy_stub.bin");
  {
    std::ofstream out(stub, std::ios::binary);
    out.write("abc", 3);
  }
  st = b.LoadParametersLegacyV1(stub);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("8-byte header"), std::string::npos);
}

TEST(ModuleCheckpointTest, LegacyLoaderRejectsV2File) {
  // Running the migration tool on an already-converted file must say so,
  // not report the magic reinterpreted as a garbage parameter count.
  Rng rng(8);
  Linear a(3, 2, rng);
  const std::string path = TempPath("already_v2.ckpt");
  ASSERT_TRUE(a.SaveParameters(path).ok());
  Status st = a.LoadParametersLegacyV1(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("already a v2 checkpoint"), std::string::npos);
}

// ---- Serving bundle + InferenceSession ----

class SessionTest : public ::testing::Test {
 protected:
  // Small but real LiPFormer bundle: 24 -> 6 over 2 channels.
  void SetUp() override {
    dims_.input_len = 24;
    dims_.pred_len = 6;
    dims_.channels = 2;
    options_.hidden_dim = 8;
    options_.num_heads = 2;
    options_.patch_len = 8;
    options_.seed = 11;
    model_ = CreateModel("lipformer", dims_, options_);
    Rng rng(12);
    scaler_.Fit(Tensor::Randn({64, dims_.channels}, rng));
    path_ = TempPath("session_bundle.ckpt");
    ASSERT_TRUE(serve::SaveModelBundle(path_, "lipformer", options_, *model_,
                                       scaler_)
                    .ok());
  }

  ForecasterDims dims_;
  ModelOptions options_;
  std::unique_ptr<Forecaster> model_;
  StandardScaler scaler_;
  std::string path_;
};

TEST_F(SessionTest, OpenPredictShapesAndConfig) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serve::InferenceSession* session = opened.value().get();
  EXPECT_EQ(session->model_name(), "lipformer");
  EXPECT_EQ(session->input_len(), 24);
  EXPECT_EQ(session->pred_len(), 6);
  EXPECT_EQ(session->channels(), 2);

  auto pred = session->Predict(RandomTensor({24, 2}, 13));
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_EQ(pred.value().shape(), (Shape{6, 2}));

  // Wrong shapes are rejected, not crashed on.
  EXPECT_FALSE(session->Predict(RandomTensor({23, 2}, 14)).ok());
  EXPECT_FALSE(session->PredictBatch(RandomTensor({24, 2}, 15)).ok());
}

TEST_F(SessionTest, BatchRowsBitwiseMatchSingles) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  const int64_t b = 5;
  Tensor batch = RandomTensor({b, 24, 2}, 16);
  auto batched = session->PredictBatch(batch);
  ASSERT_TRUE(batched.ok());
  for (int64_t i = 0; i < b; ++i) {
    Tensor window = Tensor::Empty({24, 2});
    std::memcpy(window.data(), batch.data() + i * 24 * 2,
                sizeof(float) * 24 * 2);
    auto single = session->Predict(window);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(0, std::memcmp(single.value().data(),
                             batched.value().data() + i * 6 * 2,
                             sizeof(float) * 6 * 2))
        << "row " << i << " of the batch diverged from its solo forward";
  }
}

TEST_F(SessionTest, MismatchedArchitectureNamesTheParameter) {
  // Same flat parameter layout categories, different hidden width: the
  // bundle metadata rebuilds hidden 8, the file below claims hidden 4.
  ModelOptions other = options_;
  other.hidden_dim = 4;
  std::unique_ptr<Forecaster> smaller =
      CreateModel("lipformer", dims_, other);
  const std::string wrong = TempPath("wrong_arch.ckpt");
  // Force the mismatch: bundle says hidden 8 but carries hidden-4 weights.
  serve::Checkpoint ckpt;
  {
    auto loaded = serve::ReadCheckpoint(path_);
    ASSERT_TRUE(loaded.ok());
    ckpt.metadata = loaded.value().metadata;
  }
  ASSERT_TRUE(smaller->SaveParameters(wrong).ok());
  auto weights = serve::ReadCheckpoint(wrong);
  ASSERT_TRUE(weights.ok());
  ckpt.tensors = weights.value().tensors;
  ASSERT_TRUE(serve::WriteCheckpoint(wrong, ckpt).ok());

  auto opened = serve::InferenceSession::Open(wrong);
  ASSERT_FALSE(opened.ok());
  // Either the count differs or a tensor's shape does; both must name the
  // problem precisely rather than load garbage.
  const std::string& msg = opened.status().message();
  EXPECT_TRUE(msg.find("mismatch") != std::string::npos) << msg;
}

TEST_F(SessionTest, RejectsBareParameterCheckpoint) {
  const std::string bare = TempPath("bare.ckpt");
  ASSERT_TRUE(model_->SaveParameters(bare).ok());
  auto opened = serve::InferenceSession::Open(bare);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("bundle"), std::string::npos);
}

TEST_F(SessionTest, UnscaledBundleServesInModelUnits) {
  const std::string unscaled = TempPath("unscaled.ckpt");
  ASSERT_TRUE(serve::SaveModelBundle(unscaled, "lipformer", options_,
                                     *model_, StandardScaler())
                  .ok());
  auto opened = serve::InferenceSession::Open(unscaled);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value()->Predict(RandomTensor({24, 2}, 17)).ok());
}

// ---- Dynamic micro-batcher ----

TEST_F(SessionTest, BatcherConcurrentResultsBitwiseMatchSerial) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::InferenceSession* session = opened.value().get();

  const int kClients = 8;
  const int kPerClient = 4;
  std::vector<Tensor> windows;
  std::vector<Tensor> expected;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    windows.push_back(RandomTensor({24, 2}, 100 + i));
    auto serial = session->Predict(windows.back());
    ASSERT_TRUE(serial.ok());
    expected.push_back(serial.value());
  }

  serve::BatcherOptions opts;
  opts.max_batch_size = 4;
  opts.max_delay = std::chrono::microseconds(200);
  serve::Batcher batcher(session, opts);
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      for (int i = 0; i < kPerClient; ++i) {
        const int idx = cl * kPerClient + i;
        auto result = batcher.Submit(windows[idx]).get();
        if (!result.ok() ||
            !BitwiseEqual(result.value(), expected[idx])) {
          ++mismatches[cl];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int cl = 0; cl < kClients; ++cl) {
    EXPECT_EQ(mismatches[cl], 0) << "client " << cl;
  }

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.rejected_full, 0);
  EXPECT_EQ(stats.expired, 0);
  int64_t in_batches = 0;
  for (size_t s = 0; s < stats.batch_size_histogram.size(); ++s) {
    in_batches += stats.batch_size_histogram[s] * (s + 1);
  }
  EXPECT_EQ(in_batches, kClients * kPerClient);
  EXPECT_GT(stats.p99_latency_seconds, 0.0);
  EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
}

TEST_F(SessionTest, BatcherBackpressureAndDrainOnShutdown) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());

  // max_batch unreachable and max_delay long: the worker coalesces
  // indefinitely, so the queue fills deterministically.
  serve::BatcherOptions opts;
  opts.max_batch_size = 64;
  opts.max_delay = std::chrono::seconds(30);
  opts.queue_capacity = 2;
  serve::Batcher batcher(opened.value().get(), opts);

  auto f1 = batcher.Submit(RandomTensor({24, 2}, 200));
  auto f2 = batcher.Submit(RandomTensor({24, 2}, 201));
  auto f3 = batcher.Submit(RandomTensor({24, 2}, 202));

  // Third is bounced immediately with a typed error.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto r3 = f3.get();
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kUnavailable);

  // Shutdown executes the two accepted requests instead of dropping them.
  batcher.Shutdown();
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1.value().shape(), (Shape{6, 2}));

  // After shutdown new submissions are rejected.
  auto f4 = batcher.Submit(RandomTensor({24, 2}, 203));
  auto r4 = f4.get();
  ASSERT_FALSE(r4.ok());
  EXPECT_EQ(r4.status().code(), StatusCode::kUnavailable);

  const serve::BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.rejected_full, 1);
}

TEST_F(SessionTest, BatcherExpiresMissedDeadlines) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());

  serve::BatcherOptions opts;
  opts.max_batch_size = 64;
  opts.max_delay = std::chrono::seconds(30);
  serve::Batcher batcher(opened.value().get(), opts);

  auto fast = batcher.Submit(RandomTensor({24, 2}, 300),
                             /*deadline=*/std::chrono::microseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  batcher.Shutdown();  // drains: deadline is long past by now
  auto result = fast.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batcher.Stats().expired, 1);
}

TEST_F(SessionTest, BatcherRejectsWrongShapeImmediately) {
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});
  auto f = batcher.Submit(RandomTensor({7, 2}, 400));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto r = f.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// The serve loop's graceful shutdown (cli.cc CmdServe): SIGTERM flips the
// interrupt flag that stops the accept loop, and everything already
// submitted still drains through the batcher and resolves.
TEST_F(SessionTest, SigtermStopsAcceptingButDrainsInFlightRequests) {
  ClearInterrupt();
  InstallInterruptHandlers();
  auto opened = serve::InferenceSession::Open(path_);
  ASSERT_TRUE(opened.ok());
  serve::Batcher batcher(opened.value().get(), {});

  std::vector<std::future<Result<Tensor>>> pending;
  for (int i = 0; i < 8; ++i) {
    pending.push_back(batcher.Submit(RandomTensor({24, 2}, 500 + i)));
  }
  // One signal only: the handlers are one-shot (SA_RESETHAND), a second
  // SIGTERM would kill the test binary by design.
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_TRUE(InterruptRequested());

  for (auto& f : pending) {
    Result<Tensor> r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().shape(), (Shape{6, 2}));
  }
  batcher.Shutdown();
  EXPECT_EQ(batcher.Stats().completed, 8);
  ClearInterrupt();
}

}  // namespace
}  // namespace lipformer
