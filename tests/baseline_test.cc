// Behavioural tests of the individual baseline mechanisms beyond the
// generic ModelSuite sweep: ProbSparse selection, autocorrelation lag
// aggregation, FGNN's frequency-domain filtering, TiDE's residual blocks
// and the shared Transformer encoder layer.

#include <cmath>

#include <gtest/gtest.h>

#include "models/autoformer.h"
#include "models/encoder_layer.h"
#include "models/fgnn.h"
#include "models/informer.h"
#include "models/tide.h"
#include "tests/test_util.h"

namespace lipformer {
namespace {

using testing::RandomTensor;

TEST(EncoderLayerTest, ShapePreservingAndGradients) {
  Rng rng(1);
  TransformerEncoderLayer layer(16, 2, 32, rng, /*dropout=*/0.0f);
  Variable x(RandomTensor({2, 5, 16}, 2), true);
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 16}));
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(x.has_grad());
  for (const Variable& p : layer.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(EncoderLayerTest, OutputIsLayerNormalized) {
  Rng rng(3);
  TransformerEncoderLayer layer(32, 4, 64, rng, 0.0f);
  Variable x(RandomTensor({1, 4, 32}, 4, 3.0f));
  Tensor y = layer.Forward(x).value();
  // Post-norm layer: every token vector has ~zero mean, ~unit variance.
  for (int64_t s = 0; s < 4; ++s) {
    double mean = 0, var = 0;
    for (int64_t d = 0; d < 32; ++d) mean += y.at({0, s, d});
    mean /= 32;
    for (int64_t d = 0; d < 32; ++d) {
      const double diff = y.at({0, s, d}) - mean;
      var += diff * diff;
    }
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var / 32, 1.0, 0.1);
  }
}

TEST(ProbSparseTest, ShapeAndGradFlow) {
  Rng rng(5);
  ProbSparseSelfAttention attn(16, rng, /*factor=*/1.0f);
  Variable x(RandomTensor({2, 12, 16}, 6), true);
  Variable y = attn.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 12, 16}));
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(x.has_grad());
}

TEST(ProbSparseTest, SmallFactorStillProducesFiniteOutput) {
  // With factor ~0 only ~1 query is active; the rest fall back to mean(V).
  Rng rng(7);
  ProbSparseSelfAttention attn(8, rng, /*factor=*/0.01f);
  Variable x(RandomTensor({1, 16, 8}, 8));
  Tensor y = attn.Forward(x).value();
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(AutoCorrelationTest, ShapeAndValueGradFlow) {
  Rng rng(9);
  AutoCorrelationAttention attn(8, rng, /*factor=*/1.0f);
  Variable x(RandomTensor({2, 16, 8}, 10), true);
  Variable y = attn.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 16, 8}));
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(x.has_grad());
}

TEST(FgnnTest, LowPassBehaviourOfTruncatedSpectrum) {
  // An FGNN with identity-like mixing reconstructs only what survives the
  // truncated DFT. Feed a pure high-frequency signal beyond the kept
  // bins; after DFT -> iDFT the representation the head sees is ~0, so the
  // untrained model output must not correlate with the oscillation.
  ForecasterDims dims{32, 8, 1};
  FgnnConfig config;
  config.num_frequencies = 3;
  config.num_layers = 1;
  Fgnn model(dims, config, 1);
  model.SetTraining(false);
  NoGradGuard ng;

  Batch batch;
  batch.size = 1;
  batch.x = Tensor(Shape{1, 32, 1});
  for (int64_t t = 0; t < 32; ++t) {
    batch.x.data()[t] = std::cos(2.0 * M_PI * 12 * t / 32.0);  // bin 12 > 3
  }
  batch.y = Tensor::Zeros({1, 8, 1});
  Tensor out = model.Forward(batch).value().Clone();

  Batch flat;
  flat.size = 1;
  flat.x = Tensor::Zeros({1, 32, 1});
  flat.y = Tensor::Zeros({1, 8, 1});
  Tensor out_flat = model.Forward(flat).value().Clone();
  // Both inputs end at the same last value (cos oscillation at t=31 is not
  // exactly 0, so compare after removing the instance-norm offset).
  const float offset = batch.x.at({0, 31, 0});
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.data()[i] - offset, out_flat.data()[i], 0.05f);
  }
}

TEST(TideResBlockTest, ShapeAndSkipPath) {
  Rng rng(11);
  TideResBlock block(10, 16, 6, rng, /*dropout=*/0.0f);
  Variable x(RandomTensor({4, 10}, 12), true);
  Variable y = block.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 6}));
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(x.has_grad());
}

TEST(TideTest, UsesFutureCovariatesWhenPresent) {
  // Two batches identical except for the future covariates must produce
  // different TiDE outputs (it genuinely consumes them).
  Rng unused(13);
  ForecasterDims dims{24, 8, 2};
  TideConfig config;
  config.dropout = 0.0f;
  Tide model(dims, /*num_covariates=*/3, config, 1);
  model.SetTraining(false);
  NoGradGuard ng;

  Batch a;
  a.size = 2;
  a.x = RandomTensor({2, 24, 2}, 14);
  a.y = Tensor::Zeros({2, 8, 2});
  a.y_cov_num = RandomTensor({2, 8, 3}, 15);
  Batch b = a;
  b.y_cov_num = RandomTensor({2, 8, 3}, 16);

  EXPECT_FALSE(AllClose(model.Forward(a).value(), model.Forward(b).value(),
                        1e-5f, 1e-5f));
}

TEST(TideTest, WorksWithoutCovariates) {
  ForecasterDims dims{24, 8, 2};
  TideConfig config;
  config.dropout = 0.0f;
  Tide model(dims, /*num_covariates=*/0, config, 1);
  Batch batch;
  batch.size = 1;
  batch.x = RandomTensor({1, 24, 2}, 17);
  batch.y = Tensor::Zeros({1, 8, 2});
  batch.y_cov_num = Tensor(Shape{1, 8, 0});
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{1, 8, 2}));
}

}  // namespace
}  // namespace lipformer
