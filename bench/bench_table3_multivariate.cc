// Table III: multivariate long-term forecasting accuracy (MSE/MAE) and
// efficiency (train s/epoch, inference s, MACs, params) for LiPFormer and
// the six baselines across the nine benchmark datasets and four horizons.
// The reproduced claim is comparative: LiPFormer should rank at or near the
// top in accuracy while being dramatically cheaper than the Transformer
// baselines, and should lead decisively on the two covariate datasets.

#include <cstdio>
#include <map>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const std::vector<std::string> models = {"lipformer",    "itransformer",
                                           "timemixer",    "fgnn",
                                           "patchtst",     "dlinear",
                                           "tide"};
  const std::vector<std::string> datasets = {
      "etth1",       "etth2",   "ettm1", "ettm2", "weather",
      "electricity", "traffic", "electri_price", "cycle"};

  TablePrinter table({"Dataset", "L", "Model", "MSE", "MAE", "TrainS/Epoch",
                      "InferS", "MACs", "Params"});
  // first-place / top-two counts per model over MSE and MAE, as in the
  // paper's Count row.
  std::map<std::string, int> first_count;
  std::map<std::string, int> top2_count;

  for (const std::string& dataset : datasets) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);
    for (int64_t horizon : env.horizons) {
      std::map<std::string, RunResult> results;
      for (const std::string& model : models) {
        RunResult r =
            model == "lipformer"
                ? RunLiPFormer(spec, env, horizon, /*use_covariates=*/true)
                : RunModel(model, spec, env, horizon);
        results[model] = r;
        table.AddRow(
            {dataset, std::to_string(horizon), model,
             FmtFloat(r.test.mse), FmtFloat(r.test.mae),
             FmtFloat(r.train.seconds_per_epoch, 2),
             FormatSeconds(r.profile.seconds_per_inference),
             FormatCount(static_cast<double>(r.profile.macs)),
             FormatCount(static_cast<double>(r.profile.parameters))});
        std::fprintf(stderr, "[table3] %s L=%lld %s mse=%.3f\n",
                     dataset.c_str(), static_cast<long long>(horizon),
                     model.c_str(), r.test.mse);
      }
      for (const char* metric : {"mse", "mae"}) {
        std::vector<std::pair<float, std::string>> ranked;
        for (const auto& [name, r] : results) {
          ranked.emplace_back(
              std::string(metric) == "mse" ? r.test.mse : r.test.mae, name);
        }
        std::sort(ranked.begin(), ranked.end());
        first_count[ranked[0].second] += 1;
        top2_count[ranked[0].second] += 1;
        if (ranked.size() > 1) top2_count[ranked[1].second] += 1;
      }
    }
  }

  table.Print("Table III: multivariate forecasting (accuracy + efficiency)");
  (void)table.WriteCsv(ResultsPath(env, "table3_multivariate"));

  TablePrinter counts({"Model", "FirstPlace", "TopTwo"});
  for (const std::string& model : models) {
    counts.AddRow({model, std::to_string(first_count[model]),
                   std::to_string(top2_count[model])});
  }
  counts.Print("Table III Count row (first / top-two finishes)");
  (void)counts.WriteCsv(ResultsPath(env, "table3_counts"));
  return 0;
}
