// Table VI: LiPFormer with vs. without implicit-temporal-feature
// pre-training on the four ETT datasets (no explicit covariates there; the
// weak labels are the Informer-style time features). Reproduced claim:
// attaching the pre-trained dual encoder reduces MSE/MAE.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const int64_t horizon = env.full ? 96 : 48;

  TablePrinter table({"Dataset", "MSE(no pretrain)", "MAE(no pretrain)",
                      "MSE(pretrain)", "MAE(pretrain)", "dMSE%"});
  for (const std::string& dataset : {"etth1", "etth2", "ettm1", "ettm2"}) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);
    RunResult without =
        RunLiPFormer(spec, env, horizon, /*use_covariates=*/false);
    RunResult with =
        RunLiPFormer(spec, env, horizon, /*use_covariates=*/true);
    const float delta =
        100.0f * (with.test.mse - without.test.mse) / without.test.mse;
    table.AddRow({dataset, FmtFloat(without.test.mse),
                  FmtFloat(without.test.mae), FmtFloat(with.test.mse),
                  FmtFloat(with.test.mae), FmtFloat(delta, 1)});
    std::fprintf(stderr, "[table6] %s done\n", dataset.c_str());
  }
  table.Print(
      "Table VI: implicit temporal-feature pre-training (L=" +
      std::to_string(horizon) + ")");
  (void)table.WriteCsv(ResultsPath(env, "table6_pretrain"));
  return 0;
}
