// Table VIII: impact of the patch length pl on LiPFormer accuracy over the
// ETT datasets. Reproduced claim: accuracy is stable across patch lengths
// (the Cross-Patch mixing compensates for the fixed patch scale), with the
// larger patch a reasonable default.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const std::vector<int64_t> patch_lens =
      env.full ? std::vector<int64_t>{6, 12, 24, 48}
               : std::vector<int64_t>{6, 12, 24, 48};
  const int64_t horizon = env.full ? 96 : 48;

  TablePrinter table({"Dataset", "pl", "MSE", "MAE"});
  for (const std::string& dataset : {"etth1", "etth2", "ettm1", "ettm2"}) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);
    for (int64_t pl : patch_lens) {
      if (env.input_len % pl != 0) continue;
      LiPFormerConfig config;
      config.hidden_dim = env.hidden_dim;
      config.patch_len = pl;
      RunResult r = RunLiPFormer(spec, env, horizon,
                                 /*use_covariates=*/false, &config);
      table.AddRow({dataset, std::to_string(pl), FmtFloat(r.test.mse),
                    FmtFloat(r.test.mae)});
      std::fprintf(stderr, "[table8] %s pl=%lld mse=%.3f\n", dataset.c_str(),
                   static_cast<long long>(pl), r.test.mse);
    }
  }
  table.Print("Table VIII: patch length sweep (L=" + std::to_string(horizon)
              + ")");
  (void)table.WriteCsv(ResultsPath(env, "table8_patchsize"));
  return 0;
}
