// Serving-path benchmark: measures the AOT inference-plan path
// (serve/plan.h) against the module forward, serial and batched, fp32
// and int8. Every phase opens a FRESH InferenceSession from the bundle
// file so configurations are compared cold-start fair (no phase inherits
// another's warmed caches), and the storage pool is cleared between
// phases. The headline determinism claims are verified on every run —
// the plan path must be bitwise identical to the module path, and each
// batched answer bitwise identical to the serial answer for the same
// window — and the benchmark exits non-zero on any mismatch, so
// scripts/check_perf.sh gates correctness together with throughput.
//
//   bench_serving [--requests=N] [--threads=N] [--clients=N]
//                 [--max-batch=N] [--json=FILE]
//
// Phases (all serial timings are batch-1 closed-loop):
//   1. module fp32:  --no-plan session; also the bitwise reference
//   2. plan fp32:    default session; plan_speedup = plan / module
//   2b. unfused plan fp32: LIPF_NO_FUSE session (no epilogue/chain
//       fusion); fusion_speedup = fused plan / unfused plan
//   3. batched:      `clients` threads through the micro-batcher (plan)
//   4. module int8:  --no-plan quantized session; int8 bitwise reference
//   5. plan int8:    default quantized session
// plus an untimed profiling pass that prints per-op-kind plan timings.
//
// JSON output (consumed by check_perf.sh):
//   {"single_rps": ..., "module_single_rps": ..., "plan_speedup": ...,
//    "nofuse_single_rps": ..., "fusion_speedup": ...,
//    "batched16_rps": ..., "speedup": ...,
//    "p50_us": ..., "p99_us": ..., "p999_us": ...,
//    "quant_single_rps": ..., "quant_module_rps": ...,
//    "quant_plan_speedup": ..., "quant_speedup": ...,
//    "plan_records": ..., "plan_arena_bytes": ...,
//    "plan_fused_epilogues": ..., "plan_fused_chains": ...,
//    "plan_passes_eliminated": ..., "plan_arena_saved_bytes": ...}
// single_rps / quant_single_rps stay the serial-throughput keys older
// baselines gate on; they now measure the (default) plan path.
// quant_speedup is the module-path int8/fp32 ratio (the VNNI GEMM
// claim); plan_speedup and quant_plan_speedup are plan-vs-module.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "data/scaler.h"
#include "models/factory.h"
#include "serve/batcher.h"
#include "serve/quantize.h"
#include "serve/session.h"
#include "tensor/storage_pool.h"

namespace lipformer {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

// Opens a fresh session from `path` with the plan path on or off.
// Exits the benchmark on failure (nullptr return).
std::unique_ptr<serve::InferenceSession> OpenSession(const std::string& path,
                                                     bool use_plan) {
  serve::SessionOptions options;
  options.use_plan = use_plan;
  auto opened = serve::InferenceSession::Open(path, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "bundle open failed: %s\n",
                 opened.status().ToString().c_str());
    return nullptr;
  }
  if (use_plan) {
    const serve::SessionPlanStats ps = opened.value()->plan_stats();
    if (!ps.compile_error.empty()) {
      std::fprintf(stderr, "plan compile failed: %s\n",
                   ps.compile_error.c_str());
      return nullptr;
    }
  }
  return std::move(opened.value());
}

// Serial closed-loop throughput: every request through Predict. An
// untimed pass collects outputs (when `outputs` is non-null) and doubles
// as warmup charging one-time costs (pool growth, lazy module caches);
// then `reps` timed passes, of which the FASTEST counts — rps ratios
// between phases gate against floors in check_perf.sh, and the best-of
// is the least noisy statistic on shared boxes (same policy as the
// kernel benchmarks: scheduler and frequency jitter only ever add time).
// Returns requests/second, negative on failure.
double TimeSerial(serve::InferenceSession* session,
                  const std::vector<Tensor>& requests,
                  std::vector<Tensor>* outputs, int reps = 5) {
  for (int i = 0; i < 4; ++i) (void)session->Predict(requests[0]);
  if (outputs != nullptr) {
    outputs->clear();
    outputs->reserve(requests.size());
  }
  for (const Tensor& request : requests) {
    auto prediction = session->Predict(request);
    if (!prediction.ok()) {
      std::fprintf(stderr, "predict failed: %s\n",
                   prediction.status().ToString().c_str());
      return -1.0;
    }
    if (outputs != nullptr) {
      outputs->push_back(std::move(prediction).value());
    }
  }
  double best_seconds = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    for (const Tensor& request : requests) {
      auto prediction = session->Predict(request);
      if (!prediction.ok()) {
        std::fprintf(stderr, "predict failed: %s\n",
                     prediction.status().ToString().c_str());
        return -1.0;
      }
    }
    const double seconds = SecondsSince(start);
    if (best_seconds < 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(requests.size()) / best_seconds;
}

int64_t CountMismatches(const std::vector<Tensor>& got,
                        const std::vector<Tensor>& want) {
  int64_t mismatches = 0;
  for (size_t i = 0; i < want.size(); ++i) {
    if (got[i].numel() != want[i].numel() ||
        std::memcmp(got[i].data(), want[i].data(),
                    static_cast<size_t>(want[i].numel()) * sizeof(float)) !=
            0) {
      ++mismatches;
    }
  }
  return mismatches;
}

int Run(int argc, char** argv) {
  const int64_t num_requests = FlagInt(argc, argv, "requests", 512);
  const int64_t threads =
      FlagInt(argc, argv, "threads", DefaultNumThreads());
  const int64_t clients = FlagInt(argc, argv, "clients", 16);
  const int64_t max_batch = FlagInt(argc, argv, "max-batch", 16);
  const std::string json_path = FlagStr(argc, argv, "json", "");
  SetNumThreads(static_cast<int>(threads));

  // A paper-scale model (Weather-like: 21 channels, 336 -> 96 by
  // default). Single-window forwards on this size leave the tensor
  // kernels below their parallel grain; a 16-way batch crosses it, which
  // is exactly the regime the batcher exists for.
  ForecasterDims dims;
  dims.input_len = FlagInt(argc, argv, "input", 336);
  dims.pred_len = FlagInt(argc, argv, "horizon", 96);
  dims.channels = FlagInt(argc, argv, "channels", 21);
  ModelOptions options;
  options.hidden_dim = FlagInt(argc, argv, "hidden", 64);
  options.seed = 7;
  std::unique_ptr<Forecaster> model = CreateModel("lipformer", dims, options);

  Rng rng(11);
  StandardScaler scaler;
  scaler.Fit(Tensor::Randn({256, dims.channels}, rng));

  const std::string bundle_path = "/tmp/lipformer_bench_serving.ckpt";
  Status st =
      serve::SaveModelBundle(bundle_path, "lipformer", options, *model, scaler);
  if (!st.ok()) {
    std::fprintf(stderr, "bundle save failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<Tensor> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int64_t i = 0; i < num_requests; ++i) {
    requests.push_back(Tensor::Randn({dims.input_len, dims.channels}, rng));
  }

  // Phase 1 — module fp32 serial: the plan-less baseline and the bitwise
  // reference every other fp32 phase is checked against.
  std::vector<Tensor> expected;
  double module_single_rps;
  {
    auto session = OpenSession(bundle_path, /*use_plan=*/false);
    if (session == nullptr) return 1;
    module_single_rps = TimeSerial(session.get(), requests, &expected);
    if (module_single_rps < 0) return 1;
  }
  ClearStoragePool();

  // Phase 2 — plan fp32 serial: same workload, fresh session, AOT plan.
  std::vector<Tensor> plan_outputs;
  double single_rps;
  serve::PlanStats plan_stats;
  {
    auto session = OpenSession(bundle_path, /*use_plan=*/true);
    if (session == nullptr) return 1;
    single_rps = TimeSerial(session.get(), requests, &plan_outputs);
    if (single_rps < 0) return 1;
    plan_stats = session->plan_stats().plan;
  }
  const int64_t plan_mismatches = CountMismatches(plan_outputs, expected);
  plan_outputs.clear();
  const double plan_speedup = single_rps / module_single_rps;
  ClearStoragePool();

  // Phase 2b — fused vs unfused plan, interleaved: LIPF_NO_FUSE disables
  // the compile-time epilogue/chain fusion passes, isolating what fusion
  // alone buys on the identical plan path (check_perf.sh gates the
  // ratio). The fusion effect is a few percent, which phase-to-phase
  // drift (frequency scaling on shared boxes) can swamp, so both
  // sessions are timed in ALTERNATING best-of passes inside one phase —
  // drift hits both sides equally and cancels out of the ratio. The env
  // var is read once at Compile; set/restore around the session open is
  // race-free here (single-threaded phase setup).
  std::vector<Tensor> nofuse_outputs;
  double nofuse_single_rps = -1.0;
  double fused_single_rps = -1.0;
  double fusion_speedup = 0.0;
  {
    const bool had_nofuse = std::getenv("LIPF_NO_FUSE") != nullptr;
    setenv("LIPF_NO_FUSE", "1", 1);
    auto nofuse_session = OpenSession(bundle_path, /*use_plan=*/true);
    if (!had_nofuse) unsetenv("LIPF_NO_FUSE");
    auto fused_session = OpenSession(bundle_path, /*use_plan=*/true);
    if (nofuse_session == nullptr || fused_session == nullptr) return 1;
    // Warmup + bitwise collection for the unfused plan (the fused plan's
    // outputs were already checked in phase 2).
    if (TimeSerial(nofuse_session.get(), requests, &nofuse_outputs, 1) < 0 ||
        TimeSerial(fused_session.get(), requests, nullptr, 1) < 0) {
      return 1;
    }
    // Paired passes back to back; the gated statistic is the MEDIAN of
    // the per-pair ratios, so a load burst that corrupts one pass skews
    // one ratio, not the result.
    std::vector<double> ratios;
    for (int rep = 0; rep < 9; ++rep) {
      double pair_rps[2];
      int side = 0;
      for (serve::InferenceSession* session :
           {nofuse_session.get(), fused_session.get()}) {
        const auto start = Clock::now();
        for (const Tensor& request : requests) {
          if (!session->Predict(request).ok()) return 1;
        }
        pair_rps[side++] =
            static_cast<double>(requests.size()) / SecondsSince(start);
      }
      nofuse_single_rps = std::max(nofuse_single_rps, pair_rps[0]);
      fused_single_rps = std::max(fused_single_rps, pair_rps[1]);
      ratios.push_back(pair_rps[1] / pair_rps[0]);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    fusion_speedup = ratios[ratios.size() / 2];
  }
  const int64_t nofuse_mismatches = CountMismatches(nofuse_outputs, expected);
  nofuse_outputs.clear();
  ClearStoragePool();

  // Phase 3 — batched plan fp32: closed-loop load from `clients`
  // threads, each submitting its stripe of requests one at a time and
  // waiting for the answer, so at most `clients` requests are in
  // flight — the batcher coalesces them.
  std::vector<Tensor> batched(requests.size());
  std::vector<int> failures(static_cast<size_t>(clients), 0);
  double batched_rps;
  serve::BatcherStats stats;
  {
    auto session = OpenSession(bundle_path, /*use_plan=*/true);
    if (session == nullptr) return 1;
    for (int i = 0; i < 4; ++i) (void)session->Predict(requests[0]);
    // Compile the full-batch plan before the clock starts; a closed loop
    // of `clients` >= max_batch keeps the batcher at max_batch.
    (void)session->PlanForBatch(max_batch);
    serve::BatcherOptions batcher_options;
    batcher_options.max_batch_size = max_batch;
    batcher_options.max_delay = std::chrono::microseconds(1000);
    batcher_options.queue_capacity = 1024;
    serve::Batcher batcher(session.get(), batcher_options);

    const auto batched_start = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int64_t w = 0; w < clients; ++w) {
      workers.emplace_back([&, w] {
        for (int64_t i = w; i < num_requests; i += clients) {
          auto result =
              batcher.Submit(requests[static_cast<size_t>(i)]).get();
          if (!result.ok()) {
            ++failures[static_cast<size_t>(w)];
            continue;
          }
          batched[static_cast<size_t>(i)] = std::move(result).value();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double batched_seconds = SecondsSince(batched_start);
    batched_rps = static_cast<double>(num_requests) / batched_seconds;
    batcher.Shutdown();
    stats = batcher.Stats();
  }

  int64_t total_failures = 0;
  for (int f : failures) total_failures += f;
  const int64_t mismatches = CountMismatches(batched, expected);
  batched.clear();
  expected.clear();
  ClearStoragePool();

  // Phases 4 + 5 — int8 bundle (serve/quantize.h), module then plan,
  // same serial workload and the same bitwise discipline.
  const std::string quant_path = "/tmp/lipformer_bench_serving_int8.ckpt";
  st = serve::QuantizeBundleFile(bundle_path, quant_path, /*force=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "bundle quantize failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::vector<Tensor> quant_expected;
  double quant_module_rps;
  {
    auto session = OpenSession(quant_path, /*use_plan=*/false);
    if (session == nullptr) return 1;
    if (!session->quantized()) {
      std::fprintf(stderr, "quantized bundle open: session not quantized\n");
      return 1;
    }
    quant_module_rps = TimeSerial(session.get(), requests, &quant_expected);
    if (quant_module_rps < 0) return 1;
  }
  ClearStoragePool();

  std::vector<Tensor> quant_outputs;
  double quant_rps;
  {
    auto session = OpenSession(quant_path, /*use_plan=*/true);
    if (session == nullptr) return 1;
    quant_rps = TimeSerial(session.get(), requests, &quant_outputs);
    if (quant_rps < 0) return 1;
  }
  const int64_t quant_mismatches =
      CountMismatches(quant_outputs, quant_expected);
  quant_outputs.clear();
  quant_expected.clear();
  ClearStoragePool();
  const double quant_plan_speedup = quant_rps / quant_module_rps;
  // The int8-vs-fp32 claim check_perf.sh gates under AVX512-VNNI is about
  // the int8 GEMM kernel, so it compares module paths: on the plan path,
  // compile-time prepacked fp32 GEMM B closes most of the gap at this
  // model size (the int8 weights were always prepacked).
  const double quant_speedup = quant_module_rps / module_single_rps;

  // Untimed profiling pass: where does a plan execution spend its time?
  {
    auto session = OpenSession(bundle_path, /*use_plan=*/true);
    if (session == nullptr) return 1;
    session->SetPlanProfiling(true);
    const int64_t profile_iters = std::min<int64_t>(64, num_requests);
    for (int64_t i = 0; i < profile_iters; ++i) {
      (void)session->Predict(requests[static_cast<size_t>(i)]);
    }
    const serve::SessionPlanStats ps = session->plan_stats();
    std::fprintf(stderr,
                 "plan:    %lld ops (%lld traced, %lld elided, %lld "
                 "fused), %lld-byte arena, %lld prepacked GEMMs "
                 "(%lld bytes), %lld constants\n",
                 static_cast<long long>(ps.plan.num_ops),
                 static_cast<long long>(ps.plan.num_traced),
                 static_cast<long long>(ps.plan.num_elided),
                 static_cast<long long>(ps.plan.fused_gemm_operands),
                 static_cast<long long>(ps.plan.arena_bytes),
                 static_cast<long long>(ps.plan.prepacked_gemms),
                 static_cast<long long>(ps.plan.prepacked_bytes),
                 static_cast<long long>(ps.plan.num_constants));
    std::fprintf(stderr,
                 "plan:    fusion %lld GEMM epilogues, %lld elementwise "
                 "chains (%lld ops), %lld passes eliminated, %lld arena "
                 "bytes saved\n",
                 static_cast<long long>(ps.plan.fused_epilogues),
                 static_cast<long long>(ps.plan.fused_chains),
                 static_cast<long long>(ps.plan.fused_chain_ops),
                 static_cast<long long>(ps.plan.passes_eliminated),
                 static_cast<long long>(ps.plan.arena_saved_bytes));
    for (const serve::PlanOpTiming& t : ps.timings) {
      std::fprintf(stderr, "plan:      %-22s %6lld calls %10.1f us total\n",
                   t.name, static_cast<long long>(t.calls),
                   static_cast<double>(t.total_ns) * 1e-3);
    }
  }
  ClearStoragePool();

  const double speedup = batched_rps / single_rps;
  const double p50_us = stats.p50_latency_seconds * 1e6;
  const double p99_us = stats.p99_latency_seconds * 1e6;
  const double p999_us = stats.p999_latency_seconds * 1e6;
  std::fprintf(stderr,
               "module:  %6.1f req/s (serial fp32, %lld requests, "
               "%lld threads)\n"
               "plan:    %6.1f req/s (serial fp32, %.2fx over module, "
               "%.2fx over unfused plan %.1f req/s)\n"
               "batched: %6.1f req/s (%lld clients, max_batch %lld, "
               "%lld batches, p50 %.0f us, p99 %.0f us, p99.9 %.0f us)\n"
               "int8:    %6.1f req/s plan (%.2fx over int8 module "
               "%.1f req/s; module int8/fp32 %.2fx)\n"
               "speedup: %.2fx batched, mismatches: %lld plan, %lld "
               "unfused, %lld batched, %lld int8, failures: %lld\n",
               module_single_rps, static_cast<long long>(num_requests),
               static_cast<long long>(threads), single_rps, plan_speedup,
               fusion_speedup, nofuse_single_rps, batched_rps,
               static_cast<long long>(clients),
               static_cast<long long>(max_batch),
               static_cast<long long>(stats.batches), p50_us, p99_us,
               p999_us, quant_rps, quant_plan_speedup, quant_module_rps,
               quant_speedup, speedup,
               static_cast<long long>(plan_mismatches),
               static_cast<long long>(nofuse_mismatches),
               static_cast<long long>(mismatches),
               static_cast<long long>(quant_mismatches),
               static_cast<long long>(total_failures));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"single_rps\": %.3f, \"module_single_rps\": %.3f, "
                 "\"plan_speedup\": %.4f, \"nofuse_single_rps\": %.3f, "
                 "\"fusion_speedup\": %.4f, \"batched16_rps\": %.3f, "
                 "\"speedup\": %.4f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"p999_us\": %.1f, \"quant_single_rps\": %.3f, "
                 "\"quant_module_rps\": %.3f, \"quant_plan_speedup\": %.4f, "
                 "\"quant_speedup\": %.4f, \"plan_records\": %lld, "
                 "\"plan_arena_bytes\": %lld, "
                 "\"plan_fused_epilogues\": %lld, "
                 "\"plan_fused_chains\": %lld, "
                 "\"plan_passes_eliminated\": %lld, "
                 "\"plan_arena_saved_bytes\": %lld}\n",
                 single_rps, module_single_rps, plan_speedup,
                 nofuse_single_rps, fusion_speedup, batched_rps,
                 speedup, p50_us, p99_us, p999_us, quant_rps,
                 quant_module_rps, quant_plan_speedup, quant_speedup,
                 static_cast<long long>(plan_stats.num_ops),
                 static_cast<long long>(plan_stats.arena_bytes),
                 static_cast<long long>(plan_stats.fused_epilogues),
                 static_cast<long long>(plan_stats.fused_chains),
                 static_cast<long long>(plan_stats.passes_eliminated),
                 static_cast<long long>(plan_stats.arena_saved_bytes));
    std::fclose(f);
  }

  if (plan_mismatches > 0 || nofuse_mismatches > 0 || mismatches > 0 ||
      quant_mismatches > 0 || total_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: plan and batched outputs must be bitwise identical "
                 "to the module-path serial outputs\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lipformer

int main(int argc, char** argv) { return lipformer::Run(argc, argv); }
