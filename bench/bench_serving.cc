// Serving-path benchmark: closed-loop comparison of one-at-a-time
// inference (session->Predict per request) against 16 concurrent clients
// driving the dynamic micro-batcher. Verifies the headline determinism
// claim on every run — each batched answer must be bitwise identical to
// the serial answer for the same window — and exits non-zero on any
// mismatch, so scripts/check_perf.sh gates correctness together with
// throughput.
//
//   bench_serving [--requests=N] [--threads=N] [--clients=N]
//                 [--max-batch=N] [--json=FILE]
//
// A third phase quantizes the bundle to int8 (serve/quantize.h) and
// replays the serial workload through the quantized session, verifying
// its own batched == serial bitwise identity and reporting the int8 /
// fp32 serial speedup that check_perf.sh gates.
//
// JSON output (consumed by check_perf.sh):
//   {"single_rps": ..., "batched16_rps": ..., "speedup": ...,
//    "p50_us": ..., "p99_us": ..., "p999_us": ...,
//    "quant_single_rps": ..., "quant_speedup": ...}

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "data/scaler.h"
#include "models/factory.h"
#include "serve/batcher.h"
#include "serve/quantize.h"
#include "serve/session.h"

namespace lipformer {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

int Run(int argc, char** argv) {
  const int64_t num_requests = FlagInt(argc, argv, "requests", 512);
  const int64_t threads =
      FlagInt(argc, argv, "threads", DefaultNumThreads());
  const int64_t clients = FlagInt(argc, argv, "clients", 16);
  const int64_t max_batch = FlagInt(argc, argv, "max-batch", 16);
  const std::string json_path = FlagStr(argc, argv, "json", "");
  SetNumThreads(static_cast<int>(threads));

  // A paper-scale model (Weather-like: 21 channels, 336 -> 96 by
  // default). Single-window forwards on this size leave the tensor
  // kernels below their parallel grain; a 16-way batch crosses it, which
  // is exactly the regime the batcher exists for.
  ForecasterDims dims;
  dims.input_len = FlagInt(argc, argv, "input", 336);
  dims.pred_len = FlagInt(argc, argv, "horizon", 96);
  dims.channels = FlagInt(argc, argv, "channels", 21);
  ModelOptions options;
  options.hidden_dim = FlagInt(argc, argv, "hidden", 64);
  options.seed = 7;
  std::unique_ptr<Forecaster> model = CreateModel("lipformer", dims, options);

  Rng rng(11);
  StandardScaler scaler;
  scaler.Fit(Tensor::Randn({256, dims.channels}, rng));

  const std::string bundle_path = "/tmp/lipformer_bench_serving.ckpt";
  Status st =
      serve::SaveModelBundle(bundle_path, "lipformer", options, *model, scaler);
  if (!st.ok()) {
    std::fprintf(stderr, "bundle save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto session_or = serve::InferenceSession::Open(bundle_path);
  if (!session_or.ok()) {
    std::fprintf(stderr, "bundle open failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::InferenceSession> session =
      std::move(session_or.value());

  std::vector<Tensor> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int64_t i = 0; i < num_requests; ++i) {
    requests.push_back(Tensor::Randn({dims.input_len, dims.channels}, rng));
  }

  // Warm up allocators/pool and pre-touch the model once.
  for (int i = 0; i < 4; ++i) (void)session->Predict(requests[0]);

  // Serial baseline: one request per Forward, and the reference outputs
  // for the bitwise check.
  std::vector<Tensor> expected;
  expected.reserve(requests.size());
  const auto serial_start = Clock::now();
  for (const Tensor& request : requests) {
    auto prediction = session->Predict(request);
    if (!prediction.ok()) {
      std::fprintf(stderr, "predict failed: %s\n",
                   prediction.status().ToString().c_str());
      return 1;
    }
    expected.push_back(std::move(prediction).value());
  }
  const double serial_seconds = SecondsSince(serial_start);
  const double single_rps = static_cast<double>(num_requests) / serial_seconds;

  // Closed-loop batched load: `clients` threads, each submitting its
  // stripe of requests one at a time and waiting for the answer, so at
  // most `clients` requests are in flight — the batcher coalesces them.
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch_size = max_batch;
  batcher_options.max_delay = std::chrono::microseconds(1000);
  batcher_options.queue_capacity = 1024;
  serve::Batcher batcher(session.get(), batcher_options);

  std::vector<Tensor> batched(requests.size());
  std::vector<int> failures(static_cast<size_t>(clients), 0);
  const auto batched_start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int64_t w = 0; w < clients; ++w) {
    workers.emplace_back([&, w] {
      for (int64_t i = w; i < num_requests; i += clients) {
        auto result = batcher.Submit(requests[static_cast<size_t>(i)]).get();
        if (!result.ok()) {
          ++failures[static_cast<size_t>(w)];
          continue;
        }
        batched[static_cast<size_t>(i)] = std::move(result).value();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double batched_seconds = SecondsSince(batched_start);
  const double batched_rps = static_cast<double>(num_requests) / batched_seconds;
  batcher.Shutdown();
  const serve::BatcherStats stats = batcher.Stats();

  int64_t total_failures = 0;
  for (int f : failures) total_failures += f;
  int64_t mismatches = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (batched[i].numel() != expected[i].numel() ||
        std::memcmp(batched[i].data(), expected[i].data(),
                    static_cast<size_t>(expected[i].numel()) *
                        sizeof(float)) != 0) {
      ++mismatches;
    }
  }

  // Quantized phase: int8 bundle, same serial workload. Row-wise
  // activation scales keep the quantized session's own batched == serial
  // identity, checked here on one batch before timing.
  const std::string quant_path = "/tmp/lipformer_bench_serving_int8.ckpt";
  st = serve::QuantizeBundleFile(bundle_path, quant_path, /*force=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "bundle quantize failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  auto quant_or = serve::InferenceSession::Open(quant_path);
  if (!quant_or.ok() || !quant_or.value()->quantized()) {
    std::fprintf(stderr, "quantized bundle open failed: %s\n",
                 quant_or.ok() ? "session is not quantized"
                               : quant_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::InferenceSession> quant =
      std::move(quant_or.value());

  const int64_t check = std::min<int64_t>(16, num_requests);
  Tensor check_batch =
      Tensor::Empty({check, dims.input_len, dims.channels});
  for (int64_t i = 0; i < check; ++i) {
    std::memcpy(check_batch.data() + i * dims.input_len * dims.channels,
                requests[static_cast<size_t>(i)].data(),
                static_cast<size_t>(dims.input_len * dims.channels) *
                    sizeof(float));
  }
  auto check_or = quant->PredictBatch(check_batch);
  if (!check_or.ok()) {
    std::fprintf(stderr, "quantized batch predict failed: %s\n",
                 check_or.status().ToString().c_str());
    return 1;
  }
  int64_t quant_mismatches = 0;
  const int64_t out_stride = dims.pred_len * dims.channels;
  for (int64_t i = 0; i < check; ++i) {
    auto single = quant->Predict(requests[static_cast<size_t>(i)]);
    if (!single.ok() ||
        std::memcmp(single.value().data(),
                    check_or.value().data() + i * out_stride,
                    static_cast<size_t>(out_stride) * sizeof(float)) != 0) {
      ++quant_mismatches;
    }
  }

  for (int i = 0; i < 4; ++i) (void)quant->Predict(requests[0]);
  const auto quant_start = Clock::now();
  for (const Tensor& request : requests) {
    auto prediction = quant->Predict(request);
    if (!prediction.ok()) {
      std::fprintf(stderr, "quantized predict failed: %s\n",
                   prediction.status().ToString().c_str());
      return 1;
    }
  }
  const double quant_seconds = SecondsSince(quant_start);
  const double quant_rps =
      static_cast<double>(num_requests) / quant_seconds;
  const double quant_speedup = quant_rps / single_rps;

  const double speedup = batched_rps / single_rps;
  const double p50_us = stats.p50_latency_seconds * 1e6;
  const double p99_us = stats.p99_latency_seconds * 1e6;
  const double p999_us = stats.p999_latency_seconds * 1e6;
  std::fprintf(stderr,
               "serial:  %6.1f req/s (%lld requests, %lld threads)\n"
               "batched: %6.1f req/s (%lld clients, max_batch %lld, "
               "%lld batches, p50 %.0f us, p99 %.0f us, p99.9 %.0f us)\n"
               "int8:    %6.1f req/s (serial, %.2fx over fp32 serial)\n"
               "speedup: %.2fx, mismatches: %lld (+%lld int8), "
               "failures: %lld\n",
               single_rps, static_cast<long long>(num_requests),
               static_cast<long long>(threads), batched_rps,
               static_cast<long long>(clients),
               static_cast<long long>(max_batch),
               static_cast<long long>(stats.batches), p50_us, p99_us,
               p999_us, quant_rps, quant_speedup, speedup,
               static_cast<long long>(mismatches),
               static_cast<long long>(quant_mismatches),
               static_cast<long long>(total_failures));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"single_rps\": %.3f, \"batched16_rps\": %.3f, "
                 "\"speedup\": %.4f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"p999_us\": %.1f, \"quant_single_rps\": %.3f, "
                 "\"quant_speedup\": %.4f}\n",
                 single_rps, batched_rps, speedup, p50_us, p99_us, p999_us,
                 quant_rps, quant_speedup);
    std::fclose(f);
  }

  if (mismatches > 0 || quant_mismatches > 0 || total_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: batched outputs must be bitwise identical to "
                 "serial outputs\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lipformer

int main(int argc, char** argv) { return lipformer::Run(argc, argv); }
