// Figure 6: MSE/MAE of LiPFormer with and without the future Covariate
// Encoder on the Electri-Price stand-in, across horizons. Reproduced
// claim: removing the encoder degrades accuracy substantially, but the
// base predictor alone stays competitive.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  DatasetSpec spec = MakeDataset("electri_price", env.data_scale);

  TablePrinter table({"L", "MSE(with enc)", "MAE(with enc)",
                      "MSE(without)", "MAE(without)", "dMSE%"});
  for (int64_t horizon : env.horizons) {
    RunResult with = RunLiPFormer(spec, env, horizon,
                                  /*use_covariates=*/true);
    RunResult without = RunLiPFormer(spec, env, horizon,
                                     /*use_covariates=*/false);
    const float delta = 100.0f * (without.test.mse - with.test.mse) /
                        with.test.mse;
    table.AddRow({std::to_string(horizon), FmtFloat(with.test.mse),
                  FmtFloat(with.test.mae), FmtFloat(without.test.mse),
                  FmtFloat(without.test.mae), FmtFloat(delta, 1)});
    std::fprintf(stderr, "[fig6] L=%lld with=%.3f without=%.3f\n",
                 static_cast<long long>(horizon), with.test.mse,
                 without.test.mse);
  }
  table.Print("Figure 6: Covariate Encoder on/off (Electri-Price)");
  (void)table.WriteCsv(ResultsPath(env, "fig6_covariate_ablation"));
  return 0;
}
