// Table XII: transplanting the (frozen, pre-trained) Covariate Encoder
// onto Informer, Transformer and Autoformer on the Electri-Price stand-in.
// Reproduced claim: every backbone improves with the plug-in encoder.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "core/covariate_augmented.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const std::vector<int64_t> horizons =
      env.full ? std::vector<int64_t>{96, 192}
               : std::vector<int64_t>{24, 48};
  DatasetSpec spec = MakeDataset("electri_price", env.data_scale);

  TablePrinter table({"Model", "L", "MSE(+enc)", "MAE(+enc)", "MSE(base)",
                      "MAE(base)"});
  for (const std::string& base_name :
       {"informer", "transformer", "autoformer"}) {
    for (int64_t horizon : horizons) {
      WindowDataset data = MakeWindows(spec, env, horizon);
      ForecasterDims dims{env.input_len, horizon, data.channels()};
      ModelOptions options;
      options.hidden_dim = env.hidden_dim;
      options.num_covariates = data.num_numeric_covariates();
      TrainConfig train = MakeTrainConfig(env);

      // Baseline without the encoder.
      auto plain = CreateModel(base_name, dims, options);
      TrainResult base = TrainAndEvaluate(plain.get(), data, train);

      // Pre-train the dual encoder, freeze, wrap a fresh copy of the model.
      Rng rng(options.seed + 99);
      DualEncoder dual(MakeCovariateConfig(data, horizon), data.channels(),
                       rng);
      PretrainConfig pretrain;
      pretrain.epochs = env.pretrain_epochs;
      pretrain.max_batches_per_epoch = env.max_batches_per_epoch;
      PretrainDualEncoder(&dual, data, pretrain);
      dual.SetTraining(false);
      dual.SetRequiresGrad(false);
      CovariateAugmentedForecaster wrapped(
          CreateModel(base_name, dims, options), dual.covariate_encoder());
      TrainResult augmented = TrainAndEvaluate(&wrapped, data, train);

      table.AddRow({base_name, std::to_string(horizon),
                    FmtFloat(augmented.test.mse),
                    FmtFloat(augmented.test.mae), FmtFloat(base.test.mse),
                    FmtFloat(base.test.mae)});
      std::fprintf(stderr, "[table12] %s L=%lld base=%.3f +enc=%.3f\n",
                   base_name.c_str(), static_cast<long long>(horizon),
                   base.test.mse, augmented.test.mse);
    }
  }
  table.Print("Table XII: Covariate Encoder transplanted onto baselines "
              "(Electri-Price)");
  (void)table.WriteCsv(ResultsPath(env, "table12_transplant"));
  return 0;
}
