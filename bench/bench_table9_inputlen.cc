// Table IX: impact of the input (look-back) length on test MSE across five
// datasets and all seven models. Reproduced claim: LiPFormer improves (or
// stays flat) as more history is provided, and leads on most cells.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const std::vector<int64_t> input_lens =
      env.full ? std::vector<int64_t>{96, 192, 336, 720}
               : std::vector<int64_t>{48, 96, 192};
  const int64_t horizon = env.full ? 96 : 48;
  const std::vector<std::string> models = {"lipformer",    "patchtst",
                                           "dlinear",      "tide",
                                           "itransformer", "fgnn",
                                           "timemixer"};

  TablePrinter table({"Dataset", "InputLen", "Model", "MSE"});
  for (const std::string& dataset :
       {"etth1", "etth2", "ettm1", "ettm2", "weather"}) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);
    for (int64_t input_len : input_lens) {
      BenchEnv sweep = env;
      sweep.input_len = input_len;
      if (input_len % sweep.patch_len != 0) sweep.patch_len = input_len / 4;
      for (const std::string& model : models) {
        RunResult r =
            model == "lipformer"
                ? RunLiPFormer(spec, sweep, horizon, /*use_covariates=*/true)
                : RunModel(model, spec, sweep, horizon);
        table.AddRow({dataset, std::to_string(input_len), model,
                      FmtFloat(r.test.mse)});
        std::fprintf(stderr, "[table9] %s T=%lld %s mse=%.3f\n",
                     dataset.c_str(), static_cast<long long>(input_len),
                     model.c_str(), r.test.mse);
      }
    }
  }
  table.Print("Table IX: input length sweep (MSE, L=" +
              std::to_string(horizon) + ")");
  (void)table.WriteCsv(ResultsPath(env, "table9_inputlen"));
  return 0;
}
