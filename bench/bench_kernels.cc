// Microbenchmarks of the numeric substrate (google-benchmark): matmul,
// softmax, the two LiPFormer attentions and a full model forward. These
// quantify where forward time goes and back the efficiency claims with
// kernel-level numbers.

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/base_predictor.h"
#include "core/lipformer.h"
#include "data/synthetic.h"
#include "nn/attention.h"
#include "tensor/ops.h"

namespace lipformer {
namespace {

// Pins the kernel thread count for one benchmark run and restores the
// default afterwards, so the `threads` column is the only variable.
class ThreadScope {
 public:
  explicit ThreadScope(int64_t threads) {
    SetNumThreads(static_cast<int>(threads));
  }
  ~ThreadScope() { SetNumThreads(DefaultNumThreads()); }
};

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadScope threads(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{32, 64, 128, 256, 384, 512}, {1, 2, 4}})
    ->UseRealTime();

// The retained serial ikj kernel (tensor/ops.h MatMulReference): the
// packed GEMM's speedup is reported relative to this.
void BM_MatMulReference(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulReference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulReference)
    ->ArgName("n")
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(384)
    ->Arg(512);

void BM_MatMulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadScope threads(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulTransB)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{128, 256}, {1, 4}})
    ->UseRealTime();

// What attention used to do for scores: materialize k^T, then MatMul.
// Kept so the win of folding the transpose into packing stays visible.
void BM_MatMulViaTranspose(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadScope threads(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, Transpose(b, -2, -1)));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulViaTranspose)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{128, 256}, {1, 4}})
    ->UseRealTime();

// ---- LiPFormer's real GEMM shapes (b=32, c=7 -> b*c=224 windows) ----

// Patch-token mixer: tokens [b*c, n, hd] x weight [hd, hd].
void BM_GemmPatchToken(benchmark::State& state) {
  ThreadScope threads(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({224, 14, 64}, rng);
  Tensor b = Tensor::Randn({64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 224 * 14 * 64 * 64);
}
BENCHMARK(BM_GemmPatchToken)->ArgName("threads")->Arg(1)->Arg(4)->UseRealTime();

// Cross-Patch trend attention scores: [b*c, pl, n] x itself^T -> pl x pl.
void BM_GemmTrendScores(benchmark::State& state) {
  ThreadScope threads(state.range(0));
  Rng rng(1);
  Tensor q = Tensor::Randn({224, 24, 14}, rng);
  Tensor k = Tensor::Randn({224, 24, 14}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(q, k));
  }
  state.SetItemsProcessed(state.iterations() * 224 * 24 * 24 * 14);
}
BENCHMARK(BM_GemmTrendScores)->ArgName("threads")->Arg(1)->Arg(4)->UseRealTime();

// Inter-Patch head-batched scores: [b*c, h, n, dh] x itself^T.
void BM_GemmHeadBatchedScores(benchmark::State& state) {
  ThreadScope threads(state.range(0));
  Rng rng(1);
  Tensor q = Tensor::Randn({224, 4, 14, 16}, rng);
  Tensor k = Tensor::Randn({224, 4, 14, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(q, k));
  }
  state.SetItemsProcessed(state.iterations() * 224 * 4 * 14 * 14 * 16);
}
BENCHMARK(BM_GemmHeadBatchedScores)->ArgName("threads")->Arg(1)->Arg(4)->UseRealTime();

void BM_BatchedMatMul(benchmark::State& state) {
  ThreadScope threads(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({64, 16, 64}, rng);
  Tensor b = Tensor::Randn({64, 64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

// The acceptance workload from ISSUE 1: [64, 96, 128] x [64, 128, 96],
// the [b*c, n, hd]-style batched matmul shape patch models live on.
void BM_PatchBatchMatMul(benchmark::State& state) {
  ThreadScope threads(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({64, 96, 128}, rng);
  Tensor b = Tensor::Randn({64, 128, 96}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 96 * 128 * 96);
}
BENCHMARK(BM_PatchBatchMatMul)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_Softmax(benchmark::State& state) {
  ThreadScope threads(state.range(0));
  Rng rng(2);
  Tensor x = Tensor::Randn({64, 128, 128}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(x, -1));
  }
}
BENCHMARK(BM_Softmax)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_SelfAttention(benchmark::State& state) {
  const int64_t s = state.range(0);
  Rng rng(3);
  MultiHeadSelfAttention attn(64, 4, rng);
  attn.SetTraining(false);
  Variable x(Tensor::Randn({8, s, 64}, rng));
  NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(x));
  }
}
BENCHMARK(BM_SelfAttention)->Arg(24)->Arg(96)->Arg(336);

void BM_BasePredictorForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  BasePredictorConfig config;
  config.input_len = t;
  config.pred_len = 96;
  config.patch_len = t % 48 == 0 ? 48 : 24;
  config.hidden_dim = 64;
  config.dropout = 0.0f;
  Rng rng(4);
  BasePredictor base(config, rng);
  base.SetTraining(false);
  Variable x(Tensor::Randn({56, t}, rng));  // 8 windows x 7 channels
  NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.Forward(x));
  }
}
BENCHMARK(BM_BasePredictorForward)->Arg(96)->Arg(192)->Arg(336);

void BM_LiPFormerTrainStep(benchmark::State& state) {
  SeasonalConfig gen;
  gen.steps = 600;
  gen.channels = 7;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  WindowDataset data(series, options);
  LiPFormerConfig config;
  config.input_len = 96;
  config.pred_len = 24;
  config.channels = 7;
  config.patch_len = 24;
  config.hidden_dim = 64;
  LiPFormer model(config);
  Batch batch = data.MakeBatch(Split::kTrain, {0, 1, 2, 3, 4, 5, 6, 7});
  // One warmup step populates the storage-pool freelists so the timed
  // loop (and the allocation counters) reflect steady state.
  model.ZeroGrad();
  MseLoss(model.Forward(batch), batch.y).Backward();
  ResetStoragePoolCounters();
  int64_t steps = 0;
  for (auto _ : state) {
    model.ZeroGrad();
    Variable pred = model.Forward(batch);
    MseLoss(pred, batch.y).Backward();
    ++steps;
  }
  const StoragePoolStats pool = GetStoragePoolStats();
  const double per_step = steps > 0 ? 1.0 / static_cast<double>(steps) : 0.0;
  state.counters["acquires_per_step"] =
      static_cast<double>(pool.acquires) * per_step;
  state.counters["heap_allocs_per_step"] =
      static_cast<double>(pool.heap_allocs) * per_step;
}
BENCHMARK(BM_LiPFormerTrainStep);

// Eval-mode forward under NoGradGuard: the no-grad fast path skips tape
// nodes entirely and every intermediate returns to the pool as soon as
// the next op finishes with it.
void BM_LiPFormerInference(benchmark::State& state) {
  SeasonalConfig gen;
  gen.steps = 600;
  gen.channels = 7;
  TimeSeries series = GenerateSeasonal(gen);
  WindowDataset::Options options;
  options.input_len = 96;
  options.pred_len = 24;
  WindowDataset data(series, options);
  LiPFormerConfig config;
  config.input_len = 96;
  config.pred_len = 24;
  config.channels = 7;
  config.patch_len = 24;
  config.hidden_dim = 64;
  LiPFormer model(config);
  model.SetTraining(false);
  Batch batch = data.MakeBatch(Split::kTest, {0, 1, 2, 3, 4, 5, 6, 7});
  NoGradGuard ng;
  (void)model.Forward(batch);  // warmup: populate the pool freelists
  ResetStoragePoolCounters();
  int64_t steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(batch));
    ++steps;
  }
  const StoragePoolStats pool = GetStoragePoolStats();
  const double per_step = steps > 0 ? 1.0 / static_cast<double>(steps) : 0.0;
  state.counters["acquires_per_step"] =
      static_cast<double>(pool.acquires) * per_step;
  state.counters["heap_allocs_per_step"] =
      static_cast<double>(pool.heap_allocs) * per_step;
}
BENCHMARK(BM_LiPFormerInference);

}  // namespace
}  // namespace lipformer

BENCHMARK_MAIN();
