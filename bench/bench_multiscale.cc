// Extension bench: the multi-scale patching variant (LiPFormer-MS) vs the
// fixed-patch model across datasets with different native periodicities.
// Checks the future-work hypothesis that learning the patch scale removes
// the need to tune pl per dataset, and reports the learned scale weights.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "core/multi_scale.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const int64_t horizon = env.full ? 96 : 48;

  TablePrinter table({"Dataset", "Model", "MSE", "MAE", "Params",
                      "ScaleWeights"});
  for (const std::string& dataset : {"etth1", "ettm1", "weather"}) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);

    RunResult fixed = RunLiPFormer(spec, env, horizon,
                                   /*use_covariates=*/false);
    table.AddRow({dataset, "LiPFormer(pl=" + std::to_string(env.patch_len)
                               + ")",
                  FmtFloat(fixed.test.mse), FmtFloat(fixed.test.mae),
                  FormatCount(static_cast<double>(
                      fixed.profile.parameters)),
                  "-"});

    WindowDataset data = MakeWindows(spec, env, horizon);
    MultiScaleConfig config;
    config.input_len = env.input_len;
    config.pred_len = horizon;
    config.channels = data.channels();
    config.patch_lens = {};
    for (int64_t pl : {8, 12, 24, 48}) {
      if (env.input_len % pl == 0) config.patch_lens.push_back(pl);
    }
    config.hidden_dim = env.hidden_dim;
    MultiScaleLiPFormer model(config);
    TrainResult train = TrainAndEvaluate(&model, data,
                                         MakeTrainConfig(env));
    ModelProfile profile = ProfileModel(&model, data, env.batch_size);

    std::string weights;
    const std::vector<float> w = model.ScaleWeights();
    for (size_t i = 0; i < w.size(); ++i) {
      if (i) weights += " ";
      weights += "pl" + std::to_string(config.patch_lens[i]) + ":" +
                 FmtFloat(w[i], 2);
    }
    table.AddRow({dataset, "LiPFormer-MS", FmtFloat(train.test.mse),
                  FmtFloat(train.test.mae),
                  FormatCount(static_cast<double>(profile.parameters)),
                  weights});
    std::fprintf(stderr, "[multiscale] %s done\n", dataset.c_str());
  }
  table.Print("Extension: multi-scale patching (LiPFormer-MS)");
  (void)table.WriteCsv(ResultsPath(env, "multiscale_extension"));
  return 0;
}
