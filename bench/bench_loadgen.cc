// Open-loop Poisson load generator for the multi-tenant serving layer
// (serve/registry.h). Unlike bench_serving's closed loops, arrivals here
// follow a fixed-seed Poisson process at a target RPS that does not slow
// down when the server does — the open-loop model that actually exposes
// queueing delay. Reported per point: goodput (completed-ok/s), p50/p99/
// p99.9 completion latency, and failures broken down by status code
// (shed/expired/unavailable/internal), across 1..N models sharing one
// process.
//
// Every answer is also memcmp-checked against the owning model's
// serial-session prediction for the same window, so tenant isolation and
// the batched==serial bitwise contract are gated on every run; every ok
// answer is additionally scanned for non-finite values (the serving
// layer must suppress those into typed Internal errors, never deliver
// them).
//
// The --hot-reload phase (on by default) reruns the open loop on a
// single model while the bundle file is atomically replaced mid-load:
// it requires zero failed requests, every answer bitwise equal to the
// OLD or the NEW model (never anything else — no torn predictions),
// both generations observed, and afterwards publishes a corrupt bundle
// and requires the reload to fail while the previous model keeps
// answering. Any violation exits non-zero so scripts/check_perf.sh
// gates it.
//
// The overload point runs at 1.5x the calibrated capacity with
// per-request deadlines and a retry/backoff client: kOverloaded sheds
// are retried (bounded attempts, honoring the original deadline), and
// the point asserts zero requests executed past their deadline and zero
// non-finite answers delivered.
//
// --chaos=1 switches to the chaos gate driven by scripts/check_chaos.sh:
// a no-fault overload baseline, then the same overload with slow-infer
// and poison-output faults injected mid-run (common/fault_injection.h).
// Asserted: the circuit breaker trips and recovers via half-open probes,
// zero requests executed past their deadline, zero non-finite answers
// delivered (poisoned forecasts surface as typed Internal errors), zero
// torn answers, and goodput >= --chaos-goodput-floor-pct% of the
// no-fault baseline.
//
//   bench_loadgen [--models=N] [--duration-ms=N] [--threads=N]
//                 [--max-batch=N] [--json=FILE] [--hot-reload=0|1]
//                 [--chaos=0|1] [--chaos-duration-ms=N]
//                 [--chaos-goodput-floor-pct=N] [--chaos-slow-ms=N]
//
// Target RPS values are calibrated as fractions of the measured serial
// capacity of this box, not hardcoded, so the benchmark is meaningful on
// a 1-core container and a 32-core server alike.
//
// JSON output (consumed by check_perf.sh / check_chaos.sh):
//   {"base_rps": ..., "points": [{"models": ..., "util": ...,
//     "target_rps": ..., "offered": ..., "completed": ..., "failed": ...,
//     "mismatched": ..., "goodput_rps": ..., "p50_us": ..., "p99_us": ...,
//     "p999_us": ...}, ...],
//    "overload": {..., "shed": ..., "retries": ..., "nonfinite": ...,
//     "executed_past_deadline": ..., "breaker_trips": ...},
//    "hot_reload": {...}} — plus a "chaos" object in --chaos mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/profiler.h"
#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/interrupt.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "data/scaler.h"
#include "models/factory.h"
#include "serve/breaker.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "tensor/storage_pool.h"

namespace lipformer {
namespace {

using Clock = std::chrono::steady_clock;

int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool AllFinite(const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

// Saves a paper-scale bundle (Weather-like 336->96, 21 channels) with
// per-tenant weights (`seed`). Returns false on failure.
bool SaveBundle(const std::string& path, const ForecasterDims& dims,
                uint64_t seed) {
  ModelOptions options;
  options.hidden_dim = 64;
  options.seed = seed;
  std::unique_ptr<Forecaster> model = CreateModel("lipformer", dims, options);
  Rng rng(seed + 1000);
  StandardScaler scaler;
  scaler.Fit(Tensor::Randn({256, dims.channels}, rng));
  Status st =
      serve::SaveModelBundle(path, "lipformer", options, *model, scaler);
  if (!st.ok()) {
    std::fprintf(stderr, "bundle save failed: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

// One submitted request waiting for its answer.
struct InFlight {
  std::future<Result<Tensor>> future;
  Clock::time_point submitted;      // original submit; latency anchor
  Clock::time_point deadline_at{};  // absolute; epoch == none
  int model = 0;
  int window = 0;
  int attempt = 1;
};

// Per-model FIFO of in-flight requests, drained by a waiter thread. The
// batcher resolves futures in submit order per model, so the waiter's
// future::get() returns at (almost exactly) each request's completion
// time — giving honest completion-latency samples without polling.
struct PendingQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> queue;
  bool closed = false;

  void Push(InFlight in_flight) {
    {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back(std::move(in_flight));
    }
    cv.notify_one();
  }
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

// Client behavior knobs of one open-loop point.
struct OpenLoopOptions {
  // Per-request deadline (0 = none). Propagated into the batcher, which
  // sheds expired work and admission-controls against it.
  double deadline_s = 0;
  // Total attempts per request (1 = no retries). Only kOverloaded sheds
  // are retried, after backoff_s, and only while the original deadline
  // still has room — the open-loop analogue of a well-behaved client
  // honoring retry-after.
  int max_attempts = 1;
  double backoff_s = 0.01;
};

struct WaiterResult {
  std::vector<double> latencies;  // seconds, completed-ok only
  int64_t ok = 0;
  int64_t failed = 0;       // terminal failures (all codes)
  int64_t shed = 0;         // kOverloaded (admission control)
  int64_t expired = 0;      // kDeadlineExceeded
  int64_t unavailable = 0;  // kUnavailable (queue full / breaker open)
  int64_t internal = 0;     // kInternal (non-finite forecast suppressed)
  int64_t nonfinite = 0;    // ok answers carrying non-finite values
  int64_t expected_a = 0;   // bitwise matches of reference set A
  int64_t expected_b = 0;   // bitwise matches of reference set B
  int64_t mismatched = 0;   // neither reference — torn or misrouted
  Clock::time_point last_completion;
  std::string first_error;
};

// A shed request waiting out its backoff before resubmission.
struct RetryItem {
  Clock::time_point retry_at;
  Clock::time_point submitted;
  Clock::time_point deadline_at;
  int model = 0;
  int window = 0;
  int attempt = 1;
};

// Shared state of one RunPoint: registry handles for resubmission and
// the outstanding-request barrier that decides when the point is done
// (a retried request stays outstanding until it terminally resolves).
struct PointState {
  serve::ModelRegistry* registry = nullptr;
  const std::vector<std::string>* names = nullptr;
  const std::vector<Tensor>* windows = nullptr;
  std::vector<std::unique_ptr<PendingQueue>>* pending = nullptr;
  OpenLoopOptions options;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<RetryItem> retry_queue;
  bool retry_closed = false;
  int64_t outstanding = 0;
  int64_t retries = 0;

  void AddOutstanding() {
    std::lock_guard<std::mutex> lock(mu);
    ++outstanding;
  }
  void FinishOne() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --outstanding;
    }
    cv.notify_all();
  }
  void PushRetry(RetryItem item) {
    {
      std::lock_guard<std::mutex> lock(mu);
      retry_queue.push_back(item);
    }
    cv.notify_all();
  }
};

// Drains `pending` until closed-and-empty. Every ok answer is checked
// against reference predictions `a` (and optionally `b`; hot reload
// passes both generations) for the same window, and scanned for
// non-finite values. kOverloaded sheds with retry budget left go back
// through the point's retry queue instead of counting as failures.
void WaiterLoop(PendingQueue* pending, PointState* state,
                const std::vector<Tensor>* a, const std::vector<Tensor>* b,
                WaiterResult* out) {
  for (;;) {
    InFlight in_flight;
    {
      std::unique_lock<std::mutex> lock(pending->mu);
      pending->cv.wait(lock, [pending] {
        return pending->closed || !pending->queue.empty();
      });
      if (pending->queue.empty()) return;
      in_flight = std::move(pending->queue.front());
      pending->queue.pop_front();
    }
    Result<Tensor> result = in_flight.future.get();
    const Clock::time_point done = Clock::now();
    if (!result.ok()) {
      const StatusCode code = result.status().code();
      if (code == StatusCode::kOverloaded &&
          in_flight.attempt < state->options.max_attempts) {
        const Clock::time_point retry_at =
            done + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(
                           state->options.backoff_s));
        if (in_flight.deadline_at != Clock::time_point{} &&
            retry_at < in_flight.deadline_at) {
          RetryItem item;
          item.retry_at = retry_at;
          item.submitted = in_flight.submitted;
          item.deadline_at = in_flight.deadline_at;
          item.model = in_flight.model;
          item.window = in_flight.window;
          item.attempt = in_flight.attempt + 1;
          state->PushRetry(item);  // stays outstanding
          continue;
        }
      }
      ++out->failed;
      switch (code) {
        case StatusCode::kOverloaded:
          ++out->shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++out->expired;
          break;
        case StatusCode::kUnavailable:
          ++out->unavailable;
          break;
        case StatusCode::kInternal:
          ++out->internal;
          break;
        default:
          break;
      }
      if (out->first_error.empty()) {
        out->first_error = result.status().ToString();
      }
      state->FinishOne();
      continue;
    }
    ++out->ok;
    out->last_completion = done;
    out->latencies.push_back(
        std::chrono::duration<double>(done - in_flight.submitted).count());
    const Tensor& answer = result.value();
    // "Zero non-finite answers delivered" is a chaos-gate hard invariant:
    // a poisoned forecast must have been suppressed server-side.
    if (!AllFinite(answer)) ++out->nonfinite;
    if (BitwiseEqual(answer, (*a)[in_flight.window])) {
      ++out->expected_a;
    } else if (b != nullptr && BitwiseEqual(answer, (*b)[in_flight.window])) {
      ++out->expected_b;
    } else {
      ++out->mismatched;
    }
    state->FinishOne();
  }
}

// Resubmits shed requests after their backoff, with whatever deadline
// budget remains. Runs until the point closes it (all work terminal).
void RetryLoop(PointState* state) {
  for (;;) {
    RetryItem item;
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [state] {
        return state->retry_closed || !state->retry_queue.empty();
      });
      if (state->retry_queue.empty()) {
        if (state->retry_closed) return;
        continue;
      }
      item = state->retry_queue.front();
      state->retry_queue.pop_front();
    }
    std::this_thread::sleep_until(item.retry_at);
    const Clock::time_point now = Clock::now();
    InFlight in_flight;
    in_flight.submitted = item.submitted;
    in_flight.deadline_at = item.deadline_at;
    in_flight.model = item.model;
    in_flight.window = item.window;
    in_flight.attempt = item.attempt;
    if (now >= item.deadline_at) {
      // Backoff ate the rest of the budget; resolve client-side.
      std::promise<Result<Tensor>> expired;
      expired.set_value(
          Status::DeadlineExceeded("retry backoff exhausted the deadline"));
      in_flight.future = expired.get_future();
    } else {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->retries;
      }
      in_flight.future = state->registry->Submit(
          (*state->names)[static_cast<size_t>(item.model)],
          (*state->windows)[static_cast<size_t>(item.window)],
          std::chrono::duration_cast<std::chrono::microseconds>(
              item.deadline_at - now),
          serve::SubmitMode::kReject);
    }
    (*state->pending)[static_cast<size_t>(item.model)]->Push(
        std::move(in_flight));
  }
}

struct PointResult {
  int64_t models = 0;
  double util = 0;
  double target_rps = 0;
  double deadline_ms = 0;
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t unavailable = 0;
  int64_t internal = 0;
  int64_t retries = 0;
  int64_t nonfinite = 0;
  int64_t mismatched = 0;
  double goodput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

// Open-loop run: Poisson arrivals at `target_rps` for `duration_s`,
// uniformly routed across `names`. `expected[m][w]` is the reference
// prediction of model m for window w; `expected_b` (optional) is a
// second accepted reference set (hot reload). Submissions use kReject:
// in an open-loop world a full queue is a failed request, not a stalled
// client. With `client.deadline_s` set, requests carry deadlines and
// kOverloaded sheds are retried per `client.max_attempts`.
PointResult RunPoint(serve::ModelRegistry* registry,
                     const std::vector<std::string>& names,
                     const std::vector<Tensor>& windows,
                     const std::vector<std::vector<Tensor>>& expected,
                     const std::vector<std::vector<Tensor>>* expected_b,
                     double target_rps, double duration_s, uint64_t seed,
                     const OpenLoopOptions& client,
                     std::vector<WaiterResult>* waiter_results_out) {
  const size_t num_models = names.size();
  // Pre-draw the whole arrival schedule so the dispatch loop does no RNG
  // work: exponential interarrivals == Poisson process.
  Rng rng(seed);
  struct Arrival {
    double at;
    int model;
    int window;
  };
  std::vector<Arrival> schedule;
  double t = 0;
  while (true) {
    t += -std::log(1.0 - rng.Uniform()) / target_rps;
    if (t >= duration_s) break;
    Arrival arrival;
    arrival.at = t;
    arrival.model = static_cast<int>(rng.UniformInt(num_models));
    arrival.window =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(windows.size())));
    schedule.push_back(arrival);
  }

  std::vector<std::unique_ptr<PendingQueue>> pending(num_models);
  PointState state;
  state.registry = registry;
  state.names = &names;
  state.windows = &windows;
  state.pending = &pending;
  state.options = client;
  std::vector<WaiterResult> results(num_models);
  std::vector<std::thread> waiters;
  for (size_t m = 0; m < num_models; ++m) {
    pending[m] = std::make_unique<PendingQueue>();
    waiters.emplace_back(WaiterLoop, pending[m].get(), &state, &expected[m],
                         expected_b == nullptr ? nullptr : &(*expected_b)[m],
                         &results[m]);
  }
  std::thread retry_thread(RetryLoop, &state);

  const std::chrono::microseconds deadline =
      client.deadline_s > 0
          ? std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::duration<double>(client.deadline_s))
          : std::chrono::microseconds::zero();

  const Clock::time_point start = Clock::now();
  for (const Arrival& arrival : schedule) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival.at)));
    InFlight in_flight;
    in_flight.submitted = Clock::now();
    in_flight.model = arrival.model;
    in_flight.window = arrival.window;
    if (deadline.count() > 0) {
      in_flight.deadline_at = in_flight.submitted + deadline;
    }
    state.AddOutstanding();
    in_flight.future = registry->Submit(
        names[static_cast<size_t>(arrival.model)], windows[arrival.window],
        deadline);
    pending[static_cast<size_t>(arrival.model)]->Push(std::move(in_flight));
  }
  // Every request (including retries) must terminally resolve before the
  // point closes; a retried request stays outstanding across attempts.
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state] { return state.outstanding == 0; });
    state.retry_closed = true;
  }
  state.cv.notify_all();
  retry_thread.join();
  for (size_t m = 0; m < num_models; ++m) pending[m]->Close();
  for (std::thread& waiter : waiters) waiter.join();

  PointResult point;
  point.models = static_cast<int64_t>(num_models);
  point.target_rps = target_rps;
  point.deadline_ms = client.deadline_s * 1000.0;
  point.offered = static_cast<int64_t>(schedule.size());
  point.retries = state.retries;
  LatencyRecorder recorder;
  Clock::time_point last = start;
  for (const WaiterResult& result : results) {
    point.completed += result.ok;
    point.failed += result.failed;
    point.shed += result.shed;
    point.expired += result.expired;
    point.unavailable += result.unavailable;
    point.internal += result.internal;
    point.nonfinite += result.nonfinite;
    point.mismatched += result.mismatched;
    for (double latency : result.latencies) recorder.Record(latency);
    if (result.ok > 0 && result.last_completion > last) {
      last = result.last_completion;
    }
  }
  const double elapsed = std::chrono::duration<double>(last - start).count();
  point.goodput_rps = elapsed > 0 ? point.completed / elapsed : 0;
  if (recorder.count() > 0) {
    point.p50_us = recorder.Percentile(50.0) * 1e6;
    point.p99_us = recorder.Percentile(99.0) * 1e6;
    point.p999_us = recorder.Percentile(99.9) * 1e6;
  }
  if (waiter_results_out != nullptr) *waiter_results_out = std::move(results);
  return point;
}

// Reference predictions for each window from a fresh serial session of
// `path`. The registry's batched answers must be bitwise equal to these
// (InferenceSession's batched==serial determinism contract).
bool SerialReference(const std::string& path,
                     const std::vector<Tensor>& windows,
                     std::vector<Tensor>* out) {
  serve::SessionOptions options;
  auto session = serve::InferenceSession::Open(path, options);
  if (!session.ok()) {
    std::fprintf(stderr, "reference open failed: %s\n",
                 session.status().ToString().c_str());
    return false;
  }
  out->clear();
  for (const Tensor& window : windows) {
    auto prediction = session.value()->Predict(window);
    if (!prediction.ok()) {
      std::fprintf(stderr, "reference predict failed: %s\n",
                   prediction.status().ToString().c_str());
      return false;
    }
    out->push_back(prediction.value());
  }
  return true;
}

serve::ModelInfo InfoFor(const serve::ModelRegistry& registry,
                         const std::string& name) {
  for (const serve::ModelInfo& info : registry.Models()) {
    if (info.name == name) return info;
  }
  return serve::ModelInfo();
}

void PrintPoint(const char* tag, const PointResult& p) {
  std::fprintf(stderr,
               "%s: models=%lld util=%.2f target=%.1f rps deadline=%.0fms: "
               "offered=%lld completed=%lld failed=%lld shed=%lld "
               "expired=%lld unavailable=%lld internal=%lld retries=%lld "
               "nonfinite=%lld mismatched=%lld goodput=%.1f rps "
               "p50=%.0fus p99=%.0fus\n",
               tag, static_cast<long long>(p.models), p.util, p.target_rps,
               p.deadline_ms, static_cast<long long>(p.offered),
               static_cast<long long>(p.completed),
               static_cast<long long>(p.failed),
               static_cast<long long>(p.shed),
               static_cast<long long>(p.expired),
               static_cast<long long>(p.unavailable),
               static_cast<long long>(p.internal),
               static_cast<long long>(p.retries),
               static_cast<long long>(p.nonfinite),
               static_cast<long long>(p.mismatched), p.goodput_rps, p.p50_us,
               p.p99_us);
}

void WritePointFields(FILE* json, const PointResult& p) {
  std::fprintf(
      json,
      "\"util\": %.2f, \"target_rps\": %.2f, \"deadline_ms\": %.1f, "
      "\"offered\": %lld, \"completed\": %lld, \"failed\": %lld, "
      "\"shed\": %lld, \"expired\": %lld, \"unavailable\": %lld, "
      "\"internal\": %lld, \"retries\": %lld, \"nonfinite\": %lld, "
      "\"mismatched\": %lld, \"goodput_rps\": %.2f, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"p999_us\": %.1f",
      p.util, p.target_rps, p.deadline_ms, static_cast<long long>(p.offered),
      static_cast<long long>(p.completed), static_cast<long long>(p.failed),
      static_cast<long long>(p.shed), static_cast<long long>(p.expired),
      static_cast<long long>(p.unavailable),
      static_cast<long long>(p.internal), static_cast<long long>(p.retries),
      static_cast<long long>(p.nonfinite),
      static_cast<long long>(p.mismatched), p.goodput_rps, p.p50_us,
      p.p99_us, p.p999_us);
}

int Run(int argc, char** argv) {
  const bool chaos_mode = FlagInt(argc, argv, "chaos", 0) != 0;
  const int64_t num_models = chaos_mode
      ? 1
      : std::max<int64_t>(1, FlagInt(argc, argv, "models", 4));
  const int64_t duration_ms = FlagInt(argc, argv, "duration-ms", 2000);
  const int64_t threads = FlagInt(argc, argv, "threads", DefaultNumThreads());
  const int64_t max_batch = FlagInt(argc, argv, "max-batch", 16);
  const bool hot_reload =
      !chaos_mode && FlagInt(argc, argv, "hot-reload", 1) != 0;
  const int64_t chaos_duration_ms =
      FlagInt(argc, argv, "chaos-duration-ms", 4000);
  const int64_t chaos_floor_pct =
      FlagInt(argc, argv, "chaos-goodput-floor-pct", 85);
  const int64_t chaos_slow_ms = FlagInt(argc, argv, "chaos-slow-ms", 30);
  const std::string json_path = FlagStr(argc, argv, "json", "");
  SetNumThreads(static_cast<int>(threads));
  // The loadgen streams progress to a pipe check scripts may close early;
  // dying on SIGPIPE mid-run would read as a chaos failure.
  IgnoreSigPipe();
  fault::Disarm();  // chaos arms its own schedule; start clean

  ForecasterDims dims;
  dims.input_len = 336;
  dims.pred_len = 96;
  dims.channels = 21;

  std::vector<std::string> names;
  std::vector<std::string> paths;
  for (int64_t m = 0; m < num_models; ++m) {
    names.push_back("m" + std::to_string(m));
    paths.push_back("/tmp/lipformer_loadgen_m" + std::to_string(m) + ".ckpt");
    if (!SaveBundle(paths.back(), dims, /*seed=*/7 + static_cast<uint64_t>(m))) {
      return 1;
    }
  }

  // Shared window pool; every model answers every window, each with its
  // own weights.
  Rng rng(11);
  std::vector<Tensor> windows;
  for (int i = 0; i < 8; ++i) {
    windows.push_back(Tensor::Randn({dims.input_len, dims.channels}, rng));
  }
  std::vector<std::vector<Tensor>> expected(
      static_cast<size_t>(num_models));
  for (int64_t m = 0; m < num_models; ++m) {
    if (!SerialReference(paths[static_cast<size_t>(m)], windows,
                         &expected[static_cast<size_t>(m)])) {
      return 1;
    }
  }

  serve::RegistryOptions registry_options;
  registry_options.batcher.max_batch_size = max_batch;
  // Generous: admission control (not queue overflow) is the intended
  // shedding mechanism; a transient scheduler stall on a shared box must
  // not turn into spurious rejections that fail the zero-failure gate.
  registry_options.batcher.queue_capacity = 4096;
  if (chaos_mode) {
    // A low trip threshold + short cooldown keep the breaker's full
    // trip -> half-open -> closed cycle inside the chaos run.
    registry_options.batcher.breaker.failure_threshold = 4;
    registry_options.batcher.breaker.cooldown = std::chrono::milliseconds(150);
    registry_options.batcher.breaker.half_open_successes = 2;
  }
  serve::ModelRegistry registry(registry_options);
  for (int64_t m = 0; m < num_models; ++m) {
    Status loaded = registry.Load(names[static_cast<size_t>(m)],
                                  paths[static_cast<size_t>(m)]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
      return 1;
    }
  }

  // Warm every model across every batch size: the session compiles one
  // plan per batch size on first use, and letting that happen lazily on
  // the measured path shows up as a compile storm in the first point's
  // tail latencies (observed p50 60ms cold vs 2ms warm).
  for (int64_t m = 0; m < num_models; ++m) {
    serve::InferenceSession* session =
        registry.Find(names[static_cast<size_t>(m)])->session();
    for (int64_t k = 1; k <= max_batch; ++k) {
      Tensor batch = Tensor::Empty({k, dims.input_len, dims.channels});
      for (int64_t row = 0; row < k; ++row) {
        std::memcpy(batch.data() + row * dims.input_len * dims.channels,
                    windows[0].data(),
                    static_cast<size_t>(dims.input_len * dims.channels) *
                        sizeof(float));
      }
      if (!session->PredictBatch(batch).ok()) {
        std::fprintf(stderr, "warmup predict failed\n");
        return 1;
      }
    }
  }

  // Calibrate this box: serial closed-loop capacity of one model (the
  // utilization points are fractions of it) and full-batch closed-loop
  // capacity (the overload points must exceed what BATCHING can serve,
  // not just the serial rate — on a multicore box the batch dimension
  // parallelizes, so "1.5x serial" may not be overload at all).
  double base_rps;
  double batch_rps;
  {
    serve::InferenceSession* session = registry.Find(names[0])->session();
    for (int i = 0; i < 4; ++i) (void)session->Predict(windows[0]);
    Clock::time_point start = Clock::now();
    int64_t calls = 0;
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           0.3) {
      auto prediction = session->Predict(windows[calls % 8]);
      if (!prediction.ok()) {
        std::fprintf(stderr, "calibration predict failed\n");
        return 1;
      }
      ++calls;
    }
    base_rps = calls /
               std::chrono::duration<double>(Clock::now() - start).count();

    Tensor full = Tensor::Empty({max_batch, dims.input_len, dims.channels});
    for (int64_t row = 0; row < max_batch; ++row) {
      std::memcpy(full.data() + row * dims.input_len * dims.channels,
                  windows[static_cast<size_t>(row) % 8].data(),
                  static_cast<size_t>(dims.input_len * dims.channels) *
                      sizeof(float));
    }
    start = Clock::now();
    calls = 0;
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           0.3) {
      if (!session->PredictBatch(full).ok()) {
        std::fprintf(stderr, "calibration batch predict failed\n");
        return 1;
      }
      ++calls;
    }
    batch_rps =
        static_cast<double>(calls * max_batch) /
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  const double capacity_rps = std::max(base_rps, batch_rps);
  std::fprintf(stderr,
               "calibrated capacity: %.1f rps serial, %.1f rps batched\n",
               base_rps, batch_rps);

  bool violations = false;
  const OpenLoopOptions plain_client;  // no deadlines, no retries

  // Overload client: deadlines scaled to this box (the floor matters on
  // sanitizer builds where a single forward costs 10-20x more) and a
  // bounded retry budget for admission sheds.
  OpenLoopOptions overload_client;
  overload_client.deadline_s = std::max(0.25, 40.0 / base_rps);
  overload_client.max_attempts = 3;
  overload_client.backoff_s = std::max(0.01, overload_client.deadline_s / 8);

  if (chaos_mode) {
    const double dur = chaos_duration_ms / 1000.0;
    const double target = 1.5 * capacity_rps;
    const std::vector<std::string> one = {names[0]};

    // Phase A — no-fault overload baseline at 1.5x capacity.
    PointResult nofault =
        RunPoint(&registry, one, windows, expected, nullptr, target, dur,
                 /*seed=*/777, overload_client, nullptr);
    nofault.util = 1.5;
    PrintPoint("chaos-nofault", nofault);
    const serve::ModelInfo info_a = InfoFor(registry, names[0]);

    // Phase B — same load with a fault timeline injected mid-run:
    // slow-infer stragglers early, then a poisoned-output window (which
    // must trip the breaker), then a clean tail for half-open recovery.
    // Windows are wall-clock relative so the schedule adapts to however
    // many batches this box manages (sanitizer builds run 10-20x slower).
    std::thread fault_timeline([&] {
      fault::Arm("slow_infer_ms=" + std::to_string(chaos_slow_ms) +
                 ",slow_infer_at=1,slow_infer_count=4");
      std::this_thread::sleep_for(
          std::chrono::duration<double>(0.30 * dur));
      // Re-arming resets the serving call counters, so poison hits the
      // next 6 batched forwards from this instant; slow_infer_ms=0
      // clears the straggler fault.
      fault::Arm("slow_infer_ms=0,poison_output_at=1,poison_output_count=6");
      std::this_thread::sleep_for(
          std::chrono::duration<double>(0.30 * dur));
      fault::Disarm();
    });
    PointResult chaos =
        RunPoint(&registry, one, windows, expected, nullptr, target, dur,
                 /*seed=*/778, overload_client, nullptr);
    chaos.util = 1.5;
    fault_timeline.join();
    fault::Disarm();
    PrintPoint("chaos-faulted", chaos);

    // Recovery: the breaker must come back (half-open probes) once the
    // faults clear; bounded wait.
    bool recovered = false;
    const Clock::time_point recovery_start = Clock::now();
    while (std::chrono::duration<double>(Clock::now() - recovery_start)
               .count() < 5.0) {
      auto answer =
          registry
              .Submit(names[0], windows[0],
                      std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::duration<double>(
                              overload_client.deadline_s)))
              .get();
      if (answer.ok()) {
        recovered = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const serve::ModelInfo info_b = InfoFor(registry, names[0]);
    const int64_t trips =
        info_b.batcher.breaker.trips - info_a.batcher.breaker.trips;

    std::fprintf(
        stderr,
        "chaos: breaker trips=%lld probes=%lld state=%s recovered=%d "
        "executed_past_deadline=%lld server_nonfinite=%lld "
        "goodput=%.1f/%.1f rps (floor %lld%%)\n",
        static_cast<long long>(trips),
        static_cast<long long>(info_b.batcher.breaker.probes),
        serve::BreakerStateName(info_b.batcher.breaker.state),
        recovered ? 1 : 0,
        static_cast<long long>(info_b.batcher.executed_past_deadline),
        static_cast<long long>(info_b.batcher.nonfinite_answers),
        chaos.goodput_rps, nofault.goodput_rps,
        static_cast<long long>(chaos_floor_pct));

    if (nofault.completed == 0 || chaos.completed == 0) {
      std::fprintf(stderr, "FAIL: a chaos phase completed zero requests\n");
      violations = true;
    }
    if (nofault.mismatched != 0 || chaos.mismatched != 0) {
      std::fprintf(stderr, "FAIL: torn answers under overload/chaos\n");
      violations = true;
    }
    if (nofault.nonfinite != 0 || chaos.nonfinite != 0) {
      std::fprintf(stderr, "FAIL: non-finite answers were delivered\n");
      violations = true;
    }
    if (info_b.batcher.executed_past_deadline != 0) {
      std::fprintf(stderr,
                   "FAIL: %lld request(s) executed past their deadline\n",
                   static_cast<long long>(
                       info_b.batcher.executed_past_deadline));
      violations = true;
    }
    if (chaos.internal < 1) {
      std::fprintf(stderr,
                   "FAIL: poisoned outputs did not surface as typed "
                   "Internal errors\n");
      violations = true;
    }
    if (trips < 1) {
      std::fprintf(stderr, "FAIL: the circuit breaker never tripped\n");
      violations = true;
    }
    if (info_b.batcher.breaker.probes < 1) {
      std::fprintf(stderr, "FAIL: no half-open probe was admitted\n");
      violations = true;
    }
    if (!recovered ||
        info_b.batcher.breaker.state != serve::BreakerState::kClosed) {
      std::fprintf(stderr,
                   "FAIL: breaker did not recover to closed (state=%s)\n",
                   serve::BreakerStateName(info_b.batcher.breaker.state));
      violations = true;
    }
    if (chaos.goodput_rps <
        (chaos_floor_pct / 100.0) * nofault.goodput_rps) {
      std::fprintf(stderr,
                   "FAIL: chaos goodput %.1f rps below %lld%% of the "
                   "no-fault baseline %.1f rps\n",
                   chaos.goodput_rps,
                   static_cast<long long>(chaos_floor_pct),
                   nofault.goodput_rps);
      violations = true;
    }

    if (!json_path.empty()) {
      FILE* json = std::fopen(json_path.c_str(), "w");
      if (json == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fprintf(json, "{\"base_rps\": %.2f, \"chaos\": {", base_rps);
      std::fprintf(json, "\"nofault\": {");
      WritePointFields(json, nofault);
      std::fprintf(json, "}, \"faulted\": {");
      WritePointFields(json, chaos);
      std::fprintf(
          json,
          "}, \"breaker_trips\": %lld, \"breaker_probes\": %lld, "
          "\"breaker_state\": \"%s\", \"recovered\": %d, "
          "\"executed_past_deadline\": %lld, \"server_nonfinite\": %lld, "
          "\"goodput_ratio\": %.3f}}\n",
          static_cast<long long>(trips),
          static_cast<long long>(info_b.batcher.breaker.probes),
          serve::BreakerStateName(info_b.batcher.breaker.state),
          recovered ? 1 : 0,
          static_cast<long long>(info_b.batcher.executed_past_deadline),
          static_cast<long long>(info_b.batcher.nonfinite_answers),
          nofault.goodput_rps > 0 ? chaos.goodput_rps / nofault.goodput_rps
                                  : 0.0);
      std::fclose(json);
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return violations ? 1 : 0;
  }

  const double duration_s = duration_ms / 1000.0;
  const double utils[] = {0.25, 0.5};
  std::vector<PointResult> points;
  std::vector<int64_t> model_counts;
  model_counts.push_back(1);
  if (num_models > 1) model_counts.push_back(num_models);
  for (int64_t count : model_counts) {
    std::vector<std::string> subset(names.begin(), names.begin() + count);
    for (double util : utils) {
      PointResult point =
          RunPoint(&registry, subset, windows, expected, nullptr,
                   util * base_rps, duration_s,
                   /*seed=*/1234 + static_cast<uint64_t>(count * 100 + util * 10),
                   plain_client, nullptr);
      point.util = util;
      points.push_back(point);
      PrintPoint("point", point);
      if (point.mismatched > 0) {
        std::fprintf(stderr,
                     "FAIL: %lld answer(s) did not match their model's "
                     "serial prediction\n",
                     static_cast<long long>(point.mismatched));
        violations = true;
      }
    }
  }

  // Overload point: 1.5x capacity on one model with deadlines, admission
  // control and client retries. check_perf.sh gates the shed rate, the
  // goodput floor, and the hard zeros (executed-past-deadline, delivered
  // non-finite answers).
  PointResult overload =
      RunPoint(&registry, {names[0]}, windows, expected, nullptr,
               1.5 * capacity_rps, std::max(1.5, duration_s), /*seed=*/4321,
               overload_client, nullptr);
  overload.util = 1.5;
  PrintPoint("overload", overload);
  const serve::ModelInfo overload_info = InfoFor(registry, names[0]);
  if (overload.mismatched > 0 || overload.nonfinite > 0 ||
      overload_info.batcher.executed_past_deadline > 0) {
    std::fprintf(stderr,
                 "FAIL: overload point violated a hard invariant "
                 "(mismatched=%lld nonfinite=%lld "
                 "executed_past_deadline=%lld)\n",
                 static_cast<long long>(overload.mismatched),
                 static_cast<long long>(overload.nonfinite),
                 static_cast<long long>(
                     overload_info.batcher.executed_past_deadline));
    violations = true;
  }

  // Hot reload under live load.
  int64_t hot_requests = 0, hot_failed = 0, hot_torn = 0;
  int64_t hot_old = 0, hot_new = 0, hot_reloads = 0, hot_reload_failures = 0;
  int64_t post_corrupt_ok = 0;
  if (hot_reload) {
    const std::string live_path = "/tmp/lipformer_loadgen_live.ckpt";
    const std::string side_path = "/tmp/lipformer_loadgen_side.ckpt";
    if (!SaveBundle(live_path, dims, /*seed=*/100) ||
        !SaveBundle(side_path, dims, /*seed=*/101)) {
      return 1;
    }
    std::vector<std::vector<Tensor>> expected_old(1), expected_new(1);
    if (!SerialReference(live_path, windows, &expected_old[0]) ||
        !SerialReference(side_path, windows, &expected_new[0])) {
      return 1;
    }

    serve::RegistryOptions hot_options;
    hot_options.batcher.max_batch_size = max_batch;
    hot_options.batcher.queue_capacity = 4096;
    hot_options.reload_poll = std::chrono::milliseconds(20);
    serve::ModelRegistry hot_registry(hot_options);
    Status loaded = hot_registry.Load("hot", live_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "hot load failed: %s\n", loaded.ToString().c_str());
      return 1;
    }

    // Atomic publish of the NEW bundle mid-run: exactly what a deploy
    // does (rename(2) over the served path).
    const double hot_duration_s = std::max(1.6, duration_s);
    std::thread publisher([&] {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          hot_duration_s * 0.4));
      if (std::rename(side_path.c_str(), live_path.c_str()) != 0) {
        std::fprintf(stderr, "FAIL: rename publish failed\n");
      }
    });
    std::vector<WaiterResult> hot_results;
    PointResult hot_point = RunPoint(
        &hot_registry, {"hot"}, windows, expected_old, &expected_new,
        0.5 * base_rps, hot_duration_s, /*seed=*/991, plain_client,
        &hot_results);
    publisher.join();
    hot_requests = hot_point.offered;
    hot_failed = hot_point.failed;
    for (const WaiterResult& result : hot_results) {
      hot_old += result.expected_a;
      hot_new += result.expected_b;
      hot_torn += result.mismatched;
      if (result.failed > 0 && !result.first_error.empty()) {
        std::fprintf(stderr, "hot-reload first failure: %s\n",
                     result.first_error.c_str());
      }
    }

    // Corrupt publish: the reload must fail validation and the previous
    // (new) generation must keep serving.
    const char garbage[] = "not a checkpoint";
    Status wrote = AtomicWriteFile(live_path, garbage, sizeof(garbage));
    if (!wrote.ok()) {
      std::fprintf(stderr, "corrupt publish failed: %s\n",
                   wrote.ToString().c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (int i = 0; i < 16; ++i) {
      auto answer = hot_registry.Submit("hot", windows[i % 8]).get();
      if (answer.ok() &&
          BitwiseEqual(answer.value(), expected_new[0][i % 8])) {
        ++post_corrupt_ok;
      }
    }
    for (const serve::ModelInfo& info : hot_registry.Models()) {
      hot_reloads = info.reloads;
      hot_reload_failures = info.reload_failures;
    }

    std::fprintf(stderr,
                 "hot reload: %lld requests, %lld failed, %lld torn, "
                 "%lld old-model, %lld new-model, %lld reload(s), %lld "
                 "failed reload(s), %lld/16 post-corrupt ok\n",
                 static_cast<long long>(hot_requests),
                 static_cast<long long>(hot_failed),
                 static_cast<long long>(hot_torn),
                 static_cast<long long>(hot_old),
                 static_cast<long long>(hot_new),
                 static_cast<long long>(hot_reloads),
                 static_cast<long long>(hot_reload_failures),
                 static_cast<long long>(post_corrupt_ok));

    if (hot_failed != 0) {
      std::fprintf(stderr, "FAIL: requests failed during hot reload\n");
      violations = true;
    }
    if (hot_torn != 0) {
      std::fprintf(stderr, "FAIL: torn predictions during hot reload\n");
      violations = true;
    }
    if (hot_old == 0 || hot_new == 0) {
      std::fprintf(stderr,
                   "FAIL: expected answers from both generations "
                   "(old=%lld new=%lld)\n",
                   static_cast<long long>(hot_old),
                   static_cast<long long>(hot_new));
      violations = true;
    }
    if (hot_reload_failures < 1) {
      std::fprintf(stderr, "FAIL: corrupt publish did not fail a reload\n");
      violations = true;
    }
    if (post_corrupt_ok != 16) {
      std::fprintf(stderr,
                   "FAIL: previous model did not keep serving after the "
                   "corrupt publish (%lld/16)\n",
                   static_cast<long long>(post_corrupt_ok));
      violations = true;
    }
  }

  if (!json_path.empty()) {
    FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(json, "{\"base_rps\": %.2f, \"points\": [", base_rps);
    for (size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      std::fprintf(
          json,
          "%s{\"models\": %lld, \"util\": %.2f, \"target_rps\": %.2f, "
          "\"offered\": %lld, \"completed\": %lld, \"failed\": %lld, "
          "\"mismatched\": %lld, \"goodput_rps\": %.2f, \"p50_us\": %.1f, "
          "\"p99_us\": %.1f, \"p999_us\": %.1f}",
          i == 0 ? "" : ", ", static_cast<long long>(p.models), p.util,
          p.target_rps, static_cast<long long>(p.offered),
          static_cast<long long>(p.completed),
          static_cast<long long>(p.failed),
          static_cast<long long>(p.mismatched), p.goodput_rps, p.p50_us,
          p.p99_us, p.p999_us);
    }
    std::fprintf(json, "], \"overload\": {");
    WritePointFields(json, overload);
    std::fprintf(
        json,
        ", \"executed_past_deadline\": %lld, \"server_nonfinite\": %lld, "
        "\"breaker_trips\": %lld}",
        static_cast<long long>(overload_info.batcher.executed_past_deadline),
        static_cast<long long>(overload_info.batcher.nonfinite_answers),
        static_cast<long long>(overload_info.batcher.breaker.trips));
    if (hot_reload) {
      std::fprintf(
          json,
          ", \"hot_reload\": {\"requests\": %lld, \"failed\": %lld, "
          "\"torn\": %lld, \"old_model\": %lld, \"new_model\": %lld, "
          "\"reloads\": %lld, \"reload_failures\": %lld, "
          "\"post_corrupt_ok\": %lld}",
          static_cast<long long>(hot_requests),
          static_cast<long long>(hot_failed),
          static_cast<long long>(hot_torn), static_cast<long long>(hot_old),
          static_cast<long long>(hot_new),
          static_cast<long long>(hot_reloads),
          static_cast<long long>(hot_reload_failures),
          static_cast<long long>(post_corrupt_ok));
    }
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  return violations ? 1 : 0;
}

}  // namespace
}  // namespace lipformer

int main(int argc, char** argv) { return lipformer::Run(argc, argv); }
