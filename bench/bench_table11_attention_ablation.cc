// Table XI: ablation of the two patch-wise attentions. Variants: without
// Cross-Patch (linear instead), without Inter-Patch (linear instead),
// neither (classical patching only), and full LiPFormer. Reproduced claim:
// the two mechanisms are complementary; the full model wins consistently.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);

  struct VariantSpec {
    const char* name;
    bool cross;
    bool inter;
  };
  const VariantSpec variants[] = {
      {"WithoutCrossPatch", false, true},
      {"WithoutInterPatch", true, false},
      {"Neither", false, false},
      {"LiPFormer", true, true},
  };

  TablePrinter table({"Variant", "Dataset", "L", "MSE", "MAE"});
  for (const VariantSpec& variant : variants) {
    for (const std::string& dataset : {"etth1", "etth2", "ettm1", "ettm2"}) {
      DatasetSpec spec = MakeDataset(dataset, env.data_scale);
      for (int64_t horizon : env.horizons) {
        LiPFormerConfig config;
        config.hidden_dim = env.hidden_dim;
        config.patch_len = env.patch_len;
        config.use_cross_patch = variant.cross;
        config.use_inter_patch = variant.inter;
        RunResult r = RunLiPFormer(spec, env, horizon,
                                   /*use_covariates=*/false, &config);
        table.AddRow({variant.name, dataset, std::to_string(horizon),
                      FmtFloat(r.test.mse), FmtFloat(r.test.mae)});
        std::fprintf(stderr, "[table11] %s %s L=%lld mse=%.3f\n",
                     variant.name, dataset.c_str(),
                     static_cast<long long>(horizon), r.test.mse);
      }
    }
  }
  table.Print("Table XI: patch-wise attention ablation");
  (void)table.WriteCsv(ResultsPath(env, "table11_attention_ablation"));
  return 0;
}
