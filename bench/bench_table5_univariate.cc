// Table V: univariate long-term forecasting on the four ETT datasets
// (channel 0, the paper's oil-temperature target). Reproduced claim:
// LiPFormer stays top-two on most metrics in the univariate regime too.

#include <cstdio>
#include <map>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const std::vector<std::string> models = {"lipformer",    "itransformer",
                                           "timemixer",    "fgnn",
                                           "patchtst",     "dlinear",
                                           "tide"};
  const std::vector<std::string> datasets = {"etth1", "etth2", "ettm1",
                                             "ettm2"};

  TablePrinter table({"Dataset", "L", "Model", "MSE", "MAE"});
  std::map<std::string, int> first_count;
  std::map<std::string, int> top2_count;

  for (const std::string& dataset : datasets) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);
    // Univariate: restrict to the target channel.
    spec.series = SelectChannel(spec.series, spec.series.channels() - 1);
    for (int64_t horizon : env.horizons) {
      std::map<std::string, RunResult> results;
      for (const std::string& model : models) {
        RunResult r =
            model == "lipformer"
                ? RunLiPFormer(spec, env, horizon, /*use_covariates=*/true)
                : RunModel(model, spec, env, horizon);
        results[model] = r;
        table.AddRow({dataset, std::to_string(horizon), model,
                      FmtFloat(r.test.mse), FmtFloat(r.test.mae)});
        std::fprintf(stderr, "[table5] %s L=%lld %s mse=%.3f\n",
                     dataset.c_str(), static_cast<long long>(horizon),
                     model.c_str(), r.test.mse);
      }
      for (const char* metric : {"mse", "mae"}) {
        std::vector<std::pair<float, std::string>> ranked;
        for (const auto& [name, r] : results) {
          ranked.emplace_back(
              std::string(metric) == "mse" ? r.test.mse : r.test.mae, name);
        }
        std::sort(ranked.begin(), ranked.end());
        first_count[ranked[0].second] += 1;
        top2_count[ranked[0].second] += 1;
        if (ranked.size() > 1) top2_count[ranked[1].second] += 1;
      }
    }
  }

  table.Print("Table V: univariate forecasting on ETT");
  (void)table.WriteCsv(ResultsPath(env, "table5_univariate"));

  TablePrinter counts({"Model", "FirstPlace", "TopTwo"});
  for (const std::string& model : models) {
    counts.AddRow({model, std::to_string(first_count[model]),
                   std::to_string(top2_count[model])});
  }
  counts.Print("Table V Count row");
  (void)counts.WriteCsv(ResultsPath(env, "table5_counts"));
  return 0;
}
