// Extra ablation (DESIGN.md section 5): how should the Vector Mapping of
// Eq. 8 realize its "learnable linear layer"? Compares the repository
// default (shared Linear(L->L) + per-channel gain) against the literal
// Linear(L -> L*c) and a gain-only variant, on the Electri-Price stand-in,
// reporting both accuracy and the parameter cost of the mapping.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  DatasetSpec spec = MakeDataset("electri_price", env.data_scale);
  const std::vector<int64_t> horizons =
      env.full ? std::vector<int64_t>{96, 192}
               : std::vector<int64_t>{24, 48};

  struct VariantSpec {
    const char* name;
    VectorMappingKind kind;
  };
  const VariantSpec variants[] = {
      {"SharedLinear+Gain", VectorMappingKind::kSharedLinearWithGain},
      {"PerChannelLinear", VectorMappingKind::kPerChannelLinear},
      {"GainOnly", VectorMappingKind::kGainOnly},
  };

  TablePrinter table({"Mapping", "L", "MSE", "MAE", "Params"});
  for (const VariantSpec& variant : variants) {
    for (int64_t horizon : horizons) {
      LiPFormerConfig config;
      config.hidden_dim = env.hidden_dim;
      config.patch_len = env.patch_len;
      config.vector_mapping = variant.kind;
      RunResult r = RunLiPFormer(spec, env, horizon,
                                 /*use_covariates=*/true, &config);
      table.AddRow({variant.name, std::to_string(horizon),
                    FmtFloat(r.test.mse), FmtFloat(r.test.mae),
                    FormatCount(static_cast<double>(r.profile.parameters))});
      std::fprintf(stderr, "[vecmap] %s L=%lld mse=%.3f\n", variant.name,
                   static_cast<long long>(horizon), r.test.mse);
    }
  }
  table.Print("Vector Mapping ablation (Electri-Price)");
  (void)table.WriteCsv(ResultsPath(env, "vector_mapping_ablation"));
  return 0;
}
