// Figure 7: visualization of the dual-encoder logits matrices. After
// contrastive pre-training we dump (a) the logits of a training batch --
// the diagonal should dominate -- and (b)-(d) logits over *unshuffled*
// validation windows, where periodic stripes appear at the dataset's
// seasonal period. Output: ASCII heatmaps + CSV matrices + quantitative
// stats (diagonal dominance; mean logit by window offset, whose peak
// reveals the period).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

namespace {

void AsciiHeatmap(const Tensor& logits, const std::string& title) {
  const int64_t b = logits.size(0);
  float lo = logits.data()[0];
  float hi = lo;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    lo = std::min(lo, logits.data()[i]);
    hi = std::max(hi, logits.data()[i]);
  }
  static const char kShades[] = " .:-=+*#%@";
  std::printf("\n--- %s (%.2f .. %.2f) ---\n", title.c_str(), lo, hi);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < b; ++j) {
      const float v = (logits.at({i, j}) - lo) / (hi - lo + 1e-9f);
      std::putchar(kShades[static_cast<int>(v * 9.0f)]);
    }
    std::putchar('\n');
  }
}

Status DumpCsv(const Tensor& logits, const std::string& path) {
  TablePrinter printer([&] {
    std::vector<std::string> headers;
    for (int64_t j = 0; j < logits.size(1); ++j) {
      headers.push_back("c" + std::to_string(j));
    }
    return headers;
  }());
  for (int64_t i = 0; i < logits.size(0); ++i) {
    std::vector<std::string> row;
    for (int64_t j = 0; j < logits.size(1); ++j) {
      row.push_back(FmtFloat(logits.at({i, j}), 4));
    }
    printer.AddRow(std::move(row));
  }
  return printer.WriteCsv(path);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const int64_t horizon = 48;
  const int64_t b = 48;  // heatmap size

  TablePrinter stats({"Dataset", "DiagMean", "OffDiagMean", "PeakOffset(>=8)",
                      "ExpectedPeriod(windows)"});

  struct Case {
    const char* dataset;
    int64_t expected_period;  // in windows (= steps, stride 1)
  };
  // ETTm1 is 15-minute (daily = 96 steps), ETTh2 hourly (24),
  // Electri-Price 15-minute (96).
  const Case cases[] = {
      {"ettm1", 96}, {"etth2", 24}, {"electri_price", 96}};

  for (const Case& c : cases) {
    DatasetSpec spec = MakeDataset(c.dataset, env.data_scale);
    WindowDataset data = MakeWindows(spec, env, horizon);
    Rng rng(5);
    DualEncoder dual(MakeCovariateConfig(data, horizon), data.channels(),
                     rng);
    PretrainConfig pretrain;
    pretrain.epochs = env.pretrain_epochs + 1;
    pretrain.max_batches_per_epoch = env.max_batches_per_epoch;
    PretrainDualEncoder(&dual, data, pretrain);
    dual.SetTraining(false);
    NoGradGuard ng;

    // (a)-style: training batch, shuffled -> diagonal dominance.
    {
      std::vector<int64_t> ids;
      Rng pick(11);
      const int64_t n = data.NumWindows(Split::kTrain);
      for (int64_t i = 0; i < b; ++i) {
        ids.push_back(static_cast<int64_t>(
            pick.UniformInt(static_cast<uint64_t>(n))));
      }
      Tensor logits =
          dual.Logits(data.MakeBatch(Split::kTrain, ids)).value();
      double diag = 0.0, off = 0.0;
      for (int64_t i = 0; i < b; ++i) {
        for (int64_t j = 0; j < b; ++j) {
          (i == j ? diag : off) += logits.at({i, j});
        }
      }
      diag /= b;
      off /= b * (b - 1);
      AsciiHeatmap(logits, std::string(c.dataset) + " train batch logits");
      (void)DumpCsv(logits, ResultsPath(env, std::string("fig7_train_") +
                                                 c.dataset));
      // (b)-(d)-style: consecutive validation windows -> periodic stripes.
      // The stats matrix is wide enough to contain one full period; the
      // ASCII heatmap shows its top-left corner.
      std::vector<int64_t> seq;
      const int64_t limit = std::min<int64_t>(
          data.NumWindows(Split::kVal),
          std::max<int64_t>(b, c.expected_period + 16));
      for (int64_t i = 0; i < limit; ++i) seq.push_back(i);
      Tensor val_logits =
          dual.Logits(data.MakeBatch(Split::kVal, seq)).value();
      Tensor corner = Slice(Slice(val_logits, 0, 0, b), 1, 0, b);
      AsciiHeatmap(corner,
                   std::string(c.dataset) + " unshuffled validation logits");
      (void)DumpCsv(val_logits, ResultsPath(env, std::string("fig7_val_") +
                                                     c.dataset));

      // Mean logit by |i-j| offset: a periodic dataset shows a local peak
      // at the period (if it fits inside the matrix).
      std::vector<double> by_offset(static_cast<size_t>(limit), 0.0);
      std::vector<int64_t> counts(static_cast<size_t>(limit), 0);
      for (int64_t i = 0; i < limit; ++i) {
        for (int64_t j = 0; j < limit; ++j) {
          by_offset[static_cast<size_t>(std::llabs(i - j))] +=
              val_logits.at({i, j});
          counts[static_cast<size_t>(std::llabs(i - j))] += 1;
        }
      }
      for (int64_t off_i = 1; off_i < limit; ++off_i) {
        by_offset[static_cast<size_t>(off_i)] /=
            static_cast<double>(counts[static_cast<size_t>(off_i)]);
      }
      // Search beyond the near-diagonal band (adjacent windows are always
      // similar); the first strong peak marks the period.
      int64_t peak = 8;
      for (int64_t off_i = 8; off_i < limit - 4; ++off_i) {
        if (by_offset[static_cast<size_t>(off_i)] >
            by_offset[static_cast<size_t>(peak)]) {
          peak = off_i;
        }
      }
      stats.AddRow({c.dataset, FmtFloat(diag, 3), FmtFloat(off, 3),
                    std::to_string(peak),
                    std::to_string(c.expected_period)});
    }
    std::fprintf(stderr, "[fig7] %s done\n", c.dataset);
  }
  stats.Print("Figure 7 statistics: alignment and periodicity");
  (void)stats.WriteCsv(ResultsPath(env, "fig7_stats"));
  return 0;
}
