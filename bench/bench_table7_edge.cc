// Table VII: CPU-only inference time (seconds per inference) of the
// vanilla Transformer vs. LiPFormer while the input length grows, on the
// ETTh1 and Weather stand-ins. This host is CPU-only like the paper's edge
// box, so the quantity is measured directly. Reproduced claims: the
// Transformer's latency grows superlinearly (O(T^2) attention) while
// LiPFormer stays nearly flat, and the gap widens with channel count.
//
// A Threads column sweeps the kernel pool size (1 = the serial baseline)
// so the parallel-backend speedup is measured, not asserted; outputs are
// bitwise identical across thread counts by the ops.h determinism
// contract.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/thread_pool.h"
#include "models/transformer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);
  const std::vector<int64_t> input_lens =
      env.full ? std::vector<int64_t>{96, 192, 336, 720}
               : std::vector<int64_t>{96, 192, 336};
  const int64_t pred_len = 96;
  const std::vector<int> thread_counts = {1, 2, 4};

  TablePrinter table({"Dataset", "InputLen", "Threads", "Transformer(s)",
                      "LiPFormer(s)", "Speedup"});
  for (const std::string& dataset : {"etth1", "weather"}) {
    DatasetSpec spec = MakeDataset(dataset, env.data_scale);
    for (int64_t input_len : input_lens) {
      WindowDataset::Options options;
      options.input_len = input_len;
      options.pred_len = pred_len;
      options.train_ratio = spec.train_ratio;
      options.val_ratio = spec.val_ratio;
      options.test_ratio = spec.test_ratio;
      WindowDataset data(spec.series, options);

      ForecasterDims dims{input_len, pred_len, data.channels()};
      TransformerConfig tconfig;
      VanillaTransformer transformer(dims, tconfig);

      LiPFormerConfig lconfig;
      lconfig.input_len = input_len;
      lconfig.pred_len = pred_len;
      lconfig.channels = data.channels();
      lconfig.patch_len = input_len % 48 == 0 ? 48 : 24;
      lconfig.hidden_dim = env.hidden_dim;
      LiPFormer lip(lconfig);

      for (int threads : thread_counts) {
        SetNumThreads(threads);
        ModelProfile pt = ProfileModel(&transformer, data, /*batch_size=*/8,
                                       /*repeats=*/5);
        ModelProfile pl = ProfileModel(&lip, data, 8, 5);
        table.AddRow({dataset, std::to_string(input_len),
                      std::to_string(threads),
                      FmtFloat(pt.seconds_per_inference, 4),
                      FmtFloat(pl.seconds_per_inference, 4),
                      FmtFloat(pt.seconds_per_inference /
                                   pl.seconds_per_inference,
                               1) +
                          "x"});
      }
      std::fprintf(stderr, "[table7] %s T=%lld done\n", dataset.c_str(),
                   static_cast<long long>(input_len));
    }
  }
  SetNumThreads(1);
  table.Print(
      "Table VII: CPU-only inference latency vs input length and threads");
  (void)table.WriteCsv(ResultsPath(env, "table7_edge"));
  return 0;
}
