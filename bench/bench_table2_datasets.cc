// Reproduces the descriptive tables: Table II (dataset statistics) and
// Table IV (covariate schemas of Electri-Price and Cycle), printed from the
// synthetic dataset registry so the mapping paper-dataset -> stand-in is
// explicit.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);

  TablePrinter stats({"Dataset", "Variables(paper)", "Variables(here)",
                      "Timestamps(paper)", "Timestamps(here)", "Split",
                      "Future covariates", "Description"});
  for (const std::string& name : RegisteredDatasetNames()) {
    DatasetSpec spec = MakeDataset(name, env.data_scale);
    char split[16];
    std::snprintf(split, sizeof(split), "%.0f:%.0f:%.0f",
                  spec.train_ratio * 10, spec.val_ratio * 10,
                  spec.test_ratio * 10);
    stats.AddRow({spec.name, std::to_string(spec.paper_variables),
                  std::to_string(spec.series.channels()),
                  std::to_string(spec.paper_timestamps),
                  std::to_string(spec.series.steps()), split,
                  spec.series.has_explicit_covariates() ? "yes" : "implicit",
                  spec.description});
  }
  stats.Print("Table II: dataset statistics (synthetic stand-ins)");
  (void)stats.WriteCsv(ResultsPath(env, "table2_datasets"));

  TablePrinter schema({"Dataset", "Covariate", "Type", "Cardinality"});
  for (const std::string& name : {"electri_price", "cycle"}) {
    DatasetSpec spec = MakeDataset(name, 0.05);
    const CovariateSchema& cs = spec.series.covariate_schema;
    for (const std::string& field : cs.numeric_names) {
      schema.AddRow({name, field, "numerical", "-"});
    }
    for (size_t i = 0; i < cs.categorical_names.size(); ++i) {
      schema.AddRow({name, cs.categorical_names[i], "categorical",
                     std::to_string(cs.categorical_cardinalities[i])});
    }
  }
  schema.Print("Table IV: future covariate schemas");
  (void)schema.WriteCsv(ResultsPath(env, "table4_covariates"));
  return 0;
}
