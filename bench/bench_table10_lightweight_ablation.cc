// Table X: ablation of the lightweight architecture -- adding back the
// components LiPFormer removes (FFN, LayerNorm, both) on ETTh1 and ETTm2.
// Reproduced claim: the heavy components do not help (and often hurt)
// while inflating cost; plain LiPFormer is the best or tied.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

using namespace lipformer;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv);

  struct VariantSpec {
    const char* name;
    bool ffn;
    bool ln;
  };
  const VariantSpec variants[] = {
      {"LiPFormer+FFNs", true, false},
      {"LiPFormer+LN", false, true},
      {"LiPFormer+FFNs+LN", true, true},
      {"LiPFormer", false, false},
  };

  TablePrinter table({"Variant", "Dataset", "L", "MSE", "MAE", "Params"});
  for (const VariantSpec& variant : variants) {
    for (const std::string& dataset : {"etth1", "ettm2"}) {
      DatasetSpec spec = MakeDataset(dataset, env.data_scale);
      for (int64_t horizon : env.horizons) {
        LiPFormerConfig config;
        config.hidden_dim = env.hidden_dim;
        config.patch_len = env.patch_len;
        config.use_ffn = variant.ffn;
        config.use_layer_norm = variant.ln;
        RunResult r = RunLiPFormer(spec, env, horizon,
                                   /*use_covariates=*/false, &config);
        table.AddRow({variant.name, dataset, std::to_string(horizon),
                      FmtFloat(r.test.mse), FmtFloat(r.test.mae),
                      FormatCount(
                          static_cast<double>(r.profile.parameters))});
        std::fprintf(stderr, "[table10] %s %s L=%lld mse=%.3f\n",
                     variant.name, dataset.c_str(),
                     static_cast<long long>(horizon), r.test.mse);
      }
    }
  }
  table.Print("Table X: lightweight-architecture ablation (FFN / LN)");
  (void)table.WriteCsv(ResultsPath(env, "table10_lightweight_ablation"));
  return 0;
}
