// Converts a fp32 serving bundle into the int8 variant served by the
// quantized inference path (serve/quantize.h, DESIGN.md "Quantized
// inference"): every Linear weight becomes per-channel symmetric int8
// plus fp32 scales; biases, norms and the fitted scaler stay fp32. The
// output is a regular checkpoint-v2 bundle that `lipformer_cli serve
// --load` and InferenceSession::Open pick up transparently via its
// quantized=int8 metadata.
//
//   quantize_bundle --in=model.ckpt --out=model_int8.ckpt [--force]

#include <cstdio>
#include <string>

#include "cli/cli.h"
#include "serve/quantize.h"

namespace lipformer {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: quantize_bundle --in=FILE --out=FILE [--force]\n"
               "see the header of tools/quantize_bundle.cc\n");
  return 2;
}

int Run(int argc, char** argv) {
  // Reuse the CLI parser with argv[0] standing in for the command slot.
  cli::CliArgs args = cli::Parse(argc + 1, argv - 1);
  for (const auto& [key, value] : args.options) {
    if (key != "in" && key != "out" && key != "force") {
      std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
      return Usage();
    }
  }
  if (!args.stragglers.empty()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 args.stragglers.front().c_str());
    return Usage();
  }
  for (const char* required : {"in", "out"}) {
    if (!args.Has(required)) {
      std::fprintf(stderr, "error: missing --%s\n", required);
      return Usage();
    }
  }

  const Status st = serve::QuantizeBundleFile(
      args.Get("in", ""), args.Get("out", ""), args.Has("force"));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("quantized %s -> %s (int8 per-channel weights)\n",
              args.Get("in", "").c_str(), args.Get("out", "").c_str());
  return 0;
}

}  // namespace
}  // namespace lipformer

int main(int argc, char** argv) { return lipformer::Run(argc, argv); }
