// Migrates legacy v1 parameter files (shape-blind flat dumps written by
// Module::SaveParameters before checkpoint v2) to the self-describing v2
// format. The v1 layout stores no names or shapes, so the conversion
// needs the architecture to be spelled out: the model is rebuilt from the
// flags below, the v1 file is loaded into it (flat-size checked, the only
// check v1 admits), and the result is re-saved as v2 — after which every
// future load verifies names and shapes per tensor.
//
//   checkpoint_convert --in=old.bin --out=new.ckpt --model=lipformer \
//       --input=96 --horizon=24 --channels=7 [--hidden=64] [--heads=4] \
//       [--layers=2] [--patch=48] [--num-covariates=0] [--seed=1] \
//       [--bundle]
//
// With --bundle the output is a serving bundle (loadable by
// `lipformer_cli serve --load`) without a scaler: the v1 file never
// carried one, so the session serves in model units.

#include <cstdio>
#include <string>

#include "cli/cli.h"
#include "common/atomic_file.h"
#include "models/factory.h"
#include "serve/session.h"

namespace lipformer {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: checkpoint_convert --in=FILE --out=FILE "
               "--model=NAME --input=N --horizon=N --channels=N\n"
               "    [--hidden=N] [--heads=N] [--layers=N] [--patch=N]\n"
               "    [--num-covariates=N] [--seed=N] [--bundle] [--force]\n"
               "see the header of tools/checkpoint_convert.cc\n");
  return 2;
}

int Run(int argc, char** argv) {
  // Reuse the CLI parser with argv[0] standing in for the command slot.
  cli::CliArgs args = cli::Parse(argc + 1, argv - 1);
  static const char* kKnown[] = {"in",     "out",   "model",  "input",
                                 "horizon", "channels", "hidden", "heads",
                                 "layers", "patch", "num-covariates",
                                 "seed",   "dropout", "bundle", "force"};
  for (const auto& [key, value] : args.options) {
    bool known = false;
    for (const char* k : kKnown) {
      if (key == k) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
      return Usage();
    }
  }
  if (!args.stragglers.empty()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 args.stragglers.front().c_str());
    return Usage();
  }
  for (const char* required : {"in", "out", "model", "input", "horizon",
                               "channels"}) {
    if (!args.Has(required)) {
      std::fprintf(stderr, "error: missing --%s\n", required);
      return Usage();
    }
  }

  // Converting over an existing checkpoint is destructive; require an
  // explicit --force.
  if (!args.Has("force") && PathExists(args.Get("out", ""))) {
    std::fprintf(stderr,
                 "error: --out target '%s' already exists; pass --force to "
                 "overwrite\n",
                 args.Get("out", "").c_str());
    return 1;
  }

  const std::string model_name = args.Get("model", "");
  bool known_model = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == model_name) known_model = true;
  }
  if (!known_model) {
    std::fprintf(stderr, "error: unknown model '%s'\n", model_name.c_str());
    return 1;
  }

  ForecasterDims dims;
  dims.input_len = args.GetInt("input", 0);
  dims.pred_len = args.GetInt("horizon", 0);
  dims.channels = args.GetInt("channels", 0);
  if (dims.input_len <= 0 || dims.pred_len <= 0 || dims.channels <= 0) {
    std::fprintf(stderr, "error: --input/--horizon/--channels must be "
                         "positive integers\n");
    return 1;
  }
  ModelOptions options;
  options.hidden_dim = args.GetInt("hidden", options.hidden_dim);
  options.num_heads = args.GetInt("heads", options.num_heads);
  options.num_layers = args.GetInt("layers", options.num_layers);
  options.patch_len = args.GetInt("patch", options.patch_len);
  options.dropout =
      static_cast<float>(args.GetDouble("dropout", options.dropout));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.num_covariates = args.GetInt("num-covariates", 0);

  std::unique_ptr<Forecaster> model = CreateModel(model_name, dims, options);
  Status st = model->LoadParametersLegacyV1(args.Get("in", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (args.Has("bundle")) {
    st = serve::SaveModelBundle(args.Get("out", ""), model_name, options,
                                *model, StandardScaler());
  } else {
    st = model->SaveParameters(args.Get("out", ""));
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("converted %s (v1, %lld parameters) -> %s (v2%s)\n",
              args.Get("in", "").c_str(),
              static_cast<long long>(model->ParameterCount()),
              args.Get("out", "").c_str(),
              args.Has("bundle") ? " serving bundle, no scaler" : "");
  return 0;
}

}  // namespace
}  // namespace lipformer

int main(int argc, char** argv) { return lipformer::Run(argc, argv); }
