// Thin entry point; all logic lives in src/cli (see cli/cli.h for the
// command and option reference).

#include "cli/cli.h"

int main(int argc, char** argv) { return lipformer::cli::Main(argc, argv); }
