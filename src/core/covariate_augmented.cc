#include "core/covariate_augmented.h"

namespace lipformer {

CovariateAugmentedForecaster::CovariateAugmentedForecaster(
    std::unique_ptr<Forecaster> base, const CovariateEncoder* encoder,
    uint64_t seed)
    : base_(std::move(base)), encoder_(encoder) {
  LIPF_CHECK(base_ != nullptr);
  LIPF_CHECK(encoder_ != nullptr);
  LIPF_CHECK_EQ(encoder_->config().pred_len, base_->pred_len())
      << "covariate encoder horizon mismatch";
  Rng rng(seed);
  RegisterModule("base", base_.get());
  vector_mapping_ = std::make_unique<Linear>(base_->pred_len(),
                                             base_->pred_len(), rng);
  RegisterModule("vector_mapping", vector_mapping_.get());
  channel_gain_ = RegisterParameter(
      "channel_gain",
      Variable(Tensor::Full(Shape{base_->channels()}, 0.1f)));
}

Variable CovariateAugmentedForecaster::Forward(const Batch& batch) {
  Variable y = base_->Forward(batch);  // [b, L, c]
  Variable vc;
  {
    NoGradGuard no_grad;
    vc = encoder_->Encode(batch);  // [b, L]
  }
  Variable mapped = vector_mapping_->Forward(vc.Detach());
  Variable contribution = Mul(
      Reshape(mapped, Shape{batch.x.size(0), base_->pred_len(), 1}),
      channel_gain_);
  return Add(y, contribution);
}

}  // namespace lipformer
