#include "core/patching.h"

namespace lipformer {

Variable MakePatches(const Variable& x, int64_t patch_len) {
  LIPF_CHECK_EQ(x.dim(), 2);
  const int64_t b = x.size(0);
  const int64_t t = x.size(1);
  LIPF_CHECK_GT(patch_len, 0);
  LIPF_CHECK_EQ(t % patch_len, 0)
      << "input length " << t << " must be divisible by patch length "
      << patch_len;
  const int64_t n = t / patch_len;
  return Reshape(x, Shape{b, n, patch_len});
}

Variable TrendSequences(const Variable& patches) {
  LIPF_CHECK_EQ(patches.dim(), 3);
  return Transpose(patches, 1, 2);
}

int64_t NumTargetPatches(int64_t pred_len, int64_t patch_len) {
  LIPF_CHECK_GT(pred_len, 0);
  LIPF_CHECK_GT(patch_len, 0);
  return (pred_len + patch_len - 1) / patch_len;
}

}  // namespace lipformer
