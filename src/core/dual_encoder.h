#ifndef LIPFORMER_CORE_DUAL_ENCODER_H_
#define LIPFORMER_CORE_DUAL_ENCODER_H_

#include <memory>

#include "core/covariate_encoder.h"
#include "data/dataloader.h"

namespace lipformer {

// The Weakly Supervised Architecture (Figure 1 top, Section III-B): a
// CLIP-style dual encoder trained contrastively so that the covariate
// vector V_C of a window aligns with the target vector V_T of the same
// window. logits = norm(V_T) norm(V_C)^T * e^t, with learnable temperature
// t; loss is the symmetric cross-entropy over the b x b pair matrix.
class DualEncoder : public Module {
 public:
  DualEncoder(const CovariateEncoderConfig& covariate_config,
              int64_t target_channels, Rng& rng);

  // [b, b] logits matrix for a batch of covariate-target pairs.
  Variable Logits(const Batch& batch) const;

  CovariateEncoder* covariate_encoder() { return covariate_encoder_.get(); }
  const CovariateEncoder* covariate_encoder() const {
    return covariate_encoder_.get();
  }
  TargetEncoder* target_encoder() { return target_encoder_.get(); }

  float temperature() const;

 private:
  std::unique_ptr<CovariateEncoder> covariate_encoder_;
  std::unique_ptr<TargetEncoder> target_encoder_;
  Variable log_temperature_;  // scalar t; logits scaled by e^t
};

struct PretrainConfig {
  int64_t epochs = 3;
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  int64_t batch_size = 64;
  uint64_t seed = 3;
  int64_t max_batches_per_epoch = 0;  // 0 = all
  bool verbose = false;
};

struct PretrainResult {
  float first_epoch_loss = 0.0f;
  float final_loss = 0.0f;
  int64_t steps = 0;
  double seconds = 0.0;
};

// Contrastive pre-training over the train split (Section III-B). After
// this, freeze the covariate encoder (SetRequiresGrad(false)) and attach it
// to a predictor.
PretrainResult PretrainDualEncoder(DualEncoder* dual,
                                   const WindowDataset& data,
                                   const PretrainConfig& config);

// Builds the encoder config matching a dataset's covariate schema.
CovariateEncoderConfig MakeCovariateConfig(const WindowDataset& data,
                                           int64_t pred_len,
                                           int64_t hidden_dim = 32,
                                           int64_t embed_dim = 4);

}  // namespace lipformer

#endif  // LIPFORMER_CORE_DUAL_ENCODER_H_
