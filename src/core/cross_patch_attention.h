#ifndef LIPFORMER_CORE_CROSS_PATCH_ATTENTION_H_
#define LIPFORMER_CORE_CROSS_PATCH_ATTENTION_H_

#include <memory>

#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace lipformer {

// Cross-Patch attention (Section III-C1, Figure 2, Eq. 1). Self-attention
// runs across the pl global trend sequences (the transpose of the patch
// matrix), capturing global sequential dependencies that replace positional
// encoding; a residual connection and a single-layer MLP pl -> hd mix the
// trend features back into the patch tokens:
//     x[B, n, hd] = MLP(Attn(X[B, n, pl]) + X[B, n, pl]).
// The `enabled=false` ablation (Table XI, "Without Cross-Patch attn.")
// keeps only the MLP.
class CrossPatchAttention : public Module {
 public:
  CrossPatchAttention(int64_t num_patches, int64_t patch_len,
                      int64_t hidden_dim, Rng& rng, float dropout = 0.0f,
                      bool enabled = true);

  // patches: [B, n, pl] -> [B, n, hd].
  Variable Forward(const Variable& patches) const;

  bool enabled() const { return enabled_; }

 private:
  int64_t num_patches_;
  int64_t patch_len_;
  int64_t hidden_dim_;
  bool enabled_;
  // Attention across trend sequences: tokens = pl trends, feature dim = n.
  std::unique_ptr<MultiHeadSelfAttention> trend_attention_;
  std::unique_ptr<Linear> mixer_;  // pl -> hd
  std::unique_ptr<Dropout> dropout_;
};

}  // namespace lipformer

#endif  // LIPFORMER_CORE_CROSS_PATCH_ATTENTION_H_
