#ifndef LIPFORMER_CORE_INSTANCE_NORM_H_
#define LIPFORMER_CORE_INSTANCE_NORM_H_

#include <utility>

#include "autograd/ops.h"

// Last-value instance normalization (Section III-C1, after DLinear): the
// last observed value of each channel is subtracted from its history before
// the model runs and re-added to the prediction, mitigating distribution
// shift between train and test windows with zero learned parameters.

namespace lipformer {

struct InstanceNormState {
  // [b, 1, c] last values of each window, needed for denormalization.
  Variable last_values;
};

// x: [b, T, c] -> normalized x with state to undo it.
std::pair<Variable, InstanceNormState> InstanceNormalize(const Variable& x);

// prediction: [b, L, c] -> prediction + last values.
Variable InstanceDenormalize(const Variable& prediction,
                             const InstanceNormState& state);

}  // namespace lipformer

#endif  // LIPFORMER_CORE_INSTANCE_NORM_H_
