#ifndef LIPFORMER_CORE_LIPFORMER_H_
#define LIPFORMER_CORE_LIPFORMER_H_

#include <memory>
#include <string>

#include "core/base_predictor.h"
#include "core/dual_encoder.h"
#include "models/forecaster.h"
#include "train/trainer.h"

namespace lipformer {

// How the Vector Mapping (Eq. 8) projects the covariate vector V_C onto
// the [b, L, c] prediction. The paper says only "a learnable linear
// layer"; the repository implements three realizations to ablate the
// choice (see DESIGN.md section 5 and bench_vector_mapping):
enum class VectorMappingKind {
  // Shared Linear(L -> L) followed by a per-channel gain (default; O(L^2
  // + c) parameters).
  kSharedLinearWithGain,
  // Literal Linear(L -> L*c); faithful to the widest reading but O(L^2 c)
  // parameters -- explodes for wide datasets.
  kPerChannelLinear,
  // Per-channel gain only (cheapest possible guidance).
  kGainOnly,
};

// Full LiPFormer configuration: backbone + weak-data-enriching switches.
struct LiPFormerConfig {
  int64_t input_len = 336;
  int64_t pred_len = 96;
  int64_t channels = 7;
  int64_t patch_len = 48;
  int64_t hidden_dim = 64;
  int64_t num_heads = 4;
  float dropout = 0.1f;
  uint64_t seed = 1;

  // Ablation switches (paper defaults).
  bool use_cross_patch = true;
  bool use_inter_patch = true;
  bool use_layer_norm = false;
  bool use_ffn = false;
  VectorMappingKind vector_mapping =
      VectorMappingKind::kSharedLinearWithGain;

  BasePredictorConfig base_config() const {
    BasePredictorConfig base;
    base.input_len = input_len;
    base.pred_len = pred_len;
    base.patch_len = patch_len;
    base.hidden_dim = hidden_dim;
    base.num_heads = num_heads;
    base.dropout = dropout;
    base.use_cross_patch = use_cross_patch;
    base.use_inter_patch = use_inter_patch;
    base.use_layer_norm = use_layer_norm;
    base.use_ffn = use_ffn;
    return base;
  }
};

// LiPFormer (Figure 1): instance normalization -> channel independence ->
// Base Predictor -> optional weak-label guidance. With an attached
// (pre-trained, frozen) Covariate Encoder the prediction is
//   Y_hat = Y_base + Map(V_C)                        (Eq. 8)
// where Map is the learnable Vector Mapping trained jointly with the
// backbone: a shared Linear(L -> L) followed by a per-channel gain (see
// DESIGN.md for why the full Linear(L -> L*c) is avoided).
class LiPFormer : public Forecaster {
 public:
  explicit LiPFormer(const LiPFormerConfig& config);

  // Attaches a frozen covariate encoder (not owned; must outlive this
  // model). Pass nullptr to detach.
  void AttachCovariateEncoder(const CovariateEncoder* encoder);
  bool has_covariate_encoder() const { return covariate_encoder_ != nullptr; }

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "LiPFormer"; }
  int64_t input_len() const override { return config_.input_len; }
  int64_t pred_len() const override { return config_.pred_len; }
  int64_t channels() const override { return config_.channels; }

  const LiPFormerConfig& config() const { return config_; }
  BasePredictor* base_predictor() { return base_.get(); }

 private:
  LiPFormerConfig config_;
  Rng rng_;
  std::unique_ptr<BasePredictor> base_;
  const CovariateEncoder* covariate_encoder_ = nullptr;
  // Vector Mapping (trained with the backbone); created lazily on the
  // first AttachCovariateEncoder call.
  bool mapping_initialized_ = false;
  std::unique_ptr<Linear> vector_mapping_;
  Variable channel_gain_;  // [c]
};

// End-to-end training pipeline from the paper: contrastive pre-training of
// the dual encoder on the train split, freeze the covariate encoder, attach
// it to the model, then prediction-oriented training of the backbone +
// vector mapping.
struct LiPFormerPipelineResult {
  PretrainResult pretrain;
  TrainResult train;
};

LiPFormerPipelineResult TrainLiPFormerPipeline(LiPFormer* model,
                                               DualEncoder* dual,
                                               const WindowDataset& data,
                                               const PretrainConfig& pretrain,
                                               const TrainConfig& train);

}  // namespace lipformer

#endif  // LIPFORMER_CORE_LIPFORMER_H_
