#include "core/base_predictor.h"

#include "core/patching.h"

namespace lipformer {

BasePredictor::BasePredictor(const BasePredictorConfig& config, Rng& rng)
    : config_(config) {
  LIPF_CHECK_GT(config.patch_len, 0);
  LIPF_CHECK_EQ(config.input_len % config.patch_len, 0)
      << "patch length must divide input length";
  const int64_t n = config.num_patches();
  const int64_t nt = config.num_target_patches();

  cross_patch_ = std::make_unique<CrossPatchAttention>(
      n, config.patch_len, config.hidden_dim, rng, config.dropout,
      config.use_cross_patch);
  RegisterModule("cross_patch", cross_patch_.get());

  // Heads must divide hd; fall back to 1 for tiny hidden sizes.
  const int64_t heads =
      config.hidden_dim % config.num_heads == 0 ? config.num_heads : 1;
  inter_patch_ = std::make_unique<InterPatchAttention>(
      config.hidden_dim, heads, rng, config.dropout, config.use_inter_patch,
      config.use_layer_norm, config.use_ffn);
  RegisterModule("inter_patch", inter_patch_.get());

  patch_head_ = std::make_unique<Linear>(n, nt, rng);
  within_head_ = std::make_unique<Linear>(config.hidden_dim,
                                          config.patch_len, rng);
  RegisterModule("patch_head", patch_head_.get());
  RegisterModule("within_head", within_head_.get());
}

Variable BasePredictor::Forward(const Variable& x) const {
  LIPF_CHECK_EQ(x.dim(), 2);
  LIPF_CHECK_EQ(x.size(1), config_.input_len);
  const int64_t b = x.size(0);
  const int64_t nt = config_.num_target_patches();

  Variable patches = MakePatches(x, config_.patch_len);   // [B, n, pl]
  Variable tokens = cross_patch_->Forward(patches);       // [B, n, hd]
  Variable attended = inter_patch_->Forward(tokens);      // [B, n, hd]

  // Two single-layer MLPs instead of an FFN stack (Section III-C1).
  Variable by_feature = Transpose(attended, 1, 2);        // [B, hd, n]
  Variable target_tokens = patch_head_->Forward(by_feature);  // [B, hd, nt]
  Variable per_patch = Transpose(target_tokens, 1, 2);    // [B, nt, hd]
  Variable horizon = within_head_->Forward(per_patch);    // [B, nt, pl]

  Variable flat = Reshape(horizon, Shape{b, nt * config_.patch_len});
  if (nt * config_.patch_len != config_.pred_len) {
    flat = Slice(flat, 1, 0, config_.pred_len);
  }
  return flat;
}

}  // namespace lipformer
