#ifndef LIPFORMER_CORE_COVARIATE_ENCODER_H_
#define LIPFORMER_CORE_COVARIATE_ENCODER_H_

#include <memory>
#include <vector>

#include "data/window_dataset.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace lipformer {

struct CovariateEncoderConfig {
  int64_t pred_len = 96;
  // Numeric / categorical covariate layout (from the dataset schema).
  int64_t num_numeric = 4;
  std::vector<int64_t> categorical_cardinalities;
  // Embedding width per categorical field. The paper's Eq. 3 embeds each
  // textual field before concatenation; we use a small vector per field.
  int64_t embed_dim = 4;
  int64_t hidden_dim = 32;
  int64_t num_heads = 4;

  int64_t num_categorical() const {
    return static_cast<int64_t>(categorical_cardinalities.size());
  }
  int64_t concat_channels() const {
    return num_numeric + num_categorical() * embed_dim;
  }
};

// Covariate Encoder (Figure 5, Eq. 3-6): textual weak labels are embedded
// and concatenated with numeric labels, mapped to hd channels by a linear
// MLP, passed through one residual self-attention over the L future steps,
// flattened and projected to a length-L representation vector V_C.
class CovariateEncoder : public Module {
 public:
  CovariateEncoder(const CovariateEncoderConfig& config, Rng& rng);

  // cov_num: [b, L, num_numeric], cov_cat: [b, L, num_categorical] integer
  // codes. Returns V_C in R^{b x L}.
  Variable Encode(const Tensor& cov_num, const Tensor& cov_cat) const;

  // Convenience overload reading the batch's future covariates.
  Variable Encode(const Batch& batch) const;

  const CovariateEncoderConfig& config() const { return config_; }

 private:
  Variable EncodeConcat(const Variable& concat) const;

  CovariateEncoderConfig config_;
  std::vector<std::unique_ptr<Embedding>> embeddings_;
  std::unique_ptr<Linear> input_proj_;  // concat_channels -> hd (Eq. 4)
  std::unique_ptr<MultiHeadSelfAttention> attention_;  // res-attn (Eq. 5)
  std::unique_ptr<Linear> output_proj_;  // L*hd -> L (Eq. 6)
};

// Target Encoder: same Res-attention trunk applied to the ground-truth
// future window Y [b, L, c] (Eq. 7 replaces the embedding/concat step with
// a channel projection c -> hd).
class TargetEncoder : public Module {
 public:
  TargetEncoder(int64_t pred_len, int64_t channels, int64_t hidden_dim,
                int64_t num_heads, Rng& rng);

  // y: [b, L, c] -> V_T in R^{b x L}.
  Variable Encode(const Tensor& y) const;

 private:
  int64_t pred_len_;
  int64_t channels_;
  int64_t hidden_dim_;
  std::unique_ptr<Linear> input_proj_;  // c -> hd
  std::unique_ptr<MultiHeadSelfAttention> attention_;
  std::unique_ptr<Linear> output_proj_;  // L*hd -> L
};

}  // namespace lipformer

#endif  // LIPFORMER_CORE_COVARIATE_ENCODER_H_
