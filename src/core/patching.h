#ifndef LIPFORMER_CORE_PATCHING_H_
#define LIPFORMER_CORE_PATCHING_H_

#include "autograd/ops.h"

// Patch division (Section III-C1). Channel-independent sequences
// [B, T] (B = batch * channels) are segmented into n = T/pl non-overlapping
// patches of length pl. Trend sequences -- the Cross-Patch view -- are the
// transpose of the patch matrix: trend j collects the point at offset j of
// every patch, in chronological order (Figure 2).

namespace lipformer {

// [B, T] -> [B, n, pl]; T must be divisible by pl (the paper uses
// non-overlapping patches that divide T exactly).
Variable MakePatches(const Variable& x, int64_t patch_len);

// [B, n, pl] -> [B, pl, n]: row j is the j-th global trend sequence.
Variable TrendSequences(const Variable& patches);

// Number of target patches covering pred_len (ceil division).
int64_t NumTargetPatches(int64_t pred_len, int64_t patch_len);

}  // namespace lipformer

#endif  // LIPFORMER_CORE_PATCHING_H_
