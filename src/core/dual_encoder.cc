#include "core/dual_encoder.h"

#include <chrono>
#include <cmath>

#include "optim/adamw.h"
#include "train/losses.h"

namespace lipformer {

namespace {

// Row-wise L2 normalization of [b, L] vectors (cosine-similarity logits).
Variable RowNormalize(const Variable& v) {
  Variable sq = Sum(Mul(v, v), 1, /*keepdim=*/true);
  Variable norm = Sqrt(AddScalar(sq, 1e-8f));
  return Div(v, norm);
}

}  // namespace

DualEncoder::DualEncoder(const CovariateEncoderConfig& covariate_config,
                         int64_t target_channels, Rng& rng) {
  covariate_encoder_ =
      std::make_unique<CovariateEncoder>(covariate_config, rng);
  target_encoder_ = std::make_unique<TargetEncoder>(
      covariate_config.pred_len, target_channels,
      covariate_config.hidden_dim, covariate_config.num_heads, rng);
  RegisterModule("covariate_encoder", covariate_encoder_.get());
  RegisterModule("target_encoder", target_encoder_.get());
  // CLIP initializes the temperature so that e^t = 1/0.07 ~ 14.3; a milder
  // start is stabler for small batches.
  log_temperature_ = RegisterParameter(
      "log_temperature", Variable(Tensor::Scalar(std::log(10.0f))));
}

Variable DualEncoder::Logits(const Batch& batch) const {
  Variable vc = RowNormalize(covariate_encoder_->Encode(batch));  // [b, L]
  Variable vt = RowNormalize(target_encoder_->Encode(batch.y));   // [b, L]
  Variable scale = Exp(log_temperature_);
  Variable logits = MatMulTransB(vt, vc);  // [b, b]
  return Mul(logits, scale);
}

float DualEncoder::temperature() const {
  return std::exp(log_temperature_.value().item());
}

PretrainResult PretrainDualEncoder(DualEncoder* dual,
                                   const WindowDataset& data,
                                   const PretrainConfig& config) {
  AdamW optimizer(dual->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                  config.weight_decay);
  Rng rng(config.seed);
  // drop_last keeps the pair matrix square and non-degenerate.
  DataLoader loader(&data, Split::kTrain, config.batch_size,
                    /*shuffle=*/true, rng.Fork(), /*drop_last=*/true);
  PretrainResult result;
  const auto t0 = std::chrono::steady_clock::now();
  dual->SetTraining(true);
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (loader.Reset(); loader.HasNext();) {
      Batch batch = loader.Next();
      if (batch.size < 2) continue;  // contrastive loss needs negatives
      optimizer.ZeroGrad();
      Variable loss = SymmetricContrastiveLoss(dual->Logits(batch));
      loss.Backward();
      ClipGradNorm(optimizer.params(), 5.0f);
      optimizer.Step();
      epoch_loss += loss.value().item();
      ++batches;
      ++result.steps;
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    if (epoch == 0) result.first_epoch_loss = mean_loss;
    result.final_loss = mean_loss;
    if (config.verbose) {
      LIPF_LOG(Info) << "pretrain epoch " << epoch << " loss=" << mean_loss
                     << " temperature=" << dual->temperature();
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

CovariateEncoderConfig MakeCovariateConfig(const WindowDataset& data,
                                           int64_t pred_len,
                                           int64_t hidden_dim,
                                           int64_t embed_dim) {
  CovariateEncoderConfig config;
  config.pred_len = pred_len;
  config.num_numeric = data.num_numeric_covariates();
  config.categorical_cardinalities =
      data.covariate_schema().categorical_cardinalities;
  config.embed_dim = embed_dim;
  config.hidden_dim = hidden_dim;
  return config;
}

}  // namespace lipformer
