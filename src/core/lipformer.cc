#include "core/lipformer.h"

#include "core/instance_norm.h"

namespace lipformer {

LiPFormer::LiPFormer(const LiPFormerConfig& config)
    : config_(config), rng_(config.seed) {
  base_ = std::make_unique<BasePredictor>(config.base_config(), rng_);
  RegisterModule("base_predictor", base_.get());
}

void LiPFormer::AttachCovariateEncoder(const CovariateEncoder* encoder) {
  if (encoder != nullptr) {
    LIPF_CHECK_EQ(encoder->config().pred_len, config_.pred_len)
        << "covariate encoder horizon mismatch";
    // The Vector Mapping only exists once weak-label guidance is in use;
    // created on first attach so the base model's parameter count stays
    // honest.
    if (!mapping_initialized_) {
      mapping_initialized_ = true;
      switch (config_.vector_mapping) {
        case VectorMappingKind::kSharedLinearWithGain:
          vector_mapping_ = std::make_unique<Linear>(config_.pred_len,
                                                     config_.pred_len, rng_);
          RegisterModule("vector_mapping", vector_mapping_.get());
          break;
        case VectorMappingKind::kPerChannelLinear:
          vector_mapping_ = std::make_unique<Linear>(
              config_.pred_len, config_.pred_len * config_.channels, rng_);
          RegisterModule("vector_mapping", vector_mapping_.get());
          break;
        case VectorMappingKind::kGainOnly:
          break;
      }
      // Start the weak-label contribution small so the backbone dominates
      // early training.
      channel_gain_ = RegisterParameter(
          "channel_gain",
          Variable(Tensor::Full(Shape{config_.channels}, 0.1f)));
    }
  }
  covariate_encoder_ = encoder;
}

Variable LiPFormer::Forward(const Batch& batch) {
  LIPF_CHECK_EQ(batch.x.dim(), 3);
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  LIPF_CHECK_EQ(t, config_.input_len);
  LIPF_CHECK_EQ(c, config_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);

  // Channel independence: [b, T, c] -> [b*c, T].
  Variable by_channel = Permute(normalized, {0, 2, 1});
  Variable flat = Reshape(by_channel, Shape{b * c, t});

  Variable base = base_->Forward(flat);  // [b*c, L]

  Variable y = Reshape(base, Shape{b, c, config_.pred_len});
  y = Permute(y, {0, 2, 1});  // [b, L, c]

  if (covariate_encoder_ != nullptr) {
    // The encoder is frozen during prediction training: compute V_C off
    // the tape and feed it to the trainable Vector Mapping (Eq. 8).
    Variable vc;
    {
      NoGradGuard no_grad;
      vc = covariate_encoder_->Encode(batch);  // [b, L]
    }
    Variable contribution;
    switch (config_.vector_mapping) {
      case VectorMappingKind::kSharedLinearWithGain: {
        Variable mapped = vector_mapping_->Forward(vc.Detach());  // [b, L]
        contribution = Mul(Reshape(mapped, Shape{b, config_.pred_len, 1}),
                           channel_gain_);
        break;
      }
      case VectorMappingKind::kPerChannelLinear: {
        Variable mapped = vector_mapping_->Forward(vc.Detach());
        contribution = Mul(
            Reshape(mapped, Shape{b, config_.pred_len, config_.channels}),
            channel_gain_);
        break;
      }
      case VectorMappingKind::kGainOnly: {
        contribution = Mul(
            Reshape(vc.Detach(), Shape{b, config_.pred_len, 1}),
            channel_gain_);
        break;
      }
    }
    y = Add(y, contribution);
  }

  return InstanceDenormalize(y, norm_state);
}

LiPFormerPipelineResult TrainLiPFormerPipeline(LiPFormer* model,
                                               DualEncoder* dual,
                                               const WindowDataset& data,
                                               const PretrainConfig& pretrain,
                                               const TrainConfig& train) {
  LiPFormerPipelineResult result;
  result.pretrain = PretrainDualEncoder(dual, data, pretrain);
  dual->SetTraining(false);
  dual->SetRequiresGrad(false);
  model->AttachCovariateEncoder(dual->covariate_encoder());
  result.train = TrainAndEvaluate(model, data, train);
  return result;
}

}  // namespace lipformer
