#ifndef LIPFORMER_CORE_COVARIATE_AUGMENTED_H_
#define LIPFORMER_CORE_COVARIATE_AUGMENTED_H_

#include <memory>
#include <string>

#include "core/covariate_encoder.h"
#include "models/forecaster.h"

namespace lipformer {

// Plug-and-play weak-data enriching (Section IV-E6, Table XII): wraps ANY
// Forecaster and adds the frozen Covariate Encoder's guidance through a
// learnable Vector Mapping, exactly as LiPFormer does:
//   Y_hat = BaseModel(batch) + Map(V_C).
// The wrapper owns the base model; the encoder is borrowed (pre-trained
// and frozen by the caller).
class CovariateAugmentedForecaster : public Forecaster {
 public:
  CovariateAugmentedForecaster(std::unique_ptr<Forecaster> base,
                               const CovariateEncoder* encoder,
                               uint64_t seed = 77);

  Variable Forward(const Batch& batch) override;

  std::string name() const override {
    return base_->name() + "+CovariateEncoder";
  }
  int64_t input_len() const override { return base_->input_len(); }
  int64_t pred_len() const override { return base_->pred_len(); }
  int64_t channels() const override { return base_->channels(); }

  Forecaster* base() { return base_.get(); }

 private:
  std::unique_ptr<Forecaster> base_;
  const CovariateEncoder* encoder_;
  std::unique_ptr<Linear> vector_mapping_;
  Variable channel_gain_;
};

}  // namespace lipformer

#endif  // LIPFORMER_CORE_COVARIATE_AUGMENTED_H_
