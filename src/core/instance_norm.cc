#include "core/instance_norm.h"

namespace lipformer {

std::pair<Variable, InstanceNormState> InstanceNormalize(const Variable& x) {
  LIPF_CHECK_EQ(x.dim(), 3);
  const int64_t t = x.size(1);
  InstanceNormState state;
  state.last_values = Slice(x, 1, t - 1, t);  // [b, 1, c]
  // Row-wise fused broadcast over the time dim instead of the generic
  // odometer path of Sub.
  Variable normalized = SubBroadcastMid(x, state.last_values);
  return {normalized, state};
}

Variable InstanceDenormalize(const Variable& prediction,
                             const InstanceNormState& state) {
  LIPF_CHECK_EQ(prediction.dim(), 3);
  return AddBroadcastMid(prediction, state.last_values);
}

}  // namespace lipformer
