#include "core/covariate_encoder.h"

namespace lipformer {

namespace {

int64_t PickHeads(int64_t dim, int64_t requested) {
  return dim % requested == 0 ? requested : 1;
}

}  // namespace

CovariateEncoder::CovariateEncoder(const CovariateEncoderConfig& config,
                                   Rng& rng)
    : config_(config) {
  LIPF_CHECK_GT(config.pred_len, 0);
  LIPF_CHECK_GT(config.concat_channels(), 0)
      << "covariate encoder needs at least one covariate";
  for (int64_t card : config.categorical_cardinalities) {
    embeddings_.push_back(
        std::make_unique<Embedding>(card, config.embed_dim, rng));
    RegisterModule(
        "embed" + std::to_string(embeddings_.size() - 1),
        embeddings_.back().get());
  }
  input_proj_ = std::make_unique<Linear>(config.concat_channels(),
                                         config.hidden_dim, rng);
  RegisterModule("input_proj", input_proj_.get());
  attention_ = std::make_unique<MultiHeadSelfAttention>(
      config.hidden_dim, PickHeads(config.hidden_dim, config.num_heads), rng);
  RegisterModule("attention", attention_.get());
  output_proj_ = std::make_unique<Linear>(
      config.pred_len * config.hidden_dim, config.pred_len, rng);
  RegisterModule("output_proj", output_proj_.get());
}

Variable CovariateEncoder::Encode(const Tensor& cov_num,
                                  const Tensor& cov_cat) const {
  LIPF_CHECK_EQ(cov_num.dim(), 3);
  LIPF_CHECK_EQ(cov_cat.dim(), 3);
  const int64_t b = cov_num.size(0);
  const int64_t l = cov_num.size(1);
  LIPF_CHECK_EQ(l, config_.pred_len);
  LIPF_CHECK_EQ(cov_num.size(2), config_.num_numeric);
  LIPF_CHECK_EQ(cov_cat.size(2), config_.num_categorical());

  // Eq. 3: Concat(Embed(textual), numeric).
  std::vector<Variable> parts;
  if (config_.num_numeric > 0) {
    parts.push_back(Variable(cov_num));
  }
  for (int64_t k = 0; k < config_.num_categorical(); ++k) {
    Tensor ids = Slice(cov_cat, 2, k, k + 1).Reshape(Shape{b, l});
    parts.push_back(embeddings_[static_cast<size_t>(k)]->Forward(ids));
  }
  Variable concat = parts.size() == 1 ? parts[0] : Concat(parts, 2);
  return EncodeConcat(concat);
}

Variable CovariateEncoder::Encode(const Batch& batch) const {
  return Encode(batch.y_cov_num, batch.y_cov_cat);
}

Variable CovariateEncoder::EncodeConcat(const Variable& concat) const {
  const int64_t b = concat.size(0);
  // Eq. 4: channel projection to hd.
  Variable h = input_proj_->Forward(concat);  // [b, L, hd]
  // Eq. 5: residual self-attention over the horizon, then flatten.
  Variable attended = Add(attention_->Forward(h), h);
  Variable flat = Reshape(attended,
                          Shape{b, config_.pred_len * config_.hidden_dim});
  // Eq. 6: projection to the length-L representation vector.
  return output_proj_->Forward(flat);
}

TargetEncoder::TargetEncoder(int64_t pred_len, int64_t channels,
                             int64_t hidden_dim, int64_t num_heads, Rng& rng)
    : pred_len_(pred_len), channels_(channels), hidden_dim_(hidden_dim) {
  input_proj_ = std::make_unique<Linear>(channels, hidden_dim, rng);
  RegisterModule("input_proj", input_proj_.get());
  attention_ = std::make_unique<MultiHeadSelfAttention>(
      hidden_dim, PickHeads(hidden_dim, num_heads), rng);
  RegisterModule("attention", attention_.get());
  output_proj_ = std::make_unique<Linear>(pred_len * hidden_dim, pred_len,
                                          rng);
  RegisterModule("output_proj", output_proj_.get());
}

Variable TargetEncoder::Encode(const Tensor& y) const {
  LIPF_CHECK_EQ(y.dim(), 3);
  const int64_t b = y.size(0);
  LIPF_CHECK_EQ(y.size(1), pred_len_);
  LIPF_CHECK_EQ(y.size(2), channels_);
  // Eq. 7: F_MLP = MLP(Y).
  Variable h = input_proj_->Forward(Variable(y));
  Variable attended = Add(attention_->Forward(h), h);
  Variable flat = Reshape(attended, Shape{b, pred_len_ * hidden_dim_});
  return output_proj_->Forward(flat);
}

}  // namespace lipformer
