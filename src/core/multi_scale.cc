#include "core/multi_scale.h"

#include "core/instance_norm.h"
#include "tensor/ops.h"

namespace lipformer {

MultiScaleLiPFormer::MultiScaleLiPFormer(const MultiScaleConfig& config)
    : config_(config) {
  LIPF_CHECK(!config.patch_lens.empty());
  Rng rng(config.seed);
  for (size_t i = 0; i < config.patch_lens.size(); ++i) {
    const int64_t pl = config.patch_lens[i];
    LIPF_CHECK_EQ(config.input_len % pl, 0)
        << "patch length " << pl << " must divide input length";
    BasePredictorConfig base;
    base.input_len = config.input_len;
    base.pred_len = config.pred_len;
    base.patch_len = pl;
    base.hidden_dim = config.hidden_dim;
    base.num_heads = config.num_heads;
    base.dropout = config.dropout;
    scales_.push_back(std::make_unique<BasePredictor>(base, rng));
    RegisterModule("scale" + std::to_string(pl), scales_.back().get());
  }
  scale_logits_ = RegisterParameter(
      "scale_logits",
      Variable(Tensor::Zeros(
          {static_cast<int64_t>(config.patch_lens.size())})));
}

Variable MultiScaleLiPFormer::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  LIPF_CHECK_EQ(t, config_.input_len);
  LIPF_CHECK_EQ(c, config_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);
  Variable flat = Reshape(Permute(normalized, {0, 2, 1}), Shape{b * c, t});

  Variable weights = Softmax(scale_logits_, 0);  // [#scales]
  Variable blended;
  for (size_t i = 0; i < scales_.size(); ++i) {
    Variable pred = scales_[i]->Forward(flat);  // [b*c, L]
    Variable w = Slice(weights, 0, static_cast<int64_t>(i),
                       static_cast<int64_t>(i) + 1);  // [1], broadcasts
    Variable term = Mul(pred, w);
    blended = i == 0 ? term : Add(blended, term);
  }

  Variable y = Permute(Reshape(blended, Shape{b, c, config_.pred_len}),
                       {0, 2, 1});
  return InstanceDenormalize(y, norm_state);
}

std::vector<float> MultiScaleLiPFormer::ScaleWeights() const {
  Tensor w = Softmax(scale_logits_.value(), 0);
  return std::vector<float>(w.data(), w.data() + w.numel());
}

}  // namespace lipformer
