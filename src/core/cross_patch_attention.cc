#include "core/cross_patch_attention.h"

#include "core/patching.h"

namespace lipformer {

CrossPatchAttention::CrossPatchAttention(int64_t num_patches,
                                         int64_t patch_len,
                                         int64_t hidden_dim, Rng& rng,
                                         float dropout, bool enabled)
    : num_patches_(num_patches),
      patch_len_(patch_len),
      hidden_dim_(hidden_dim),
      enabled_(enabled) {
  if (enabled_) {
    // Trend sequences have length n (= num_patches), usually small, so a
    // single head keeps the head dimension meaningful.
    trend_attention_ = std::make_unique<MultiHeadSelfAttention>(
        num_patches, /*num_heads=*/1, rng);
    RegisterModule("trend_attention", trend_attention_.get());
  }
  mixer_ = std::make_unique<Linear>(patch_len, hidden_dim, rng);
  RegisterModule("mixer", mixer_.get());
  if (dropout > 0.0f) {
    dropout_ = std::make_unique<Dropout>(dropout, rng);
    RegisterModule("dropout", dropout_.get());
  }
}

Variable CrossPatchAttention::Forward(const Variable& patches) const {
  LIPF_CHECK_EQ(patches.dim(), 3);
  LIPF_CHECK_EQ(patches.size(1), num_patches_);
  LIPF_CHECK_EQ(patches.size(2), patch_len_);

  Variable mixed = patches;
  if (enabled_) {
    // [B, n, pl] -> trend view [B, pl, n]; attend across the pl trends.
    Variable trends = TrendSequences(patches);
    Variable attended = trend_attention_->Forward(trends);
    // Back to patch-major layout and residual with the raw patches (Eq. 1).
    Variable back = Transpose(attended, 1, 2);
    mixed = Add(back, patches);
  }
  Variable out = mixer_->Forward(mixed);
  if (dropout_) out = dropout_->Forward(out);
  return out;
}

}  // namespace lipformer
