#ifndef LIPFORMER_CORE_BASE_PREDICTOR_H_
#define LIPFORMER_CORE_BASE_PREDICTOR_H_

#include <memory>

#include "core/cross_patch_attention.h"
#include "core/inter_patch_attention.h"
#include "nn/module.h"

namespace lipformer {

// Configuration of the lightweight backbone and its ablation switches.
struct BasePredictorConfig {
  int64_t input_len = 336;
  int64_t pred_len = 96;
  int64_t patch_len = 48;
  int64_t hidden_dim = 64;
  int64_t num_heads = 4;
  float dropout = 0.1f;

  // Ablations (paper defaults: both attentions on, LN and FFN off).
  bool use_cross_patch = true;
  bool use_inter_patch = true;
  bool use_layer_norm = false;  // Table X "+LN"
  bool use_ffn = false;         // Table X "+FFNs"

  int64_t num_patches() const { return input_len / patch_len; }
  int64_t num_target_patches() const {
    return (pred_len + patch_len - 1) / patch_len;
  }
};

// The Base Predictor backbone (Figure 4): channel-independent sequences are
// patched, passed through Cross-Patch and Inter-Patch attention, and mapped
// to the horizon by two single-layer MLPs replacing the Transformer FFN:
//   [B, n, hd] -> (transpose) [B, hd, n] -> Linear(n->nt)
//   -> (transpose) [B, nt, hd] -> Linear(hd->pl) -> flatten [B, nt*pl]
// matching the paper's shape chain R^{b.c x n x hd} -> R^{b.c x hd x nt}
// -> R^{b x L x c}; the nt*pl tail is cut to pred_len when pl does not
// divide L.
class BasePredictor : public Module {
 public:
  BasePredictor(const BasePredictorConfig& config, Rng& rng);

  // x: [B, input_len] (B = batch * channels) -> [B, pred_len].
  Variable Forward(const Variable& x) const;

  const BasePredictorConfig& config() const { return config_; }

 private:
  BasePredictorConfig config_;
  std::unique_ptr<CrossPatchAttention> cross_patch_;
  std::unique_ptr<InterPatchAttention> inter_patch_;
  std::unique_ptr<Linear> patch_head_;   // n -> nt
  std::unique_ptr<Linear> within_head_;  // hd -> pl
};

}  // namespace lipformer

#endif  // LIPFORMER_CORE_BASE_PREDICTOR_H_
