#include "core/inter_patch_attention.h"

namespace lipformer {

InterPatchAttention::InterPatchAttention(int64_t hidden_dim,
                                         int64_t num_heads, Rng& rng,
                                         float dropout, bool enabled,
                                         bool use_layer_norm, bool use_ffn)
    : hidden_dim_(hidden_dim), enabled_(enabled) {
  if (enabled_) {
    attention_ = std::make_unique<MultiHeadSelfAttention>(hidden_dim,
                                                          num_heads, rng);
    RegisterModule("attention", attention_.get());
  } else {
    linear_replacement_ = std::make_unique<Linear>(hidden_dim, hidden_dim,
                                                   rng);
    RegisterModule("linear_replacement", linear_replacement_.get());
  }
  if (dropout > 0.0f) {
    dropout_ = std::make_unique<Dropout>(dropout, rng);
    RegisterModule("dropout", dropout_.get());
  }
  if (use_layer_norm) {
    layer_norm_ = std::make_unique<LayerNorm>(hidden_dim, rng);
    RegisterModule("layer_norm", layer_norm_.get());
  }
  if (use_ffn) {
    // The classical 2-layer ascending/descending FFN the paper eliminates;
    // kept only for the +FFNs ablation.
    ffn_up_ = std::make_unique<Linear>(hidden_dim, 4 * hidden_dim, rng);
    ffn_down_ = std::make_unique<Linear>(4 * hidden_dim, hidden_dim, rng);
    RegisterModule("ffn_up", ffn_up_.get());
    RegisterModule("ffn_down", ffn_down_.get());
    if (use_layer_norm) {
      ffn_norm_ = std::make_unique<LayerNorm>(hidden_dim, rng);
      RegisterModule("ffn_norm", ffn_norm_.get());
    }
  }
}

Variable InterPatchAttention::Forward(const Variable& tokens) const {
  LIPF_CHECK_EQ(tokens.dim(), 3);
  LIPF_CHECK_EQ(tokens.size(2), hidden_dim_);

  Variable out;
  if (enabled_) {
    out = Add(attention_->Forward(tokens), tokens);
  } else {
    out = Add(linear_replacement_->Forward(tokens), tokens);
  }
  if (dropout_) out = dropout_->Forward(out);
  if (layer_norm_) out = layer_norm_->Forward(out);
  if (ffn_up_) {
    Variable ffn = ffn_down_->Forward(ffn_up_->Forward(out, Activation::kRelu));
    out = Add(out, ffn);
    if (ffn_norm_) out = ffn_norm_->Forward(out);
  }
  return out;
}

}  // namespace lipformer
