#ifndef LIPFORMER_CORE_INTER_PATCH_ATTENTION_H_
#define LIPFORMER_CORE_INTER_PATCH_ATTENTION_H_

#include <memory>

#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace lipformer {

// Inter-Patch attention (Section III-C1, Figure 3, Eq. 2): vanilla
// self-attention across the n patch tokens of dimension hd, with NO
// positional encoding (order information is already carried by the
// Cross-Patch trends) and, in the default LiPFormer configuration, NO
// LayerNorm and NO FFN. The `use_layer_norm` / `use_ffn` switches implement
// the Table X ablations; `enabled=false` replaces attention with a linear
// layer (Table XI, "Without Inter-Patch attn.").
class InterPatchAttention : public Module {
 public:
  InterPatchAttention(int64_t hidden_dim, int64_t num_heads, Rng& rng,
                      float dropout = 0.0f, bool enabled = true,
                      bool use_layer_norm = false, bool use_ffn = false);

  // tokens: [B, n, hd] -> [B, n, hd].
  Variable Forward(const Variable& tokens) const;

  bool enabled() const { return enabled_; }

 private:
  int64_t hidden_dim_;
  bool enabled_;
  std::unique_ptr<MultiHeadSelfAttention> attention_;
  std::unique_ptr<Linear> linear_replacement_;  // ablation path
  std::unique_ptr<Dropout> dropout_;
  // Ablation-only components (heavyweight parts the paper removes).
  std::unique_ptr<LayerNorm> layer_norm_;
  std::unique_ptr<Linear> ffn_up_;
  std::unique_ptr<Linear> ffn_down_;
  std::unique_ptr<LayerNorm> ffn_norm_;
};

}  // namespace lipformer

#endif  // LIPFORMER_CORE_INTER_PATCH_ATTENTION_H_
