#ifndef LIPFORMER_CORE_MULTI_SCALE_H_
#define LIPFORMER_CORE_MULTI_SCALE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/base_predictor.h"
#include "models/forecaster.h"

namespace lipformer {

// Extension beyond the paper: Section III-C1 motivates Cross-Patch
// attention with the observation that a single fixed patch length cannot
// match every dataset's periodicity. MultiScaleLiPFormer takes that thread
// further: several Base Predictors run in parallel with different patch
// lengths and their forecasts are blended by learnable softmax weights, so
// the model *learns* which temporal scale the dataset favors. Table VIII's
// patch-length sweep becomes a single model.
struct MultiScaleConfig {
  int64_t input_len = 96;
  int64_t pred_len = 96;
  int64_t channels = 7;
  // Every entry must divide input_len.
  std::vector<int64_t> patch_lens = {12, 24, 48};
  int64_t hidden_dim = 64;
  int64_t num_heads = 4;
  float dropout = 0.1f;
  uint64_t seed = 1;
};

class MultiScaleLiPFormer : public Forecaster {
 public:
  explicit MultiScaleLiPFormer(const MultiScaleConfig& config);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "LiPFormer-MS"; }
  int64_t input_len() const override { return config_.input_len; }
  int64_t pred_len() const override { return config_.pred_len; }
  int64_t channels() const override { return config_.channels; }

  // Softmax blend weights over the patch scales (diagnostics; which scale
  // the model learned to trust).
  std::vector<float> ScaleWeights() const;

 private:
  MultiScaleConfig config_;
  std::vector<std::unique_ptr<BasePredictor>> scales_;
  Variable scale_logits_;  // [#scales]
};

}  // namespace lipformer

#endif  // LIPFORMER_CORE_MULTI_SCALE_H_
