#ifndef LIPFORMER_COMMON_LOGGING_H_
#define LIPFORMER_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Lightweight CHECK/LOG facility in the spirit of glog. Internal invariant
// violations (shape mismatches, out-of-range indices) abort with a message;
// recoverable conditions (I/O, configuration) use Status instead.

namespace lipformer {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

namespace internal {

// Accumulates a message and emits it (aborting for kFatal) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Used for CHECK failure messages; always fatal.
class CheckFailure {
 public:
  CheckFailure(const char* expr, const char* file, int line);
  [[noreturn]] ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define LIPF_LOG(level)                                                   \
  ::lipformer::internal::LogMessage(::lipformer::LogLevel::k##level,      \
                                    __FILE__, __LINE__)                   \
      .stream()

#define LIPF_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::lipformer::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

#define LIPF_CHECK_OP(a, b, op)                                           \
  LIPF_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define LIPF_CHECK_EQ(a, b) LIPF_CHECK_OP(a, b, ==)
#define LIPF_CHECK_NE(a, b) LIPF_CHECK_OP(a, b, !=)
#define LIPF_CHECK_LT(a, b) LIPF_CHECK_OP(a, b, <)
#define LIPF_CHECK_LE(a, b) LIPF_CHECK_OP(a, b, <=)
#define LIPF_CHECK_GT(a, b) LIPF_CHECK_OP(a, b, >)
#define LIPF_CHECK_GE(a, b) LIPF_CHECK_OP(a, b, >=)

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_LOGGING_H_
