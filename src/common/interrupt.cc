#include "common/interrupt.h"

#include <csignal>

namespace lipformer {

namespace {

// Written from signal context: must be a lock-free sig_atomic-compatible
// type with no constructor side effects.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleSignal(int /*signum*/) { g_interrupted = 1; }

}  // namespace

void InstallInterruptHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  // One-shot: a second SIGINT/SIGTERM falls through to the default
  // disposition and kills the process.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool InterruptRequested() { return g_interrupted != 0; }

void RequestInterrupt() { g_interrupted = 1; }

void ClearInterrupt() { g_interrupted = 0; }

}  // namespace lipformer
