#include "common/interrupt.h"

#include <csignal>

namespace lipformer {

namespace {

// Written from signal context: must be a lock-free sig_atomic-compatible
// type with no constructor side effects.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleSignal(int /*signum*/) { g_interrupted = 1; }

volatile std::sig_atomic_t g_stats_requested = 0;

void HandleStatsSignal(int /*signum*/) { g_stats_requested = 1; }

}  // namespace

void InstallInterruptHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  // One-shot: a second SIGINT/SIGTERM falls through to the default
  // disposition and kills the process.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void InstallStatsRequestHandler() {
  struct sigaction action = {};
  action.sa_handler = HandleStatsSignal;
  sigemptyset(&action.sa_mask);
  // Persistent and restarting: a status poke must neither uninstall
  // itself nor make the server's blocking stdin read fail with EINTR.
  action.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &action, nullptr);
}

void IgnoreSigPipe() {
  struct sigaction action = {};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
}

bool ConsumeStatsRequest() {
  if (g_stats_requested == 0) return false;
  g_stats_requested = 0;
  return true;
}

void RequestStats() { g_stats_requested = 1; }

bool InterruptRequested() { return g_interrupted != 0; }

void RequestInterrupt() { g_interrupted = 1; }

void ClearInterrupt() { g_interrupted = 0; }

}  // namespace lipformer
