#include "common/fault_injection.h"

#include <cstdlib>
#include <mutex>

#include "common/interrupt.h"
#include "common/logging.h"

namespace lipformer {
namespace fault {

namespace {

// All armed points; guarded by Mu(). -1 / SIZE_MAX mean "disarmed".
struct FaultState {
  int64_t kill_after_step = -1;
  int64_t interrupt_after_step = -1;
  int64_t poison_grad_at_step = -1;
  int64_t poison_grad_steps = 1;
  size_t write_budget = SIZE_MAX;
  size_t bytes_written = 0;
  bool env_checked = false;
};

FaultState& State() {
  static FaultState state;
  return state;
}

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

void ArmLocked(const std::string& spec) {
  FaultState& st = State();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string directive = spec.substr(pos, end - pos);
    pos = end + 1;
    if (directive.empty()) continue;
    const size_t eq = directive.find('=');
    LIPF_CHECK(eq != std::string::npos)
        << "malformed fault directive '" << directive << "' (want key=value)";
    const std::string key = directive.substr(0, eq);
    const std::string value = directive.substr(eq + 1);
    char* parse_end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &parse_end, 10);
    LIPF_CHECK(parse_end != value.c_str() && *parse_end == '\0' && parsed >= 0)
        << "fault directive '" << directive
        << "' needs a non-negative integer value";
    if (key == "kill_after_step") {
      st.kill_after_step = parsed;
    } else if (key == "interrupt_after_step") {
      st.interrupt_after_step = parsed;
    } else if (key == "poison_grad_at_step") {
      st.poison_grad_at_step = parsed;
    } else if (key == "poison_grad_steps") {
      st.poison_grad_steps = parsed;
    } else if (key == "fail_write_after_bytes") {
      st.write_budget = static_cast<size_t>(parsed);
      st.bytes_written = 0;
    } else {
      LIPF_CHECK(false) << "unknown fault injection point '" << key << "'";
    }
  }
}

void EnsureEnvArmedLocked() {
  FaultState& st = State();
  if (st.env_checked) return;
  st.env_checked = true;
  const char* spec = std::getenv("LIPF_FAULT");
  if (spec != nullptr && spec[0] != '\0') {
    LIPF_LOG(Warning) << "fault injection armed from LIPF_FAULT: " << spec;
    ArmLocked(spec);
  }
}

}  // namespace

void Arm(const std::string& spec) {
  std::lock_guard<std::mutex> lock(Mu());
  State().env_checked = true;  // explicit arming overrides the environment
  ArmLocked(spec);
}

void ArmFromEnv() {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
}

void Disarm() {
  std::lock_guard<std::mutex> lock(Mu());
  State() = FaultState();
  State().env_checked = true;
}

void OnOptimizerStep(int64_t step) {
  int64_t kill = -1;
  int64_t interrupt = -1;
  {
    std::lock_guard<std::mutex> lock(Mu());
    EnsureEnvArmedLocked();
    kill = State().kill_after_step;
    interrupt = State().interrupt_after_step;
  }
  if (kill >= 0 && step == kill) {
    LIPF_LOG(Warning) << "fault injection: hard kill after step " << step;
    std::_Exit(137);
  }
  if (interrupt >= 0 && step == interrupt) {
    LIPF_LOG(Warning) << "fault injection: graceful interrupt after step "
                      << step;
    RequestInterrupt();
  }
}

bool ShouldPoisonGrad(int64_t step) {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  const FaultState& st = State();
  if (st.poison_grad_at_step < 0) return false;
  return step >= st.poison_grad_at_step &&
         step < st.poison_grad_at_step + st.poison_grad_steps;
}

bool ConsumeWriteBudget(size_t n, size_t* allowed) {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  FaultState& st = State();
  *allowed = n;
  if (st.write_budget == SIZE_MAX) return false;
  const size_t remaining = st.write_budget > st.bytes_written
                               ? st.write_budget - st.bytes_written
                               : 0;
  if (n <= remaining) {
    st.bytes_written += n;
    return false;
  }
  st.bytes_written += remaining;
  *allowed = remaining;
  return true;
}

}  // namespace fault
}  // namespace lipformer
