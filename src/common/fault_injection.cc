#include "common/fault_injection.h"

#include <cstdlib>
#include <mutex>

#include "common/interrupt.h"
#include "common/logging.h"

namespace lipformer {
namespace fault {

namespace {

// All armed points; guarded by Mu(). -1 / SIZE_MAX mean "disarmed".
struct FaultState {
  int64_t kill_after_step = -1;
  int64_t interrupt_after_step = -1;
  int64_t poison_grad_at_step = -1;
  int64_t poison_grad_steps = 1;
  size_t write_budget = SIZE_MAX;
  size_t bytes_written = 0;
  // Serving-path points. The *_at indices are 1-based and count calls
  // since the spec was armed (infer_calls / open_calls reset on arm).
  int64_t slow_infer_ms = 0;
  int64_t slow_infer_at = 1;
  int64_t slow_infer_count = -1;  // -1 = every call from slow_infer_at on
  int64_t poison_output_at = -1;
  int64_t poison_output_count = 1;
  int64_t fail_open_at = -1;
  int64_t fail_open_count = 1;
  int64_t watcher_stall_ms = 0;
  int64_t infer_calls = 0;
  int64_t open_calls = 0;
  bool env_checked = false;
};

FaultState& State() {
  static FaultState state;
  return state;
}

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

// Parses `spec` into *st. Returns false + *error on the first malformed
// or unknown directive without touching the live state (the caller arms
// all-or-nothing).
bool ParseSpec(const std::string& spec, FaultState* st, std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string directive = spec.substr(pos, end - pos);
    pos = end + 1;
    if (directive.empty()) continue;
    const size_t eq = directive.find('=');
    if (eq == std::string::npos) {
      *error = "malformed fault directive '" + directive + "' (want key=value)";
      return false;
    }
    const std::string key = directive.substr(0, eq);
    const std::string value = directive.substr(eq + 1);
    char* parse_end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &parse_end, 10);
    if (parse_end == value.c_str() || *parse_end != '\0' || parsed < 0) {
      *error = "fault directive '" + directive +
               "' needs a non-negative integer value";
      return false;
    }
    if (key == "kill_after_step") {
      st->kill_after_step = parsed;
    } else if (key == "interrupt_after_step") {
      st->interrupt_after_step = parsed;
    } else if (key == "poison_grad_at_step") {
      st->poison_grad_at_step = parsed;
    } else if (key == "poison_grad_steps") {
      st->poison_grad_steps = parsed;
    } else if (key == "fail_write_after_bytes") {
      st->write_budget = static_cast<size_t>(parsed);
      st->bytes_written = 0;
    } else if (key == "slow_infer_ms") {
      st->slow_infer_ms = parsed;
    } else if (key == "slow_infer_at") {
      st->slow_infer_at = parsed;
    } else if (key == "slow_infer_count") {
      st->slow_infer_count = parsed;
    } else if (key == "poison_output_at") {
      st->poison_output_at = parsed;
    } else if (key == "poison_output_count") {
      st->poison_output_count = parsed;
    } else if (key == "fail_open_at") {
      st->fail_open_at = parsed;
    } else if (key == "fail_open_count") {
      st->fail_open_count = parsed;
    } else if (key == "watcher_stall_ms") {
      st->watcher_stall_ms = parsed;
    } else {
      *error = "unknown fault injection point '" + key + "'";
      return false;
    }
  }
  return true;
}

bool TryArmLocked(const std::string& spec, std::string* error) {
  // Parse into a scratch copy first: a spec that fails halfway must not
  // leave the earlier directives armed.
  FaultState parsed = State();
  if (!ParseSpec(spec, &parsed, error)) return false;
  // Serving call indices are relative to the arming point, so the K-th
  // "call" in a spec is deterministic no matter how many probes, plan
  // validations, or earlier test phases already ran in this process.
  parsed.infer_calls = 0;
  parsed.open_calls = 0;
  State() = parsed;
  return true;
}

void EnsureEnvArmedLocked() {
  FaultState& st = State();
  if (st.env_checked) return;
  st.env_checked = true;
  const char* spec = std::getenv("LIPF_FAULT");
  if (spec != nullptr && spec[0] != '\0') {
    LIPF_LOG(Warning) << "fault injection armed from LIPF_FAULT: " << spec;
    std::string error;
    LIPF_CHECK(TryArmLocked(spec, &error)) << error;
  }
}

}  // namespace

void Arm(const std::string& spec) {
  std::lock_guard<std::mutex> lock(Mu());
  State().env_checked = true;  // explicit arming overrides the environment
  std::string error;
  // Unknown points or malformed values abort: a typo in a fault spec must
  // never read as "the fault did not fire".
  LIPF_CHECK(TryArmLocked(spec, &error)) << error;
}

bool TryArm(const std::string& spec, std::string* error) {
  std::lock_guard<std::mutex> lock(Mu());
  State().env_checked = true;
  return TryArmLocked(spec, error);
}

void ArmFromEnv() {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
}

void Disarm() {
  std::lock_guard<std::mutex> lock(Mu());
  State() = FaultState();
  State().env_checked = true;
}

void OnOptimizerStep(int64_t step) {
  int64_t kill = -1;
  int64_t interrupt = -1;
  {
    std::lock_guard<std::mutex> lock(Mu());
    EnsureEnvArmedLocked();
    kill = State().kill_after_step;
    interrupt = State().interrupt_after_step;
  }
  if (kill >= 0 && step == kill) {
    LIPF_LOG(Warning) << "fault injection: hard kill after step " << step;
    std::_Exit(137);
  }
  if (interrupt >= 0 && step == interrupt) {
    LIPF_LOG(Warning) << "fault injection: graceful interrupt after step "
                      << step;
    RequestInterrupt();
  }
}

bool ShouldPoisonGrad(int64_t step) {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  const FaultState& st = State();
  if (st.poison_grad_at_step < 0) return false;
  return step >= st.poison_grad_at_step &&
         step < st.poison_grad_at_step + st.poison_grad_steps;
}

bool ConsumeWriteBudget(size_t n, size_t* allowed) {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  FaultState& st = State();
  *allowed = n;
  if (st.write_budget == SIZE_MAX) return false;
  const size_t remaining = st.write_budget > st.bytes_written
                               ? st.write_budget - st.bytes_written
                               : 0;
  if (n <= remaining) {
    st.bytes_written += n;
    return false;
  }
  st.bytes_written += remaining;
  *allowed = remaining;
  return true;
}

InferFault OnInferCall() {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  FaultState& st = State();
  InferFault f;
  if (st.slow_infer_ms <= 0 && st.poison_output_at < 0) return f;
  const int64_t call = ++st.infer_calls;
  if (st.slow_infer_ms > 0 && call >= st.slow_infer_at &&
      (st.slow_infer_count < 0 ||
       call < st.slow_infer_at + st.slow_infer_count)) {
    f.delay_ms = st.slow_infer_ms;
  }
  if (st.poison_output_at >= 0 && call >= st.poison_output_at &&
      call < st.poison_output_at + st.poison_output_count) {
    f.poison_output = true;
  }
  return f;
}

bool ShouldFailOpen() {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  FaultState& st = State();
  if (st.fail_open_at < 0) return false;
  const int64_t call = ++st.open_calls;
  return call >= st.fail_open_at && call < st.fail_open_at + st.fail_open_count;
}

int64_t WatcherStallMs() {
  std::lock_guard<std::mutex> lock(Mu());
  EnsureEnvArmedLocked();
  return State().watcher_stall_ms;
}

}  // namespace fault
}  // namespace lipformer
