#ifndef LIPFORMER_COMMON_FAULT_INJECTION_H_
#define LIPFORMER_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

// Deterministic fault injection for crash-safety and chaos tests.
// Injection points are disarmed (and cost one branch on a cold flag)
// unless armed either programmatically (unit tests) or through the
// LIPF_FAULT environment variable (scripts/check_crash_resume.sh,
// scripts/check_chaos.sh), whose value is a comma-separated list of
// `point=value` directives.
//
// Training-path directives (step counters are process-wide and
// monotonic: a trainer resumed after a rollback re-runs batches under
// fresh step indices, so a poison window never re-fires):
//
//   kill_after_step=K        _Exit(137) immediately after the K-th
//                            optimizer step commits (1-based), simulating
//                            SIGKILL / power loss mid-training.
//   interrupt_after_step=K   request a graceful interrupt (the same flag
//                            the SIGINT/SIGTERM handlers set) after the
//                            K-th optimizer step; the trainer then
//                            snapshots and exits cleanly.
//   poison_grad_at_step=K    overwrite one gradient value with NaN before
//                            the K-th step commits, exercising the
//                            non-finite guard. With poison_grad_steps=N
//                            (default 1) steps K..K+N-1 are all poisoned.
//   fail_write_after_bytes=N every AtomicFile write past a cumulative
//                            budget of N bytes is truncated and fails
//                            with IOError, simulating a crash mid-write.
//
// Serving-path directives (call counters are 1-based and reset every
// time Arm/TryArm succeeds, so "call K" means the K-th call after
// arming, independent of what ran earlier in the process):
//
//   slow_infer_ms=M          every targeted PredictBatch sleeps M ms
//                            before computing — a straggler/overload
//                            fault. With slow_infer_at=K (default 1) and
//                            slow_infer_count=N (default: all remaining)
//                            only batched-forward calls K..K+N-1 stall.
//   poison_output_at=K       overwrite the K-th batched forward's output
//                            with NaN after computing, simulating a
//                            numerically-broken model. poison_output_count=N
//                            (default 1) poisons calls K..K+N-1.
//   fail_open_at=K           the K-th InferenceSession::Open after arming
//                            fails with an injected IOError;
//                            fail_open_count=N (default 1) fails opens
//                            K..K+N-1 — a bad/unreadable publish.
//   watcher_stall_ms=M       every hot-reload watcher poll sleeps M ms
//                            before scanning, simulating a stalled
//                            watcher (slow disk, cgroup throttling).

namespace lipformer {
namespace fault {

// Parses `spec` and arms the listed points. Unknown points or malformed
// values abort via LIPF_CHECK — a typo in a fault spec must never read as
// "the fault did not fire".
void Arm(const std::string& spec);

// Non-aborting variant for spec validation: returns false and fills
// *error on a malformed or unknown directive, leaving every fault point
// disarmed (a half-valid spec never half-arms). On success behaves like
// Arm, including the serving-call-counter reset.
bool TryArm(const std::string& spec, std::string* error);

// Arms from the LIPF_FAULT environment variable if set. Called lazily by
// every query below; calling it explicitly is never required.
void ArmFromEnv();

// Disarms everything and resets all counters (unit-test teardown).
void Disarm();

// Called by the trainer after optimizer step `step` (1-based, global)
// commits. May _Exit(137) (kill_after_step) or request a graceful
// interrupt via common/interrupt.h (interrupt_after_step).
void OnOptimizerStep(int64_t step);

// True when step `step` (1-based, global) falls inside an armed poison
// window; the trainer then writes NaN into a gradient before stepping.
bool ShouldPoisonGrad(int64_t step);

// Accounts `n` bytes against the armed write budget. Returns false with
// *allowed == n when the write may proceed in full; returns true when the
// budget is exhausted mid-write, with *allowed set to the bytes that may
// still be written before the injected failure (possibly 0).
bool ConsumeWriteBudget(size_t n, size_t* allowed);

// What InferenceSession::PredictBatch must inject on this call, if
// anything. Each call to this function advances the (armed) serving
// forward-call counter.
struct InferFault {
  int64_t delay_ms = 0;        // sleep this long before computing
  bool poison_output = false;  // overwrite the result with NaN after
};
InferFault OnInferCall();

// True when this InferenceSession::Open call must fail with an injected
// IOError. Advances the (armed) open-call counter.
bool ShouldFailOpen();

// Milliseconds the hot-reload watcher must stall before this poll
// (0 = disarmed).
int64_t WatcherStallMs();

}  // namespace fault
}  // namespace lipformer

#endif  // LIPFORMER_COMMON_FAULT_INJECTION_H_
