#ifndef LIPFORMER_COMMON_FAULT_INJECTION_H_
#define LIPFORMER_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

// Deterministic fault injection for crash-safety tests. Injection points
// are disarmed (and cost one branch on a cold flag) unless armed either
// programmatically (unit tests) or through the LIPF_FAULT environment
// variable (scripts/check_crash_resume.sh), whose value is a
// comma-separated list of `point=value` directives:
//
//   kill_after_step=K        _Exit(137) immediately after the K-th
//                            optimizer step commits (1-based), simulating
//                            SIGKILL / power loss mid-training.
//   interrupt_after_step=K   request a graceful interrupt (the same flag
//                            the SIGINT/SIGTERM handlers set) after the
//                            K-th optimizer step; the trainer then
//                            snapshots and exits cleanly.
//   poison_grad_at_step=K    overwrite one gradient value with NaN before
//                            the K-th step commits, exercising the
//                            non-finite guard. With poison_grad_steps=N
//                            (default 1) steps K..K+N-1 are all poisoned.
//   fail_write_after_bytes=N every AtomicFile write past a cumulative
//                            budget of N bytes is truncated and fails
//                            with IOError, simulating a crash mid-write.
//
// Step counters are process-wide and monotonic: a trainer resumed after a
// rollback re-runs batches under fresh step indices, so a poison window
// never re-fires.

namespace lipformer {
namespace fault {

// Parses `spec` and arms the listed points. Unknown points or malformed
// values abort via LIPF_CHECK — a typo in a fault spec must never read as
// "the fault did not fire".
void Arm(const std::string& spec);

// Arms from the LIPF_FAULT environment variable if set. Called lazily by
// every query below; calling it explicitly is never required.
void ArmFromEnv();

// Disarms everything and resets all counters (unit-test teardown).
void Disarm();

// Called by the trainer after optimizer step `step` (1-based, global)
// commits. May _Exit(137) (kill_after_step) or request a graceful
// interrupt via common/interrupt.h (interrupt_after_step).
void OnOptimizerStep(int64_t step);

// True when step `step` (1-based, global) falls inside an armed poison
// window; the trainer then writes NaN into a gradient before stepping.
bool ShouldPoisonGrad(int64_t step);

// Accounts `n` bytes against the armed write budget. Returns false with
// *allowed == n when the write may proceed in full; returns true when the
// budget is exhausted mid-write, with *allowed set to the bytes that may
// still be written before the injected failure (possibly 0).
bool ConsumeWriteBudget(size_t n, size_t* allowed);

}  // namespace fault
}  // namespace lipformer

#endif  // LIPFORMER_COMMON_FAULT_INJECTION_H_
