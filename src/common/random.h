#ifndef LIPFORMER_COMMON_RANDOM_H_
#define LIPFORMER_COMMON_RANDOM_H_

#include <cstdint>

// Deterministic, fast PRNG used everywhere (weight init, dropout, data
// generation, shuffling) so every experiment is reproducible from a seed.
// Xoshiro256** seeded through SplitMix64, as recommended by the authors of
// the generator family.

namespace lipformer {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  // Uniform 64-bit integer.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with mean/stddev.
  double Normal(double mean, double stddev);

  // Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n);

  // Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  // Derives an independent stream (e.g. per-module init streams).
  Rng Fork();

  // Exact-resume support: the full generator state (xoshiro words plus the
  // Box-Muller cache) as kStateWords opaque 64-bit words. Import restores
  // a stream bit-for-bit, so a resumed run draws the identical sequence.
  static constexpr int kStateWords = 6;
  void ExportState(uint64_t out[kStateWords]) const;
  void ImportState(const uint64_t in[kStateWords]);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_RANDOM_H_
