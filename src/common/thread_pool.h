#ifndef LIPFORMER_COMMON_THREAD_POOL_H_
#define LIPFORMER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

// Shared thread pool behind the tensor kernels (see ParallelFor below).
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous
// chunks whose boundaries are pure functions of (n, grain, configured
// thread count) — never of timing. Kernels assign every output element to
// exactly one chunk and compute it with the same serial inner loop the
// single-threaded path uses, so results are bitwise identical for every
// thread count, including 1 (which bypasses the pool entirely and is
// exactly the historical serial path).

namespace lipformer {

// Fixed-size pool of persistent worker threads. A parallel region hands
// the pool `num_chunks` independent chunk indices; the calling thread
// participates, so a pool with W workers gives W+1-way parallelism.
// Concurrent Run calls from different threads are safe: every chunk of a
// job is claimed and executed by some thread (at minimum the job's own
// caller), workers just help whichever job is most recent. Nested
// ParallelFor is not supported and falls back to serial via an
// in-parallel-region flag in thread_pool.cc.
class ThreadPool {
 public:
  // Spawns `num_workers` worker threads (0 is valid: Run degenerates to a
  // serial loop on the caller).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()); }

  // Invokes fn(chunk) for every chunk in [0, num_chunks), distributing
  // chunks over the caller + workers; returns once all chunks completed.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

 private:
  // One parallel region. Heap-allocated and shared with the workers so a
  // late-waking worker from a finished region only ever touches its own
  // (exhausted) job state, never a newer region's.
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t total = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
  };

  void WorkerLoop();
  static void RunChunks(Job* job);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // new job available (or shutdown)
  std::condition_variable done_cv_;  // a job finished its last chunk
  std::shared_ptr<Job> job_;         // guarded by mu_
  bool shutdown_ = false;            // guarded by mu_
};

// ---- Global pool configuration ----

// Threads suggested by the hardware (>= 1).
int HardwareThreads();

// Default thread count: LIPF_NUM_THREADS if set (clamped to >= 1), else
// HardwareThreads(). Read once on first use.
int DefaultNumThreads();

// Sets the global thread count used by ParallelFor. 1 means fully serial
// (the pool is released). Rebuilds the pool; intended for startup / test
// configuration, not for calling concurrently with running kernels.
void SetNumThreads(int n);

// Current global thread count (resolves DefaultNumThreads on first call).
int GetNumThreads();

// Partitions [0, n) into contiguous chunks of at least `grain` iterations
// (boundaries depend only on n, grain and GetNumThreads()) and runs
// body(begin, end) for each chunk across the global pool. Runs
// body(0, n) inline when n <= grain, when only one thread is configured,
// or when already inside a parallel region (no nesting).
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_THREAD_POOL_H_
