#include "common/status.h"

namespace lipformer {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lipformer
