#ifndef LIPFORMER_COMMON_STATUS_H_
#define LIPFORMER_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/logging.h"

// RocksDB/Arrow-style Status and Result for recoverable errors (file I/O,
// parsing, user configuration). Internal invariants use LIPF_CHECK instead.

namespace lipformer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kInternal,
  // Serving backpressure: a bounded queue rejected the request.
  kUnavailable,
  // The request's deadline expired before it could be executed.
  kDeadlineExceeded,
  // Admission control shed the request: the estimated queue drain exceeds
  // what the caller can wait for. Distinct from kUnavailable (hard
  // capacity bounce / shutdown): kOverloaded means "well-formed request,
  // healthy model, but accepting it now would only produce a timeout" and
  // carries a retry-after hint in the message.
  kOverloaded,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LIPF_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    LIPF_CHECK(ok()) << status_.ToString();
    return value_;
  }
  const T& value() const {
    LIPF_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& MoveValue() {
    LIPF_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  T value_{};
  Status status_;
};

#define LIPF_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::lipformer::Status _st = (expr);     \
    if (!_st.ok()) return _st;            \
  } while (false)

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_STATUS_H_
