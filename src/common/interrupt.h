#ifndef LIPFORMER_COMMON_INTERRUPT_H_
#define LIPFORMER_COMMON_INTERRUPT_H_

// Process-wide graceful-shutdown flag shared by long-running loops: the
// trainer (snapshot after the in-flight step, then exit) and the serve
// loop (stop accepting requests, drain the batcher). The flag is set by
// SIGINT/SIGTERM once InstallInterruptHandlers() has run, by fault
// injection (interrupt_after_step), or programmatically from tests.
//
// The handlers are one-shot (SA_RESETHAND): the first signal requests a
// graceful stop, a second one kills the process with default semantics —
// a wedged drain must stay killable.

namespace lipformer {

// Installs SIGINT + SIGTERM handlers that set the interrupt flag.
// Idempotent.
void InstallInterruptHandlers();

// True once an interrupt was requested (signal, fault injection, or
// RequestInterrupt).
bool InterruptRequested();

// Sets the flag without a signal (fault injection, tests).
void RequestInterrupt();

// Clears the flag (tests; a new CLI run starts clean anyway).
void ClearInterrupt();

// SIGHUP is repurposed as a status request for the serve loop: it sets a
// separate flag that the server polls and clears after dumping registry
// stats to stderr. Unlike the interrupt handlers this one is persistent
// (SA_RESTART, no SA_RESETHAND): operators poke a long-lived server
// repeatedly, and the blocking stdin read must not be aborted by it.
void InstallStatsRequestHandler();

// Returns true (and clears the flag) if a SIGHUP arrived since the last
// call. Tests may set the flag directly with RequestStats().
bool ConsumeStatsRequest();
void RequestStats();

// Ignores SIGPIPE process-wide. A serving process writes answers to a
// pipe/socket a client may close mid-stream; without this the default
// disposition kills the whole server from inside the writer thread.
// Writes then fail with EPIPE, which the serve loop maps to a clean
// drain-and-shutdown. Idempotent.
void IgnoreSigPipe();

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_INTERRUPT_H_
