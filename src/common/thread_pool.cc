#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace lipformer {

namespace {

// Set while the current thread is executing chunks of a parallel region;
// makes nested ParallelFor calls run serially instead of deadlocking.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  LIPF_CHECK_GE(num_workers, 0);
  threads_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunChunks(Job* job) {
  t_in_parallel_region = true;
  int64_t chunk;
  while ((chunk = job->next.fetch_add(1, std::memory_order_relaxed)) <
         job->total) {
    (*job->fn)(chunk);
    job->done.fetch_add(1, std::memory_order_acq_rel);
  }
  t_in_parallel_region = false;
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (threads_.empty() || num_chunks == 1 || t_in_parallel_region) {
    t_in_parallel_region = true;
    for (int64_t i = 0; i < num_chunks; ++i) fn(i);
    t_in_parallel_region = false;
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
  }
  work_cv_.notify_all();

  RunChunks(job.get());

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == job->total;
  });
  if (job_ == job) job_.reset();
}

void ThreadPool::WorkerLoop() {
  std::shared_ptr<Job> last;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || (job_ && job_ != last); });
      if (shutdown_) return;
      job = job_;
    }
    last = job;
    RunChunks(job.get());
    // The caller may be waiting on done_cv_; only the thread finishing the
    // final chunk needs to wake it, but notifying on every exhaustion keeps
    // the logic simple and the pool is only entered for coarse chunks.
    {
      std::lock_guard<std::mutex> lock(mu_);
    }
    done_cv_.notify_all();
  }
}

// ---- Global pool ----

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;            // non-null iff threads > 1
std::atomic<int> g_num_threads{0};             // 0 = not yet resolved

std::shared_ptr<ThreadPool> GetPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_pool;
}

void RebuildPoolLocked(int n) {
  g_pool.reset();
  if (n > 1) g_pool = std::make_shared<ThreadPool>(n - 1);
  g_num_threads.store(n, std::memory_order_release);
}

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultNumThreads() {
  const char* env = std::getenv("LIPF_NUM_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n >= 1) return n;
    LIPF_LOG(Warning) << "ignoring invalid LIPF_NUM_THREADS='" << env << "'";
  }
  return HardwareThreads();
}

void SetNumThreads(int n) {
  LIPF_CHECK_GE(n, 1) << "thread count must be >= 1";
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_num_threads.load(std::memory_order_acquire) == n && (n == 1 || g_pool))
    return;
  RebuildPoolLocked(n);
}

int GetNumThreads() {
  int n = g_num_threads.load(std::memory_order_acquire);
  if (n == 0) {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    n = g_num_threads.load(std::memory_order_acquire);
    if (n == 0) {
      n = DefaultNumThreads();
      RebuildPoolLocked(n);
    }
  }
  return n;
}

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int threads = GetNumThreads();
  if (threads <= 1 || n <= grain || t_in_parallel_region) {
    body(0, n);
    return;
  }
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int64_t num_chunks = std::min<int64_t>(threads, max_chunks);
  if (num_chunks <= 1) {
    body(0, n);
    return;
  }
  std::shared_ptr<ThreadPool> pool = GetPool();
  auto run_chunk = [&](int64_t c) {
    // Deterministic boundaries: functions of (n, num_chunks) only.
    const int64_t begin = n * c / num_chunks;
    const int64_t end = n * (c + 1) / num_chunks;
    if (begin < end) body(begin, end);
  };
  if (!pool) {
    for (int64_t c = 0; c < num_chunks; ++c) run_chunk(c);
    return;
  }
  pool->Run(num_chunks, run_chunk);
}

}  // namespace lipformer
