#include "common/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"

namespace lipformer {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " failed for " + path + ": " +
         std::strerror(errno);
}

}  // namespace

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<AtomicFile> AtomicFile::Create(const std::string& path) {
  AtomicFile file;
  file.path_ = path;
  file.tmp_path_ = path + ".tmp." + std::to_string(::getpid());
  file.fd_ = ::open(file.tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
  if (file.fd_ < 0) {
    return Status::IOError(ErrnoMessage("open", file.tmp_path_));
  }
  return file;
}

AtomicFile::~AtomicFile() { Abort(); }

AtomicFile::AtomicFile(AtomicFile&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)),
      fd_(other.fd_),
      committed_(other.committed_) {
  other.fd_ = -1;
  other.committed_ = false;
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this != &other) {
    Abort();
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
    fd_ = other.fd_;
    committed_ = other.committed_;
    other.fd_ = -1;
    other.committed_ = false;
  }
  return *this;
}

Status AtomicFile::Append(const void* data, size_t n) {
  if (fd_ < 0) {
    return Status::Internal("Append on a closed AtomicFile: " + path_);
  }
  // Fault injection: an armed fail-write point truncates this write at the
  // configured byte budget, leaving the temp file torn mid-stream exactly
  // as a crashed writer would.
  size_t allowed = n;
  const bool injected_failure = fault::ConsumeWriteBudget(n, &allowed);
  const char* p = static_cast<const char*>(data);
  size_t remaining = allowed;
  while (remaining > 0) {
    const ssize_t written = ::write(fd_, p, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", tmp_path_));
    }
    p += written;
    remaining -= static_cast<size_t>(written);
  }
  if (injected_failure) {
    return Status::IOError("injected write failure after " +
                           std::to_string(allowed) + " of " +
                           std::to_string(n) + " bytes: " + tmp_path_);
  }
  return Status::OK();
}

Status AtomicFile::Commit() {
  if (fd_ < 0) {
    return Status::Internal("Commit on a closed AtomicFile: " + path_);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync", tmp_path_));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IOError(ErrnoMessage("close", tmp_path_));
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename", tmp_path_));
  }
  committed_ = true;
  // Persist the rename itself: without the directory fsync a crash can
  // roll the directory entry back to the old file (acceptable) or to a
  // missing one (not).
  const std::string dir = ParentDir(path_);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

void AtomicFile::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_ && !tmp_path_.empty()) {
    ::unlink(tmp_path_.c_str());
  }
  tmp_path_.clear();
}

Status AtomicWriteFile(const std::string& path, const void* data, size_t n) {
  Result<AtomicFile> file = AtomicFile::Create(path);
  if (!file.ok()) return file.status();
  LIPF_RETURN_IF_ERROR(file.value().Append(data, n));
  return file.value().Commit();
}

}  // namespace lipformer
