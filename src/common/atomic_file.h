#ifndef LIPFORMER_COMMON_ATOMIC_FILE_H_
#define LIPFORMER_COMMON_ATOMIC_FILE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

// Crash-durable file replacement: every writer that must never leave a
// torn file on disk (checkpoints, training snapshots, CSV exports) streams
// into a same-directory temp file and publishes it with fsync + rename.
// A crash — or an injected write failure (common/fault_injection.h) — at
// any point leaves the previous file at `path` byte-identical; the partial
// temp file is unlinked on Abort/destruction and ignored by readers.

namespace lipformer {

// True when `path` names an existing filesystem entry.
bool PathExists(const std::string& path);

class AtomicFile {
 public:
  // Opens `path + ".tmp.<pid>"` for writing. The target is untouched
  // until Commit().
  static Result<AtomicFile> Create(const std::string& path);

  AtomicFile() = default;
  ~AtomicFile();  // Abort() unless committed

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  // Appends `n` bytes to the temp file. On failure (disk error or an armed
  // fail-write injection point) the temp file is left torn; the caller
  // should drop the AtomicFile, which unlinks it.
  Status Append(const void* data, size_t n);

  // fsync + close + rename over `path` + fsync of the parent directory.
  // After Commit returns OK the new bytes are durable under the final
  // name; on error the previous file is untouched.
  Status Commit();

  // Closes and unlinks the temp file; the target is untouched. Idempotent.
  void Abort();

 private:
  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool committed_ = false;
};

// Convenience wrapper: atomically replaces `path` with `n` bytes.
Status AtomicWriteFile(const std::string& path, const void* data, size_t n);

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_ATOMIC_FILE_H_
