#include "common/logging.h"

namespace lipformer {
namespace internal {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

CheckFailure::CheckFailure(const char* expr, const char* file, int line) {
  stream_ << "[CHECK failed " << file << ":" << line << "] " << expr << " ";
}

CheckFailure::~CheckFailure() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace lipformer
