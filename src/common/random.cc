#include "common/random.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace lipformer {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

uint64_t Rng::UniformInt(uint64_t n) {
  LIPF_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return v % n;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

void Rng::ExportState(uint64_t out[kStateWords]) const {
  for (int i = 0; i < 4; ++i) out[i] = state_[i];
  out[4] = has_cached_normal_ ? 1 : 0;
  std::memcpy(&out[5], &cached_normal_, sizeof(cached_normal_));
}

void Rng::ImportState(const uint64_t in[kStateWords]) {
  for (int i = 0; i < 4; ++i) state_[i] = in[i];
  has_cached_normal_ = in[4] != 0;
  std::memcpy(&cached_normal_, &in[5], sizeof(cached_normal_));
}

}  // namespace lipformer
