#ifndef LIPFORMER_COMMON_PARSE_H_
#define LIPFORMER_COMMON_PARSE_H_

#include <cstdint>
#include <string>

// Strict string-to-number parsing shared by the CLI front end and the
// serving bundle metadata loader. "Strict" means: the whole string must
// be consumed, and out-of-range values are an error instead of silently
// clamping (strtoll saturates to LLONG_MAX and only reports it through
// errno, which naive call sites ignore — exactly the bug that let a
// bundle with hidden_dim=99999999999999999999 pass validation).

namespace lipformer {

// Base-10 integer; rejects empty strings, trailing junk and values
// outside int64. `*out` is untouched on failure.
bool ParseInt64(const std::string& s, int64_t* out);

// Rejects empty strings, trailing junk ("0.1garbage"), and overflow to
// +/-inf. "inf"/"nan" spellings parse (strtod accepts them); callers
// range-check for their domain.
bool ParseDouble(const std::string& s, double* out);

// Like ParseDouble but float-width (overflow past FLT_MAX is an error).
bool ParseFloat(const std::string& s, float* out);

}  // namespace lipformer

#endif  // LIPFORMER_COMMON_PARSE_H_
