#include "common/parse.h"

#include <cerrno>
#include <cstdlib>

namespace lipformer {

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  // errno catches ERANGE (strtoll returned a clamped LLONG_MIN/MAX, not
  // the spelled value); the end-pointer check catches partial consumption.
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseFloat(const std::string& s, float* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

}  // namespace lipformer
