#ifndef LIPFORMER_DATA_TIME_FEATURES_H_
#define LIPFORMER_DATA_TIME_FEATURES_H_

#include <vector>

#include "data/time_series.h"
#include "tensor/tensor.h"

namespace lipformer {

// Informer-style implicit temporal features. When a dataset has no explicit
// future covariates, these serve as the weak labels for the dual-encoder
// pre-training (Section IV-B1): hour-of-day, day-of-week, day-of-month and
// month-of-year, each normalized into [-0.5, 0.5].
inline constexpr int64_t kNumTimeFeatures = 4;

// [steps, kNumTimeFeatures] matrix of encoded features.
Tensor EncodeTimeFeatures(const std::vector<DateTime>& timestamps);

// Categorical variants (raw integer codes as float) used when time features
// are routed through the Covariate Encoder's embedding path:
// hour (24), day-of-week (7), is-weekend (2).
Tensor EncodeCategoricalTimeFeatures(const std::vector<DateTime>& timestamps);
CovariateSchema CategoricalTimeFeatureSchema();

}  // namespace lipformer

#endif  // LIPFORMER_DATA_TIME_FEATURES_H_
