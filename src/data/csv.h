#ifndef LIPFORMER_DATA_CSV_H_
#define LIPFORMER_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/time_series.h"

namespace lipformer {

// CSV interchange in the layout used by the public forecasting benchmarks:
// a header row, a first `date` column formatted `YYYY-MM-DD HH:MM[:SS]`,
// and one numeric column per channel. Lets users run every experiment on
// the real ETT/Weather/... files when they have them; the benches default
// to the synthetic generators.

Result<TimeSeries> ReadCsvTimeSeries(const std::string& path);

Status WriteCsvTimeSeries(const std::string& path, const TimeSeries& series);

}  // namespace lipformer

#endif  // LIPFORMER_DATA_CSV_H_
