#include "data/registry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "data/synthetic.h"

namespace lipformer {

namespace {

int64_t Scaled(int64_t steps, double scale) {
  const int64_t s = static_cast<int64_t>(
      std::llround(static_cast<double>(steps) * scale));
  return std::max<int64_t>(s, 512);
}

}  // namespace

std::vector<std::string> RegisteredDatasetNames() {
  return {"etth1",   "etth2",       "ettm1", "ettm2", "weather",
          "electricity", "traffic", "electri_price", "cycle"};
}

bool IsRegisteredDataset(const std::string& name) {
  const auto names = RegisteredDatasetNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

DatasetSpec MakeDataset(const std::string& name, double scale) {
  LIPF_CHECK_GT(scale, 0.0);
  LIPF_CHECK_LE(scale, 1.0);
  DatasetSpec spec;
  spec.name = name;

  if (name == "etth1" || name == "etth2") {
    const bool h2 = name == "etth2";
    SeasonalConfig cfg;
    cfg.steps = Scaled(17420, scale);
    cfg.channels = 7;
    cfg.minutes_per_step = 60;
    cfg.seed = h2 ? 102 : 101;
    cfg.daily_amplitude = 1.0;
    cfg.weekly_amplitude = 0.4;
    cfg.trend = h2 ? 0.8 : 0.5;
    cfg.noise_std = h2 ? 0.45 : 0.3;  // ETTh2 is the more volatile pair
    cfg.cross_channel_mix = 0.35;
    spec.series = GenerateSeasonal(cfg);
    spec.train_ratio = 0.6;
    spec.val_ratio = 0.2;
    spec.test_ratio = 0.2;
    spec.paper_variables = 7;
    spec.paper_timestamps = 17420;
    spec.description = "Electricity transformer temperature, hourly";
  } else if (name == "ettm1" || name == "ettm2") {
    const bool m2 = name == "ettm2";
    SeasonalConfig cfg;
    cfg.steps = Scaled(69680, scale);
    cfg.channels = 7;
    cfg.minutes_per_step = 15;
    cfg.seed = m2 ? 104 : 103;
    cfg.daily_amplitude = 1.0;
    cfg.weekly_amplitude = 0.3;
    cfg.trend = 0.4;
    cfg.noise_std = m2 ? 0.35 : 0.25;
    cfg.ar_coeff = 0.8;
    cfg.cross_channel_mix = 0.35;
    spec.series = GenerateSeasonal(cfg);
    spec.train_ratio = 0.6;
    spec.val_ratio = 0.2;
    spec.test_ratio = 0.2;
    spec.paper_variables = 7;
    spec.paper_timestamps = 69680;
    spec.description = "Electricity transformer temperature, 15-minute";
  } else if (name == "weather") {
    SeasonalConfig cfg;
    cfg.steps = Scaled(52696, scale);
    cfg.channels = 21;
    cfg.minutes_per_step = 10;
    cfg.seed = 105;
    cfg.daily_amplitude = 0.9;
    cfg.weekly_amplitude = 0.2;
    cfg.trend = 0.6;
    cfg.noise_std = 0.5;  // meteorological channels are noisy
    cfg.ar_coeff = 0.85;
    cfg.cross_channel_mix = 0.25;
    spec.series = GenerateSeasonal(cfg);
    spec.paper_variables = 21;
    spec.paper_timestamps = 52696;
    spec.description = "Meteorological indicators, 10-minute";
  } else if (name == "electricity") {
    SeasonalConfig cfg;
    cfg.steps = Scaled(26304, scale);
    cfg.channels = 32;  // scaled from 321 for the single-core budget
    cfg.minutes_per_step = 60;
    cfg.seed = 106;
    cfg.daily_amplitude = 1.2;
    cfg.weekly_amplitude = 0.6;
    cfg.trend = 0.3;
    cfg.noise_std = 0.25;
    cfg.cross_channel_mix = 0.5;  // consumption profiles co-move strongly
    spec.series = GenerateSeasonal(cfg);
    spec.paper_variables = 321;
    spec.paper_timestamps = 26304;
    spec.description = "Household electricity load, hourly (channels 321->32)";
  } else if (name == "traffic") {
    SeasonalConfig cfg;
    cfg.steps = Scaled(17544, scale);
    cfg.channels = 32;  // scaled from 862
    cfg.minutes_per_step = 60;
    cfg.seed = 107;
    cfg.daily_amplitude = 1.4;
    cfg.weekly_amplitude = 0.8;  // strong weekday/weekend pattern
    cfg.trend = 0.1;
    cfg.noise_std = 0.3;
    cfg.cross_channel_mix = 0.45;
    spec.series = GenerateSeasonal(cfg);
    spec.paper_variables = 862;
    spec.paper_timestamps = 17544;
    spec.description = "Road occupancy rates, hourly (channels 862->32)";
  } else if (name == "electri_price") {
    CovariateDrivenConfig cfg;
    cfg.steps = Scaled(35808, scale);
    cfg.channels = 4;
    cfg.minutes_per_step = 15;
    cfg.seed = 108;
    cfg.numeric_covariates = 10;  // load/wind/PV forecasts, temperatures
    cfg.categorical_covariates = 2;  // weather condition, holiday
    cfg.categorical_cardinality = 5;
    cfg.covariate_strength = 1.2;
    cfg.seasonal_strength = 0.5;
    cfg.noise_std = 0.25;
    spec.series = GenerateCovariateDriven(cfg);
    spec.paper_variables = 40;
    spec.paper_timestamps = 35808;
    spec.description =
        "Provincial electricity spot price with forecast covariates";
  } else if (name == "cycle") {
    CovariateDrivenConfig cfg;
    cfg.steps = Scaled(21864, scale);
    cfg.channels = 3;
    cfg.minutes_per_step = 60;
    cfg.seed = 109;
    cfg.numeric_covariates = 8;  // temperature/humidity/wind aggregates
    cfg.categorical_covariates = 1;  // weekend flag analogue
    cfg.categorical_cardinality = 2;
    cfg.covariate_strength = 1.0;
    cfg.seasonal_strength = 0.8;  // commuter rush-hour pattern
    cfg.noise_std = 0.3;
    spec.series = GenerateCovariateDriven(cfg);
    spec.paper_variables = 22;
    spec.paper_timestamps = 21864;
    spec.description = "Seattle Fremont Bridge bicycle counts with weather";
  } else {
    LIPF_CHECK(false) << "unknown dataset: " << name;
  }
  return spec;
}

}  // namespace lipformer
