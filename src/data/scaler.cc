#include "data/scaler.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "tensor/ops.h"

namespace lipformer {

void StandardScaler::Fit(const Tensor& data, int64_t fit_rows) {
  LIPF_CHECK_EQ(data.dim(), 2);
  const int64_t rows = fit_rows > 0 ? fit_rows : data.size(0);
  LIPF_CHECK_LE(rows, data.size(0));
  LIPF_CHECK_GT(rows, 1);
  const int64_t c = data.size(1);
  mean_ = Tensor(Shape{c});
  std_ = Tensor(Shape{c});
  const float* p = data.data();
  for (int64_t j = 0; j < c; ++j) {
    double sum = 0.0;
    for (int64_t i = 0; i < rows; ++i) sum += p[i * c + j];
    const double mu = sum / static_cast<double>(rows);
    double sq = 0.0;
    for (int64_t i = 0; i < rows; ++i) {
      const double d = p[i * c + j] - mu;
      sq += d * d;
    }
    double sd = std::sqrt(sq / static_cast<double>(rows));
    if (sd < 1e-8) sd = 1.0;  // constant channel: leave values centered
    mean_.data()[j] = static_cast<float>(mu);
    std_.data()[j] = static_cast<float>(sd);
  }
  fitted_ = true;
}

void StandardScaler::Restore(Tensor mean, Tensor std) {
  LIPF_CHECK_EQ(mean.dim(), 1);
  LIPF_CHECK_EQ(std.dim(), 1);
  LIPF_CHECK_EQ(mean.size(0), std.size(0));
  for (int64_t j = 0; j < std.size(0); ++j) {
    LIPF_CHECK_GT(std.data()[j], 0.0f) << "non-positive std at channel " << j;
  }
  mean_ = std::move(mean);
  std_ = std::move(std);
  fitted_ = true;
}

Tensor StandardScaler::Transform(const Tensor& data) const {
  LIPF_CHECK(fitted_);
  LIPF_CHECK_EQ(data.size(-1), mean_.size(0));
  return Div(Sub(data, mean_), std_);
}

Tensor StandardScaler::InverseTransform(const Tensor& data) const {
  LIPF_CHECK(fitted_);
  LIPF_CHECK_EQ(data.size(-1), mean_.size(0));
  return Add(Mul(data, std_), mean_);
}

}  // namespace lipformer
