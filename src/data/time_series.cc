#include "data/time_series.h"

#include <cstdio>

#include "common/logging.h"

namespace lipformer {

namespace {
bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}
}  // namespace

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  LIPF_CHECK_GE(month, 1);
  LIPF_CHECK_LE(month, 12);
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int DayOfWeek(const DateTime& dt) {
  // Sakamoto's algorithm, shifted so 0 = Monday.
  static const int t[] = {0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4};
  int y = dt.year;
  if (dt.month < 3) y -= 1;
  const int dow_sun0 =
      (y + y / 4 - y / 100 + y / 400 + t[dt.month - 1] + dt.day) % 7;
  return (dow_sun0 + 6) % 7;
}

DateTime AddMinutes(const DateTime& dt, int64_t minutes) {
  DateTime out = dt;
  int64_t total = dt.minute + minutes;
  int64_t carry_hours = total / 60;
  out.minute = static_cast<int>(total % 60);
  if (out.minute < 0) {
    out.minute += 60;
    carry_hours -= 1;
  }
  int64_t hours = dt.hour + carry_hours;
  int64_t carry_days = hours / 24;
  out.hour = static_cast<int>(hours % 24);
  if (out.hour < 0) {
    out.hour += 24;
    carry_days -= 1;
  }
  int64_t days = carry_days;
  out.day = dt.day;
  out.month = dt.month;
  out.year = dt.year;
  while (days > 0) {
    const int dim = DaysInMonth(out.year, out.month);
    if (out.day + days <= dim) {
      out.day += static_cast<int>(days);
      days = 0;
    } else {
      days -= (dim - out.day + 1);
      out.day = 1;
      out.month += 1;
      if (out.month > 12) {
        out.month = 1;
        out.year += 1;
      }
    }
  }
  while (days < 0) {
    if (out.day + days >= 1) {
      out.day += static_cast<int>(days);
      days = 0;
    } else {
      days += out.day;
      out.month -= 1;
      if (out.month < 1) {
        out.month = 12;
        out.year -= 1;
      }
      out.day = DaysInMonth(out.year, out.month);
    }
  }
  return out;
}

std::vector<DateTime> MakeTimestamps(const DateTime& start,
                                     int64_t minutes_per_step,
                                     int64_t steps) {
  std::vector<DateTime> out;
  out.reserve(static_cast<size_t>(steps));
  DateTime cur = start;
  for (int64_t i = 0; i < steps; ++i) {
    out.push_back(cur);
    cur = AddMinutes(cur, minutes_per_step);
  }
  return out;
}

std::string FormatDateTime(const DateTime& dt) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d", dt.year,
                dt.month, dt.day, dt.hour, dt.minute);
  return buf;
}

}  // namespace lipformer
