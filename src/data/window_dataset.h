#ifndef LIPFORMER_DATA_WINDOW_DATASET_H_
#define LIPFORMER_DATA_WINDOW_DATASET_H_

#include <vector>

#include "data/scaler.h"
#include "data/time_series.h"

namespace lipformer {

enum class Split { kTrain, kVal, kTest };

const char* SplitName(Split split);

// A mini-batch of forecasting windows.
struct Batch {
  Tensor x;          // [b, T, c]  scaled history
  Tensor y;          // [b, L, c]  scaled target (ground truth future)
  Tensor x_time;     // [b, T, 4]  implicit time features of the history
  Tensor y_time;     // [b, L, 4]  implicit time features of the horizon
  Tensor y_cov_num;  // [b, L, cn] future-known numeric covariates (scaled)
  Tensor y_cov_cat;  // [b, L, ct] future-known categorical codes
  int64_t size = 0;
};

// Sliding-window forecasting dataset over a multivariate series with the
// standard chronological train/val/test protocol: the scaler is fitted on
// the train rows only, and val/test ranges are extended `input_len` rows
// backwards so their first windows have full history (the DLinear /
// Autoformer data-loading convention the paper follows).
//
// Covariate policy: when the series carries explicit future covariates
// (Electri-Price / Cycle), batches expose them, numerics standardized on
// the train rows. Otherwise the implicit temporal features stand in as
// weak labels (Section IV-B1).
class WindowDataset {
 public:
  struct Options {
    int64_t input_len = 96;
    int64_t pred_len = 96;
    double train_ratio = 0.7;
    double val_ratio = 0.1;
    double test_ratio = 0.2;
  };

  WindowDataset(const TimeSeries& series, Options options);

  int64_t NumWindows(Split split) const;

  // Gathers the windows with the given ids (0-based within the split).
  Batch MakeBatch(Split split, const std::vector<int64_t>& window_ids) const;

  // Channel counts exposed to models.
  int64_t channels() const { return values_.size(1); }
  int64_t num_numeric_covariates() const {
    return covariates_numeric_.size(1);
  }
  int64_t num_categorical_covariates() const {
    return covariates_categorical_.size(1);
  }
  const CovariateSchema& covariate_schema() const { return schema_; }
  bool has_explicit_covariates() const { return explicit_covariates_; }

  const StandardScaler& scaler() const { return scaler_; }
  const Options& options() const { return options_; }

 private:
  struct Range {
    int64_t begin = 0;  // first usable row
    int64_t end = 0;    // one past the last usable row
  };
  const Range& RangeFor(Split split) const;

  Options options_;
  Tensor values_;                  // [time, c] scaled
  Tensor time_features_;           // [time, 4]
  Tensor covariates_numeric_;      // [time, cn] scaled (cn may be 0)
  Tensor covariates_categorical_;  // [time, ct] codes  (ct may be 0)
  CovariateSchema schema_;
  bool explicit_covariates_ = false;
  StandardScaler scaler_;
  Range train_;
  Range val_;
  Range test_;
};

// Restriction of a series to a single channel (used by the univariate
// experiments in Table V). Covariates and timestamps are preserved.
TimeSeries SelectChannel(const TimeSeries& series, int64_t channel);

}  // namespace lipformer

#endif  // LIPFORMER_DATA_WINDOW_DATASET_H_
