#include "data/time_features.h"

namespace lipformer {

Tensor EncodeTimeFeatures(const std::vector<DateTime>& timestamps) {
  const int64_t n = static_cast<int64_t>(timestamps.size());
  Tensor out(Shape{n, kNumTimeFeatures});
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const DateTime& dt = timestamps[static_cast<size_t>(i)];
    p[i * kNumTimeFeatures + 0] =
        static_cast<float>(dt.hour) / 23.0f - 0.5f;
    p[i * kNumTimeFeatures + 1] =
        static_cast<float>(DayOfWeek(dt)) / 6.0f - 0.5f;
    p[i * kNumTimeFeatures + 2] =
        static_cast<float>(dt.day - 1) / 30.0f - 0.5f;
    p[i * kNumTimeFeatures + 3] =
        static_cast<float>(dt.month - 1) / 11.0f - 0.5f;
  }
  return out;
}

Tensor EncodeCategoricalTimeFeatures(
    const std::vector<DateTime>& timestamps) {
  const int64_t n = static_cast<int64_t>(timestamps.size());
  Tensor out(Shape{n, 3});
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const DateTime& dt = timestamps[static_cast<size_t>(i)];
    const int dow = DayOfWeek(dt);
    p[i * 3 + 0] = static_cast<float>(dt.hour);
    p[i * 3 + 1] = static_cast<float>(dow);
    p[i * 3 + 2] = dow >= 5 ? 1.0f : 0.0f;
  }
  return out;
}

CovariateSchema CategoricalTimeFeatureSchema() {
  CovariateSchema schema;
  schema.categorical_names = {"hour", "day_of_week", "is_weekend"};
  schema.categorical_cardinalities = {24, 7, 2};
  return schema;
}

}  // namespace lipformer
