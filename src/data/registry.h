#ifndef LIPFORMER_DATA_REGISTRY_H_
#define LIPFORMER_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/time_series.h"

// Registry of the nine benchmark datasets from Table II of the paper, each
// backed by a seeded synthetic generator whose cadence, seasonality and
// channel structure mirror the original (channel counts of the very wide
// datasets are scaled down for the single-core budget; see DESIGN.md).
// `scale` in (0, 1] shrinks the series length proportionally so quick
// benches stay quick.

namespace lipformer {

struct DatasetSpec {
  std::string name;
  // The generated series (synthetic stand-in for the real data).
  TimeSeries series;
  // Chronological split ratios from Table II.
  double train_ratio = 0.7;
  double val_ratio = 0.1;
  double test_ratio = 0.2;
  // Paper-reported statistics, for the Table II summary bench.
  int64_t paper_variables = 0;
  int64_t paper_timestamps = 0;
  std::string description;
};

// Names: etth1, etth2, ettm1, ettm2, weather, electricity, traffic,
// electri_price, cycle.
std::vector<std::string> RegisteredDatasetNames();

bool IsRegisteredDataset(const std::string& name);

// CHECK-fails on unknown names (use IsRegisteredDataset to probe).
DatasetSpec MakeDataset(const std::string& name, double scale = 1.0);

}  // namespace lipformer

#endif  // LIPFORMER_DATA_REGISTRY_H_
