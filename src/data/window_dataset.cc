#include "data/window_dataset.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "data/time_features.h"
#include "tensor/ops.h"

namespace lipformer {

const char* SplitName(Split split) {
  switch (split) {
    case Split::kTrain:
      return "train";
    case Split::kVal:
      return "val";
    case Split::kTest:
      return "test";
  }
  return "unknown";
}

WindowDataset::WindowDataset(const TimeSeries& series, Options options)
    : options_(options) {
  LIPF_CHECK_GT(options_.input_len, 0);
  LIPF_CHECK_GT(options_.pred_len, 0);
  const int64_t n = series.steps();
  LIPF_CHECK_EQ(static_cast<int64_t>(series.timestamps.size()), n)
      << "timestamps must cover every row";

  const int64_t n_train = static_cast<int64_t>(
      std::floor(static_cast<double>(n) * options_.train_ratio));
  const int64_t n_test = static_cast<int64_t>(
      std::floor(static_cast<double>(n) * options_.test_ratio));
  const int64_t n_val = n - n_train - n_test;
  LIPF_CHECK_GT(n_train, options_.input_len + options_.pred_len)
      << "series too short for the requested windows";
  LIPF_CHECK_GE(n_val, 0);

  scaler_.Fit(series.values, n_train);
  values_ = scaler_.Transform(series.values);
  time_features_ = EncodeTimeFeatures(series.timestamps);

  explicit_covariates_ = series.has_explicit_covariates();
  if (explicit_covariates_) {
    schema_ = series.covariate_schema;
    if (schema_.num_numeric() > 0) {
      StandardScaler cov_scaler;
      cov_scaler.Fit(series.numeric_covariates, n_train);
      covariates_numeric_ = cov_scaler.Transform(series.numeric_covariates);
    } else {
      covariates_numeric_ = Tensor(Shape{n, 0});
    }
    if (schema_.num_categorical() > 0) {
      covariates_categorical_ = series.categorical_covariates;
    } else {
      covariates_categorical_ = Tensor(Shape{n, 0});
    }
  } else {
    // Implicit weak labels: the Informer-style temporal features.
    schema_ = CovariateSchema{};
    schema_.numeric_names = {"hour_of_day", "day_of_week", "day_of_month",
                             "month_of_year"};
    covariates_numeric_ = time_features_;
    covariates_categorical_ = Tensor(Shape{n, 0});
  }

  const int64_t lookback = options_.input_len;
  train_ = Range{0, n_train};
  val_ = Range{n_train - lookback, n_train + n_val};
  test_ = Range{n - n_test - lookback, n};
}

const WindowDataset::Range& WindowDataset::RangeFor(Split split) const {
  switch (split) {
    case Split::kTrain:
      return train_;
    case Split::kVal:
      return val_;
    case Split::kTest:
      return test_;
  }
  LIPF_CHECK(false);
  return train_;
}

int64_t WindowDataset::NumWindows(Split split) const {
  const Range& r = RangeFor(split);
  const int64_t len = r.end - r.begin;
  const int64_t n =
      len - options_.input_len - options_.pred_len + 1;
  return n > 0 ? n : 0;
}

Batch WindowDataset::MakeBatch(Split split,
                               const std::vector<int64_t>& window_ids) const {
  const Range& range = RangeFor(split);
  const int64_t b = static_cast<int64_t>(window_ids.size());
  const int64_t t_len = options_.input_len;
  const int64_t l_len = options_.pred_len;
  const int64_t c = channels();
  const int64_t cn = covariates_numeric_.size(1);
  const int64_t ct = covariates_categorical_.size(1);
  const int64_t limit = NumWindows(split);

  Batch batch;
  batch.size = b;
  batch.x = Tensor(Shape{b, t_len, c});
  batch.y = Tensor(Shape{b, l_len, c});
  batch.x_time = Tensor(Shape{b, t_len, kNumTimeFeatures});
  batch.y_time = Tensor(Shape{b, l_len, kNumTimeFeatures});
  batch.y_cov_num = Tensor(Shape{b, l_len, cn});
  batch.y_cov_cat = Tensor(Shape{b, l_len, ct});

  auto copy_rows = [](const Tensor& src, int64_t row0, int64_t rows,
                      float* dst) {
    const int64_t width = src.size(1);
    if (width == 0) return;
    std::memcpy(dst, src.data() + row0 * width,
                sizeof(float) * static_cast<size_t>(rows * width));
  };

  for (int64_t i = 0; i < b; ++i) {
    const int64_t id = window_ids[static_cast<size_t>(i)];
    LIPF_CHECK_GE(id, 0);
    LIPF_CHECK_LT(id, limit);
    const int64_t x0 = range.begin + id;
    const int64_t y0 = x0 + t_len;
    copy_rows(values_, x0, t_len, batch.x.data() + i * t_len * c);
    copy_rows(values_, y0, l_len, batch.y.data() + i * l_len * c);
    copy_rows(time_features_, x0, t_len,
              batch.x_time.data() + i * t_len * kNumTimeFeatures);
    copy_rows(time_features_, y0, l_len,
              batch.y_time.data() + i * l_len * kNumTimeFeatures);
    copy_rows(covariates_numeric_, y0, l_len,
              batch.y_cov_num.data() + i * l_len * cn);
    copy_rows(covariates_categorical_, y0, l_len,
              batch.y_cov_cat.data() + i * l_len * ct);
  }
  return batch;
}

TimeSeries SelectChannel(const TimeSeries& series, int64_t channel) {
  LIPF_CHECK_GE(channel, 0);
  LIPF_CHECK_LT(channel, series.channels());
  TimeSeries out;
  out.values = IndexSelect(series.values, 1, {channel});
  if (!series.channel_names.empty()) {
    out.channel_names = {series.channel_names[static_cast<size_t>(channel)]};
  }
  out.timestamps = series.timestamps;
  out.numeric_covariates = series.numeric_covariates;
  out.categorical_covariates = series.categorical_covariates;
  out.covariate_schema = series.covariate_schema;
  return out;
}

}  // namespace lipformer
