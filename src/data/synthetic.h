#ifndef LIPFORMER_DATA_SYNTHETIC_H_
#define LIPFORMER_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/time_series.h"

// Seeded synthetic generators standing in for the paper's benchmark
// datasets (see DESIGN.md, "Substitutions"). Two families:
//  - GenerateSeasonal: multivariate series with daily/weekly seasonality,
//    trend drift, AR(1) noise, cross-channel correlation and occasional
//    regime shifts (ETT / Weather / Electricity / Traffic stand-ins).
//  - GenerateCovariateDriven: targets causally driven by future-known
//    numeric and categorical covariates (Electri-Price / Cycle stand-ins),
//    which is the property the weak-data-enriching experiments need.

namespace lipformer {

struct SeasonalConfig {
  int64_t steps = 6000;
  int64_t channels = 7;
  int64_t minutes_per_step = 60;
  uint64_t seed = 7;
  DateTime start{2016, 7, 1, 0, 0};

  double daily_amplitude = 1.0;
  double weekly_amplitude = 0.4;
  // Linear drift over the whole series, in units of signal std.
  double trend = 0.5;
  // AR(1) innovation std and coefficient.
  double noise_std = 0.3;
  double ar_coeff = 0.7;
  // Fraction of every channel replaced by a shared common factor.
  double cross_channel_mix = 0.3;
  // Expected number of level shifts over the series.
  double regime_shifts = 2.0;
  double regime_shift_scale = 1.0;
};

TimeSeries GenerateSeasonal(const SeasonalConfig& config);

struct CovariateDrivenConfig {
  int64_t steps = 6000;
  int64_t channels = 3;
  int64_t minutes_per_step = 60;
  uint64_t seed = 11;
  DateTime start{2021, 1, 1, 0, 0};

  int64_t numeric_covariates = 8;
  // Each categorical field gets this many categories (>= 2).
  int64_t categorical_covariates = 2;
  int64_t categorical_cardinality = 5;

  // Relative strength of covariate-driven vs. seasonal vs. noise parts of
  // the target. Covariate influence dominating is what makes the dual
  // encoder pay off, as on the real Electri-Price data.
  double covariate_strength = 1.0;
  double seasonal_strength = 0.5;
  double noise_std = 0.2;
};

TimeSeries GenerateCovariateDriven(const CovariateDrivenConfig& config);

}  // namespace lipformer

#endif  // LIPFORMER_DATA_SYNTHETIC_H_
