#include "data/dataloader.h"

#include "common/logging.h"

namespace lipformer {

DataLoader::DataLoader(const WindowDataset* dataset, Split split,
                       int64_t batch_size, bool shuffle, Rng rng,
                       bool drop_last)
    : dataset_(dataset),
      split_(split),
      batch_size_(batch_size),
      shuffle_(shuffle),
      drop_last_(drop_last),
      rng_(rng) {
  LIPF_CHECK(dataset != nullptr);
  LIPF_CHECK_GT(batch_size, 0);
  const int64_t n = dataset_->NumWindows(split_);
  order_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order_[static_cast<size_t>(i)] = i;
  Reset();
}

void DataLoader::Reset() {
  cursor_ = 0;
  if (shuffle_) {
    // Fisher-Yates over the identity permutation: the epoch's order must be
    // a pure function of the rng state, never of previous epochs' shuffles,
    // or exact resume (which restores only the rng) could not reproduce it.
    for (int64_t i = 0; i < static_cast<int64_t>(order_.size()); ++i) {
      order_[static_cast<size_t>(i)] = i;
    }
    for (int64_t i = static_cast<int64_t>(order_.size()) - 1; i > 0; --i) {
      const int64_t j =
          static_cast<int64_t>(rng_.UniformInt(static_cast<uint64_t>(i + 1)));
      std::swap(order_[static_cast<size_t>(i)],
                order_[static_cast<size_t>(j)]);
    }
  }
}

bool DataLoader::HasNext() const {
  const int64_t remaining = static_cast<int64_t>(order_.size()) - cursor_;
  if (remaining <= 0) return false;
  if (drop_last_ && remaining < batch_size_) return false;
  return true;
}

Batch DataLoader::Next() {
  LIPF_CHECK(HasNext());
  const int64_t n = static_cast<int64_t>(order_.size());
  const int64_t end = std::min(cursor_ + batch_size_, n);
  std::vector<int64_t> ids(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  return dataset_->MakeBatch(split_, ids);
}

void DataLoader::Skip(int64_t num_batches) {
  LIPF_CHECK_GE(num_batches, 0);
  const int64_t n = static_cast<int64_t>(order_.size());
  for (int64_t i = 0; i < num_batches && HasNext(); ++i) {
    cursor_ = std::min(cursor_ + batch_size_, n);
  }
}

int64_t DataLoader::NumBatches() const {
  const int64_t n = static_cast<int64_t>(order_.size());
  if (drop_last_) return n / batch_size_;
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace lipformer
