#ifndef LIPFORMER_DATA_TIME_SERIES_H_
#define LIPFORMER_DATA_TIME_SERIES_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

// Multivariate time-series container: a [time, channels] value matrix, a
// timestamp per row, and (optionally) future-known covariates split into
// numerical and categorical blocks, matching the paper's Electri-Price /
// Cycle schema (Table IV).

namespace lipformer {

// Gregorian civil datetime at minute granularity; enough for the
// hourly/15-min cadences of the benchmark datasets.
struct DateTime {
  int year = 2016;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;   // 0..23
  int minute = 0; // 0..59

  bool operator==(const DateTime&) const = default;
};

// Days in the given month, honoring leap years.
int DaysInMonth(int year, int month);
// 0 = Monday ... 6 = Sunday.
int DayOfWeek(const DateTime& dt);
// Advances the datetime by `minutes`.
DateTime AddMinutes(const DateTime& dt, int64_t minutes);
// Evenly spaced timestamps starting at `start`.
std::vector<DateTime> MakeTimestamps(const DateTime& start,
                                     int64_t minutes_per_step, int64_t steps);
std::string FormatDateTime(const DateTime& dt);

// Declares the covariate layout of a dataset.
struct CovariateSchema {
  std::vector<std::string> numeric_names;
  std::vector<std::string> categorical_names;
  // Vocabulary size of each categorical field, aligned with
  // categorical_names.
  std::vector<int64_t> categorical_cardinalities;

  int64_t num_numeric() const {
    return static_cast<int64_t>(numeric_names.size());
  }
  int64_t num_categorical() const {
    return static_cast<int64_t>(categorical_names.size());
  }
  int64_t total() const { return num_numeric() + num_categorical(); }
};

struct TimeSeries {
  // [time, channels]
  Tensor values;
  std::vector<std::string> channel_names;
  std::vector<DateTime> timestamps;

  // Future-known covariates (empty tensors when the dataset has none).
  // numeric_covariates: [time, #numeric]; categorical_covariates holds
  // integer codes stored as float, [time, #categorical].
  Tensor numeric_covariates;
  Tensor categorical_covariates;
  CovariateSchema covariate_schema;

  int64_t steps() const { return values.size(0); }
  int64_t channels() const { return values.size(1); }
  bool has_explicit_covariates() const {
    return covariate_schema.total() > 0;
  }
};

}  // namespace lipformer

#endif  // LIPFORMER_DATA_TIME_SERIES_H_
