#ifndef LIPFORMER_DATA_SCALER_H_
#define LIPFORMER_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace lipformer {

// Per-channel standardization (zero mean, unit variance), fitted on the
// training split only, as in the benchmark protocol of DLinear/PatchTST.
// Accuracy metrics in the paper are reported on the scaled series.
class StandardScaler {
 public:
  StandardScaler() = default;

  // data: [time, channels]; fits mean/std per channel over rows
  // [0, fit_rows) (fit_rows <= 0 means all rows).
  void Fit(const Tensor& data, int64_t fit_rows = -1);

  // (x - mean) / std, column-wise. Shape-preserving; last dim must equal
  // the fitted channel count.
  Tensor Transform(const Tensor& data) const;

  // std * x + mean.
  Tensor InverseTransform(const Tensor& data) const;

  // Restores a previously fitted scaler from its statistics (both [c],
  // same length, std entries > 0) — used when loading a serving bundle.
  void Restore(Tensor mean, Tensor std);

  bool fitted() const { return fitted_; }
  const Tensor& mean() const { return mean_; }
  const Tensor& std() const { return std_; }

 private:
  bool fitted_ = false;
  Tensor mean_;  // [channels]
  Tensor std_;   // [channels]
};

}  // namespace lipformer

#endif  // LIPFORMER_DATA_SCALER_H_
