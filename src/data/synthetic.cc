#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace lipformer {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
}  // namespace

TimeSeries GenerateSeasonal(const SeasonalConfig& config) {
  LIPF_CHECK_GT(config.steps, 0);
  LIPF_CHECK_GT(config.channels, 0);
  Rng rng(config.seed);
  const int64_t n = config.steps;
  const int64_t c = config.channels;
  const double minutes_per_day = 24.0 * 60.0;

  // Shared common factor inducing cross-channel correlation.
  std::vector<double> common(static_cast<size_t>(n));
  {
    double ar = 0.0;
    const double phase = rng.Uniform(0.0, kTwoPi);
    for (int64_t t = 0; t < n; ++t) {
      ar = config.ar_coeff * ar + rng.Normal(0.0, config.noise_std);
      const double day_pos =
          static_cast<double>(t * config.minutes_per_step) / minutes_per_day;
      common[static_cast<size_t>(t)] =
          config.daily_amplitude * std::sin(kTwoPi * day_pos + phase) + ar;
    }
  }

  TimeSeries series;
  series.values = Tensor(Shape{n, c});
  series.timestamps =
      MakeTimestamps(config.start, config.minutes_per_step, n);
  series.numeric_covariates = Tensor(Shape{n, 0});
  series.categorical_covariates = Tensor(Shape{n, 0});
  float* out = series.values.data();

  for (int64_t j = 0; j < c; ++j) {
    series.channel_names.push_back("ch" + std::to_string(j));
    Rng ch_rng = rng.Fork();
    const double phase_d = ch_rng.Uniform(0.0, kTwoPi);
    const double phase_w = ch_rng.Uniform(0.0, kTwoPi);
    const double amp_d =
        config.daily_amplitude * ch_rng.Uniform(0.6, 1.4);
    const double amp_w =
        config.weekly_amplitude * ch_rng.Uniform(0.6, 1.4);
    const double level = ch_rng.Normal(0.0, 1.0);
    const double trend = config.trend * ch_rng.Uniform(-1.0, 1.0);
    const double mix = config.cross_channel_mix;

    // Pre-draw regime shift times/magnitudes.
    std::vector<std::pair<int64_t, double>> shifts;
    const int64_t n_shifts = static_cast<int64_t>(config.regime_shifts);
    for (int64_t s = 0; s < n_shifts; ++s) {
      shifts.emplace_back(
          static_cast<int64_t>(ch_rng.UniformInt(static_cast<uint64_t>(n))),
          ch_rng.Normal(0.0, config.regime_shift_scale));
    }

    double ar = 0.0;
    double shift_level = 0.0;
    for (int64_t t = 0; t < n; ++t) {
      for (const auto& [when, magnitude] : shifts) {
        if (when == t) shift_level += magnitude;
      }
      ar = config.ar_coeff * ar + ch_rng.Normal(0.0, config.noise_std);
      const double minutes = static_cast<double>(t * config.minutes_per_step);
      const double day_pos = minutes / minutes_per_day;
      const double week_pos = minutes / (7.0 * minutes_per_day);
      const double own =
          level + trend * static_cast<double>(t) / static_cast<double>(n) +
          amp_d * std::sin(kTwoPi * day_pos + phase_d) +
          amp_w * std::sin(kTwoPi * week_pos + phase_w) + ar + shift_level;
      out[t * c + j] = static_cast<float>(
          (1.0 - mix) * own + mix * common[static_cast<size_t>(t)]);
    }
  }
  return series;
}

TimeSeries GenerateCovariateDriven(const CovariateDrivenConfig& config) {
  LIPF_CHECK_GT(config.steps, 0);
  LIPF_CHECK_GT(config.channels, 0);
  LIPF_CHECK_GE(config.numeric_covariates, 1);
  LIPF_CHECK_GE(config.categorical_cardinality, 2);
  Rng rng(config.seed);
  const int64_t n = config.steps;
  const int64_t c = config.channels;
  const int64_t cn = config.numeric_covariates;
  const int64_t ct = config.categorical_covariates;
  const double minutes_per_day = 24.0 * 60.0;

  TimeSeries series;
  series.values = Tensor(Shape{n, c});
  series.timestamps =
      MakeTimestamps(config.start, config.minutes_per_step, n);
  series.numeric_covariates = Tensor(Shape{n, cn});
  series.categorical_covariates = Tensor(Shape{n, ct});

  CovariateSchema schema;
  for (int64_t k = 0; k < cn; ++k) {
    schema.numeric_names.push_back("num_cov" + std::to_string(k));
  }
  for (int64_t k = 0; k < ct; ++k) {
    schema.categorical_names.push_back("cat_cov" + std::to_string(k));
    schema.categorical_cardinalities.push_back(
        config.categorical_cardinality);
  }
  series.covariate_schema = schema;

  // Numeric covariates: smooth seasonal + slow AR processes (weather/load
  // "forecasts" -- known in advance, correlated with the target).
  float* num = series.numeric_covariates.data();
  for (int64_t k = 0; k < cn; ++k) {
    Rng cov_rng = rng.Fork();
    const double phase = cov_rng.Uniform(0.0, kTwoPi);
    const double period_days = cov_rng.Uniform(0.8, 8.0);
    double ar = 0.0;
    for (int64_t t = 0; t < n; ++t) {
      ar = 0.95 * ar + cov_rng.Normal(0.0, 0.1);
      const double pos = static_cast<double>(t * config.minutes_per_step) /
                         (minutes_per_day * period_days);
      num[t * cn + k] =
          static_cast<float>(std::sin(kTwoPi * pos + phase) + ar);
    }
  }

  // Categorical covariates: thresholded smooth latents (weather condition
  // classes, holiday-like flags).
  float* cat = series.categorical_covariates.data();
  for (int64_t k = 0; k < ct; ++k) {
    Rng cov_rng = rng.Fork();
    const double phase = cov_rng.Uniform(0.0, kTwoPi);
    double ar = 0.0;
    const int64_t card = config.categorical_cardinality;
    for (int64_t t = 0; t < n; ++t) {
      ar = 0.98 * ar + cov_rng.Normal(0.0, 0.05);
      const double pos =
          static_cast<double>(t * config.minutes_per_step) /
          (minutes_per_day * 3.0);
      const double latent = std::sin(kTwoPi * pos + phase) + ar;
      // Map latent in ~[-2, 2] onto category ids.
      int64_t id = static_cast<int64_t>(
          (latent + 2.0) / 4.0 * static_cast<double>(card));
      id = std::min(card - 1, std::max<int64_t>(0, id));
      cat[t * ct + k] = static_cast<float>(id);
    }
  }

  // Targets: linear blend of the numeric covariates + per-category offsets
  // + daily seasonality + noise. Channels share most of their covariate
  // response (real grid prices / bike counts co-move with load and
  // weather) with a small per-channel perturbation.
  std::vector<double> shared_w(static_cast<size_t>(cn));
  {
    Rng shared_rng = rng.Fork();
    for (auto& v : shared_w) v = shared_rng.Normal(0.0, 1.0);
  }
  float* out = series.values.data();
  for (int64_t j = 0; j < c; ++j) {
    series.channel_names.push_back("target" + std::to_string(j));
    Rng ch_rng = rng.Fork();
    std::vector<double> w(static_cast<size_t>(cn));
    for (size_t k = 0; k < w.size(); ++k) {
      w[k] = shared_w[k] + 0.3 * ch_rng.Normal(0.0, 1.0);
    }
    // Normalize the covariate weights so covariate_strength is meaningful.
    double norm = 0.0;
    for (double v : w) norm += v * v;
    norm = std::sqrt(std::max(norm, 1e-9));
    for (auto& v : w) v = v / norm * config.covariate_strength;

    std::vector<std::vector<double>> cat_effect(static_cast<size_t>(ct));
    for (int64_t k = 0; k < ct; ++k) {
      for (int64_t v = 0; v < config.categorical_cardinality; ++v) {
        cat_effect[static_cast<size_t>(k)].push_back(
            ch_rng.Normal(0.0, 0.5 * config.covariate_strength));
      }
    }

    const double phase = ch_rng.Uniform(0.0, kTwoPi);
    for (int64_t t = 0; t < n; ++t) {
      double v = 0.0;
      for (int64_t k = 0; k < cn; ++k) {
        v += w[static_cast<size_t>(k)] * num[t * cn + k];
      }
      for (int64_t k = 0; k < ct; ++k) {
        const int64_t id = static_cast<int64_t>(cat[t * ct + k]);
        v += cat_effect[static_cast<size_t>(k)][static_cast<size_t>(id)];
      }
      const double day_pos =
          static_cast<double>(t * config.minutes_per_step) / minutes_per_day;
      v += config.seasonal_strength * std::sin(kTwoPi * day_pos + phase);
      v += ch_rng.Normal(0.0, config.noise_std);
      out[t * c + j] = static_cast<float>(v);
    }
  }
  return series;
}

}  // namespace lipformer
