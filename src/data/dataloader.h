#ifndef LIPFORMER_DATA_DATALOADER_H_
#define LIPFORMER_DATA_DATALOADER_H_

#include <vector>

#include "common/random.h"
#include "data/window_dataset.h"

namespace lipformer {

// Iterates a WindowDataset split in mini-batches, optionally shuffling
// window order each epoch. Usage:
//   DataLoader loader(ds, Split::kTrain, 32, /*shuffle=*/true, rng);
//   for (loader.Reset(); loader.HasNext();) { Batch b = loader.Next(); ... }
class DataLoader {
 public:
  DataLoader(const WindowDataset* dataset, Split split, int64_t batch_size,
             bool shuffle, Rng rng, bool drop_last = false);

  // Starts a new epoch (reshuffles when enabled).
  void Reset();
  bool HasNext() const;
  Batch Next();

  // Advances past `num_batches` batches without materializing them; used
  // by exact resume to fast-forward to the snapshot's batch cursor after
  // Reset() has regenerated the epoch's shuffle order.
  void Skip(int64_t num_batches);

  int64_t NumBatches() const;
  int64_t batch_size() const { return batch_size_; }

  // The shuffle stream; exact resume exports its state at each epoch
  // start and re-imports it before Reset() to regenerate the same order.
  Rng* mutable_rng() { return &rng_; }

 private:
  const WindowDataset* dataset_;
  Split split_;
  int64_t batch_size_;
  bool shuffle_;
  bool drop_last_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace lipformer

#endif  // LIPFORMER_DATA_DATALOADER_H_
