#ifndef LIPFORMER_DATA_DATALOADER_H_
#define LIPFORMER_DATA_DATALOADER_H_

#include <vector>

#include "common/random.h"
#include "data/window_dataset.h"

namespace lipformer {

// Iterates a WindowDataset split in mini-batches, optionally shuffling
// window order each epoch. Usage:
//   DataLoader loader(ds, Split::kTrain, 32, /*shuffle=*/true, rng);
//   for (loader.Reset(); loader.HasNext();) { Batch b = loader.Next(); ... }
class DataLoader {
 public:
  DataLoader(const WindowDataset* dataset, Split split, int64_t batch_size,
             bool shuffle, Rng rng, bool drop_last = false);

  // Starts a new epoch (reshuffles when enabled).
  void Reset();
  bool HasNext() const;
  Batch Next();

  int64_t NumBatches() const;
  int64_t batch_size() const { return batch_size_; }

 private:
  const WindowDataset* dataset_;
  Split split_;
  int64_t batch_size_;
  bool shuffle_;
  bool drop_last_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace lipformer

#endif  // LIPFORMER_DATA_DATALOADER_H_
