#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"

namespace lipformer {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

bool ParseDateTime(const std::string& s, DateTime* dt) {
  int year, month, day, hour = 0, minute = 0, second = 0;
  const int n = std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &year, &month,
                            &day, &hour, &minute, &second);
  if (n < 3) return false;
  dt->year = year;
  dt->month = month;
  dt->day = day;
  dt->hour = hour;
  dt->minute = minute;
  return true;
}

}  // namespace

Result<TimeSeries> ReadCsvTimeSeries(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty csv: " + path);
  }
  std::vector<std::string> header = SplitLine(line, ',');
  if (header.size() < 2) {
    return Status::InvalidArgument("csv needs a date column plus channels: " +
                                   path);
  }
  const size_t channels = header.size() - 1;

  TimeSeries series;
  series.channel_names.assign(header.begin() + 1, header.end());
  std::vector<float> data;
  size_t row = 1;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line, ',');
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("row " + std::to_string(row) + " of " +
                                     path + " has wrong column count");
    }
    DateTime dt;
    if (!ParseDateTime(fields[0], &dt)) {
      return Status::InvalidArgument("unparsable date at row " +
                                     std::to_string(row) + " of " + path);
    }
    series.timestamps.push_back(dt);
    for (size_t j = 1; j < fields.size(); ++j) {
      try {
        data.push_back(std::stof(fields[j]));
      } catch (const std::exception&) {
        return Status::InvalidArgument("unparsable number at row " +
                                       std::to_string(row) + " of " + path);
      }
    }
  }
  const int64_t steps = static_cast<int64_t>(series.timestamps.size());
  if (steps == 0) return Status::InvalidArgument("no data rows in " + path);
  series.values = Tensor(Shape{steps, static_cast<int64_t>(channels)},
                         std::move(data));
  series.numeric_covariates = Tensor(Shape{steps, 0});
  series.categorical_covariates = Tensor(Shape{steps, 0});
  return series;
}

Status WriteCsvTimeSeries(const std::string& path, const TimeSeries& series) {
  // Rendered in memory and published atomically: a crash mid-export never
  // leaves a half-written CSV where a previous export used to be.
  std::ostringstream out;
  out << "date";
  for (int64_t j = 0; j < series.channels(); ++j) {
    if (j < static_cast<int64_t>(series.channel_names.size())) {
      out << "," << series.channel_names[static_cast<size_t>(j)];
    } else {
      out << ",ch" << j;
    }
  }
  out << "\n";
  const float* p = series.values.data();
  const int64_t c = series.channels();
  for (int64_t i = 0; i < series.steps(); ++i) {
    out << FormatDateTime(series.timestamps[static_cast<size_t>(i)]) << ":00";
    for (int64_t j = 0; j < c; ++j) out << "," << p[i * c + j];
    out << "\n";
  }
  const std::string text = out.str();
  return AtomicWriteFile(path, text.data(), text.size());
}

}  // namespace lipformer
