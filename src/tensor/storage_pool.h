#ifndef LIPFORMER_TENSOR_STORAGE_POOL_H_
#define LIPFORMER_TENSOR_STORAGE_POOL_H_

#include <atomic>
#include <cstdint>

// Size-bucketed, thread-safe storage pool behind every Tensor (see
// DESIGN.md "Memory architecture"). A Storage handle is an intrusively
// refcounted float block: the refcount lives in a header in front of the
// data, so copying a Tensor costs one relaxed atomic increment and no
// allocation. When the last handle releases a block it is parked on a
// per-size-class freelist instead of freed, and the next acquisition of
// the same class pops it back — steady-state training and inference run
// with (near) zero mallocs per step.
//
// Contents of an acquired block are UNINITIALIZED (possibly stale data
// from a previous tensor). Tensor::Empty exposes this directly; callers
// must write every element before reading. Tensor(Shape) and
// Tensor::Zeros keep their zero-fill semantics on top of Acquire.
//
// The pool never changes numerics: it only recycles memory. Escape hatch:
// LIPF_DISABLE_POOL=1 in the environment starts the process with the pool
// disabled (every acquire is a heap alloc, every release a free), and
// SetStoragePoolEnabled toggles it at runtime. Blocks remember how they
// were allocated, so toggling mid-process is safe.

namespace lipformer {

namespace internal {

// Header preceding the float payload inside one heap allocation. `next`
// links blocks parked on a freelist; `pooled` records whether release
// should try to park the block (fixed at allocation time).
struct alignas(64) StorageBlock {
  std::atomic<int64_t> refs;
  int64_t capacity;  // floats, a size-class power of two
  int32_t size_class;
  bool pooled;
  StorageBlock* next;

  float* data() {
    return reinterpret_cast<float*>(reinterpret_cast<char*>(this) +
                                    sizeof(StorageBlock));
  }
};

}  // namespace internal

// Refcounted handle to a pooled float block. Default-constructed handles
// are empty (data() == nullptr).
class Storage {
 public:
  Storage() = default;
  ~Storage() { Release(); }
  Storage(const Storage& other) : block_(other.block_) { Retain(); }
  Storage& operator=(const Storage& other) {
    if (block_ != other.block_) {
      Release();
      block_ = other.block_;
      Retain();
    }
    return *this;
  }
  Storage(Storage&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      Release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }

  // Returns a handle to at least `numel` floats of UNINITIALIZED memory
  // (64-byte aligned). numel <= 0 is treated as the minimum size class.
  static Storage Acquire(int64_t numel);

  float* data() const { return block_ ? block_->data() : nullptr; }
  int64_t capacity() const { return block_ ? block_->capacity : 0; }
  explicit operator bool() const { return block_ != nullptr; }
  bool SharesWith(const Storage& other) const {
    return block_ == other.block_;
  }

 private:
  void Retain() {
    if (block_) block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  void Release();

  internal::StorageBlock* block_ = nullptr;
};

// Monotonic counters (reset via ResetStoragePoolCounters) plus live
// gauges. acquires == pool_hits + heap_allocs.
struct StoragePoolStats {
  int64_t acquires = 0;     // Storage::Acquire calls
  int64_t pool_hits = 0;    // served from a freelist
  int64_t heap_allocs = 0;  // served by operator new
  int64_t bytes_live = 0;   // gauge: bytes in blocks currently referenced
  int64_t bytes_pooled = 0; // gauge: bytes parked on freelists
};

StoragePoolStats GetStoragePoolStats();
void ResetStoragePoolCounters();  // zeroes counters, keeps the gauges

// Pool on/off. Initial state honours LIPF_DISABLE_POOL=1; toggling only
// affects blocks allocated afterwards.
bool StoragePoolEnabled();
void SetStoragePoolEnabled(bool enabled);

// Frees every parked block. Call between benchmark configurations or in
// tests that assert on exact pool behaviour.
void ClearStoragePool();

// The capacity (in floats) Acquire would reserve for `numel` elements:
// the next power of two, with a 16-float minimum. Exposed for tests.
int64_t StorageCapacityForNumel(int64_t numel);

}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_STORAGE_POOL_H_
