#include "tensor/storage_pool.h"

#include <cstdlib>
#include <mutex>
#include <new>

namespace lipformer {
namespace {

using internal::StorageBlock;

constexpr int64_t kMinCapacity = 16;  // floats; one cache line of payload
constexpr int kMinClass = 4;          // log2(kMinCapacity)
constexpr int kNumClasses = 44;       // up to 2^(4+43) floats — unreachable
// Freelists are bounded so a transient spike (e.g. one huge eval batch)
// cannot pin memory forever: at most 64 blocks or ~64 MB parked per class,
// whichever is smaller, with at least one slot so the hot path always
// recycles.
constexpr int64_t kMaxParkedPerClass = 64;
constexpr int64_t kMaxParkedBytesPerClass = int64_t{1} << 26;

struct FreeList {
  StorageBlock* head = nullptr;
  int64_t count = 0;
};

struct Pool {
  std::mutex mu;
  FreeList lists[kNumClasses];
  std::atomic<int64_t> acquires{0};
  std::atomic<int64_t> pool_hits{0};
  std::atomic<int64_t> heap_allocs{0};
  std::atomic<int64_t> bytes_live{0};
  std::atomic<int64_t> bytes_pooled{0};
  std::atomic<bool> enabled{true};
};

// Leaked on purpose: Tensors with static storage duration may release
// after any pool destructor would have run.
Pool& ThePool() {
  static Pool* pool = [] {
    Pool* p = new Pool;
    const char* env = std::getenv("LIPF_DISABLE_POOL");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      p->enabled.store(false, std::memory_order_relaxed);
    }
    return p;
  }();
  return *pool;
}

StorageBlock* NewBlock(int cls, int64_t capacity, bool pooled) {
  void* raw = ::operator new(
      sizeof(StorageBlock) + static_cast<size_t>(capacity) * sizeof(float),
      std::align_val_t{64});
  StorageBlock* block = static_cast<StorageBlock*>(raw);
  block->refs.store(1, std::memory_order_relaxed);
  block->capacity = capacity;
  block->size_class = cls;
  block->pooled = pooled;
  block->next = nullptr;
  return block;
}

void FreeBlock(StorageBlock* block) {
  ::operator delete(static_cast<void*>(block), std::align_val_t{64});
}

}  // namespace

int64_t StorageCapacityForNumel(int64_t numel) {
  int64_t capacity = kMinCapacity;
  while (capacity < numel) capacity <<= 1;
  return capacity;
}

Storage Storage::Acquire(int64_t numel) {
  Pool& pool = ThePool();
  pool.acquires.fetch_add(1, std::memory_order_relaxed);

  int64_t capacity = kMinCapacity;
  int cls = kMinClass;
  while (capacity < numel) {
    capacity <<= 1;
    ++cls;
  }

  const bool enabled = pool.enabled.load(std::memory_order_relaxed);
  StorageBlock* block = nullptr;
  if (enabled && cls - kMinClass < kNumClasses) {
    FreeList& list = pool.lists[cls - kMinClass];
    std::lock_guard<std::mutex> lock(pool.mu);
    if (list.head != nullptr) {
      block = list.head;
      list.head = block->next;
      --list.count;
    }
  }

  const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
  if (block != nullptr) {
    pool.pool_hits.fetch_add(1, std::memory_order_relaxed);
    pool.bytes_pooled.fetch_sub(bytes, std::memory_order_relaxed);
    block->refs.store(1, std::memory_order_relaxed);
    block->next = nullptr;
  } else {
    pool.heap_allocs.fetch_add(1, std::memory_order_relaxed);
    block = NewBlock(cls, capacity, enabled && cls - kMinClass < kNumClasses);
  }
  pool.bytes_live.fetch_add(bytes, std::memory_order_relaxed);

  Storage storage;
  storage.block_ = block;
  return storage;
}

void Storage::Release() {
  StorageBlock* block = block_;
  if (block == nullptr) return;
  block_ = nullptr;
  if (block->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  Pool& pool = ThePool();
  const int64_t bytes = block->capacity * static_cast<int64_t>(sizeof(float));
  pool.bytes_live.fetch_sub(bytes, std::memory_order_relaxed);

  if (block->pooled && pool.enabled.load(std::memory_order_relaxed)) {
    FreeList& list = pool.lists[block->size_class - kMinClass];
    std::lock_guard<std::mutex> lock(pool.mu);
    if (list.count < kMaxParkedPerClass &&
        (list.count + 1) * bytes <= kMaxParkedBytesPerClass) {
      block->next = list.head;
      list.head = block;
      ++list.count;
      pool.bytes_pooled.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
  }
  FreeBlock(block);
}

StoragePoolStats GetStoragePoolStats() {
  Pool& pool = ThePool();
  StoragePoolStats stats;
  stats.acquires = pool.acquires.load(std::memory_order_relaxed);
  stats.pool_hits = pool.pool_hits.load(std::memory_order_relaxed);
  stats.heap_allocs = pool.heap_allocs.load(std::memory_order_relaxed);
  stats.bytes_live = pool.bytes_live.load(std::memory_order_relaxed);
  stats.bytes_pooled = pool.bytes_pooled.load(std::memory_order_relaxed);
  return stats;
}

void ResetStoragePoolCounters() {
  Pool& pool = ThePool();
  pool.acquires.store(0, std::memory_order_relaxed);
  pool.pool_hits.store(0, std::memory_order_relaxed);
  pool.heap_allocs.store(0, std::memory_order_relaxed);
}

bool StoragePoolEnabled() {
  return ThePool().enabled.load(std::memory_order_relaxed);
}

void SetStoragePoolEnabled(bool enabled) {
  ThePool().enabled.store(enabled, std::memory_order_relaxed);
}

void ClearStoragePool() {
  Pool& pool = ThePool();
  StorageBlock* to_free = nullptr;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    for (FreeList& list : pool.lists) {
      while (list.head != nullptr) {
        StorageBlock* block = list.head;
        list.head = block->next;
        --list.count;
        block->next = to_free;
        to_free = block;
      }
    }
    pool.bytes_pooled.store(0, std::memory_order_relaxed);
  }
  while (to_free != nullptr) {
    StorageBlock* block = to_free;
    to_free = block->next;
    FreeBlock(block);
  }
}

}  // namespace lipformer
