#include "tensor/fft.h"

#include <cmath>

#include "tensor/op_trace.h"

namespace lipformer {

void Fft(std::vector<std::complex<float>>& a, bool inverse) {
  const size_t n = a.size();
  LIPF_CHECK((n & (n - 1)) == 0) << "FFT size must be a power of two";
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const float ang =
        2.0f * static_cast<float>(M_PI) / static_cast<float>(len) *
        (inverse ? 1.0f : -1.0f);
    const std::complex<float> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<float> u = a[i + j];
        const std::complex<float> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n);
    for (auto& x : a) x *= inv_n;
  }
}

int64_t NextPowerOfTwo(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Tensor Autocorrelation(const Tensor& x) {
  // Input-dependent output produced outside the recorded kernel set: a
  // trace would freeze it as a constant, so it poisons plan compilation.
  // (DftBasis/InverseDftBasis are shape-only constants and are safe.)
  if (trace::Active()) trace::RecordUnsupported("Autocorrelation");
  LIPF_CHECK_EQ(x.dim(), 2);
  const int64_t rows = x.size(0);
  const int64_t n = x.size(1);
  const int64_t padded = NextPowerOfTwo(2 * n);
  Tensor out = Tensor::Empty(Shape{rows, n});
  const float* px = x.data();
  float* po = out.data();
  std::vector<std::complex<float>> buf(static_cast<size_t>(padded));
  for (int64_t r = 0; r < rows; ++r) {
    float mean = 0.0f;
    for (int64_t t = 0; t < n; ++t) mean += px[r * n + t];
    mean /= static_cast<float>(n);
    std::fill(buf.begin(), buf.end(), std::complex<float>(0.0f, 0.0f));
    for (int64_t t = 0; t < n; ++t) {
      buf[static_cast<size_t>(t)] = px[r * n + t] - mean;
    }
    Fft(buf, /*inverse=*/false);
    for (auto& v : buf) v = v * std::conj(v);
    Fft(buf, /*inverse=*/true);
    const float inv_n = 1.0f / static_cast<float>(n);
    for (int64_t tau = 0; tau < n; ++tau) {
      po[r * n + tau] = buf[static_cast<size_t>(tau)].real() * inv_n;
    }
  }
  return out;
}

void DftBasis(int64_t n, int64_t k, Tensor* cos_mat, Tensor* sin_mat) {
  LIPF_CHECK_LE(k, n / 2 + 1);
  *cos_mat = Tensor::Empty(Shape{n, k});
  *sin_mat = Tensor::Empty(Shape{n, k});
  float* pc = cos_mat->data();
  float* ps = sin_mat->data();
  for (int64_t t = 0; t < n; ++t) {
    for (int64_t f = 0; f < k; ++f) {
      const double ang = 2.0 * M_PI * static_cast<double>(f) *
                         static_cast<double>(t) / static_cast<double>(n);
      pc[t * k + f] = static_cast<float>(std::cos(ang));
      ps[t * k + f] = static_cast<float>(-std::sin(ang));
    }
  }
}

void InverseDftBasis(int64_t n, int64_t k, Tensor* cos_mat, Tensor* sin_mat) {
  LIPF_CHECK_LE(k, n / 2 + 1);
  *cos_mat = Tensor::Empty(Shape{k, n});
  *sin_mat = Tensor::Empty(Shape{k, n});
  float* pc = cos_mat->data();
  float* ps = sin_mat->data();
  for (int64_t f = 0; f < k; ++f) {
    // DC (and Nyquist when applicable) contribute once; others twice.
    const bool is_dc = (f == 0);
    const bool is_nyquist = (2 * f == n);
    const float scale =
        (is_dc || is_nyquist ? 1.0f : 2.0f) / static_cast<float>(n);
    for (int64_t t = 0; t < n; ++t) {
      const double ang = 2.0 * M_PI * static_cast<double>(f) *
                         static_cast<double>(t) / static_cast<double>(n);
      pc[f * n + t] = scale * static_cast<float>(std::cos(ang));
      ps[f * n + t] = scale * static_cast<float>(-std::sin(ang));
    }
  }
}

}  // namespace lipformer
