#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

namespace lipformer {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    LIPF_CHECK_GE(d, 0) << "negative dimension in shape";
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

namespace {
// Even 0-element tensors carry one addressable (zeroed) float so data()
// and the placeholder-scalar default Tensor() stay valid.
inline int64_t StorageCount(int64_t numel) {
  return std::max<int64_t>(numel, 1);
}
}  // namespace

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(NumElements(shape_)) {
  storage_ = Storage::Acquire(StorageCount(numel_));
  std::memset(storage_.data(), 0,
              static_cast<size_t>(StorageCount(numel_)) * sizeof(float));
  InitStrides();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(NumElements(shape_)) {
  LIPF_CHECK_EQ(numel_, static_cast<int64_t>(data.size()))
      << "data size does not match shape " << ShapeToString(shape_);
  storage_ = Storage::Acquire(StorageCount(numel_));
  if (numel_ > 0) {
    std::memcpy(storage_.data(), data.data(),
                static_cast<size_t>(numel_) * sizeof(float));
  } else {
    storage_.data()[0] = 0.0f;
  }
  InitStrides();
}

void Tensor::InitStrides() {
  strides_.assign(shape_.size(), 1);
  for (int64_t i = dim() - 2; i >= 0; --i) {
    strides_[i] = strides_[i + 1] * shape_[i + 1];
  }
}

Tensor Tensor::Empty(Shape shape) {
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(shape);
  t.numel_ = NumElements(t.shape_);
  t.storage_ = Storage::Acquire(StorageCount(t.numel_));
  if (t.numel_ == 0) t.storage_.data()[0] = 0.0f;
  t.InitStrides();
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t = Empty(Shape{});
  t.data()[0] = value;
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.Normal()) * stddev;
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Empty(Shape{n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t d) const {
  if (d < 0) d += dim();
  LIPF_CHECK_GE(d, 0);
  LIPF_CHECK_LT(d, dim());
  return shape_[d];
}

float Tensor::item() const {
  LIPF_CHECK_EQ(numel_, 1) << "item() on tensor with shape "
                           << ShapeToString(shape_);
  return data()[0];
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  LIPF_CHECK_EQ(static_cast<int64_t>(idx.size()), dim());
  int64_t off = 0;
  int64_t d = 0;
  for (int64_t i : idx) {
    LIPF_CHECK_GE(i, 0);
    LIPF_CHECK_LT(i, shape_[d]);
    off += i * strides_[d];
    ++d;
  }
  return data()[off];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

Tensor Tensor::Reshape(Shape new_shape) const {
  int64_t known = 1;
  int64_t infer_pos = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      LIPF_CHECK_EQ(infer_pos, -1) << "at most one -1 in reshape";
      infer_pos = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_pos >= 0) {
    LIPF_CHECK_GT(known, 0);
    LIPF_CHECK_EQ(numel_ % known, 0)
        << "cannot infer reshape dim for " << ShapeToString(new_shape);
    new_shape[infer_pos] = numel_ / known;
  }
  LIPF_CHECK_EQ(NumElements(new_shape), numel_)
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor out{NoAllocTag{}};
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  out.storage_ = storage_;
  out.InitStrides();
  return out;
}

Tensor Tensor::Unsqueeze(int64_t d) const {
  if (d < 0) d += dim() + 1;
  LIPF_CHECK_GE(d, 0);
  LIPF_CHECK_LE(d, dim());
  Shape s = shape_;
  s.insert(s.begin() + d, 1);
  return Reshape(std::move(s));
}

Tensor Tensor::Squeeze(int64_t d) const {
  if (d < 0) d += dim();
  LIPF_CHECK_GE(d, 0);
  LIPF_CHECK_LT(d, dim());
  LIPF_CHECK_EQ(shape_[d], 1) << "squeeze of non-1 dimension";
  Shape s = shape_;
  s.erase(s.begin() + d);
  return Reshape(std::move(s));
}

Tensor Tensor::Clone() const {
  Tensor out = Empty(shape_);
  std::memcpy(out.data(), data(),
              static_cast<size_t>(StorageCount(numel_)) * sizeof(float));
  return out;
}

void Tensor::Fill(float value) {
  float* p = data();
  const int64_t n = StorageCount(numel_);
  for (int64_t i = 0; i < n; ++i) p[i] = value;
}

std::string Tensor::ToString(int64_t max_per_dim) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " [";
  const int64_t n = std::min<int64_t>(numel_, max_per_dim);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data()[i];
  }
  if (numel_ > n) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace lipformer
