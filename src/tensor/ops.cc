#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/op_trace.h"
#include "tensor/ops_raw.h"

namespace lipformer {

namespace {

// Global MAC counter. Kernels run on the shared thread pool and callers
// may issue kernels from several threads, so both the flag and the count
// are atomics; parallel MatMul chunks accumulate locally and flush once
// per chunk (see AddMacs).
std::atomic<bool> g_mac_enabled{false};
std::atomic<int64_t> g_mac_count{0};

inline bool MacsEnabled() {
  return g_mac_enabled.load(std::memory_order_relaxed);
}

inline void AddMacs(int64_t macs) {
  g_mac_count.fetch_add(macs, std::memory_order_relaxed);
}

// Minimum work per chunk before a kernel fans out to the pool; keeps tiny
// tensors on the exact serial path with zero dispatch overhead. Chunk
// boundaries derived from these are functions of shape only, so outputs
// stay bitwise identical at every thread count.
constexpr int64_t kElementwiseGrain = 8192;  // elements
constexpr int64_t kReductionGrain = 8192;    // accumulated scalars
constexpr int64_t kCopyGrain = 16384;        // copied elements

// Chunk grain for kernels whose per-index cost is `work_per_index`.
inline int64_t GrainFor(int64_t total_grain, int64_t work_per_index) {
  return std::max<int64_t>(1, total_grain / std::max<int64_t>(1, work_per_index));
}

// Expands `shape` to `ndim` dims by prepending 1s.
Shape PadShape(const Shape& shape, int64_t ndim) {
  Shape out(ndim, 1);
  const int64_t off = ndim - static_cast<int64_t>(shape.size());
  for (size_t i = 0; i < shape.size(); ++i) out[off + i] = shape[i];
  return out;
}

// Row-major strides for a shape, with 0 stride for broadcast (size-1) dims
// relative to the output shape.
Shape BroadcastStrides(const Shape& shape, const Shape& out_shape) {
  const int64_t nd = static_cast<int64_t>(out_shape.size());
  Shape padded = PadShape(shape, nd);
  Shape strides(nd, 0);
  int64_t s = 1;
  for (int64_t i = nd - 1; i >= 0; --i) {
    if (padded[i] == 1 && out_shape[i] != 1) {
      strides[i] = 0;
    } else {
      strides[i] = s;
    }
    s *= padded[i];
  }
  return strides;
}

// Decomposes linear index `i` over `shape` and returns the dot product of
// the multi-index with `strides` (the broadcast offset of element i); also
// fills `idx` with the multi-index when non-null.
int64_t StridedOffset(int64_t i, const Shape& shape, const Shape& strides,
                      std::vector<int64_t>* idx) {
  int64_t off = 0;
  for (int64_t d = static_cast<int64_t>(shape.size()) - 1; d >= 0; --d) {
    const int64_t id = i % shape[d];
    i /= shape[d];
    off += id * strides[d];
    if (idx != nullptr) (*idx)[d] = id;
  }
  return off;
}

// Raw-pointer variant of StridedOffset for the out-variant kernels.
int64_t StridedOffsetRaw(int64_t i, const int64_t* shape,
                         const int64_t* strides, int64_t nd, int64_t* idx) {
  int64_t off = 0;
  for (int64_t d = nd - 1; d >= 0; --d) {
    const int64_t id = i % shape[d];
    i /= shape[d];
    off += id * strides[d];
    if (idx != nullptr) idx[d] = id;
  }
  return off;
}

// Splits shape into (outer, dim_size, inner) around `dim` for reductions.
void SplitAt(const Shape& shape, int64_t dim, int64_t* outer, int64_t* mid,
             int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape[i];
  *mid = shape[dim];
  for (size_t i = dim + 1; i < shape.size(); ++i) *inner *= shape[i];
}

int64_t NormalizeDim(int64_t dim, int64_t ndim) {
  if (dim < 0) dim += ndim;
  LIPF_CHECK_GE(dim, 0);
  LIPF_CHECK_LT(dim, ndim);
  return dim;
}

// tanh-approximation GELU derivative; the forward lives out-of-line in
// raw::GeluFwd (ops_raw.h) so every caller — standalone Gelu, the fused
// AddBiasAct epilogue, the GEMM epilogue, the fused chain — shares one
// compiled copy and fused and unfused paths agree bit for bit.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

inline float GeluGrad(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  const float th = std::tanh(inner);
  const float sech2 = 1.0f - th * th;
  const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + th) + 0.5f * x * sech2 * dinner;
}

}  // namespace

// ---- Raw out-variant kernels (tensor/ops_raw.h) ----
// These hold the actual loops; the public ops below are shape prologues
// around them, and the plan executor (serve/plan_exec.cc) calls them with
// arena pointers. One compiled loop per kernel keeps module and plan
// paths bitwise identical by construction.

namespace raw {

// One compiled copy for every caller (noinline): inlining into different
// loop contexts could let the compiler contract the internal mul/add
// pairs differently per call site, breaking the bitwise fused == unfused
// guarantee gelu-activated paths rely on.
__attribute__((noinline)) float GeluFwd(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

// Out-of-line cases of ApplyUn (ops_raw.h): each is an opaque libm call
// (or GeluFwd), so there is nothing for a caller to contract across.
float ApplyUnSlow(Un op, float s, float x) {
  switch (op) {
    case Un::kPowScalar:
      return std::pow(x, s);
    case Un::kExp:
      return std::exp(x);
    case Un::kLog:
      return std::log(x);
    case Un::kSin:
      return std::sin(x);
    case Un::kCos:
      return std::cos(x);
    case Un::kTanh:
      return std::tanh(x);
    case Un::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case Un::kGelu:
      return GeluFwd(x);
    default:
      break;
  }
  LIPF_CHECK(false) << "ApplyUnSlow: op has an inline fast path";
  return 0.0f;
}

namespace {

template <typename F>
void BinarySameT(const float* pa, const float* pb, float* po, int64_t n,
                 F f) {
  ParallelFor(n, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      po[i] = f(pa[i], pb[i]);
    }
  });
}

template <typename F>
void BinaryBcastT(const float* pa, const float* pb, float* po,
                  const int64_t* oshape, const int64_t* sa,
                  const int64_t* sb, int64_t nd, int64_t numel, F f) {
  ParallelFor(numel, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    // Seed the odometer at the chunk's first element, then walk serially.
    std::vector<int64_t> idx(nd, 0);
    int64_t oa = StridedOffsetRaw(begin, oshape, sa, nd, idx.data());
    int64_t ob = StridedOffsetRaw(begin, oshape, sb, nd, nullptr);
    for (int64_t i = begin; i < end; ++i) {
      po[i] = f(pa[oa], pb[ob]);
      // Increment the multi-index (odometer).
      for (int64_t d = nd - 1; d >= 0; --d) {
        ++idx[d];
        oa += sa[d];
        ob += sb[d];
        if (idx[d] < oshape[d]) break;
        idx[d] = 0;
        oa -= sa[d] * oshape[d];
        ob -= sb[d] * oshape[d];
      }
    }
  });
}

template <typename F>
void UnaryT(const float* pa, float* po, int64_t n, F f) {
  ParallelFor(n, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = f(pa[i]);
  });
}

// Both dispatches route through ApplyBin/ApplyUn (ops_raw.h) with a
// compile-time op, which folds each lambda to the bare operation — the
// fused chain interpreter shares the same definitions with a runtime op,
// so there is exactly one source of scalar semantics per operation.
template <typename F>
void BinaryDispatch(Bin op, F run) {
  switch (op) {
    case Bin::kAdd:
      run([](float x, float y) { return ApplyBin(Bin::kAdd, x, y); });
      return;
    case Bin::kSub:
      run([](float x, float y) { return ApplyBin(Bin::kSub, x, y); });
      return;
    case Bin::kMul:
      run([](float x, float y) { return ApplyBin(Bin::kMul, x, y); });
      return;
    case Bin::kDiv:
      run([](float x, float y) { return ApplyBin(Bin::kDiv, x, y); });
      return;
    case Bin::kMax:
      run([](float x, float y) { return ApplyBin(Bin::kMax, x, y); });
      return;
    case Bin::kMin:
      run([](float x, float y) { return ApplyBin(Bin::kMin, x, y); });
      return;
  }
}

template <typename F>
void UnaryDispatch(Un op, float s, F run) {
  switch (op) {
    case Un::kAddScalar:
      run([s](float x) { return ApplyUn(Un::kAddScalar, s, x); });
      return;
    case Un::kMulScalar:
      run([s](float x) { return ApplyUn(Un::kMulScalar, s, x); });
      return;
    case Un::kPowScalar:
      run([s](float x) { return ApplyUn(Un::kPowScalar, s, x); });
      return;
    case Un::kNeg:
      run([](float x) { return ApplyUn(Un::kNeg, 0.0f, x); });
      return;
    case Un::kExp:
      run([](float x) { return ApplyUn(Un::kExp, 0.0f, x); });
      return;
    case Un::kLog:
      run([](float x) { return ApplyUn(Un::kLog, 0.0f, x); });
      return;
    case Un::kSqrt:
      run([](float x) { return ApplyUn(Un::kSqrt, 0.0f, x); });
      return;
    case Un::kAbs:
      run([](float x) { return ApplyUn(Un::kAbs, 0.0f, x); });
      return;
    case Un::kSin:
      run([](float x) { return ApplyUn(Un::kSin, 0.0f, x); });
      return;
    case Un::kCos:
      run([](float x) { return ApplyUn(Un::kCos, 0.0f, x); });
      return;
    case Un::kTanh:
      run([](float x) { return ApplyUn(Un::kTanh, 0.0f, x); });
      return;
    case Un::kSigmoid:
      run([](float x) { return ApplyUn(Un::kSigmoid, 0.0f, x); });
      return;
    case Un::kRelu:
      run([](float x) { return ApplyUn(Un::kRelu, 0.0f, x); });
      return;
    case Un::kGelu:
      run([](float x) { return ApplyUn(Un::kGelu, 0.0f, x); });
      return;
  }
}

}  // namespace

void BinarySame(Bin op, const float* a, const float* b, float* out,
                int64_t n) {
  BinaryDispatch(op, [&](auto f) { BinarySameT(a, b, out, n, f); });
}

void BinaryBcast(Bin op, const float* a, const float* b, float* out,
                 const int64_t* oshape, const int64_t* sa, const int64_t* sb,
                 int64_t nd, int64_t numel) {
  BinaryDispatch(op, [&](auto f) {
    BinaryBcastT(a, b, out, oshape, sa, sb, nd, numel, f);
  });
}

void Unary(Un op, float s, const float* a, float* out, int64_t n) {
  UnaryDispatch(op, s, [&](auto f) { UnaryT(a, out, n, f); });
}

void PermuteCopy(const float* pi, float* po, const int64_t* oshape,
                 const int64_t* gather, int64_t nd, int64_t numel) {
  // Gather parallelized over output positions; chunks write disjoint
  // ranges of po, so the result is chunking-independent.
  ParallelFor(numel, kCopyGrain, [&](int64_t begin, int64_t end) {
    // Seed the odometer at the chunk's first element, then walk serially.
    std::vector<int64_t> idx(nd, 0);
    int64_t src = StridedOffsetRaw(begin, oshape, gather, nd, idx.data());
    for (int64_t i = begin; i < end; ++i) {
      po[i] = pi[src];
      for (int64_t d = nd - 1; d >= 0; --d) {
        ++idx[d];
        src += gather[d];
        if (idx[d] < oshape[d]) break;
        idx[d] = 0;
        src -= gather[d] * oshape[d];
      }
    }
  });
}

void SliceCopy(const float* pi, float* po, int64_t outer, int64_t mid,
               int64_t inner, int64_t start, int64_t len) {
  ParallelFor(outer, GrainFor(kCopyGrain, len * inner),
              [&](int64_t o_begin, int64_t o_end) {
                for (int64_t o = o_begin; o < o_end; ++o) {
                  const float* src = pi + (o * mid + start) * inner;
                  float* dst = po + o * len * inner;
                  std::memcpy(dst, src,
                              sizeof(float) * static_cast<size_t>(len * inner));
                }
              });
}

void ConcatCopyOne(const float* pi, float* po, int64_t outer, int64_t mid,
                   int64_t mid_out, int64_t offset, int64_t inner) {
  ParallelFor(outer, GrainFor(kCopyGrain, mid * inner),
              [&](int64_t o_begin, int64_t o_end) {
                for (int64_t o = o_begin; o < o_end; ++o) {
                  float* dst = po + (o * mid_out + offset) * inner;
                  const float* src = pi + o * mid * inner;
                  std::memcpy(dst, src,
                              sizeof(float) *
                                  static_cast<size_t>(mid * inner));
                }
              });
}

void SumDim(const float* pi, float* po, int64_t outer, int64_t mid,
            int64_t inner) {
  // One chunk owns each output element's full accumulation, in the serial
  // order, so sums are bitwise identical at any thread count.
  ParallelFor(outer * inner, GrainFor(kReductionGrain, mid),
              [&](int64_t begin, int64_t end) {
                for (int64_t e = begin; e < end; ++e) {
                  const int64_t o = e / inner;
                  const int64_t i = e % inner;
                  float acc = 0.0f;
                  for (int64_t m = 0; m < mid; ++m) {
                    acc += pi[(o * mid + m) * inner + i];
                  }
                  po[e] = acc;
                }
              });
}

void SoftmaxDim(const float* pi, float* po, int64_t outer, int64_t mid,
                int64_t inner) {
  ParallelFor(outer * inner, GrainFor(kReductionGrain, 3 * mid),
              [&](int64_t begin, int64_t end) {
                for (int64_t e = begin; e < end; ++e) {
                  const int64_t o = e / inner;
                  const int64_t i = e % inner;
                  const int64_t base = o * mid * inner + i;
                  float mx = pi[base];
                  for (int64_t m = 1; m < mid; ++m) {
                    mx = std::max(mx, pi[base + m * inner]);
                  }
                  float denom = 0.0f;
                  for (int64_t m = 0; m < mid; ++m) {
                    const float ex = std::exp(pi[base + m * inner] - mx);
                    po[base + m * inner] = ex;
                    denom += ex;
                  }
                  const float inv = 1.0f / denom;
                  for (int64_t m = 0; m < mid; ++m) {
                    po[base + m * inner] *= inv;
                  }
                }
              });
}

void LogSoftmaxDim(const float* pi, float* po, int64_t outer, int64_t mid,
                   int64_t inner) {
  ParallelFor(outer * inner, GrainFor(kReductionGrain, 3 * mid),
              [&](int64_t begin, int64_t end) {
                for (int64_t e = begin; e < end; ++e) {
                  const int64_t o = e / inner;
                  const int64_t i = e % inner;
                  const int64_t base = o * mid * inner + i;
                  float mx = pi[base];
                  for (int64_t m = 1; m < mid; ++m) {
                    mx = std::max(mx, pi[base + m * inner]);
                  }
                  float denom = 0.0f;
                  for (int64_t m = 0; m < mid; ++m) {
                    denom += std::exp(pi[base + m * inner] - mx);
                  }
                  const float log_denom = std::log(denom) + mx;
                  for (int64_t m = 0; m < mid; ++m) {
                    po[base + m * inner] = pi[base + m * inner] - log_denom;
                  }
                }
              });
}

namespace {

// Row-wise driver for the bias-add epilogue: rows of x's last dim against
// the 1-d bias, act applied scalar-wise. Keeps the act dispatch outside
// the inner loop.
template <typename F>
void AddBiasEpilogueT(const float* pi, const float* pb, float* po,
                      int64_t rows, int64_t c, F f) {
  ParallelFor(rows, GrainFor(kElementwiseGrain, c),
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const float* x_row = pi + r * c;
                  float* out_row = po + r * c;
                  for (int64_t j = 0; j < c; ++j) {
                    out_row[j] = f(x_row[j] + pb[j]);
                  }
                }
              });
}

}  // namespace

void AddBiasActRows(const float* x, const float* bias, float* out,
                    int64_t rows, int64_t c, FusedAct act) {
  switch (act) {
    case FusedAct::kRelu:
      AddBiasEpilogueT(x, bias, out, rows, c,
                       [](float z) { return z > 0.0f ? z : 0.0f; });
      return;
    case FusedAct::kGelu:
      AddBiasEpilogueT(x, bias, out, rows, c,
                       [](float z) { return GeluFwd(z); });
      return;
    case FusedAct::kNone:
      break;
  }
  AddBiasEpilogueT(x, bias, out, rows, c, [](float z) { return z; });
}

namespace {

template <typename F>
void BroadcastMidT(const float* pa, const float* pb, float* po, int64_t rows,
                   int64_t t, int64_t c, F f) {
  ParallelFor(rows, GrainFor(kElementwiseGrain, c),
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const float* a_row = pa + r * c;
                  const float* b_row = pb + (r / t) * c;
                  float* out_row = po + r * c;
                  for (int64_t j = 0; j < c; ++j) {
                    out_row[j] = f(a_row[j], b_row[j]);
                  }
                }
              });
}

}  // namespace

void BroadcastMidRows(bool sub_op, const float* a, const float* b,
                      float* out, int64_t rows, int64_t t, int64_t c) {
  if (sub_op) {
    BroadcastMidT(a, b, out, rows, t, c,
                  [](float x, float y) { return ApplyBin(Bin::kSub, x, y); });
  } else {
    BroadcastMidT(a, b, out, rows, t, c,
                  [](float x, float y) { return ApplyBin(Bin::kAdd, x, y); });
  }
}

void GemmEpilogueRegion(float* c, int64_t ldc, int64_t r0, int64_t nrows,
                        int64_t j0, int64_t ncols, const float* bias,
                        int32_t act, const float* residual, int32_t res_op,
                        bool res_is_lhs) {
  // Bias + activation first, exactly AddBiasEpilogueT's per-element
  // expression (f(x + b), one add then the activation) restricted to the
  // region; then the residual binary, exactly BinarySameT's. Each stage
  // is a single IEEE op or an opaque GeluFwd call, so nothing contracts
  // across them and the region matches the unfused op pair bit for bit.
  for (int64_t r = r0; r < r0 + nrows; ++r) {
    float* crow = c + r * ldc + j0;
    if (bias != nullptr) {
      const float* pb = bias + j0;
      switch (static_cast<FusedAct>(act)) {
        case FusedAct::kRelu:
          for (int64_t j = 0; j < ncols; ++j) {
            const float z = crow[j] + pb[j];
            crow[j] = z > 0.0f ? z : 0.0f;
          }
          break;
        case FusedAct::kGelu:
          for (int64_t j = 0; j < ncols; ++j) {
            crow[j] = GeluFwd(crow[j] + pb[j]);
          }
          break;
        case FusedAct::kNone:
          for (int64_t j = 0; j < ncols; ++j) {
            crow[j] = crow[j] + pb[j];
          }
          break;
      }
    }
    if (residual != nullptr) {
      const float* rrow = residual + r * ldc + j0;
      // Dispatch on the op OUTSIDE the element loop (a per-element switch
      // blocks vectorization); ApplyBin with a compile-time op folds to
      // the bare instruction.
      auto sweep = [&](auto binop) {
        if (res_is_lhs) {
          for (int64_t j = 0; j < ncols; ++j) {
            crow[j] = binop(rrow[j], crow[j]);
          }
        } else {
          for (int64_t j = 0; j < ncols; ++j) {
            crow[j] = binop(crow[j], rrow[j]);
          }
        }
      };
      switch (static_cast<Bin>(res_op)) {
        case Bin::kAdd:
          sweep([](float x, float y) { return ApplyBin(Bin::kAdd, x, y); });
          break;
        case Bin::kSub:
          sweep([](float x, float y) { return ApplyBin(Bin::kSub, x, y); });
          break;
        case Bin::kMul:
          sweep([](float x, float y) { return ApplyBin(Bin::kMul, x, y); });
          break;
        case Bin::kDiv:
          sweep([](float x, float y) { return ApplyBin(Bin::kDiv, x, y); });
          break;
        case Bin::kMax:
          sweep([](float x, float y) { return ApplyBin(Bin::kMax, x, y); });
          break;
        case Bin::kMin:
          sweep([](float x, float y) { return ApplyBin(Bin::kMin, x, y); });
          break;
      }
    }
  }
}

namespace {

// One binary chain step over one row, op and operand pattern resolved at
// compile time so the sweep vectorizes (a per-element interpreter was
// measurably slower than the unfused passes it replaced). src may alias
// dst (in-place update from the second step on); reads and writes line
// up per element, and ApplyBin is a single IEEE op, so the value stream
// is identical to the unfused kernel's.
template <Bin kOp, bool kPrevIsA, bool kDense>
void ChainBinRow(const float* src, const float* other, float* dst,
                 int64_t w) {
  for (int64_t j = 0; j < w; ++j) {
    const float o = other[kDense ? j : 0];
    dst[j] = kPrevIsA ? ApplyBin(kOp, src[j], o) : ApplyBin(kOp, o, src[j]);
  }
}

template <Bin kOp>
void ChainBinRowOp(bool prev_is_a, bool dense, const float* src,
                   const float* other, float* dst, int64_t w) {
  if (prev_is_a) {
    if (dense) {
      ChainBinRow<kOp, true, true>(src, other, dst, w);
    } else {
      ChainBinRow<kOp, true, false>(src, other, dst, w);
    }
  } else if (dense) {
    ChainBinRow<kOp, false, true>(src, other, dst, w);
  } else {
    ChainBinRow<kOp, false, false>(src, other, dst, w);
  }
}

template <Un kOp>
void ChainUnRow(float s, const float* src, float* dst, int64_t w) {
  for (int64_t j = 0; j < w; ++j) dst[j] = ApplyUn(kOp, s, src[j]);
}

}  // namespace

void FusedChainRows(const float* in, float* out, int64_t rows, int64_t w,
                    const ChainStep* steps, int64_t nsteps) {
  // Same ParallelFor grain the unfused elementwise kernels use; chunk
  // boundaries are shape-derived so outputs are thread-count independent.
  // Each step runs as its own tight loop over the (cache-hot) row —
  // separate loops per step mean the compiler cannot contract operations
  // across steps into FMAs, keeping the chain bitwise identical to the
  // sequence of unfused passes.
  ParallelFor(rows, GrainFor(kElementwiseGrain, w),
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const float* src = in + r * w;
                  float* dst = out + r * w;
                  for (int64_t s = 0; s < nsteps; ++s) {
                    const ChainStep& st = steps[s];
                    if (st.is_binary) {
                      const float* other = st.other + st.row_base[r];
                      const bool dense = st.inner_step != 0;
                      switch (static_cast<Bin>(st.sub)) {
                        case Bin::kAdd:
                          ChainBinRowOp<Bin::kAdd>(st.prev_is_a, dense, src,
                                                   other, dst, w);
                          break;
                        case Bin::kSub:
                          ChainBinRowOp<Bin::kSub>(st.prev_is_a, dense, src,
                                                   other, dst, w);
                          break;
                        case Bin::kMul:
                          ChainBinRowOp<Bin::kMul>(st.prev_is_a, dense, src,
                                                   other, dst, w);
                          break;
                        case Bin::kDiv:
                          ChainBinRowOp<Bin::kDiv>(st.prev_is_a, dense, src,
                                                   other, dst, w);
                          break;
                        case Bin::kMax:
                          ChainBinRowOp<Bin::kMax>(st.prev_is_a, dense, src,
                                                   other, dst, w);
                          break;
                        case Bin::kMin:
                          ChainBinRowOp<Bin::kMin>(st.prev_is_a, dense, src,
                                                   other, dst, w);
                          break;
                      }
                    } else {
                      switch (static_cast<Un>(st.sub)) {
                        case Un::kAddScalar:
                          ChainUnRow<Un::kAddScalar>(st.scalar, src, dst, w);
                          break;
                        case Un::kMulScalar:
                          ChainUnRow<Un::kMulScalar>(st.scalar, src, dst, w);
                          break;
                        case Un::kNeg:
                          ChainUnRow<Un::kNeg>(st.scalar, src, dst, w);
                          break;
                        case Un::kSqrt:
                          ChainUnRow<Un::kSqrt>(st.scalar, src, dst, w);
                          break;
                        case Un::kAbs:
                          ChainUnRow<Un::kAbs>(st.scalar, src, dst, w);
                          break;
                        case Un::kRelu:
                          ChainUnRow<Un::kRelu>(st.scalar, src, dst, w);
                          break;
                        default:
                          // Transcendentals bottom out in opaque libm
                          // calls; a runtime-dispatch loop loses nothing.
                          for (int64_t j = 0; j < w; ++j) {
                            dst[j] = ApplyUn(static_cast<Un>(st.sub),
                                             st.scalar, src[j]);
                          }
                          break;
                      }
                    }
                    src = dst;  // later steps update the row in place
                  }
                }
              });
}

}  // namespace raw

namespace {

Tensor BinaryImpl(raw::Bin op, const Tensor& a, const Tensor& b) {
  if (SameShape(a.shape(), b.shape())) {
    Tensor out = Tensor::Empty(a.shape());
    raw::BinarySame(op, a.data(), b.data(), out.data(), a.numel());
    if (trace::Active()) trace::RecordBinarySame(op, a, b, out);
    return out;
  }
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out = Tensor::Empty(out_shape);
  const Shape sa = BroadcastStrides(a.shape(), out_shape);
  const Shape sb = BroadcastStrides(b.shape(), out_shape);
  raw::BinaryBcast(op, a.data(), b.data(), out.data(), out_shape.data(),
                   sa.data(), sb.data(),
                   static_cast<int64_t>(out_shape.size()), out.numel());
  if (trace::Active()) {
    trace::RecordBinaryBcast(op, a, b, out, out_shape, sa, sb);
  }
  return out;
}

Tensor UnaryImpl(raw::Un op, float s, const Tensor& a) {
  Tensor out = Tensor::Empty(a.shape());
  raw::Unary(op, s, a.data(), out.data(), a.numel());
  if (trace::Active()) trace::RecordUnary(op, s, a, out);
  return out;
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const int64_t nd = std::max(a.size(), b.size());
  const Shape pa = PadShape(a, nd);
  const Shape pb = PadShape(b, nd);
  Shape out(nd);
  for (int64_t i = 0; i < nd; ++i) {
    if (pa[i] == pb[i]) {
      out[i] = pa[i];
    } else if (pa[i] == 1) {
      out[i] = pb[i];
    } else if (pb[i] == 1) {
      out[i] = pa[i];
    } else {
      LIPF_CHECK(false) << "cannot broadcast " << ShapeToString(a) << " with "
                        << ShapeToString(b);
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryImpl(raw::Bin::kAdd, a, b);
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryImpl(raw::Bin::kSub, a, b);
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryImpl(raw::Bin::kMul, a, b);
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryImpl(raw::Bin::kDiv, a, b);
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryImpl(raw::Bin::kMax, a, b);
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryImpl(raw::Bin::kMin, a, b);
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryImpl(raw::Un::kAddScalar, s, a);
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryImpl(raw::Un::kMulScalar, s, a);
}
Tensor PowScalar(const Tensor& a, float p) {
  return UnaryImpl(raw::Un::kPowScalar, p, a);
}

Tensor Neg(const Tensor& a) { return UnaryImpl(raw::Un::kNeg, 0.0f, a); }
Tensor Exp(const Tensor& a) { return UnaryImpl(raw::Un::kExp, 0.0f, a); }
Tensor Log(const Tensor& a) { return UnaryImpl(raw::Un::kLog, 0.0f, a); }
Tensor Sqrt(const Tensor& a) { return UnaryImpl(raw::Un::kSqrt, 0.0f, a); }
Tensor Abs(const Tensor& a) { return UnaryImpl(raw::Un::kAbs, 0.0f, a); }
Tensor Sin(const Tensor& a) { return UnaryImpl(raw::Un::kSin, 0.0f, a); }
Tensor Cos(const Tensor& a) { return UnaryImpl(raw::Un::kCos, 0.0f, a); }
Tensor Tanh(const Tensor& a) { return UnaryImpl(raw::Un::kTanh, 0.0f, a); }
Tensor Sigmoid(const Tensor& a) {
  return UnaryImpl(raw::Un::kSigmoid, 0.0f, a);
}
Tensor Relu(const Tensor& a) { return UnaryImpl(raw::Un::kRelu, 0.0f, a); }
Tensor Gelu(const Tensor& a) { return UnaryImpl(raw::Un::kGelu, 0.0f, a); }

namespace {

// Shared shape/broadcast prologue for the packed GEMM entry points.
// Logical operand shapes: a [.., m, k] (stored [.., k, m] when trans_a),
// b [.., k, n] (stored [.., n, k] when trans_b). Charges the theoretical
// nbatch*m*n*k MACs — a pure function of shapes, matching the executed
// work (see the MAC section in ops.h).
Tensor MatMulImpl(const Tensor& a, const Tensor& b, bool trans_a,
                  bool trans_b) {
  LIPF_CHECK_GE(a.dim(), 2);
  LIPF_CHECK_GE(b.dim(), 2);
  const int64_t m = trans_a ? a.size(-1) : a.size(-2);
  const int64_t k = trans_a ? a.size(-2) : a.size(-1);
  const int64_t kb = trans_b ? b.size(-1) : b.size(-2);
  const int64_t n = trans_b ? b.size(-2) : b.size(-1);
  LIPF_CHECK_EQ(k, kb) << "matmul inner dims: " << ShapeToString(a.shape())
                       << (trans_a ? "^T" : "") << " x "
                       << ShapeToString(b.shape()) << (trans_b ? "^T" : "");

  // Broadcast batch dims.
  Shape ba(a.shape().begin(), a.shape().end() - 2);
  Shape bb(b.shape().begin(), b.shape().end() - 2);
  Shape batch = BroadcastShape(ba, bb);
  const int64_t nbatch = NumElements(batch);

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  // The GEMM writes (or memsets, when k == 0) every output element.
  Tensor out = Tensor::Empty(out_shape);

  // Shared-B fast path: [nbatch, m, k] x [k, n] (a Linear applied to
  // batched activations) is the same computation as one [nbatch*m, k] x
  // [k, n] GEMM when A is row-major non-transposed and not broadcast —
  // batch and row dims are adjacent, so the flattened A is the same
  // buffer. One big GEMM packs B once and fills MR-row blocks instead of
  // running nbatch tiny matmuls that each repack B and pad out partial
  // blocks. Bitwise identical: each output element's k-summation order
  // depends only on the KC blocking, not on how rows are grouped.
  if (!trans_a && nbatch > 1 && NumElements(bb) == 1 &&
      NumElements(ba) == nbatch) {
    GemmBatch flat;
    flat.nbatch = 1;
    const int64_t zero = 0;
    flat.a_mat_index = &zero;
    flat.b_mat_index = &zero;
    flat.num_b_mats = 1;
    PackedGemmBatched(a.data(), /*trans_a=*/false, b.data(), trans_b,
                      out.data(), nbatch * m, n, k, flat);
    if (MacsEnabled()) AddMacs(nbatch * m * n * k);
    if (trace::Active()) {
      trace::RecordGemm(a, b, out, /*trans_a=*/false, trans_b, nbatch * m, n,
                        k, flat);
    }
    return out;
  }

  // Per-batch matrix indices honoring broadcast (stride-0 dims repeat).
  const Shape sa = BroadcastStrides(ba, batch);
  const Shape sb = BroadcastStrides(bb, batch);
  std::vector<int64_t> a_idx(nbatch);
  std::vector<int64_t> b_idx(nbatch);
  for (int64_t bi = 0; bi < nbatch; ++bi) {
    a_idx[bi] = StridedOffset(bi, batch, sa, nullptr);
    b_idx[bi] = StridedOffset(bi, batch, sb, nullptr);
  }

  GemmBatch gb;
  gb.nbatch = nbatch;
  gb.a_mat_index = a_idx.data();
  gb.b_mat_index = b_idx.data();
  gb.num_b_mats = b.numel() / std::max<int64_t>(1, k * n);
  PackedGemmBatched(a.data(), trans_a, b.data(), trans_b, out.data(), m, n,
                    k, gb);
  if (MacsEnabled()) AddMacs(nbatch * m * n * k);
  if (trace::Active()) {
    trace::RecordGemm(a, b, out, trans_a, trans_b, m, n, k, gb);
  }
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a_in, const Tensor& b_in) {
  Tensor a = a_in;
  Tensor b = b_in;
  bool squeeze_m = false;
  bool squeeze_n = false;
  if (a.dim() == 1) {
    a = a.Unsqueeze(0);
    squeeze_m = true;
  }
  if (b.dim() == 1) {
    b = b.Unsqueeze(1);
    squeeze_n = true;
  }
  Tensor result = MatMulImpl(a, b, /*trans_a=*/false, /*trans_b=*/false);
  if (squeeze_m) result = result.Squeeze(result.dim() - 2);
  if (squeeze_n) result = result.Squeeze(result.dim() - 1);
  return result;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  return MatMulImpl(a, b, /*trans_a=*/false, /*trans_b=*/true);
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  return MatMulImpl(a, b, /*trans_a=*/true, /*trans_b=*/false);
}

Tensor MatMulReference(const Tensor& a_in, const Tensor& b_in) {
  // The pre-blocking serial ikj kernel, retained verbatim as the ground
  // truth the packed GEMM is tested against. Serial, no MAC accounting.
  if (trace::Active()) trace::RecordUnsupported("MatMulReference");
  Tensor a = a_in;
  Tensor b = b_in;
  bool squeeze_m = false;
  bool squeeze_n = false;
  if (a.dim() == 1) {
    a = a.Unsqueeze(0);
    squeeze_m = true;
  }
  if (b.dim() == 1) {
    b = b.Unsqueeze(1);
    squeeze_n = true;
  }
  LIPF_CHECK_GE(a.dim(), 2);
  LIPF_CHECK_GE(b.dim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t k2 = b.size(-2);
  const int64_t n = b.size(-1);
  LIPF_CHECK_EQ(k, k2) << "matmul inner dims: " << ShapeToString(a.shape())
                       << " x " << ShapeToString(b.shape());

  Shape ba(a.shape().begin(), a.shape().end() - 2);
  Shape bb(b.shape().begin(), b.shape().end() - 2);
  Shape batch = BroadcastShape(ba, bb);
  const int64_t nbatch = NumElements(batch);

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::Empty(out_shape);  // every row memset then accumulated

  const Shape sa = BroadcastStrides(ba, batch);
  const Shape sb = BroadcastStrides(bb, batch);
  const int64_t a_mat = m * k;
  const int64_t b_mat = k * n;
  const int64_t o_mat = m * n;

  const float* pa_base = a.data();
  const float* pb_base = b.data();
  float* po_base = out.data();

  for (int64_t bi = 0; bi < nbatch; ++bi) {
    const float* pa = pa_base + StridedOffset(bi, batch, sa, nullptr) * a_mat;
    const float* pb = pb_base + StridedOffset(bi, batch, sb, nullptr) * b_mat;
    for (int64_t i = 0; i < m; ++i) {
      const float* pa_row = pa + i * k;
      float* po_row = po_base + bi * o_mat + i * n;
      std::memset(po_row, 0, sizeof(float) * static_cast<size_t>(n));
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = pa_row[kk];
        const float* pb_row = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) {
          po_row[j] += av * pb_row[j];
        }
      }
    }
  }

  Tensor result = out;
  if (squeeze_m) result = result.Squeeze(result.dim() - 2);
  if (squeeze_n) result = result.Squeeze(result.dim() - 1);
  return result;
}

Tensor Permute(const Tensor& t, const std::vector<int64_t>& perm) {
  const int64_t nd = t.dim();
  LIPF_CHECK_EQ(static_cast<int64_t>(perm.size()), nd);
  std::vector<bool> seen(nd, false);
  Shape out_shape(nd);
  for (int64_t i = 0; i < nd; ++i) {
    const int64_t p = perm[i];
    LIPF_CHECK_GE(p, 0);
    LIPF_CHECK_LT(p, nd);
    LIPF_CHECK(!seen[p]) << "duplicate dim in permute";
    seen[p] = true;
    out_shape[i] = t.size(p);
  }
  Tensor out = Tensor::Empty(out_shape);
  if (t.numel() == 0) return out;

  const Shape& in_strides = t.strides();
  // Stride of output index d in the input layout.
  Shape gather(nd);
  for (int64_t i = 0; i < nd; ++i) gather[i] = in_strides[perm[i]];

  raw::PermuteCopy(t.data(), out.data(), out_shape.data(), gather.data(), nd,
                   t.numel());
  if (trace::Active()) trace::RecordPermute(t, out, out_shape, gather);
  return out;
}

Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1) {
  const int64_t nd = t.dim();
  d0 = NormalizeDim(d0, nd);
  d1 = NormalizeDim(d1, nd);
  std::vector<int64_t> perm(nd);
  for (int64_t i = 0; i < nd; ++i) perm[i] = i;
  std::swap(perm[d0], perm[d1]);
  return Permute(t, perm);
}

Tensor Slice(const Tensor& t, int64_t dim, int64_t start, int64_t end) {
  dim = NormalizeDim(dim, t.dim());
  if (start < 0) start += t.size(dim);
  if (end < 0) end += t.size(dim);
  LIPF_CHECK_GE(start, 0);
  LIPF_CHECK_LE(end, t.size(dim));
  LIPF_CHECK_LE(start, end);
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Shape out_shape = t.shape();
  out_shape[dim] = end - start;
  Tensor out = Tensor::Empty(out_shape);
  const int64_t len = end - start;
  raw::SliceCopy(t.data(), out.data(), outer, mid, inner, start, len);
  if (trace::Active()) {
    trace::RecordSlice(t, out, outer, mid, inner, start, len);
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& ts, int64_t dim) {
  LIPF_CHECK(!ts.empty());
  const int64_t nd = ts[0].dim();
  dim = NormalizeDim(dim, nd);
  int64_t total = 0;
  for (const Tensor& t : ts) {
    LIPF_CHECK_EQ(t.dim(), nd);
    for (int64_t d = 0; d < nd; ++d) {
      if (d != dim) LIPF_CHECK_EQ(t.size(d), ts[0].size(d));
    }
    total += t.size(dim);
  }
  Shape out_shape = ts[0].shape();
  out_shape[dim] = total;
  Tensor out = Tensor::Empty(out_shape);
  int64_t outer, mid_out, inner;
  SplitAt(out_shape, dim, &outer, &mid_out, &inner);
  int64_t offset = 0;
  std::vector<int64_t> mids;
  mids.reserve(ts.size());
  for (const Tensor& t : ts) {
    const int64_t mid = t.size(dim);
    raw::ConcatCopyOne(t.data(), out.data(), outer, mid, mid_out, offset,
                       inner);
    mids.push_back(mid);
    offset += mid;
  }
  if (trace::Active()) {
    trace::RecordConcat(ts, out, outer, mid_out, inner, mids);
  }
  return out;
}

Tensor IndexSelect(const Tensor& t, int64_t dim,
                   const std::vector<int64_t>& indices) {
  if (trace::Active()) trace::RecordUnsupported("IndexSelect");
  dim = NormalizeDim(dim, t.dim());
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Shape out_shape = t.shape();
  out_shape[dim] = static_cast<int64_t>(indices.size());
  Tensor out = Tensor::Empty(out_shape);
  const float* pi = t.data();
  float* po = out.data();
  const int64_t nsel = static_cast<int64_t>(indices.size());
  // Validate on the calling thread so a bad index CHECK-fails outside the
  // pool, then gather rows in parallel (disjoint writes).
  for (int64_t s = 0; s < nsel; ++s) {
    LIPF_CHECK_GE(indices[s], 0);
    LIPF_CHECK_LT(indices[s], mid);
  }
  ParallelFor(outer * nsel, GrainFor(kCopyGrain, inner),
              [&](int64_t begin, int64_t end) {
                for (int64_t e = begin; e < end; ++e) {
                  const int64_t o = e / nsel;
                  const int64_t s = e % nsel;
                  const float* src = pi + (o * mid + indices[s]) * inner;
                  float* dst = po + e * inner;
                  std::memcpy(dst, src,
                              sizeof(float) * static_cast<size_t>(inner));
                }
              });
  return out;
}

Tensor Pad(const Tensor& t, int64_t dim, int64_t before, int64_t after) {
  if (trace::Active()) trace::RecordUnsupported("Pad");
  dim = NormalizeDim(dim, t.dim());
  LIPF_CHECK_GE(before, 0);
  LIPF_CHECK_GE(after, 0);
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Shape out_shape = t.shape();
  out_shape[dim] = mid + before + after;
  // Each outer block zeroes its own pad regions and copies the payload,
  // so the whole output is written exactly once (no upfront zero-fill).
  Tensor out = Tensor::Empty(out_shape);
  const float* pi = t.data();
  float* po = out.data();
  const int64_t out_mid = out_shape[dim];
  ParallelFor(outer, GrainFor(kCopyGrain, out_mid * inner),
              [&](int64_t o_begin, int64_t o_end) {
                for (int64_t o = o_begin; o < o_end; ++o) {
                  float* dst = po + o * out_mid * inner;
                  const float* src = pi + o * mid * inner;
                  std::memset(dst, 0,
                              sizeof(float) * static_cast<size_t>(before * inner));
                  std::memcpy(dst + before * inner, src,
                              sizeof(float) * static_cast<size_t>(mid * inner));
                  std::memset(dst + (before + mid) * inner, 0,
                              sizeof(float) * static_cast<size_t>(after * inner));
                }
              });
  return out;
}

Tensor Sum(const Tensor& t, int64_t dim, bool keepdim) {
  dim = NormalizeDim(dim, t.dim());
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Shape out_shape = t.shape();
  out_shape[dim] = 1;
  Tensor out = Tensor::Empty(out_shape);
  raw::SumDim(t.data(), out.data(), outer, mid, inner);
  if (trace::Active()) {
    trace::RecordReduction(trace::OpKind::kSum, t, out, outer, mid, inner);
  }
  return keepdim ? out : out.Squeeze(dim);
}

Tensor Mean(const Tensor& t, int64_t dim, bool keepdim) {
  const int64_t d = NormalizeDim(dim, t.dim());
  const float inv = 1.0f / static_cast<float>(t.size(d));
  return MulScalar(Sum(t, d, keepdim), inv);
}

std::pair<Tensor, Tensor> Max(const Tensor& t, int64_t dim) {
  if (trace::Active()) trace::RecordUnsupported("Max");
  dim = NormalizeDim(dim, t.dim());
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Shape out_shape = t.shape();
  out_shape[dim] = 1;
  Tensor values = Tensor::Empty(out_shape);
  Tensor argmax = Tensor::Empty(out_shape);
  const float* pi = t.data();
  float* pv = values.data();
  float* pa = argmax.data();
  ParallelFor(outer * inner, GrainFor(kReductionGrain, mid),
              [&](int64_t begin, int64_t end) {
                for (int64_t e = begin; e < end; ++e) {
                  const int64_t o = e / inner;
                  const int64_t i = e % inner;
                  float best = pi[o * mid * inner + i];
                  int64_t best_idx = 0;
                  for (int64_t m = 1; m < mid; ++m) {
                    const float v = pi[(o * mid + m) * inner + i];
                    if (v > best) {
                      best = v;
                      best_idx = m;
                    }
                  }
                  pv[e] = best;
                  pa[e] = static_cast<float>(best_idx);
                }
              });
  return {values, argmax};
}

float SumAll(const Tensor& t) {
  if (trace::Active()) trace::RecordUnsupported("SumAll");
  const float* p = t.data();
  double acc = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& t) {
  LIPF_CHECK_GT(t.numel(), 0);
  return SumAll(t) / static_cast<float>(t.numel());
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (SameShape(t.shape(), target)) return t;
  const int64_t nd = t.dim();
  const Shape padded = PadShape(target, nd);
  Tensor cur = t;
  // Sum out dims where target has 1 (or was absent).
  for (int64_t d = 0; d < nd; ++d) {
    if (padded[d] == 1 && cur.size(d) != 1) {
      cur = Sum(cur, d, /*keepdim=*/true);
    } else {
      LIPF_CHECK_EQ(padded[d], cur.size(d))
          << "cannot reduce " << ShapeToString(t.shape()) << " to "
          << ShapeToString(target);
    }
  }
  return cur.Reshape(target);
}

Tensor BroadcastTo(const Tensor& t, const Shape& shape) {
  if (SameShape(t.shape(), shape)) return t;
  if (trace::Active()) trace::RecordUnsupported("BroadcastTo");
  LIPF_CHECK(SameShape(BroadcastShape(t.shape(), shape), shape))
      << "cannot broadcast " << ShapeToString(t.shape()) << " to "
      << ShapeToString(shape);
  Tensor out = Tensor::Empty(shape);
  const int64_t nd = static_cast<int64_t>(shape.size());
  const Shape st = BroadcastStrides(t.shape(), shape);
  const float* pi = t.data();
  float* po = out.data();
  ParallelFor(out.numel(), kCopyGrain, [&](int64_t begin, int64_t end) {
    std::vector<int64_t> idx(nd, 0);
    int64_t src = StridedOffset(begin, shape, st, &idx);
    for (int64_t i = begin; i < end; ++i) {
      po[i] = pi[src];
      for (int64_t d = nd - 1; d >= 0; --d) {
        ++idx[d];
        src += st[d];
        if (idx[d] < shape[d]) break;
        idx[d] = 0;
        src -= st[d] * shape[d];
      }
    }
  });
  return out;
}

Tensor Softmax(const Tensor& t, int64_t dim) {
  dim = NormalizeDim(dim, t.dim());
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Tensor out = Tensor::Empty(t.shape());
  raw::SoftmaxDim(t.data(), out.data(), outer, mid, inner);
  if (trace::Active()) {
    trace::RecordReduction(trace::OpKind::kSoftmax, t, out, outer, mid,
                           inner);
  }
  return out;
}

Tensor LogSoftmax(const Tensor& t, int64_t dim) {
  dim = NormalizeDim(dim, t.dim());
  int64_t outer, mid, inner;
  SplitAt(t.shape(), dim, &outer, &mid, &inner);
  Tensor out = Tensor::Empty(t.shape());
  raw::LogSoftmaxDim(t.data(), out.data(), outer, mid, inner);
  if (trace::Active()) {
    trace::RecordReduction(trace::OpKind::kLogSoftmax, t, out, outer, mid,
                           inner);
  }
  return out;
}

// The fused softmax pair promises bitwise identity with the unfused
// MulScalar -> AddConst -> Softmax chain (and its backward), whose
// kernels round every intermediate to float. GCC contracts mul+add into
// fma even across statements at -O3 -march=native, which would skip one
// rounding, so contraction is off for exactly these functions (the raw
// row kernel carries the loops; both entry points live in the region).
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")

namespace raw {

void ScaledMaskedSoftmaxRows(const float* pi, float* po, int64_t rows,
                             int64_t mid, float scale, const float* pm,
                             int64_t sq) {
  ParallelFor(rows, GrainFor(kReductionGrain, 3 * mid),
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const float* in_row = pi + r * mid;
                  float* out_row = po + r * mid;
                  const float* mask_row =
                      pm != nullptr ? pm + (r % sq) * mid : nullptr;
                  // v = scale*x (+ mask), with the same two roundings as
                  // the unfused MulScalar -> AddConst chain (kept as two
                  // statements so the compiler cannot contract to an fma).
                  for (int64_t m = 0; m < mid; ++m) {
                    const float sv = in_row[m] * scale;
                    out_row[m] =
                        mask_row != nullptr ? sv + mask_row[m] : sv;
                  }
                  float mx = out_row[0];
                  for (int64_t m = 1; m < mid; ++m) {
                    mx = std::max(mx, out_row[m]);
                  }
                  float denom = 0.0f;
                  for (int64_t m = 0; m < mid; ++m) {
                    const float ex = std::exp(out_row[m] - mx);
                    out_row[m] = ex;
                    denom += ex;
                  }
                  const float inv = 1.0f / denom;
                  for (int64_t m = 0; m < mid; ++m) {
                    out_row[m] *= inv;
                  }
                }
              });
}

}  // namespace raw

Tensor ScaledMaskedSoftmax(const Tensor& t, float scale, const Tensor* mask) {
  LIPF_CHECK_GE(t.dim(), 1);
  const int64_t mid = t.size(-1);
  const int64_t rows = t.numel() / std::max<int64_t>(1, mid);
  int64_t sq = 1;
  const float* pm = nullptr;
  if (mask != nullptr) {
    LIPF_CHECK_EQ(mask->dim(), 2);
    LIPF_CHECK_EQ(mask->size(1), mid);
    LIPF_CHECK_GE(t.dim(), 2);
    LIPF_CHECK_EQ(t.size(-2), mask->size(0));
    sq = mask->size(0);
    pm = mask->data();
  }
  Tensor out = Tensor::Empty(t.shape());
  raw::ScaledMaskedSoftmaxRows(t.data(), out.data(), rows, mid, scale, pm,
                               sq);
  if (trace::Active()) {
    trace::RecordScaledMaskedSoftmax(t, mask, out, rows, mid, sq, scale);
  }
  return out;
}

Tensor ScaledMaskedSoftmaxBackward(const Tensor& g, const Tensor& y,
                                   float scale) {
  if (trace::Active()) {
    trace::RecordUnsupported("ScaledMaskedSoftmaxBackward");
  }
  LIPF_CHECK(SameShape(g.shape(), y.shape()));
  LIPF_CHECK_GE(y.dim(), 1);
  const int64_t mid = y.size(-1);
  const int64_t rows = y.numel() / std::max<int64_t>(1, mid);
  Tensor out = Tensor::Empty(y.shape());
  const float* pg = g.data();
  const float* py = y.data();
  float* po = out.data();
  ParallelFor(rows, GrainFor(kReductionGrain, 2 * mid),
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const float* g_row = pg + r * mid;
                  const float* y_row = py + r * mid;
                  float* out_row = po + r * mid;
                  // The unfused chain (Mul then Sum) stores each rounded
                  // product before accumulating; fp-contract is off here
                  // so `p` rounds the same way.
                  float dot = 0.0f;
                  for (int64_t m = 0; m < mid; ++m) {
                    const float p = g_row[m] * y_row[m];
                    dot += p;
                  }
                  for (int64_t m = 0; m < mid; ++m) {
                    out_row[m] = ((g_row[m] - dot) * y_row[m]) * scale;
                  }
                }
              });
  return out;
}

#pragma GCC pop_options

namespace {

// Same traversal as the forward epilogue for the backward: f(g, z) with z
// the recomputed pre-activation.
template <typename F>
Tensor AddBiasEpilogueBwd(const Tensor& g, const Tensor& x,
                          const Tensor& bias, F f) {
  LIPF_CHECK(SameShape(g.shape(), x.shape()));
  const int64_t c = bias.size(0);
  const int64_t rows = x.numel() / std::max<int64_t>(1, c);
  Tensor out = Tensor::Empty(x.shape());
  const float* pg = g.data();
  const float* pi = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  ParallelFor(rows, GrainFor(kElementwiseGrain, c),
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const float* g_row = pg + r * c;
                  const float* x_row = pi + r * c;
                  float* out_row = po + r * c;
                  for (int64_t j = 0; j < c; ++j) {
                    out_row[j] = f(g_row[j], x_row[j] + pb[j]);
                  }
                }
              });
  return out;
}

}  // namespace

Tensor AddBiasAct(const Tensor& x, const Tensor& bias, FusedAct act) {
  LIPF_CHECK_EQ(bias.dim(), 1);
  const int64_t c = bias.size(0);
  LIPF_CHECK_GE(x.dim(), 1);
  LIPF_CHECK_EQ(x.size(-1), c);
  const int64_t rows = x.numel() / std::max<int64_t>(1, c);
  Tensor out = Tensor::Empty(x.shape());
  raw::AddBiasActRows(x.data(), bias.data(), out.data(), rows, c, act);
  if (trace::Active()) trace::RecordAddBiasAct(x, bias, out, rows, c, act);
  return out;
}

Tensor AddBiasActBackward(const Tensor& g, const Tensor& x,
                          const Tensor& bias, FusedAct act) {
  if (trace::Active()) trace::RecordUnsupported("AddBiasActBackward");
  switch (act) {
    case FusedAct::kRelu:
      return AddBiasEpilogueBwd(
          g, x, bias, [](float gv, float z) { return z > 0.0f ? gv : 0.0f; });
    case FusedAct::kGelu:
      return AddBiasEpilogueBwd(
          g, x, bias, [](float gv, float z) { return gv * GeluGrad(z); });
    case FusedAct::kNone:
      break;
  }
  return g;  // identity epilogue: dL/dz is the upstream gradient itself
}

namespace {

Tensor BroadcastMidImpl(bool sub_op, const Tensor& a, const Tensor& b) {
  LIPF_CHECK_EQ(a.dim(), 3);
  LIPF_CHECK_EQ(b.dim(), 3);
  LIPF_CHECK_EQ(b.size(1), 1);
  LIPF_CHECK_EQ(a.size(0), b.size(0));
  LIPF_CHECK_EQ(a.size(2), b.size(2));
  const int64_t t = a.size(1);
  const int64_t c = a.size(2);
  Tensor out = Tensor::Empty(a.shape());
  raw::BroadcastMidRows(sub_op, a.data(), b.data(), out.data(),
                        a.size(0) * t, t, c);
  if (trace::Active()) {
    trace::RecordBroadcastMid(sub_op, a, b, out, a.size(0) * t, t, c);
  }
  return out;
}

}  // namespace

Tensor SubBroadcastMid(const Tensor& a, const Tensor& b) {
  return BroadcastMidImpl(/*sub_op=*/true, a, b);
}

Tensor AddBroadcastMid(const Tensor& a, const Tensor& b) {
  return BroadcastMidImpl(/*sub_op=*/false, a, b);
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!SameShape(a.shape(), b.shape())) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (diff > tol || std::isnan(diff)) return false;
  }
  return true;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  LIPF_CHECK(SameShape(a.shape(), b.shape()));
  const float* pa = a.data();
  const float* pb = b.data();
  float mx = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    mx = std::max(mx, std::fabs(pa[i] - pb[i]));
  }
  return mx;
}

void SetMacCountingEnabled(bool enabled) {
  g_mac_enabled.store(enabled, std::memory_order_relaxed);
}
bool MacCountingEnabled() {
  return g_mac_enabled.load(std::memory_order_relaxed);
}
void ResetMacCount() { g_mac_count.store(0, std::memory_order_relaxed); }
int64_t MacCount() { return g_mac_count.load(std::memory_order_relaxed); }
void AddMacCount(int64_t macs) {
  if (MacsEnabled()) AddMacs(macs);
}

}  // namespace lipformer
