#ifndef LIPFORMER_TENSOR_OPS_H_
#define LIPFORMER_TENSOR_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

// Forward-only tensor kernels. Autograd (src/autograd) wraps these with
// gradient rules; models never call these directly except in inference-only
// helpers. Elementwise binary ops broadcast numpy-style; MatMul broadcasts
// its batch dimensions.
//
// The hot kernels (the MatMul family, elementwise, Softmax/LogSoftmax,
// Sum/Mean/Max, and the data movers Permute/Slice/Concat/IndexSelect/Pad)
// fan out over the shared pool in common/thread_pool.h. Outputs are
// bitwise identical at every thread count: each output element is computed
// by exactly one chunk with the serial inner loops, and chunk boundaries
// are functions of shape only. Thread count: SetNumThreads / --threads /
// LIPF_NUM_THREADS (1 = the historical serial path).

namespace lipformer {

// Numpy-style broadcast of two shapes; CHECK-fails if incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);

// ---- Elementwise binary (broadcasting) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// ---- Elementwise with scalar ----
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor PowScalar(const Tensor& a, float p);

// ---- Elementwise unary ----
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sin(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
// tanh-approximation GELU (as used by GPT-style models).
Tensor Gelu(const Tensor& a);

// ---- Linear algebra ----
// All matmul variants run on the packed, cache-blocked GEMM in
// tensor/gemm.h (see DESIGN.md "Kernel architecture"). Outputs are
// bitwise identical at every thread count; versus the plain ikj reference
// they can differ in the last bits (FMA contraction), so tests compare
// with AllClose.
//
// a: [..., m, k], b: [..., k, n] -> [..., m, n]; batch dims broadcast.
// 1-d operands get the usual vector promotion (m=1 / n=1) and squeeze.
Tensor MatMul(const Tensor& a, const Tensor& b);
// a: [..., m, k], b: [..., n, k] -> [..., m, n] = a x b^T. The transpose
// is folded into the GEMM's operand packing, so no transposed copy of b
// is ever materialized (attention scores, MatMul backward).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// a: [..., k, m], b: [..., k, n] -> [..., m, n] = a^T x b (weight
// gradients in the Linear/MatMul backward), likewise transpose-free.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// The pre-blocking serial ikj kernel, kept as the ground-truth reference
// the packed GEMM is validated against in tests/benches. No threading, no
// MAC accounting.
Tensor MatMulReference(const Tensor& a, const Tensor& b);

// ---- Shape ops (materializing) ----
// Reorders dimensions; perm must be a permutation of [0, dim).
Tensor Permute(const Tensor& t, const std::vector<int64_t>& perm);
// Swaps two dimensions.
Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1);
// Contiguous sub-range [start, end) along dim.
Tensor Slice(const Tensor& t, int64_t dim, int64_t start, int64_t end);
// Concatenates along dim; all other dims must match.
Tensor Concat(const std::vector<Tensor>& ts, int64_t dim);
// Selects rows along dim by index (indices may repeat).
Tensor IndexSelect(const Tensor& t, int64_t dim,
                   const std::vector<int64_t>& indices);
// Zero-pads along dim: `before` zeros in front, `after` behind.
Tensor Pad(const Tensor& t, int64_t dim, int64_t before, int64_t after);

// ---- Reductions ----
Tensor Sum(const Tensor& t, int64_t dim, bool keepdim = false);
Tensor Mean(const Tensor& t, int64_t dim, bool keepdim = false);
// Returns {values, argmax-as-float} reduced along dim (keepdim).
std::pair<Tensor, Tensor> Max(const Tensor& t, int64_t dim);
float SumAll(const Tensor& t);
float MeanAll(const Tensor& t);

// Sum-reduces t (a broadcast result) back to `target` shape. Used by
// autograd to fold gradients of broadcast operands.
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// Materializes t broadcast up to `shape` (the inverse data movement of
// ReduceToShape; used by autograd to expand reduced gradients without a
// Zeros + Add round trip).
Tensor BroadcastTo(const Tensor& t, const Shape& shape);

// ---- Normalization ----
// Softmax along dim with max-subtraction for stability.
Tensor Softmax(const Tensor& t, int64_t dim);
Tensor LogSoftmax(const Tensor& t, int64_t dim);

// ---- Fused kernels ----
// Single-pass fusions of the model's hot elementwise chains (see DESIGN.md
// "Memory architecture"). Each performs the same float operations in the
// same order as the unfused chain it replaces, so results are bitwise
// identical — the win is one output tensor and one memory pass instead of
// three.

// softmax(scale * t [+ mask], dim=-1). mask, when non-null, is 2-d
// [t.size(-2), t.size(-1)] and broadcasts over the leading dims (the
// attention-score layout). Equals Softmax(AddConst(MulScalar(t, scale),
// mask), -1) bit for bit.
Tensor ScaledMaskedSoftmax(const Tensor& t, float scale, const Tensor* mask);
// Gradient of the above w.r.t. t given upstream g and output y:
// ((g - sum(g*y, -1)) * y) * scale, one pass per row.
Tensor ScaledMaskedSoftmaxBackward(const Tensor& g, const Tensor& y,
                                   float scale);

// Activations fusable into the bias-add epilogue of Linear. The tensor
// layer keeps its own enum so it stays independent of nn/; kTanh/kSigmoid
// chains stay unfused (they are not on the model's hot path).
enum class FusedAct { kNone, kRelu, kGelu };

// act(x + bias), bias 1-d broadcast over x's last dim.
Tensor AddBiasAct(const Tensor& x, const Tensor& bias, FusedAct act);
// Gradient w.r.t. the pre-activation: g * act'(x + bias), recomputing the
// pre-activation instead of storing it (bitwise-identical inputs give
// bitwise-identical act'). The bias gradient is ReduceToShape of this.
Tensor AddBiasActBackward(const Tensor& g, const Tensor& x,
                          const Tensor& bias, FusedAct act);

// a [B, T, C] (-) b [B, 1, C]: the instance-norm shift/unshift, row-wise
// instead of through the generic odometer broadcast path.
Tensor SubBroadcastMid(const Tensor& a, const Tensor& b);
Tensor AddBroadcastMid(const Tensor& a, const Tensor& b);

// ---- Testing helpers ----
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);
float MaxAbsDiff(const Tensor& a, const Tensor& b);

// ---- MAC (multiply-accumulate) instrumentation ----
// When enabled, the matmul variants accumulate the theoretical
// batch*m*n*k into a global counter; used by bench_util to report the
// paper's MACs column. The count is a pure function of operand shapes
// (never of data), matches the work the kernel executes, and is
// thread-safe: each call flushes its full count into an atomic once, so
// concurrent MatMuls sum exactly.
void SetMacCountingEnabled(bool enabled);
bool MacCountingEnabled();
void ResetMacCount();
int64_t MacCount();
// Adds `macs` to the counter iff counting is enabled. For matmul-shaped
// kernels living outside this file (the quantized Linear path) so MACs
// stay comparable between fp32 and int8 runs.
void AddMacCount(int64_t macs);

}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_OPS_H_
