#ifndef LIPFORMER_TENSOR_GEMM_INT8_H_
#define LIPFORMER_TENSOR_GEMM_INT8_H_

#include <cstdint>
#include <vector>

// Int8 inference GEMM for the quantized serving path (DESIGN.md
// "Quantized inference"): weights are per-channel symmetric int8,
// activations are quantized row-wise at run time, accumulation is exact
// int32, dequantization back to fp32 happens in the caller's epilogue.
//
// The kernel mirrors the register-tiling / cache-blocking structure of the
// fp32 GEMM (tensor/gemm.h): B (the weight) is packed once into
// kGemmNR-wide column panels, A is walked in kGemmMR-row micro-panels, and
// a kGemmMR x kGemmNR int32 register tile drives the inner loop. Two
// int8-specific twists:
//
//  - k is traversed in groups of four (kInt8KUnroll). Packed panels
//    interleave four consecutive depth values per column so one 4-byte
//    load of A and one kGemmNR*4-byte load of B feed a dot-product step.
//    On AVX-512 VNNI this maps to a single vpdpbusd per A row.
//  - vpdpbusd multiplies UNSIGNED a bytes by signed b bytes, so A is
//    packed with a +128 bias (s8 -> u8) and the packer records per-column
//    sums of B; the epilogue subtracts 128 * colsum[j] to recover the
//    exact signed product. The portable fallback computes the identical
//    biased arithmetic, so both paths return bit-identical int32 results
//    and both match Int8GemmReference exactly (integer accumulation is
//    associative — unlike the fp32 kernel there is no FMA-contraction
//    tolerance; tests compare with memcmp).
//
// Unlike the fp32 path there is no batched variant: quantized GEMMs only
// occur against 2-D weight matrices (nn::Linear); activation-activation
// products (attention) stay fp32.

namespace lipformer {

// Depth values interleaved per packed column; matches the 4-byte grain of
// vpdpbusd. The packers zero-pad k to a multiple of this.
inline constexpr int64_t kInt8KUnroll = 4;

// A weight matrix [k, n] prepacked for repeated Int8GemmBlocked calls
// (layout documented above). Prepacking at load time removes the B-pack
// phase from the serving hot path entirely — weights are static.
struct Int8PackedWeight {
  int64_t k = 0;
  int64_t n = 0;
  // Column panels: npanels x (kq * kGemmNR * kInt8KUnroll) bytes where
  // kq = ceil(k / kInt8KUnroll).
  std::vector<int8_t> panels;
  // colsum[j] = sum_p w[p, j], used for the +128 bias correction.
  std::vector<int32_t> colsum;
};

// ---- Quantizers ----

// Per-channel symmetric weight quantization: for each column j of
// w [k, n], scale[j] = max_p |w[p, j]| / 127 (1.0 for an all-zero
// column) and w8[p, j] = nearbyint(w[p, j] / scale[j]), round half to
// even. |w8| <= 127 by construction (-128 never occurs).
void QuantizeWeightPerChannel(const float* w, int64_t k, int64_t n,
                              int8_t* w8, float* scale);

// Dequantize back: w[p, j] = w8[p, j] * scale[j]. Round-tripping a
// quantized matrix is exact; round-tripping an arbitrary matrix is within
// scale[j] / 2 per element (tested in gemm_test.cc).
void DequantizeWeightPerChannel(const int8_t* w8, const float* scale,
                                int64_t k, int64_t n, float* w);

// Row-wise dynamic activation quantization: scale = max_j |x[j]| / 127
// over the single row x [n] (1.0 for an all-zero row), returned;
// x8[j] = nearbyint(x[j] / scale). Row-wise (not whole-tensor) scales
// keep each sample's quantized values independent of what else shares the
// batch, which is what preserves the serving stack's bitwise
// batched == serial guarantee (serve/session.h).
float QuantizeRowDynamic(const float* x, int64_t n, int8_t* x8);

// ---- Kernels ----

// Packs w8 [k, n] row-major into the panel layout above.
Int8PackedWeight PackInt8Weight(const int8_t* w8, int64_t k, int64_t n);

// c [m, n] int32 = a [m, w.k] int8 x w, exact signed product. Rows are
// distributed over the shared thread pool with shape-derived chunk
// boundaries; integer accumulation makes the result independent of the
// split anyway.
void Int8GemmBlocked(const int8_t* a, const Int8PackedWeight& w, int64_t m,
                     int32_t* c);

// Correctness gate: textbook ijk triple loop over unpacked operands.
// Int8GemmBlocked must match this bitwise for all shapes.
void Int8GemmReference(const int8_t* a, const int8_t* b, int64_t m,
                       int64_t n, int64_t k, int32_t* c);

}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_GEMM_INT8_H_
