#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/ops_raw.h"
#include "tensor/storage_pool.h"

namespace lipformer {

namespace {

static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

// Same pool-dispatch grain the unblocked MatMul used: chunks own at least
// this many multiply-accumulates, and boundaries are shape-derived.
constexpr int64_t kGemmGrainMacs = 16384;
// Grain for the (pure data movement) packing phase.
constexpr int64_t kPackGrainElems = 8192;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// kGemmMR x kGemmNR register tile: acc[i][j] += ap[p][i] * bp[p][j].
// Both operands are packed — stride kGemmMR / kGemmNR per k step — so each
// k step is one contiguous kGemmNR-wide load of B, kGemmMR scalar
// broadcasts of A, and broadcast*vector FMAs into a register-resident
// accumulator tile. Accumulation order over p is sequential, which
// (together with the ascending-KC-block order in the caller) fixes the
// floating-point summation order per output element independent of
// threading.
#if defined(__GNUC__) || defined(__clang__)
// Explicit 8-lane vectors (GNU vector extension; the compiler legalizes
// them to whatever the target ISA offers). The MR*NR/8 independent
// accumulator chains — one FMA each per k step — are what hides FMA
// latency; GCC's auto-vectorizer picks a narrower, shuffle-heavy layout
// for the equivalent scalar loop, hence the explicit form.
typedef float GemmVec __attribute__((vector_size(32), aligned(4)));
constexpr int64_t kGemmVecLanes = 8;
static_assert(kGemmNR % kGemmVecLanes == 0);

inline void MicroKernel(int64_t kc, const float* __restrict__ ap,
                        const float* __restrict__ bp,
                        float* __restrict__ acc) {
  constexpr int64_t kVecs = kGemmNR / kGemmVecLanes;
  GemmVec racc[kGemmMR][kVecs] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kGemmMR;
    const float* b = bp + p * kGemmNR;
    GemmVec bv[kVecs];
    for (int64_t v = 0; v < kVecs; ++v) {
      std::memcpy(&bv[v], b + v * kGemmVecLanes, sizeof(GemmVec));
    }
    for (int64_t i = 0; i < kGemmMR; ++i) {
      const float ai = a[i];
      for (int64_t v = 0; v < kVecs; ++v) {
        racc[i][v] += bv[v] * ai;
      }
    }
  }
  for (int64_t i = 0; i < kGemmMR; ++i) {
    std::memcpy(acc + i * kGemmNR, &racc[i][0],
                sizeof(float) * static_cast<size_t>(kGemmNR));
  }
}
#else
inline void MicroKernel(int64_t kc, const float* __restrict__ ap,
                        const float* __restrict__ bp,
                        float* __restrict__ acc) {
  // Portable fallback with the identical per-element summation order: one
  // output row at a time, p sequential within the row.
  for (int64_t i = 0; i < kGemmMR; ++i) {
    float row[kGemmNR] = {0.0f};
    const float* a = ap + i;
    for (int64_t p = 0; p < kc; ++p) {
      const float ai = a[p * kGemmMR];
      const float* b = bp + p * kGemmNR;
      for (int64_t j = 0; j < kGemmNR; ++j) {
        row[j] += ai * b[j];
      }
    }
    for (int64_t j = 0; j < kGemmNR; ++j) acc[i * kGemmNR + j] = row[j];
  }
}
#endif

// Packs one kGemmNR-wide column panel of a stored B matrix, padding the
// tail panel with zero columns so the micro-kernel always runs full width
// (padded lanes are computed but never stored).
// With null row_off the matrix is dense at src ([k, n], or [n, k] when
// trans_b). Otherwise stored element (r, c) is read from
// src[row_off[r] + col_off[c]] — the separable-gather view AOT plans use
// to pack through a transpose instead of materializing it (gemm.h).
void PackBPanel(const float* src, bool trans_b, int64_t n, int64_t k,
                const int64_t* row_off, const int64_t* col_off, int64_t jp,
                float* dst) {
  const int64_t j0 = jp * kGemmNR;
  const int64_t ncols = std::min(kGemmNR, n - j0);
  if (ncols < kGemmNR) {
    std::memset(dst, 0, sizeof(float) * static_cast<size_t>(k * kGemmNR));
  }
  if (!trans_b) {
    // Stored [k, n]: row p holds logical columns, contiguous when dense.
    if (row_off == nullptr) {
      for (int64_t p = 0; p < k; ++p) {
        const float* row = src + p * n + j0;
        float* out = dst + p * kGemmNR;
        for (int64_t jj = 0; jj < ncols; ++jj) out[jj] = row[jj];
      }
    } else {
      for (int64_t p = 0; p < k; ++p) {
        const float* row = src + row_off[p];
        float* out = dst + p * kGemmNR;
        for (int64_t jj = 0; jj < ncols; ++jj) out[jj] = row[col_off[j0 + jj]];
      }
    }
  } else {
    // Stored [n, k]: logical column j is the stored row j.
    if (row_off == nullptr) {
      for (int64_t jj = 0; jj < ncols; ++jj) {
        const float* row = src + (j0 + jj) * k;
        float* out = dst + jj;
        for (int64_t p = 0; p < k; ++p) out[p * kGemmNR] = row[p];
      }
    } else {
      for (int64_t jj = 0; jj < ncols; ++jj) {
        const float* row = src + row_off[j0 + jj];
        float* out = dst + jj;
        for (int64_t p = 0; p < k; ++p) out[p * kGemmNR] = row[col_off[p]];
      }
    }
  }
}

// Packs rows [ic, ic+mc) x depth [pc, pc+kc) of a stored A matrix into
// kGemmMR-row micro-panels (panel stride kc * kGemmMR), zero-padding the
// tail panel's missing rows. With null row_off the matrix is dense at
// a_mat ([m, k], or [k, m] when trans_a). Otherwise stored element
// (r, c) is read from a_mat[row_off[r] + col_off[c]] (separable-gather
// view, !trans_a only — plans never fuse a transposed-A operand).
void PackABlock(const float* a_mat, bool trans_a, int64_t m, int64_t k,
                const int64_t* row_off, const int64_t* col_off, int64_t ic,
                int64_t mc, int64_t pc, int64_t kc, float* dst) {
  const int64_t napanels = CeilDiv(mc, kGemmMR);
  for (int64_t ap = 0; ap < napanels; ++ap) {
    float* panel = dst + ap * kc * kGemmMR;
    const int64_t r0 = ic + ap * kGemmMR;
    const int64_t rows = std::min(kGemmMR, mc - ap * kGemmMR);
    if (rows < kGemmMR) {
      std::memset(panel, 0, sizeof(float) * static_cast<size_t>(kc * kGemmMR));
    }
    if (!trans_a) {
      // Stored [m, k]: each logical row is contiguous in p when dense.
      if (row_off == nullptr) {
        for (int64_t ii = 0; ii < rows; ++ii) {
          const float* row = a_mat + (r0 + ii) * k + pc;
          float* out = panel + ii;
          for (int64_t p = 0; p < kc; ++p) out[p * kGemmMR] = row[p];
        }
      } else {
        for (int64_t ii = 0; ii < rows; ++ii) {
          const float* row = a_mat + row_off[r0 + ii];
          float* out = panel + ii;
          for (int64_t p = 0; p < kc; ++p) {
            out[p * kGemmMR] = row[col_off[pc + p]];
          }
        }
      }
    } else {
      // Stored [k, m]: for fixed depth p the logical rows are contiguous.
      for (int64_t p = 0; p < kc; ++p) {
        const float* col = a_mat + (pc + p) * m + r0;
        float* out = panel + p * kGemmMR;
        for (int64_t ii = 0; ii < rows; ++ii) out[ii] = col[ii];
      }
    }
  }
}

// Compute phase shared by PackedGemmBatched and its prepacked variant:
// packed_base holds batch.num_b_mats consecutive packed B matrices in
// PackBPanel layout. One compiled loop for both entry points keeps them
// bitwise identical by construction.
void ComputePackedGemm(const float* a, bool trans_a,
                       const float* packed_base, float* c, int64_t m,
                       int64_t n, int64_t k, const GemmBatch& batch,
                       const GemmEpilogue* epi) {
  const int64_t nbatch = batch.nbatch;
  const int64_t npanels = CeilDiv(n, kGemmNR);
  const int64_t panel_size = k * kGemmNR;
  // Phase 2: each chunk owns a contiguous range of kGemmMR-row blocks
  // (globally indexed over batch x M), so every output row is written by
  // exactly one chunk. Within the chunk the canonical blocked loop nest
  // runs: KC depth blocks (ascending — this fixes the summation order),
  // MC row blocks (A packed per block into a chunk-local buffer), NC/NR
  // column panels, MR row micro-panels.
  const int64_t mblocks = CeilDiv(m, kGemmMR);
  const int64_t a_mat = m * k;
  const int64_t c_mat = m * n;
  LIPF_CHECK(batch.a_row_offset == nullptr || !trans_a);
  const int64_t block_macs = kGemmMR * n * k;
  ParallelFor(
      nbatch * mblocks, std::max<int64_t>(1, kGemmGrainMacs / block_macs),
      [&](int64_t begin, int64_t end) {
        // Per-chunk A-pack scratch from the storage pool: a freelist pop
        // after the first step instead of a malloc per chunk.
        Storage apack = Storage::Acquire(kGemmMC * std::min(k, kGemmKC));
        int64_t blk = begin;
        while (blk < end) {
          const int64_t bi = blk / mblocks;
          const int64_t rb0 = blk % mblocks;
          const int64_t rb1 = std::min(mblocks, rb0 + (end - blk));
          const int64_t row0 = rb0 * kGemmMR;
          const int64_t row1 = std::min(m, rb1 * kGemmMR);
          // With a row-offset gather the offsets (one run of m per batch
          // position) already encode the matrix start, so the base stays
          // the raw operand pointer.
          const int64_t* a_ro = batch.a_row_offset != nullptr
                                    ? batch.a_row_offset + bi * m
                                    : nullptr;
          const float* a_base = a_ro != nullptr
                                    ? a
                                    : a + batch.a_mat_index[bi] * a_mat;
          const float* b_pack =
              packed_base + batch.b_mat_index[bi] * npanels * panel_size;
          float* c_base = c + bi * c_mat;
          const float* res_base =
              epi != nullptr && epi->residual != nullptr
                  ? epi->residual + bi * c_mat
                  : nullptr;
          for (int64_t pc = 0; pc < k; pc += kGemmKC) {
            const int64_t kc = std::min(kGemmKC, k - pc);
            for (int64_t ic = row0; ic < row1; ic += kGemmMC) {
              const int64_t mc = std::min(kGemmMC, row1 - ic);
              PackABlock(a_base, trans_a, m, k, a_ro, batch.a_col_offset,
                         ic, mc, pc, kc, apack.data());
              const int64_t napanels = CeilDiv(mc, kGemmMR);
              for (int64_t jc = 0; jc < n; jc += kGemmNC) {
                const int64_t nc_end = std::min(n, jc + kGemmNC);
                for (int64_t jp = jc / kGemmNR; jp * kGemmNR < nc_end;
                     ++jp) {
                  const float* bp =
                      b_pack + jp * panel_size + pc * kGemmNR;
                  const int64_t ncols =
                      std::min(kGemmNR, n - jp * kGemmNR);
                  for (int64_t ap = 0; ap < napanels; ++ap) {
                    float acc[kGemmMR * kGemmNR] = {0.0f};
                    MicroKernel(kc, apack.data() + ap * kc * kGemmMR, bp,
                                acc);
                    const int64_t r0 = ic + ap * kGemmMR;
                    const int64_t rows = std::min(kGemmMR, row1 - r0);
                    float* ct = c_base + r0 * n + jp * kGemmNR;
                    if (pc == 0) {
                      for (int64_t i = 0; i < rows; ++i) {
                        for (int64_t j = 0; j < ncols; ++j) {
                          ct[i * n + j] = acc[i * kGemmNR + j];
                        }
                      }
                    } else {
                      for (int64_t i = 0; i < rows; ++i) {
                        for (int64_t j = 0; j < ncols; ++j) {
                          ct[i * n + j] += acc[i * kGemmNR + j];
                        }
                      }
                    }
                  }
                }
              }
            }
          }
          // The chunk's C rows are complete; apply the fused epilogue as
          // one sweep over full-width contiguous rows while they are
          // still warm. Keeping the sweep out of the blocked loops means
          // it never competes with the packed A/B working set mid-GEMM.
          if (epi != nullptr && epi->enabled()) {
            raw::GemmEpilogueRegion(c_base, n, row0, row1 - row0, 0, n,
                                    epi->bias, epi->act, res_base,
                                    epi->res_op, epi->res_is_lhs);
          }
          blk += rb1 - rb0;
        }
      });
}

// k == 0 degenerate case: C is all zeros; the epilogue (if any) still
// runs over it so the fused op matches the unfused sequence.
void ZeroGemmOutput(float* c, int64_t m, int64_t n, int64_t nbatch,
                    const GemmEpilogue* epi) {
  std::memset(c, 0, sizeof(float) * static_cast<size_t>(nbatch * m * n));
  if (epi == nullptr || !epi->enabled()) return;
  for (int64_t bi = 0; bi < nbatch; ++bi) {
    raw::GemmEpilogueRegion(
        c + bi * m * n, n, 0, m, 0, n, epi->bias, epi->act,
        epi->residual != nullptr ? epi->residual + bi * m * n : nullptr,
        epi->res_op, epi->res_is_lhs);
  }
}

}  // namespace

void PackedGemmBatched(const float* a, bool trans_a, const float* b,
                       bool trans_b, float* c, int64_t m, int64_t n,
                       int64_t k, const GemmBatch& batch,
                       const GemmEpilogue* epi) {
  const int64_t nbatch = batch.nbatch;
  if (nbatch == 0 || m == 0 || n == 0) return;
  if (k == 0) {
    ZeroGemmOutput(c, m, n, nbatch, epi);
    return;
  }
  LIPF_CHECK(batch.a_mat_index != nullptr);
  LIPF_CHECK(batch.b_mat_index != nullptr);

  // Phase 1: pack every distinct B matrix into column panels, shared
  // read-only by all compute chunks. Pure data movement with disjoint
  // writes, so the parallel split is free of ordering concerns.
  const int64_t npanels = CeilDiv(n, kGemmNR);
  const int64_t panel_size = k * kGemmNR;
  const int64_t b_mat = k * n;
  const int64_t b_rows = trans_b ? n : k;  // stored rows per B matrix
  Storage packed_b =
      Storage::Acquire(batch.num_b_mats * npanels * panel_size);
  float* packed_base = packed_b.data();
  ParallelFor(batch.num_b_mats * npanels,
              std::max<int64_t>(1, kPackGrainElems / panel_size),
              [&](int64_t begin, int64_t end) {
                for (int64_t t = begin; t < end; ++t) {
                  const int64_t bm = t / npanels;
                  const int64_t jp = t % npanels;
                  const int64_t* b_ro =
                      batch.b_row_offset != nullptr
                          ? batch.b_row_offset + bm * b_rows
                          : nullptr;
                  const float* src = b_ro != nullptr ? b : b + bm * b_mat;
                  PackBPanel(src, trans_b, n, k, b_ro, batch.b_col_offset,
                             jp, packed_base + t * panel_size);
                }
              });

  ComputePackedGemm(a, trans_a, packed_base, c, m, n, k, batch, epi);
}

void PackGemmB(const float* b, bool trans_b, int64_t n, int64_t k,
               float* dst) {
  const int64_t npanels = CeilDiv(n, kGemmNR);
  const int64_t panel_size = k * kGemmNR;
  for (int64_t jp = 0; jp < npanels; ++jp) {
    PackBPanel(b, trans_b, n, k, nullptr, nullptr, jp,
               dst + jp * panel_size);
  }
}

void PackedGemmBatchedPrepacked(const float* a, bool trans_a,
                                const float* packed_b, float* c, int64_t m,
                                int64_t n, int64_t k, const GemmBatch& batch,
                                const GemmEpilogue* epi) {
  const int64_t nbatch = batch.nbatch;
  if (nbatch == 0 || m == 0 || n == 0) return;
  if (k == 0) {
    ZeroGemmOutput(c, m, n, nbatch, epi);
    return;
  }
  LIPF_CHECK(batch.a_mat_index != nullptr);
  LIPF_CHECK(batch.b_mat_index != nullptr);
  ComputePackedGemm(a, trans_a, packed_b, c, m, n, k, batch, epi);
}

}  // namespace lipformer
