#ifndef LIPFORMER_TENSOR_TENSOR_H_
#define LIPFORMER_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "tensor/storage_pool.h"

// Dense, contiguous, row-major float32 tensor. Storage is shared between
// tensors produced by Reshape/View so reshapes are free; all arithmetic ops
// (see tensor/ops.h) allocate fresh outputs. Storage comes from the
// size-bucketed pool in tensor/storage_pool.h, so steady-state allocation
// is a freelist pop rather than a malloc. This is the numeric substrate
// for the whole library -- there is no external BLAS dependency.

namespace lipformer {

using Shape = std::vector<int64_t>;

int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);
bool SameShape(const Shape& a, const Shape& b);

class Tensor {
 public:
  // Empty 0-d tensor with a single element (scalar zero).
  Tensor();

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor wrapping the given data (copied); data.size() must match shape.
  Tensor(Shape shape, std::vector<float> data);

  // ---- Factories ----
  // UNINITIALIZED tensor: contents are arbitrary (possibly stale pool
  // data). Only for callers that write every element before reading.
  static Tensor Empty(Shape shape);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  // Standard-normal entries scaled by stddev.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor RandUniform(Shape shape, Rng& rng, float lo, float hi);
  // [0, 1, ..., n-1] as float.
  static Tensor Arange(int64_t n);

  // ---- Introspection ----
  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }
  const Shape& strides() const { return strides_; }

  float* data() { return storage_.data(); }
  const float* data() const { return storage_.data(); }

  // Scalar access for 0-d / 1-element tensors.
  float item() const;

  // Multi-dimensional element access (bounds-checked).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  // ---- Shape manipulation (storage-sharing) ----
  // New view with the same element count. A -1 entry is inferred.
  Tensor Reshape(Shape new_shape) const;
  // Adds a size-1 dimension at position d.
  Tensor Unsqueeze(int64_t d) const;
  // Removes a size-1 dimension at position d.
  Tensor Squeeze(int64_t d) const;

  // Deep copy.
  Tensor Clone() const;

  // Fills every element with value.
  void Fill(float value);

  std::string ToString(int64_t max_per_dim = 8) const;

 private:
  // Tag ctor producing a tensor with no storage; internal factories fill
  // in shape_/storage_ themselves (avoids the default ctor's allocation).
  struct NoAllocTag {};
  explicit Tensor(NoAllocTag) {}

  void InitStrides();

  Shape shape_;
  Shape strides_;
  int64_t numel_ = 0;
  Storage storage_;
};

}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_TENSOR_H_
