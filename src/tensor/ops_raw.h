#ifndef LIPFORMER_TENSOR_OPS_RAW_H_
#define LIPFORMER_TENSOR_OPS_RAW_H_

#include <cstdint>

#include "tensor/ops.h"

// Raw "out-variant" forms of the forward tensor kernels: the exact inner
// loops of tensor/ops.cc, taking precomputed dims and caller-provided
// raw pointers instead of Tensors. The public ops in ops.cc call these
// after their shape prologue, and the AOT plan executor
// (serve/plan_exec.cc) calls them directly against arena offsets — one
// compiled loop per kernel, so the two paths are bitwise identical by
// construction, not by testing alone.
//
// All functions run on the shared thread pool with the same grains as the
// public ops; chunk boundaries are functions of shape only, so outputs
// are bitwise identical at every thread count (see tensor/ops.h).
// Pointers must not alias outputs with inputs.

namespace lipformer {
namespace raw {

enum class Bin : int32_t { kAdd, kSub, kMul, kDiv, kMax, kMin };
enum class Un : int32_t {
  kAddScalar,
  kMulScalar,
  kPowScalar,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSin,
  kCos,
  kTanh,
  kSigmoid,
  kRelu,
  kGelu,
};

// Same-shape elementwise binary: out[i] = op(a[i], b[i]).
void BinarySame(Bin op, const float* a, const float* b, float* out,
                int64_t n);

// Broadcast elementwise binary over the odometer walk: `oshape` is the
// output shape, `sa`/`sb` the broadcast strides of a/b relative to it
// (all length nd), numel the output element count.
void BinaryBcast(Bin op, const float* a, const float* b, float* out,
                 const int64_t* oshape, const int64_t* sa, const int64_t* sb,
                 int64_t nd, int64_t numel);

// Elementwise unary with optional scalar operand (AddScalar/MulScalar/
// PowScalar read `s`; the rest ignore it).
void Unary(Un op, float s, const float* a, float* out, int64_t n);

// Permute gather: out[i] = in[dot(multi_index(i, oshape), gather)].
void PermuteCopy(const float* in, float* out, const int64_t* oshape,
                 const int64_t* gather, int64_t nd, int64_t numel);

// Contiguous slice along the (outer, mid, inner) split: copies
// mid range [start, start+len) per outer block.
void SliceCopy(const float* in, float* out, int64_t outer, int64_t mid,
               int64_t inner, int64_t start, int64_t len);

// Copies one concat operand (mid slots wide) into an output whose concat
// dim is mid_out slots wide, at slot offset `offset`.
void ConcatCopyOne(const float* in, float* out, int64_t outer, int64_t mid,
                   int64_t mid_out, int64_t offset, int64_t inner);

// Sum over the mid dim of the (outer, mid, inner) split.
void SumDim(const float* in, float* out, int64_t outer, int64_t mid,
            int64_t inner);

// Softmax / log-softmax over the mid dim (max-subtracted).
void SoftmaxDim(const float* in, float* out, int64_t outer, int64_t mid,
                int64_t inner);
void LogSoftmaxDim(const float* in, float* out, int64_t outer, int64_t mid,
                   int64_t inner);

// Fused softmax(scale * x [+ mask]) over rows of width mid; mask (when
// non-null) is [sq, mid] and row r uses mask row r % sq. Compiled with
// fp-contract off (see ops.cc) so it stays bitwise equal to the unfused
// chain.
void ScaledMaskedSoftmaxRows(const float* in, float* out, int64_t rows,
                             int64_t mid, float scale, const float* mask,
                             int64_t sq);

// act(x + bias) over rows of width c.
void AddBiasActRows(const float* x, const float* bias, float* out,
                    int64_t rows, int64_t c, FusedAct act);

// a [rows, c] (-|+) b broadcast over groups of t rows (the [B, T, C] vs
// [B, 1, C] instance-norm shift): b row index is r / t.
void BroadcastMidRows(bool sub_op, const float* a, const float* b,
                      float* out, int64_t rows, int64_t t, int64_t c);

}  // namespace raw
}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_OPS_RAW_H_
