#ifndef LIPFORMER_TENSOR_OPS_RAW_H_
#define LIPFORMER_TENSOR_OPS_RAW_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/ops.h"

// Raw "out-variant" forms of the forward tensor kernels: the exact inner
// loops of tensor/ops.cc, taking precomputed dims and caller-provided
// raw pointers instead of Tensors. The public ops in ops.cc call these
// after their shape prologue, and the AOT plan executor
// (serve/plan_exec.cc) calls them directly against arena offsets — one
// compiled loop per kernel, so the two paths are bitwise identical by
// construction, not by testing alone.
//
// All functions run on the shared thread pool with the same grains as the
// public ops; chunk boundaries are functions of shape only, so outputs
// are bitwise identical at every thread count (see tensor/ops.h).
// Pointers must not alias outputs with inputs.

namespace lipformer {
namespace raw {

enum class Bin : int32_t { kAdd, kSub, kMul, kDiv, kMax, kMin };
enum class Un : int32_t {
  kAddScalar,
  kMulScalar,
  kPowScalar,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSin,
  kCos,
  kTanh,
  kSigmoid,
  kRelu,
  kGelu,
};

// tanh-approximation GELU forward. Deliberately a single out-of-line
// definition (ops.cc, noinline): the standalone Gelu kernel, the fused
// AddBiasAct epilogue, the GEMM epilogue and the fused elementwise chain
// all call the one compiled copy, so no caller can be contracted (FMA)
// differently from another — gelu outputs stay bitwise identical across
// fused and unfused paths by construction.
float GeluFwd(float x);

// The single source of scalar semantics for Bin/Un: every elementwise
// kernel — the dispatch tables below, the GEMM epilogue and the fused
// chain interpreter — computes each element through these, so fused and
// unfused paths share one definition per operation. Each case is either a
// single IEEE operation or an opaque call (libm / GeluFwd), which leaves
// the compiler nothing to contract across; inlining with a compile-time
// `op` folds to the bare operation.
inline float ApplyBin(Bin op, float x, float y) {
  switch (op) {
    case Bin::kAdd:
      return x + y;
    case Bin::kSub:
      return x - y;
    case Bin::kMul:
      return x * y;
    case Bin::kDiv:
      return x / y;
    case Bin::kMax:
      return std::max(x, y);
    case Bin::kMin:
      return std::min(x, y);
  }
  return 0.0f;
}

float ApplyUnSlow(Un op, float s, float x);  // out-of-line libm cases

inline float ApplyUn(Un op, float s, float x) {
  switch (op) {
    case Un::kAddScalar:
      return x + s;
    case Un::kMulScalar:
      return x * s;
    case Un::kNeg:
      return -x;
    case Un::kSqrt:
      return std::sqrt(x);
    case Un::kAbs:
      return std::fabs(x);
    case Un::kRelu:
      return x > 0.0f ? x : 0.0f;
    default:
      return ApplyUnSlow(op, s, x);
  }
}

// Same-shape elementwise binary: out[i] = op(a[i], b[i]).
void BinarySame(Bin op, const float* a, const float* b, float* out,
                int64_t n);

// Broadcast elementwise binary over the odometer walk: `oshape` is the
// output shape, `sa`/`sb` the broadcast strides of a/b relative to it
// (all length nd), numel the output element count.
void BinaryBcast(Bin op, const float* a, const float* b, float* out,
                 const int64_t* oshape, const int64_t* sa, const int64_t* sb,
                 int64_t nd, int64_t numel);

// Elementwise unary with optional scalar operand (AddScalar/MulScalar/
// PowScalar read `s`; the rest ignore it).
void Unary(Un op, float s, const float* a, float* out, int64_t n);

// Permute gather: out[i] = in[dot(multi_index(i, oshape), gather)].
void PermuteCopy(const float* in, float* out, const int64_t* oshape,
                 const int64_t* gather, int64_t nd, int64_t numel);

// Contiguous slice along the (outer, mid, inner) split: copies
// mid range [start, start+len) per outer block.
void SliceCopy(const float* in, float* out, int64_t outer, int64_t mid,
               int64_t inner, int64_t start, int64_t len);

// Copies one concat operand (mid slots wide) into an output whose concat
// dim is mid_out slots wide, at slot offset `offset`.
void ConcatCopyOne(const float* in, float* out, int64_t outer, int64_t mid,
                   int64_t mid_out, int64_t offset, int64_t inner);

// Sum over the mid dim of the (outer, mid, inner) split.
void SumDim(const float* in, float* out, int64_t outer, int64_t mid,
            int64_t inner);

// Softmax / log-softmax over the mid dim (max-subtracted).
void SoftmaxDim(const float* in, float* out, int64_t outer, int64_t mid,
                int64_t inner);
void LogSoftmaxDim(const float* in, float* out, int64_t outer, int64_t mid,
                   int64_t inner);

// Fused softmax(scale * x [+ mask]) over rows of width mid; mask (when
// non-null) is [sq, mid] and row r uses mask row r % sq. Compiled with
// fp-contract off (see ops.cc) so it stays bitwise equal to the unfused
// chain.
void ScaledMaskedSoftmaxRows(const float* in, float* out, int64_t rows,
                             int64_t mid, float scale, const float* mask,
                             int64_t sq);

// act(x + bias) over rows of width c.
void AddBiasActRows(const float* x, const float* bias, float* out,
                    int64_t rows, int64_t c, FusedAct act);

// a [rows, c] (-|+) b broadcast over groups of t rows (the [B, T, C] vs
// [B, 1, C] instance-norm shift): b row index is r / t.
void BroadcastMidRows(bool sub_op, const float* a, const float* b,
                      float* out, int64_t rows, int64_t t, int64_t c);

// GEMM epilogue over one cache-hot region of C: for rows [r0, r0+nrows)
// and columns [j0, j0+ncols) of a row-major [*, ldc] matrix, applies
// act(c + bias[j]) (bias may be null) and then the residual binary
// `res_op` against `residual` read at the same offsets as C (residual may
// be null; res_is_lhs puts it on the binary's left). Element semantics
// are exactly AddBiasActRows followed by BinarySame — same expressions,
// same GeluFwd — so a GEMM with this epilogue is bitwise identical to the
// unfused op sequence. Serial: the packed GEMM (tensor/gemm.cc) calls it
// from inside its own ParallelFor chunks.
void GemmEpilogueRegion(float* c, int64_t ldc, int64_t r0, int64_t nrows,
                        int64_t j0, int64_t ncols, const float* bias,
                        int32_t act, const float* residual, int32_t res_op,
                        bool res_is_lhs);

// One step of a fused elementwise chain (kFusedChain plan ops). The chain
// kernel decomposes the output into rows x w elements and streams a value
// v through the step list per element: unary steps apply ApplyUn, binary
// steps combine v with `other[row_base[r] + j * inner_step]` via ApplyBin
// (v is the left operand when prev_is_a). The per-row base table is
// precomputed and numerically verified by the plan compiler
// (serve/plan.cc), which is what lets one table-driven loop reproduce
// same-shape, broadcast-mid and strided-broadcast operands alike.
struct ChainStep {
  bool is_binary = false;
  bool prev_is_a = true;
  int32_t sub = 0;   // Bin when binary, Un otherwise
  float scalar = 0.0f;
  const float* other = nullptr;
  const int64_t* row_base = nullptr;
  int64_t inner_step = 0;
};

// out[r * w + j] = chain(in[r * w + j]); one read-modify-write sweep over
// the whole run of fused ops. Each element's value passes through the
// identical scalar operations the unfused kernels apply (ApplyBin /
// ApplyUn / GeluFwd), and the runtime step dispatch is an optimization
// barrier between steps, so results are bitwise identical to running the
// ops separately.
void FusedChainRows(const float* in, float* out, int64_t rows, int64_t w,
                    const ChainStep* steps, int64_t nsteps);

}  // namespace raw
}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_OPS_RAW_H_
