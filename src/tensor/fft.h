#ifndef LIPFORMER_TENSOR_FFT_H_
#define LIPFORMER_TENSOR_FFT_H_

#include <complex>
#include <vector>

#include "tensor/tensor.h"

// Radix-2 FFT utilities. Used by the Autoformer baseline (autocorrelation
// via the Wiener-Khinchin theorem) and the FGNN baseline. These are
// forward-only numeric helpers; differentiable frequency-domain layers use
// explicit DFT matrices instead (see models/fgnn).

namespace lipformer {

// In-place iterative radix-2 Cooley-Tukey; a.size() must be a power of two.
void Fft(std::vector<std::complex<float>>& a, bool inverse);

// Smallest power of two >= n.
int64_t NextPowerOfTwo(int64_t n);

// Circular autocorrelation of each row of x: out[i, tau] =
// sum_t x[i, t] * x[i, (t+tau) mod n] / n, computed with FFT after
// zero-mean-ing each row. x: [rows, n] -> out: [rows, n].
Tensor Autocorrelation(const Tensor& x);

// Real DFT basis matrices for length n and `k` kept frequencies:
// cos_mat/sin_mat are [n, k] with entries cos(2*pi*f*t/n), -sin(...).
// Multiplying a time-domain signal [*, n] by these yields the real and
// imaginary parts of its truncated spectrum; used for differentiable
// frequency-domain models.
void DftBasis(int64_t n, int64_t k, Tensor* cos_mat, Tensor* sin_mat);
// Inverse basis: [k, n] matrices reconstructing a real signal from the
// truncated spectrum (with the standard 2/n scaling, DC term scaled 1/n).
void InverseDftBasis(int64_t n, int64_t k, Tensor* cos_mat, Tensor* sin_mat);

}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_FFT_H_
