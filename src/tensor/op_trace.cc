#include "tensor/op_trace.h"

#include <utility>

namespace lipformer {
namespace trace {

namespace {

thread_local Recorder* g_recorder = nullptr;

// Shape vectors copied into aux slots.
std::vector<int64_t> ToVec(const Shape& s) {
  return std::vector<int64_t>(s.begin(), s.end());
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kBinary: return "binary";
    case OpKind::kBinaryBcast: return "binary_bcast";
    case OpKind::kUnary: return "unary";
    case OpKind::kGemm: return "gemm";
    case OpKind::kQuantLinear: return "quant_linear";
    case OpKind::kPermute: return "permute";
    case OpKind::kSlice: return "slice";
    case OpKind::kConcat: return "concat";
    case OpKind::kSum: return "sum";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kLogSoftmax: return "log_softmax";
    case OpKind::kScaledMaskedSoftmax: return "scaled_masked_softmax";
    case OpKind::kAddBiasAct: return "add_bias_act";
    case OpKind::kBroadcastMid: return "broadcast_mid";
    case OpKind::kFusedChain: return "fused_chain";
    case OpKind::kNumKinds: break;
  }
  return "?";
}

Recorder::Recorder() : prev_(g_recorder) { g_recorder = this; }

Recorder::~Recorder() { g_recorder = prev_; }

Recorder* ActiveRecorder() { return g_recorder; }

Tensor Recorder::FindKept(const float* ptr) const {
  for (const Tensor& t : kept_) {
    if (t.data() == ptr) return t;
  }
  return Tensor();
}

void Recorder::Keep(const Tensor& t) { kept_.push_back(t); }

void Recorder::Add(TraceRecord rec) { records_.push_back(std::move(rec)); }

void Recorder::MarkUnsupported(const char* what) {
  if (unsupported_.empty()) unsupported_ = what;
}

namespace {

// Common prologue: keeps the operands alive and fills the shared fields.
TraceRecord Base(OpKind kind, std::initializer_list<const Tensor*> ins,
                 const Tensor& out) {
  Recorder* rec = g_recorder;
  TraceRecord r;
  r.kind = kind;
  for (const Tensor* t : ins) {
    rec->Keep(*t);
    r.in.push_back(t->data());
  }
  rec->Keep(out);
  r.out = out.data();
  r.out_numel = out.numel();
  return r;
}

}  // namespace

void RecordBinarySame(raw::Bin op, const Tensor& a, const Tensor& b,
                      const Tensor& out) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kBinary, {&a, &b}, out);
  r.sub = static_cast<int32_t>(op);
  r.d[0] = out.numel();
  g_recorder->Add(std::move(r));
}

void RecordBinaryBcast(raw::Bin op, const Tensor& a, const Tensor& b,
                       const Tensor& out, const Shape& oshape,
                       const Shape& sa, const Shape& sb) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kBinaryBcast, {&a, &b}, out);
  r.sub = static_cast<int32_t>(op);
  r.d[0] = out.numel();
  r.d[1] = static_cast<int64_t>(oshape.size());
  r.aux0 = ToVec(oshape);
  r.aux1 = ToVec(sa);
  r.aux2 = ToVec(sb);
  g_recorder->Add(std::move(r));
}

void RecordUnary(raw::Un op, float scalar, const Tensor& a,
                 const Tensor& out) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kUnary, {&a}, out);
  r.sub = static_cast<int32_t>(op);
  r.scalar = scalar;
  r.d[0] = out.numel();
  g_recorder->Add(std::move(r));
}

void RecordGemm(const Tensor& a, const Tensor& b, const Tensor& out,
                bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                const GemmBatch& batch) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kGemm, {&a, &b}, out);
  r.trans_a = trans_a;
  r.trans_b = trans_b;
  r.d[0] = m;
  r.d[1] = n;
  r.d[2] = k;
  r.d[3] = batch.nbatch;
  r.d[4] = batch.num_b_mats;
  r.aux0.assign(batch.a_mat_index, batch.a_mat_index + batch.nbatch);
  r.aux1.assign(batch.b_mat_index, batch.b_mat_index + batch.nbatch);
  r.macs = batch.nbatch * m * n * k;
  g_recorder->Add(std::move(r));
}

void RecordQuantLinear(const Tensor& x, const Tensor& col_scale,
                       const Tensor& out, int64_t m, int64_t in_features,
                       int64_t out_features, const Int8PackedWeight* packed) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kQuantLinear, {&x, &col_scale}, out);
  r.d[0] = m;
  r.d[1] = in_features;
  r.d[2] = out_features;
  r.packed = packed;
  r.macs = m * out_features * in_features;
  g_recorder->Add(std::move(r));
}

void RecordPermute(const Tensor& in, const Tensor& out, const Shape& oshape,
                   const Shape& gather) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kPermute, {&in}, out);
  r.d[0] = out.numel();
  r.d[1] = static_cast<int64_t>(oshape.size());
  r.aux0 = ToVec(oshape);
  r.aux1 = ToVec(gather);
  g_recorder->Add(std::move(r));
}

void RecordSlice(const Tensor& in, const Tensor& out, int64_t outer,
                 int64_t mid, int64_t inner, int64_t start, int64_t len) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kSlice, {&in}, out);
  r.d[0] = outer;
  r.d[1] = mid;
  r.d[2] = inner;
  r.d[3] = start;
  r.d[4] = len;
  g_recorder->Add(std::move(r));
}

void RecordConcat(const std::vector<Tensor>& ins, const Tensor& out,
                  int64_t outer, int64_t mid_out, int64_t inner,
                  const std::vector<int64_t>& mids) {
  if (g_recorder == nullptr) return;
  TraceRecord r;
  r.kind = OpKind::kConcat;
  for (const Tensor& t : ins) {
    g_recorder->Keep(t);
    r.in.push_back(t.data());
  }
  g_recorder->Keep(out);
  r.out = out.data();
  r.out_numel = out.numel();
  r.d[0] = outer;
  r.d[1] = mid_out;
  r.d[2] = inner;
  r.aux0 = mids;
  g_recorder->Add(std::move(r));
}

void RecordReduction(OpKind kind, const Tensor& in, const Tensor& out,
                     int64_t outer, int64_t mid, int64_t inner) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(kind, {&in}, out);
  r.d[0] = outer;
  r.d[1] = mid;
  r.d[2] = inner;
  g_recorder->Add(std::move(r));
}

void RecordScaledMaskedSoftmax(const Tensor& in, const Tensor* mask,
                               const Tensor& out, int64_t rows, int64_t mid,
                               int64_t sq, float scale) {
  if (g_recorder == nullptr) return;
  TraceRecord r = mask != nullptr
                      ? Base(OpKind::kScaledMaskedSoftmax, {&in, mask}, out)
                      : Base(OpKind::kScaledMaskedSoftmax, {&in}, out);
  r.scalar = scale;
  r.d[0] = rows;
  r.d[1] = mid;
  r.d[2] = sq;
  r.d[3] = mask != nullptr ? 1 : 0;
  g_recorder->Add(std::move(r));
}

void RecordAddBiasAct(const Tensor& x, const Tensor& bias, const Tensor& out,
                      int64_t rows, int64_t c, FusedAct act) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kAddBiasAct, {&x, &bias}, out);
  r.sub = static_cast<int32_t>(act);
  r.d[0] = rows;
  r.d[1] = c;
  g_recorder->Add(std::move(r));
}

void RecordBroadcastMid(bool sub_op, const Tensor& a, const Tensor& b,
                        const Tensor& out, int64_t rows, int64_t t,
                        int64_t c) {
  if (g_recorder == nullptr) return;
  TraceRecord r = Base(OpKind::kBroadcastMid, {&a, &b}, out);
  r.sub = sub_op ? 1 : 0;
  r.d[0] = rows;
  r.d[1] = t;
  r.d[2] = c;
  g_recorder->Add(std::move(r));
}

void RecordUnsupported(const char* what) {
  if (g_recorder == nullptr) return;
  g_recorder->MarkUnsupported(what);
}

}  // namespace trace
}  // namespace lipformer
