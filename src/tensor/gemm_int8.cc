#include "tensor/gemm_int8.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/storage_pool.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#define LIPF_INT8_AVX512 1
#if defined(__AVX512VNNI__)
#define LIPF_INT8_VNNI 1
#endif
#endif

namespace lipformer {

namespace {

// Same dispatch grain as the fp32 GEMM: a chunk owns at least this many
// multiply-accumulates.
constexpr int64_t kInt8GrainMacs = 16384;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

inline int64_t KQuads(int64_t k) { return CeilDiv(k, kInt8KUnroll); }

// kGemmMR x kGemmNR int32 register tile over kq packed depth quads,
// accumulating INTO acc (callers zero it before the first KC block).
// ap: kq * kGemmMR * 4 unsigned bytes (s8 + 128), bp: kq * kGemmNR * 4
// signed bytes. The bias is corrected in the caller's epilogue.
#ifdef LIPF_INT8_VNNI
inline void MicroKernelInt8(int64_t kq, const uint8_t* __restrict__ ap,
                            const int8_t* __restrict__ bp,
                            int32_t* __restrict__ acc) {
  static_assert(kGemmNR == 16, "one zmm of int32 lanes per B quad");
  __m512i racc[kGemmMR];
  for (int64_t i = 0; i < kGemmMR; ++i) {
    racc[i] = _mm512_loadu_si512(acc + i * kGemmNR);
  }
  for (int64_t p = 0; p < kq; ++p) {
    const __m512i bv = _mm512_loadu_si512(bp + p * kGemmNR * kInt8KUnroll);
    const uint8_t* aq = ap + p * kGemmMR * kInt8KUnroll;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      int32_t quad;
      std::memcpy(&quad, aq + i * kInt8KUnroll, sizeof(quad));
      racc[i] = _mm512_dpbusd_epi32(racc[i], _mm512_set1_epi32(quad), bv);
    }
  }
  for (int64_t i = 0; i < kGemmMR; ++i) {
    _mm512_storeu_si512(acc + i * kGemmNR, racc[i]);
  }
}
#else
inline void MicroKernelInt8(int64_t kq, const uint8_t* __restrict__ ap,
                            const int8_t* __restrict__ bp,
                            int32_t* __restrict__ acc) {
  // Portable fallback computing the identical biased arithmetic; integer
  // accumulation is exact, so it is bit-identical to the VNNI path.
  for (int64_t p = 0; p < kq; ++p) {
    const uint8_t* aq = ap + p * kGemmMR * kInt8KUnroll;
    const int8_t* bq = bp + p * kGemmNR * kInt8KUnroll;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      int32_t* row = acc + i * kGemmNR;
      for (int64_t j = 0; j < kGemmNR; ++j) {
        int32_t dot = 0;
        for (int64_t q = 0; q < kInt8KUnroll; ++q) {
          dot += static_cast<int32_t>(aq[i * kInt8KUnroll + q]) *
                 static_cast<int32_t>(bq[j * kInt8KUnroll + q]);
        }
        row[j] += dot;
      }
    }
  }
}
#endif

// Packs rows [r0, r0 + rows) x depth [pc, pc + kc) of the s8 activation
// matrix a [m, k] into one biased (u8 = s8 + 128) micro-panel of
// KQuads(kc) * kGemmMR quads. Missing rows (tail) and missing depth
// (kc not a multiple of 4) pack as the bias value 128 = biased zero, so
// padded lanes multiply against packed-B zeros to exactly zero.
void PackAInt8(const int8_t* a, int64_t k, int64_t r0, int64_t rows,
               int64_t pc, int64_t kc, uint8_t* dst) {
  const int64_t kq = KQuads(kc);
  std::memset(dst, 128,
              static_cast<size_t>(kq * kGemmMR * kInt8KUnroll));
  for (int64_t i = 0; i < rows; ++i) {
    const int8_t* row = a + (r0 + i) * k + pc;
    for (int64_t p = 0; p < kc; ++p) {
      dst[(p / kInt8KUnroll) * kGemmMR * kInt8KUnroll +
          i * kInt8KUnroll + (p % kInt8KUnroll)] =
          static_cast<uint8_t>(static_cast<int32_t>(row[p]) + 128);
    }
  }
}

}  // namespace

void QuantizeWeightPerChannel(const float* w, int64_t k, int64_t n,
                              int8_t* w8, float* scale) {
  for (int64_t j = 0; j < n; ++j) {
    float amax = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      amax = std::max(amax, std::fabs(w[p * n + j]));
    }
    scale[j] = amax > 0.0f ? amax / 127.0f : 1.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      // nearbyint under the default FE_TONEAREST mode: round half to
      // even, deterministic across platforms for these magnitudes.
      w8[p * n + j] = static_cast<int8_t>(
          std::nearbyintf(w[p * n + j] / scale[j]));
    }
  }
}

void DequantizeWeightPerChannel(const int8_t* w8, const float* scale,
                                int64_t k, int64_t n, float* w) {
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      w[p * n + j] = static_cast<float>(w8[p * n + j]) * scale[j];
    }
  }
}

float QuantizeRowDynamic(const float* x, int64_t n, int8_t* x8) {
  float amax = 0.0f;
  int64_t j = 0;
#ifdef LIPF_INT8_AVX512
  __m512 vmax = _mm512_setzero_ps();
  for (; j + 16 <= n; j += 16) {
    vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(x + j)));
  }
  amax = _mm512_reduce_max_ps(vmax);
#endif
  for (; j < n; ++j) amax = std::max(amax, std::fabs(x[j]));
  const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  j = 0;
#ifdef LIPF_INT8_AVX512
  // cvtps_epi32 rounds under the default MXCSR nearest-even mode —
  // the same rounding nearbyintf performs in the scalar tail, so both
  // paths emit identical codes. Codes stay within +/-127 (amax maps to
  // exactly 127), so the saturating narrow never clips differently
  // from the scalar cast.
  const __m512 vinv = _mm512_set1_ps(inv);
  for (; j + 16 <= n; j += 16) {
    const __m512i q =
        _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(x + j), vinv));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x8 + j),
                     _mm512_cvtsepi32_epi8(q));
  }
#endif
  for (; j < n; ++j) {
    x8[j] = static_cast<int8_t>(std::nearbyintf(x[j] * inv));
  }
  return scale;
}

Int8PackedWeight PackInt8Weight(const int8_t* w8, int64_t k, int64_t n) {
  Int8PackedWeight packed;
  packed.k = k;
  packed.n = n;
  const int64_t npanels = CeilDiv(n, kGemmNR);
  const int64_t kq = KQuads(k);
  const int64_t panel_bytes = kq * kGemmNR * kInt8KUnroll;
  packed.panels.assign(static_cast<size_t>(npanels * panel_bytes), 0);
  packed.colsum.assign(static_cast<size_t>(n), 0);
  for (int64_t jp = 0; jp < npanels; ++jp) {
    int8_t* dst = packed.panels.data() + jp * panel_bytes;
    const int64_t j0 = jp * kGemmNR;
    const int64_t ncols = std::min(kGemmNR, n - j0);
    for (int64_t p = 0; p < k; ++p) {
      const int8_t* row = w8 + p * n + j0;
      int8_t* quad = dst + (p / kInt8KUnroll) * kGemmNR * kInt8KUnroll +
                     (p % kInt8KUnroll);
      for (int64_t jj = 0; jj < ncols; ++jj) {
        quad[jj * kInt8KUnroll] = row[jj];
        packed.colsum[static_cast<size_t>(j0 + jj)] +=
            static_cast<int32_t>(row[jj]);
      }
    }
  }
  return packed;
}

void Int8GemmBlocked(const int8_t* a, const Int8PackedWeight& w, int64_t m,
                     int32_t* c) {
  const int64_t n = w.n;
  const int64_t k = w.k;
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, sizeof(int32_t) * static_cast<size_t>(m * n));
    return;
  }
  const int64_t npanels = CeilDiv(n, kGemmNR);
  const int64_t panel_bytes = KQuads(k) * kGemmNR * kInt8KUnroll;
  const int64_t mblocks = CeilDiv(m, kGemmMR);
  const int64_t block_macs = kGemmMR * n * k;

  // Same loop nest as the fp32 kernel's compute phase (gemm.cc): each
  // chunk owns a contiguous range of kGemmMR-row blocks, KC depth blocks
  // ascending (biased partial sums accumulate through C), MC row blocks
  // with A packed once per MC x KC block into chunk-local scratch, NC/NR
  // column panels, MR micro-panels. A final per-row pass subtracts the
  // +128 A-bias correction once, after the last KC block.
  ParallelFor(
      mblocks, std::max<int64_t>(1, kInt8GrainMacs / block_macs),
      [&](int64_t begin, int64_t end) {
        // Chunk-local A-pack scratch from the float pool (byte view).
        Storage apack_storage =
            Storage::Acquire(CeilDiv(kGemmMC * kGemmKC, 4));
        uint8_t* apack = reinterpret_cast<uint8_t*>(apack_storage.data());
        const int64_t row0 = begin * kGemmMR;
        const int64_t row1 = std::min(m, end * kGemmMR);
        for (int64_t pc = 0; pc < k; pc += kGemmKC) {
          const int64_t kc = std::min(kGemmKC, k - pc);
          const int64_t kq = KQuads(kc);
          for (int64_t ic = row0; ic < row1; ic += kGemmMC) {
            const int64_t mc = std::min(kGemmMC, row1 - ic);
            const int64_t napanels = CeilDiv(mc, kGemmMR);
            for (int64_t ap = 0; ap < napanels; ++ap) {
              PackAInt8(a, k, ic + ap * kGemmMR,
                        std::min(kGemmMR, mc - ap * kGemmMR), pc, kc,
                        apack + ap * kq * kGemmMR * kInt8KUnroll);
            }
            for (int64_t jc = 0; jc < n; jc += kGemmNC) {
              const int64_t nc_end = std::min(n, jc + kGemmNC);
              for (int64_t jp = jc / kGemmNR; jp * kGemmNR < nc_end;
                   ++jp) {
                const int8_t* bp = w.panels.data() + jp * panel_bytes +
                                   (pc / kInt8KUnroll) * kGemmNR *
                                       kInt8KUnroll;
                const int64_t ncols = std::min(kGemmNR, n - jp * kGemmNR);
                for (int64_t ap = 0; ap < napanels; ++ap) {
                  int32_t acc[kGemmMR * kGemmNR] = {0};
                  MicroKernelInt8(
                      kq, apack + ap * kq * kGemmMR * kInt8KUnroll, bp,
                      acc);
                  const int64_t r0 = ic + ap * kGemmMR;
                  const int64_t rows = std::min(kGemmMR, row1 - r0);
                  int32_t* ct = c + r0 * n + jp * kGemmNR;
                  if (pc == 0) {
                    for (int64_t i = 0; i < rows; ++i) {
                      for (int64_t j = 0; j < ncols; ++j) {
                        ct[i * n + j] = acc[i * kGemmNR + j];
                      }
                    }
                  } else {
                    for (int64_t i = 0; i < rows; ++i) {
                      for (int64_t j = 0; j < ncols; ++j) {
                        ct[i * n + j] += acc[i * kGemmNR + j];
                      }
                    }
                  }
                }
              }
            }
          }
        }
        // Bias correction: c -= 128 * colsum, once per output element.
        for (int64_t r = row0; r < row1; ++r) {
          int32_t* row = c + r * n;
          for (int64_t j = 0; j < n; ++j) {
            row[j] -= 128 * w.colsum[static_cast<size_t>(j)];
          }
        }
      });
}

void Int8GemmReference(const int8_t* a, const int8_t* b, int64_t m,
                       int64_t n, int64_t k, int32_t* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(a[i * k + p]) *
               static_cast<int32_t>(b[p * n + j]);
      }
      c[i * n + j] = acc;
    }
  }
}

}  // namespace lipformer
