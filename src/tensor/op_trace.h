#ifndef LIPFORMER_TENSOR_OP_TRACE_H_
#define LIPFORMER_TENSOR_OP_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/ops_raw.h"
#include "tensor/tensor.h"

// Thread-local op tracing behind the AOT inference plans (serve/plan.h).
// While a trace::Recorder is alive on the current thread, every forward
// tensor kernel appends one TraceRecord after computing its result: the
// kernel id, the resolved dims its raw loop ran with, and the raw data
// pointers of its operands. The plan compiler replays the record list
// against a preplanned arena; pointers are how values are identified, so
// the recorder keeps a Tensor handle to every operand alive for the whole
// trace (the storage pool would otherwise recycle a block mid-trace and
// alias two distinct values).
//
// Ops with data-dependent control flow or results that escape the tensor
// graph (IndexSelect, Pad, Max, BroadcastTo, SumAll/MeanAll, the FFT
// family, MatMulReference) do not record — they poison the trace via
// Unsupported(), and the plan compiler reports a clean failure so the
// session falls back to the module path.
//
// Tracing is strictly thread-local and costs one thread-local load per
// kernel when inactive.

namespace lipformer {

struct Int8PackedWeight;

namespace trace {

enum class OpKind : int32_t {
  kBinary = 0,     // raw::BinarySame; sub = raw::Bin
  kBinaryBcast,    // raw::BinaryBcast; sub = raw::Bin
  kUnary,          // raw::Unary; sub = raw::Un, scalar operand in `scalar`
  kGemm,           // PackedGemmBatched
  kQuantLinear,    // QuantLinearForward (nn/linear.h)
  kPermute,        // raw::PermuteCopy
  kSlice,          // raw::SliceCopy
  kConcat,         // raw::ConcatCopyOne per input
  kSum,            // raw::SumDim
  kSoftmax,        // raw::SoftmaxDim
  kLogSoftmax,     // raw::LogSoftmaxDim
  kScaledMaskedSoftmax,  // raw::ScaledMaskedSoftmaxRows
  kAddBiasAct,     // raw::AddBiasActRows; sub = FusedAct
  kBroadcastMid,   // raw::BroadcastMidRows; sub = 1 for Sub, 0 for Add
  // Never traced: synthesized by the plan compiler's elementwise-chain
  // fusion pass (serve/plan.cc) and executed via raw::FusedChainRows.
  kFusedChain,
  kNumKinds,
};

const char* OpKindName(OpKind kind);

// One recorded kernel invocation. Dim slots d[] per kind:
//   kBinary:       d0=numel
//   kBinaryBcast:  d0=numel d1=nd         aux0=oshape aux1=sa aux2=sb
//   kUnary:        d0=numel
//   kGemm:         d0=m d1=n d2=k d3=nbatch d4=num_b_mats
//                  aux0=a_mat_index aux1=b_mat_index
//   kQuantLinear:  d0=m d1=in d2=out      in={x, col_scale}
//   kPermute:      d0=numel d1=nd         aux0=oshape aux1=gather
//   kSlice:        d0=outer d1=mid d2=inner d3=start d4=len
//   kConcat:       d0=outer d1=mid_out d2=inner   aux0=per-input mids
//   kSum/kSoftmax/kLogSoftmax: d0=outer d1=mid d2=inner
//   kScaledMaskedSoftmax: d0=rows d1=mid d2=sq d3=has_mask
//   kAddBiasAct:   d0=rows d1=c           in={x, bias}
//   kBroadcastMid: d0=rows d1=t d2=c
struct TraceRecord {
  OpKind kind = OpKind::kBinary;
  int32_t sub = 0;
  float scalar = 0.0f;
  std::vector<const float*> in;  // operand data pointers, kind-specific
  const float* out = nullptr;
  int64_t out_numel = 0;
  int64_t d[5] = {0, 0, 0, 0, 0};
  bool trans_a = false;
  bool trans_b = false;
  std::vector<int64_t> aux0, aux1, aux2;
  const Int8PackedWeight* packed = nullptr;  // kQuantLinear only
  int64_t macs = 0;  // kGemm / kQuantLinear MAC charge
};

// RAII trace scope for the current thread. Nesting restores the previous
// recorder on destruction.
class Recorder {
 public:
  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Trace is valid only while no unsupported op ran.
  bool ok() const { return unsupported_.empty(); }
  const std::string& unsupported() const { return unsupported_; }

  const std::vector<TraceRecord>& records() const { return records_; }

  // A kept Tensor whose data() is `ptr`, or an empty handle. Used by the
  // plan compiler to take ownership of constant operands (weights, masks,
  // zero feature tensors created inside the traced forward).
  Tensor FindKept(const float* ptr) const;

  // Internal hook API (called via the free functions below).
  void Keep(const Tensor& t);
  void Add(TraceRecord rec);
  void MarkUnsupported(const char* what);

 private:
  std::vector<TraceRecord> records_;
  std::vector<Tensor> kept_;
  std::string unsupported_;
  Recorder* prev_ = nullptr;
};

// The active recorder of the current thread, nullptr when not tracing.
Recorder* ActiveRecorder();
inline bool Active() { return ActiveRecorder() != nullptr; }

// ---- Hooks (no-ops when inactive; ops.cc guards with Active()) ----
void RecordBinarySame(raw::Bin op, const Tensor& a, const Tensor& b,
                      const Tensor& out);
void RecordBinaryBcast(raw::Bin op, const Tensor& a, const Tensor& b,
                       const Tensor& out, const Shape& oshape,
                       const Shape& sa, const Shape& sb);
void RecordUnary(raw::Un op, float scalar, const Tensor& a,
                 const Tensor& out);
void RecordGemm(const Tensor& a, const Tensor& b, const Tensor& out,
                bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                const GemmBatch& batch);
void RecordQuantLinear(const Tensor& x, const Tensor& col_scale,
                       const Tensor& out, int64_t m, int64_t in_features,
                       int64_t out_features, const Int8PackedWeight* packed);
void RecordPermute(const Tensor& in, const Tensor& out, const Shape& oshape,
                   const Shape& gather);
void RecordSlice(const Tensor& in, const Tensor& out, int64_t outer,
                 int64_t mid, int64_t inner, int64_t start, int64_t len);
void RecordConcat(const std::vector<Tensor>& ins, const Tensor& out,
                  int64_t outer, int64_t mid_out, int64_t inner,
                  const std::vector<int64_t>& mids);
void RecordReduction(OpKind kind, const Tensor& in, const Tensor& out,
                     int64_t outer, int64_t mid, int64_t inner);
void RecordScaledMaskedSoftmax(const Tensor& in, const Tensor* mask,
                               const Tensor& out, int64_t rows, int64_t mid,
                               int64_t sq, float scale);
void RecordAddBiasAct(const Tensor& x, const Tensor& bias, const Tensor& out,
                      int64_t rows, int64_t c, FusedAct act);
void RecordBroadcastMid(bool sub_op, const Tensor& a, const Tensor& b,
                        const Tensor& out, int64_t rows, int64_t t,
                        int64_t c);
// Poisons the active trace: `what` names the op that cannot be compiled.
void RecordUnsupported(const char* what);

}  // namespace trace
}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_OP_TRACE_H_
