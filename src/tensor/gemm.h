#ifndef LIPFORMER_TENSOR_GEMM_H_
#define LIPFORMER_TENSOR_GEMM_H_

#include <cstdint>

// Cache-blocked, register-tiled batched GEMM used by MatMul and its
// transpose-free variants (tensor/ops.h). The kernel packs B into
// contiguous kGemmNR-wide column panels (built once per distinct B matrix
// and shared read-only across pool workers), packs A into kGemmMR-row
// micro-panels per MC x KC block, and drives a kGemmMR x kGemmNR
// register-tile micro-kernel over MC/KC/NC cache blocks.
//
// Determinism contract (see DESIGN.md "Kernel architecture"): every output
// element accumulates its k products in the same order regardless of
// thread count or blocking — KC blocks ascending, then sequentially within
// a block — and each output row is written by exactly one ParallelFor
// chunk whose boundaries are a function of shape only. Outputs are
// therefore bitwise identical at every thread count. They may differ from
// a plain ikj loop in the last bits (FMA contraction), which is why tests
// compare against MatMulReference with AllClose rather than memcmp.

namespace lipformer {

// Blocking parameters. kGemmMC must be a multiple of kGemmMR and kGemmNC a
// multiple of kGemmNR. Retuning: see DESIGN.md — the invariants are
// (a) a packed B sub-panel (kGemmKC x kGemmNR floats) fits in L1,
// (b) a packed A block (kGemmMC x kGemmKC floats) fits in L2,
// (c) kGemmMR x kGemmNR accumulators fit in the vector register file.
inline constexpr int64_t kGemmMR = 4;
inline constexpr int64_t kGemmNR = 16;
inline constexpr int64_t kGemmMC = 128;
inline constexpr int64_t kGemmKC = 256;
inline constexpr int64_t kGemmNC = 4096;

// Batch bookkeeping for a broadcast batched GEMM. The index arrays map a
// broadcast batch position bi to the matrix actually stored in each
// operand (a broadcast operand repeats indices).
struct GemmBatch {
  int64_t nbatch = 1;                    // broadcast batch count
  const int64_t* a_mat_index = nullptr;  // [nbatch] matrix index into a
  const int64_t* b_mat_index = nullptr;  // [nbatch] matrix index into b
  int64_t num_b_mats = 1;                // distinct matrices stored in b
  // Separable-gather overrides, used by AOT plans to fold a transpose
  // copy into the pack phase. When set (always in row/col pairs), stored
  // element (r, c) of the matrix for batch position bi is read from
  //   a[a_row_offset[bi * rows + r] + a_col_offset[c]]
  // instead of the dense layout, where rows x cols are the STORED dims
  // ([m, k], or [k, m] under trans_a; a_row_offset covers all nbatch
  // positions, already resolved through a_mat_index). b_row_offset /
  // b_col_offset do the same for the stored B matrix packed into each
  // slot bm (b_row_offset is [num_b_mats * rows]). Packing reads
  // identical values in identical order, so results stay bitwise equal
  // to packing a dense transpose copy. A gather on A requires !trans_a.
  const int64_t* a_row_offset = nullptr;
  const int64_t* a_col_offset = nullptr;
  const int64_t* b_row_offset = nullptr;
  const int64_t* b_col_offset = nullptr;
};

// Optional fused epilogue applied to each C region right after its final
// KC depth block completes, while the region is still cache hot: bias add
// + activation (act(c + bias[j]), the AddBiasActRows semantics) and/or a
// residual elementwise binary against a tensor with C's exact layout
// ([nbatch, m, n]). The AOT plan compiler (serve/plan.cc) uses this to
// collapse GEMM + AddBiasAct (+ residual Binary) into one op with zero
// extra passes over C; element semantics are shared with the unfused
// kernels (raw::GemmEpilogueRegion), so results stay bitwise identical.
// `act` is a FusedAct (tensor/ops.h), `res_op` a raw::Bin (ops_raw.h) —
// int32 here to keep this header dependency-free.
struct GemmEpilogue {
  const float* bias = nullptr;      // [n], null: no bias/activation stage
  int32_t act = 0;                  // FusedAct applied with the bias
  const float* residual = nullptr;  // [nbatch * m * n], null: no residual
  int32_t res_op = 0;               // raw::Bin for the residual stage
  bool res_is_lhs = false;          // residual is the binary's left operand
  bool enabled() const { return bias != nullptr || residual != nullptr; }
};

// c[bi] = opA(a[batch.a_mat_index[bi]]) * opB(b[batch.b_mat_index[bi]]),
// where opX transposes the stored matrix when trans_x is set. Stored
// shapes per matrix: a is [m, k] (or [k, m] if trans_a), b is [k, n] (or
// [n, k] if trans_b), c is [m, n]. Runs on the shared thread pool. A
// non-null `epi` is applied per cache-hot C region (see GemmEpilogue).
void PackedGemmBatched(const float* a, bool trans_a, const float* b,
                       bool trans_b, float* c, int64_t m, int64_t n,
                       int64_t k, const GemmBatch& batch,
                       const GemmEpilogue* epi = nullptr);

// Floats occupied by one [k, n] B matrix in packed-panel form
// (ceil(n / kGemmNR) zero-padded panels of k * kGemmNR floats each).
inline constexpr int64_t PackedGemmBSize(int64_t n, int64_t k) {
  return ((n + kGemmNR - 1) / kGemmNR) * k * kGemmNR;
}

// Packs every column panel of one stored B matrix ([k, n], or [n, k] when
// trans_b) into dst (PackedGemmBSize(n, k) floats) — the exact layout
// PackedGemmBatched builds internally on every call. Pure data movement;
// the AOT plan compiler (serve/plan.cc) runs this once per constant
// weight matrix at compile time. Serial (compile-time only, not hot).
void PackGemmB(const float* b, bool trans_b, int64_t n, int64_t k,
               float* dst);

// Compute phase of PackedGemmBatched against B panels already packed by
// PackGemmB: packed_b holds batch.num_b_mats consecutive packed matrices
// (batch.b_mat_index selects among them). Bitwise identical to
// PackedGemmBatched on the same operands — it is the same compute loop,
// minus the per-call packing.
void PackedGemmBatchedPrepacked(const float* a, bool trans_a,
                                const float* packed_b, float* c, int64_t m,
                                int64_t n, int64_t k, const GemmBatch& batch,
                                const GemmEpilogue* epi = nullptr);

}  // namespace lipformer

#endif  // LIPFORMER_TENSOR_GEMM_H_
