#include "optim/lr_scheduler.h"

#include <cmath>

#include "common/logging.h"

namespace lipformer {

LrScheduler::LrScheduler(Optimizer* optimizer)
    : optimizer_(optimizer), base_lr_(optimizer->lr()) {
  LIPF_CHECK(optimizer != nullptr);
}

void LrScheduler::Step() {
  ++epoch_;
  Apply();
}

void LrScheduler::SetEpoch(int64_t epoch) {
  LIPF_CHECK_GE(epoch, 0);
  epoch_ = epoch;
  Apply();
}

StepLr::StepLr(Optimizer* optimizer, int64_t step_size, float gamma)
    : LrScheduler(optimizer), step_size_(step_size), gamma_(gamma) {
  LIPF_CHECK_GT(step_size, 0);
}

void StepLr::Apply() {
  const float factor =
      std::pow(gamma_, static_cast<float>(epoch_ / step_size_));
  optimizer_->set_lr(base_lr_ * factor);
}

CosineLr::CosineLr(Optimizer* optimizer, int64_t total_epochs, float min_lr)
    : LrScheduler(optimizer), total_epochs_(total_epochs), min_lr_(min_lr) {
  LIPF_CHECK_GT(total_epochs, 0);
}

void CosineLr::Apply() {
  const float t = std::min<float>(
      1.0f, static_cast<float>(epoch_) / static_cast<float>(total_epochs_));
  const float cosine = 0.5f * (1.0f + std::cos(static_cast<float>(M_PI) * t));
  optimizer_->set_lr(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

}  // namespace lipformer
