#include "optim/early_stopping.h"

#include "common/logging.h"

namespace lipformer {

EarlyStopping::EarlyStopping(int64_t patience, float min_delta)
    : patience_(patience), min_delta_(min_delta) {
  LIPF_CHECK_GT(patience, 0);
}

bool EarlyStopping::Update(float score) {
  ++epoch_;
  if (score < best_ - min_delta_) {
    best_ = score;
    best_epoch_ = epoch_;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

}  // namespace lipformer
