#include "optim/early_stopping.h"

#include <cmath>

#include "common/logging.h"

namespace lipformer {

EarlyStopping::EarlyStopping(int64_t patience, float min_delta)
    : patience_(patience), min_delta_(min_delta) {
  LIPF_CHECK_GT(patience, 0);
}

void EarlyStopping::Restore(float best, int64_t best_epoch,
                            int64_t bad_epochs, int64_t epoch) {
  LIPF_CHECK_GE(bad_epochs, 0);
  best_ = best;
  best_epoch_ = best_epoch;
  bad_epochs_ = bad_epochs;
  epoch_ = epoch;
}

bool EarlyStopping::Update(float score) {
  ++epoch_;
  // NaN (e.g. an evaluation over an empty split) is explicitly a
  // non-improvement; the comparison below would already be false for NaN,
  // but we don't want to rely on that subtlety.
  if (!std::isnan(score) && score < best_ - min_delta_) {
    best_ = score;
    best_epoch_ = epoch_;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

}  // namespace lipformer
