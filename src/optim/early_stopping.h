#ifndef LIPFORMER_OPTIM_EARLY_STOPPING_H_
#define LIPFORMER_OPTIM_EARLY_STOPPING_H_

#include <cstdint>
#include <limits>

namespace lipformer {

// Patience-based early stopping on a validation metric (lower is better).
// The paper trains 10 epochs with patience 3 and keeps the best-validation
// model (Section IV-A2).
class EarlyStopping {
 public:
  explicit EarlyStopping(int64_t patience, float min_delta = 0.0f);

  // Records a validation score; returns true if this is a new best. NaN
  // scores (empty validation split) never count as an improvement.
  bool Update(float score);

  bool ShouldStop() const { return bad_epochs_ >= patience_; }
  float best_score() const { return best_; }
  int64_t best_epoch() const { return best_epoch_; }
  int64_t bad_epochs() const { return bad_epochs_; }
  int64_t epoch() const { return epoch_; }

  // Exact-resume support: rewinds the stopper to a snapshotted state so a
  // resumed run stops (and keeps the same best) exactly where the
  // uninterrupted run would.
  void Restore(float best, int64_t best_epoch, int64_t bad_epochs,
               int64_t epoch);

 private:
  int64_t patience_;
  float min_delta_;
  float best_ = std::numeric_limits<float>::infinity();
  int64_t bad_epochs_ = 0;
  int64_t epoch_ = -1;
  int64_t best_epoch_ = -1;
};

}  // namespace lipformer

#endif  // LIPFORMER_OPTIM_EARLY_STOPPING_H_
