#ifndef LIPFORMER_OPTIM_SGD_H_
#define LIPFORMER_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace lipformer {

// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

}  // namespace lipformer

#endif  // LIPFORMER_OPTIM_SGD_H_
