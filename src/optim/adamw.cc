#include "optim/adamw.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lipformer {

AdamW::AdamW(std::vector<Variable> params, float lr, float beta1, float beta2,
             float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(Tensor::Zeros(p.shape()));
    v_.push_back(Tensor::Zeros(p.shape()));
  }
}

void AdamW::RestoreState(const std::vector<Tensor>& m,
                         const std::vector<Tensor>& v, int64_t step) {
  LIPF_CHECK_EQ(m.size(), params_.size());
  LIPF_CHECK_EQ(v.size(), params_.size());
  LIPF_CHECK_GE(step, 0);
  for (size_t i = 0; i < params_.size(); ++i) {
    LIPF_CHECK_EQ(m[i].numel(), m_[i].numel());
    LIPF_CHECK_EQ(v[i].numel(), v_[i].numel());
    std::copy(m[i].data(), m[i].data() + m[i].numel(), m_[i].data());
    std::copy(v[i].data(), v[i].data() + v[i].numel(), v_[i].data());
  }
  step_ = step;
}

void AdamW::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* w = p.mutable_value().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      // Decoupled weight decay applied directly to the weights.
      w[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[j]);
    }
  }
}

}  // namespace lipformer
