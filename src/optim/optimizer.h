#ifndef LIPFORMER_OPTIM_OPTIMIZER_H_
#define LIPFORMER_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace lipformer {

// Base class for first-order optimizers over a fixed parameter list.
// Parameters are Variable handles; Step() updates values in place using the
// gradients accumulated by the last Backward().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void Step() = 0;

  void ZeroGrad();

  // Current learning rate (schedulers mutate this).
  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
  float lr_ = 1e-3f;
};

// Global L2 norm over all gradients. NaN/Inf anywhere in the gradients
// propagates into the result, which is what the trainer's non-finite
// guard keys on.
float GlobalGradNorm(const std::vector<Variable>& params);

// Scales gradients in place by `scale` (used by ClipGradNorm and by the
// trainer, which reuses an already-computed norm).
void ScaleGradients(const std::vector<Variable>& params, float scale);

// Scales gradients so their global L2 norm is at most max_norm; returns the
// pre-clip norm.
float ClipGradNorm(const std::vector<Variable>& params, float max_norm);

}  // namespace lipformer

#endif  // LIPFORMER_OPTIM_OPTIMIZER_H_
