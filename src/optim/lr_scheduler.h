#ifndef LIPFORMER_OPTIM_LR_SCHEDULER_H_
#define LIPFORMER_OPTIM_LR_SCHEDULER_H_

#include "optim/optimizer.h"

namespace lipformer {

// Learning-rate schedulers mutate the wrapped optimizer's lr once per
// epoch via Step().
class LrScheduler {
 public:
  explicit LrScheduler(Optimizer* optimizer);
  virtual ~LrScheduler() = default;

  LrScheduler(const LrScheduler&) = delete;
  LrScheduler& operator=(const LrScheduler&) = delete;

  // Advances the schedule by one epoch and applies the new lr.
  void Step();

  int64_t epoch() const { return epoch_; }

  // Exact-resume support: fast-forwards the schedule to `epoch` completed
  // Step() calls and re-applies the corresponding lr to the optimizer.
  // Schedules here are pure functions of the epoch counter, so this
  // reproduces the state of an uninterrupted run exactly.
  void SetEpoch(int64_t epoch);

 protected:
  // Recomputes and applies the lr for the current epoch_.
  virtual void Apply() = 0;

  Optimizer* optimizer_;
  float base_lr_;
  int64_t epoch_ = 0;
};

// Multiplies lr by gamma every `step_size` epochs.
class StepLr : public LrScheduler {
 public:
  StepLr(Optimizer* optimizer, int64_t step_size, float gamma = 0.5f);

 protected:
  void Apply() override;

 private:
  int64_t step_size_;
  float gamma_;
};

// Cosine decay from base lr to min_lr over `total_epochs`.
class CosineLr : public LrScheduler {
 public:
  CosineLr(Optimizer* optimizer, int64_t total_epochs, float min_lr = 0.0f);

 protected:
  void Apply() override;

 private:
  int64_t total_epochs_;
  float min_lr_;
};

}  // namespace lipformer

#endif  // LIPFORMER_OPTIM_LR_SCHEDULER_H_
