#include "optim/sgd.h"

namespace lipformer {

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* w = p.mutable_value().data();
    if (momentum_ != 0.0f) {
      float* v = velocity_[i].data();
      for (int64_t j = 0; j < p.numel(); ++j) {
        v[j] = momentum_ * v[j] + g[j];
        w[j] -= lr_ * v[j];
      }
    } else {
      for (int64_t j = 0; j < p.numel(); ++j) w[j] -= lr_ * g[j];
    }
  }
}

}  // namespace lipformer
