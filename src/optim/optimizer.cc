#include "optim/optimizer.h"

#include <cmath>

namespace lipformer {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const Variable& p : params_) {
    LIPF_CHECK(p.defined());
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

float GlobalGradNorm(const std::vector<Variable>& params) {
  double total_sq = 0.0;
  for (const Variable& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  return static_cast<float>(std::sqrt(total_sq));
}

void ScaleGradients(const std::vector<Variable>& params, float scale) {
  for (const Variable& p : params) {
    if (!p.has_grad()) continue;
    float* g = const_cast<float*>(p.grad().data());
    for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
  }
}

float ClipGradNorm(const std::vector<Variable>& params, float max_norm) {
  const float norm = GlobalGradNorm(params);
  if (norm > max_norm && norm > 0.0f) {
    ScaleGradients(params, max_norm / norm);
  }
  return norm;
}

}  // namespace lipformer
