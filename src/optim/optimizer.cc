#include "optim/optimizer.h"

#include <cmath>

namespace lipformer {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const Variable& p : params_) {
    LIPF_CHECK(p.defined());
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

float ClipGradNorm(const std::vector<Variable>& params, float max_norm) {
  double total_sq = 0.0;
  for (const Variable& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Variable& p : params) {
      if (!p.has_grad()) continue;
      float* g = const_cast<float*>(p.grad().data());
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace lipformer
