#ifndef LIPFORMER_OPTIM_ADAMW_H_
#define LIPFORMER_OPTIM_ADAMW_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace lipformer {

// AdamW (Loshchilov & Hutter): Adam with decoupled weight decay. This is
// the optimizer the paper uses for LiPFormer training (Section IV-A2).
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<Variable> params, float lr = 1e-3f, float beta1 = 0.9f,
        float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 1e-2f);

  void Step() override;

  int64_t step_count() const { return step_; }

  // Exact-resume support: the first/second moment estimates, aligned with
  // params(). A snapshot that dropped them would restart bias correction
  // and drift from the uninterrupted run on the first resumed step.
  const std::vector<Tensor>& moment1() const { return m_; }
  const std::vector<Tensor>& moment2() const { return v_; }

  // Overwrites moments and step count from a snapshot. Shapes must match
  // params() element-for-element (checked).
  void RestoreState(const std::vector<Tensor>& m, const std::vector<Tensor>& v,
                    int64_t step);

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace lipformer

#endif  // LIPFORMER_OPTIM_ADAMW_H_
