#include "bench_util/experiment.h"

#include <sys/stat.h>

#include <cstdlib>
#include <cstring>

namespace lipformer {

BenchEnv ParseBenchArgs(int argc, char** argv) {
  BenchEnv env;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      env.full = true;
      env.data_scale = 0.5;
      env.input_len = 336;
      env.horizons = {96, 192, 336, 720};
      env.epochs = 6;
      env.patience = 3;
      env.max_batches_per_epoch = 150;
      env.max_eval_batches = 60;
      env.batch_size = 32;
      env.patch_len = 48;
      env.lr = 1e-3f;
      env.lipformer_lr = 1e-3f;
      env.pretrain_epochs = 3;
    } else if (arg.rfind("--scale=", 0) == 0) {
      env.data_scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      env.epochs = std::atol(arg.c_str() + 9);
    } else if (arg.rfind("--results=", 0) == 0) {
      env.results_dir = arg.substr(10);
    }
  }
  return env;
}

std::string ResultsPath(const BenchEnv& env, const std::string& name) {
  ::mkdir(env.results_dir.c_str(), 0755);  // best effort
  return env.results_dir + "/" + name + ".csv";
}

TrainConfig MakeTrainConfig(const BenchEnv& env) {
  TrainConfig config;
  config.lr = env.lr;
  config.epochs = env.epochs;
  config.patience = env.patience;
  config.batch_size = env.batch_size;
  config.max_batches_per_epoch = env.max_batches_per_epoch;
  config.max_eval_batches = env.max_eval_batches;
  return config;
}

WindowDataset MakeWindows(const DatasetSpec& spec, const BenchEnv& env,
                          int64_t pred_len) {
  WindowDataset::Options options;
  options.input_len = env.input_len;
  options.pred_len = pred_len;
  options.train_ratio = spec.train_ratio;
  options.val_ratio = spec.val_ratio;
  options.test_ratio = spec.test_ratio;
  return WindowDataset(spec.series, options);
}

RunResult RunModel(const std::string& model_name, const DatasetSpec& spec,
                   const BenchEnv& env, int64_t pred_len) {
  WindowDataset data = MakeWindows(spec, env, pred_len);
  ForecasterDims dims;
  dims.input_len = env.input_len;
  dims.pred_len = pred_len;
  dims.channels = data.channels();
  ModelOptions options;
  options.hidden_dim = env.hidden_dim;
  options.patch_len = env.patch_len;
  options.num_covariates = data.num_numeric_covariates();
  std::unique_ptr<Forecaster> model = CreateModel(model_name, dims, options);

  RunResult result;
  result.train = TrainAndEvaluate(model.get(), data, MakeTrainConfig(env));
  result.test = result.train.test;
  result.profile = ProfileModel(model.get(), data, env.batch_size);
  return result;
}

RunResult RunLiPFormer(const DatasetSpec& spec, const BenchEnv& env,
                       int64_t pred_len, bool use_covariates,
                       const LiPFormerConfig* override_config) {
  WindowDataset data = MakeWindows(spec, env, pred_len);

  LiPFormerConfig config;
  if (override_config != nullptr) {
    config = *override_config;
  } else {
    config.hidden_dim = env.hidden_dim;
    config.patch_len = env.patch_len;
  }
  config.input_len = env.input_len;
  config.pred_len = pred_len;
  config.channels = data.channels();
  // Keep the default patch length when it divides the input length; fall
  // back to the largest divisor otherwise.
  if (env.input_len % config.patch_len != 0) {
    for (int64_t pl = std::min<int64_t>(48, env.input_len); pl >= 1; --pl) {
      if (env.input_len % pl == 0) {
        config.patch_len = pl;
        break;
      }
    }
  }

  LiPFormer model(config);
  TrainConfig train_config = MakeTrainConfig(env);
  train_config.lr = env.lipformer_lr;
  RunResult result;
  // The dual encoder must outlive the profiling below: the model holds a
  // pointer to its covariate encoder.
  std::unique_ptr<DualEncoder> dual;
  if (use_covariates) {
    Rng rng(config.seed + 1000);
    dual = std::make_unique<DualEncoder>(MakeCovariateConfig(data, pred_len),
                                         data.channels(), rng);
    PretrainConfig pretrain;
    pretrain.epochs = env.pretrain_epochs;
    pretrain.batch_size = 64;
    pretrain.lr = 2e-3f;
    pretrain.max_batches_per_epoch = 2 * env.max_batches_per_epoch;
    LiPFormerPipelineResult pipeline = TrainLiPFormerPipeline(
        &model, dual.get(), data, pretrain, train_config);
    result.train = pipeline.train;
  } else {
    result.train = TrainAndEvaluate(&model, data, train_config);
  }
  result.test = result.train.test;
  result.profile = ProfileModel(&model, data, env.batch_size);
  return result;
}

}  // namespace lipformer
