#ifndef LIPFORMER_BENCH_UTIL_EXPERIMENT_H_
#define LIPFORMER_BENCH_UTIL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "bench_util/profiler.h"
#include "core/lipformer.h"
#include "data/registry.h"
#include "models/factory.h"
#include "train/trainer.h"

// Shared harness for the experiment benches (bench/bench_table*.cc). Every
// bench regenerates one table/figure of the paper on the synthetic dataset
// registry. Two presets:
//   quick (default): scaled-down series, short horizons {24,48,96},
//     input 96, 2 epochs -- runs the whole suite on one CPU core in tens
//     of minutes while preserving the tables' comparative shape.
//   full (--full): longer series and the paper's horizon grid
//     {96,192,336,720}, input 336.

namespace lipformer {

struct BenchEnv {
  bool full = false;
  double data_scale = 0.2;
  int64_t input_len = 96;
  std::vector<int64_t> horizons = {24, 48, 96};
  int64_t epochs = 2;
  int64_t patience = 2;
  int64_t batch_size = 16;
  int64_t max_batches_per_epoch = 30;
  int64_t max_eval_batches = 10;
  int64_t hidden_dim = 64;
  int64_t patch_len = 24;
  // Short-budget learning rates (per-model tuning as in the paper's
  // "official configurations"): the quick preset trains for ~60 updates,
  // where 1e-3 underfits every model.
  float lr = 5e-3f;
  float lipformer_lr = 1e-2f;
  int64_t pretrain_epochs = 4;
  std::string results_dir = "results";
};

// Parses --full / --scale=X / --epochs=N / --results=DIR.
BenchEnv ParseBenchArgs(int argc, char** argv);

// Ensures env.results_dir exists (best effort) and returns
// "<results_dir>/<name>.csv".
std::string ResultsPath(const BenchEnv& env, const std::string& name);

// One model trained and evaluated on one dataset/horizon; the workhorse of
// most benches.
struct RunResult {
  EvalResult test;
  TrainResult train;
  ModelProfile profile;
};

TrainConfig MakeTrainConfig(const BenchEnv& env);

// Builds the WindowDataset for a spec with the env's input length and a
// given horizon.
WindowDataset MakeWindows(const DatasetSpec& spec, const BenchEnv& env,
                          int64_t pred_len);

// Trains a factory model (non-covariate path) and profiles it.
RunResult RunModel(const std::string& model_name, const DatasetSpec& spec,
                   const BenchEnv& env, int64_t pred_len);

// Trains LiPFormer with the full weak-data pipeline (pretrain + attach +
// train). Set `use_covariates=false` to skip the dual encoder.
RunResult RunLiPFormer(const DatasetSpec& spec, const BenchEnv& env,
                       int64_t pred_len, bool use_covariates,
                       const LiPFormerConfig* override_config = nullptr);

}  // namespace lipformer

#endif  // LIPFORMER_BENCH_UTIL_EXPERIMENT_H_
