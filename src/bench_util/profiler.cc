#include "bench_util/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "tensor/ops.h"

namespace lipformer {

ModelProfile ProfileModel(Forecaster* model, const WindowDataset& data,
                          int64_t batch_size, int64_t repeats) {
  ModelProfile profile;
  profile.parameters = model->ParameterCount();

  const bool was_training = model->training();
  model->SetTraining(false);
  NoGradGuard no_grad;

  const int64_t available = data.NumWindows(Split::kTest);
  LIPF_CHECK_GT(available, 0);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < std::min(batch_size, available); ++i) {
    ids.push_back(i);
  }
  Batch batch = data.MakeBatch(Split::kTest, ids);

  // MAC count from one instrumented forward.
  ResetMacCount();
  SetMacCountingEnabled(true);
  (void)model->Forward(batch);
  SetMacCountingEnabled(false);
  profile.macs = MacCount();
  ResetMacCount();

  // Timed forwards. The instrumented forward above has already warmed the
  // pool, so these repeats see steady-state allocation behaviour.
  ResetStoragePoolCounters();
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t r = 0; r < repeats; ++r) (void)model->Forward(batch);
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  profile.seconds_per_inference = total / static_cast<double>(repeats);

  const StoragePoolStats pool = GetStoragePoolStats();
  const double reps = static_cast<double>(repeats);
  profile.storage_acquires_per_inference =
      static_cast<double>(pool.acquires) / reps;
  profile.heap_allocs_per_inference =
      static_cast<double>(pool.heap_allocs) / reps;
  profile.pool_hit_rate =
      pool.acquires > 0 ? static_cast<double>(pool.pool_hits) /
                              static_cast<double>(pool.acquires)
                        : 0.0;

  model->SetTraining(was_training);
  return profile;
}

std::string FormatCount(double value) {
  const char* suffix = "";
  if (value >= 1e12) {
    value /= 1e12;
    suffix = "T";
  } else if (value >= 1e9) {
    value /= 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    value /= 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    value /= 1e3;
    suffix = "K";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffix);
  return buf;
}

LatencyRecorder::LatencyRecorder(int64_t capacity) : capacity_(capacity) {
  LIPF_CHECK_GT(capacity, 0);
  samples_.reserve(static_cast<size_t>(capacity));
}

void LatencyRecorder::Record(double seconds) {
  if (static_cast<int64_t>(samples_.size()) < capacity_) {
    samples_.push_back(seconds);
  } else {
    samples_[static_cast<size_t>(next_)] = seconds;
  }
  next_ = (next_ + 1) % capacity_;
  ++count_;
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

}  // namespace lipformer
