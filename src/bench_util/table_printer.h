#ifndef LIPFORMER_BENCH_UTIL_TABLE_PRINTER_H_
#define LIPFORMER_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace lipformer {

// Collects rows and renders them as an aligned text table (for stdout, the
// shape the paper's tables are read in) and as CSV (for post-processing).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  std::string ToText() const;
  std::string ToCsv() const;

  // Prints the text form to stdout with a title banner.
  void Print(const std::string& title) const;

  // Writes the CSV form; creates parent dirs is NOT attempted (callers use
  // the repo-local results/ directory).
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style float with fixed precision.
std::string FmtFloat(double v, int precision = 3);

}  // namespace lipformer

#endif  // LIPFORMER_BENCH_UTIL_TABLE_PRINTER_H_
