#include "bench_util/table_printer.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.h"

namespace lipformer {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LIPF_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t j = 0; j < row.size(); ++j) {
      os << " " << row[j] << std::string(widths[j] - row[j].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (size_t j = 0; j < headers_.size(); ++j) {
    os << std::string(widths[j] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t j = 0; j < row.size(); ++j) {
      if (j) os << ",";
      os << row[j];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::Print(const std::string& title) const {
  std::cout << "\n=== " << title << " ===\n" << ToText() << std::flush;
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << ToCsv();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string FmtFloat(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace lipformer
