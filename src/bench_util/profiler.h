#ifndef LIPFORMER_BENCH_UTIL_PROFILER_H_
#define LIPFORMER_BENCH_UTIL_PROFILER_H_

#include <string>
#include <vector>

#include "data/window_dataset.h"
#include "models/forecaster.h"

namespace lipformer {

// Efficiency numbers for one model configuration, mirroring the paper's
// Table III Efficiency column: parameters, MACs per inference, and wall
// clock per inference.
struct ModelProfile {
  int64_t parameters = 0;
  int64_t macs = 0;                 // multiply-accumulates per forward
  double seconds_per_inference = 0; // batch forward, eval mode
  // Storage-pool behaviour of one eval-mode forward (averaged over the
  // timed repeats): how many tensor storages were acquired, how many fell
  // through to the heap, and the freelist hit rate.
  double storage_acquires_per_inference = 0;
  double heap_allocs_per_inference = 0;
  double pool_hit_rate = 0;  // pool_hits / acquires, in [0, 1]
};

// Runs `repeats` timed forwards of one batch (eval mode, no grad) and one
// instrumented forward for the MAC count.
ModelProfile ProfileModel(Forecaster* model, const WindowDataset& data,
                          int64_t batch_size = 32, int64_t repeats = 3);

// Human formatting: 1234 -> "1.23K", 2.5e9 -> "2.50G".
std::string FormatCount(double value);
// Seconds with adaptive precision.
std::string FormatSeconds(double seconds);

// Bounded sample reservoir with percentile queries; backs the serving
// batcher's p50/p99 latency counters (serve/batcher.h). Keeps the most
// recent `capacity` samples in a ring. Not thread-safe: the owner guards
// it (the batcher records under its own mutex).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(int64_t capacity = 1 << 16);

  void Record(double seconds);
  int64_t count() const { return count_; }

  // Linear-interpolated percentile (p in [0, 100]) over the retained
  // samples; NaN when empty.
  double Percentile(double p) const;

 private:
  std::vector<double> samples_;  // ring buffer, size <= capacity
  int64_t capacity_;
  int64_t next_ = 0;   // ring write cursor
  int64_t count_ = 0;  // total Record calls (may exceed capacity)
};

}  // namespace lipformer

#endif  // LIPFORMER_BENCH_UTIL_PROFILER_H_
