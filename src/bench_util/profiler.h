#ifndef LIPFORMER_BENCH_UTIL_PROFILER_H_
#define LIPFORMER_BENCH_UTIL_PROFILER_H_

#include <string>

#include "data/window_dataset.h"
#include "models/forecaster.h"

namespace lipformer {

// Efficiency numbers for one model configuration, mirroring the paper's
// Table III Efficiency column: parameters, MACs per inference, and wall
// clock per inference.
struct ModelProfile {
  int64_t parameters = 0;
  int64_t macs = 0;                 // multiply-accumulates per forward
  double seconds_per_inference = 0; // batch forward, eval mode
  // Storage-pool behaviour of one eval-mode forward (averaged over the
  // timed repeats): how many tensor storages were acquired, how many fell
  // through to the heap, and the freelist hit rate.
  double storage_acquires_per_inference = 0;
  double heap_allocs_per_inference = 0;
  double pool_hit_rate = 0;  // pool_hits / acquires, in [0, 1]
};

// Runs `repeats` timed forwards of one batch (eval mode, no grad) and one
// instrumented forward for the MAC count.
ModelProfile ProfileModel(Forecaster* model, const WindowDataset& data,
                          int64_t batch_size = 32, int64_t repeats = 3);

// Human formatting: 1234 -> "1.23K", 2.5e9 -> "2.50G".
std::string FormatCount(double value);
// Seconds with adaptive precision.
std::string FormatSeconds(double seconds);

}  // namespace lipformer

#endif  // LIPFORMER_BENCH_UTIL_PROFILER_H_
