#ifndef LIPFORMER_NN_ATTENTION_H_
#define LIPFORMER_NN_ATTENTION_H_

#include <memory>

#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace lipformer {

// Additive causal mask [sq, sk]: 0 on/below the diagonal, -1e9 above.
Tensor MakeCausalMask(int64_t sq, int64_t sk);

// Scaled dot-product attention core: q,k [*, S, dh] / v [*, S, dh] ->
// [*, Sq, dh]. Scores are computed transpose-free as q k^T via
// MatMulTransB. Causal masks future positions. Standalone so custom
// attention variants (ProbSparse, autocorrelation) can reuse pieces.
Variable ScaledDotProductAttention(const Variable& q, const Variable& k,
                                   const Variable& v, bool causal = false);
// Variant taking a precomputed additive mask (see MakeCausalMask), so
// callers that run many forwards at a fixed (sq, sk) can cache it.
Variable ScaledDotProductAttention(const Variable& q, const Variable& k,
                                   const Variable& v,
                                   const Tensor& causal_mask);

// Multi-head self-attention with learned Q/K/V/O projections over the last
// dimension. Input [B, S, D] -> output [B, S, D]. This is the `Attn`
// operator of the paper (vanilla Transformer attention); LiPFormer applies
// it both across trend sequences (Cross-Patch) and across patch tokens
// (Inter-Patch), always without positional encoding.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t model_dim, int64_t num_heads, Rng& rng,
                         float dropout = 0.0f, bool causal = false);

  Variable Forward(const Variable& x) const;

  // Cross-attention flavor: queries from `q_input` [B, Sq, D], keys/values
  // from `kv_input` [B, Skv, D].
  Variable Forward(const Variable& q_input, const Variable& kv_input) const;

  int64_t model_dim() const { return model_dim_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  Variable Attend(const Variable& q_in, const Variable& kv_in) const;
  // Returns the cached causal mask for (sq, sk), rebuilding it only when
  // the sequence lengths change. Like the module's Rng-backed dropout,
  // the cache makes Forward non-reentrant across threads.
  const Tensor& CausalMask(int64_t sq, int64_t sk) const;

  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  bool causal_;
  mutable Tensor mask_cache_;
  mutable int64_t mask_sq_ = -1;
  mutable int64_t mask_sk_ = -1;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
  std::unique_ptr<Dropout> attn_dropout_;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_ATTENTION_H_
