#include "nn/activations.h"

namespace lipformer {

Variable ApplyActivation(const Variable& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kGelu:
      return Gelu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
  }
  LIPF_CHECK(false) << "unknown activation";
  return x;
}

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kGelu:
      return "gelu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

}  // namespace lipformer
