#ifndef LIPFORMER_NN_LAYER_NORM_H_
#define LIPFORMER_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace lipformer {

// Layer normalization over the last dimension with learnable scale/shift.
// LiPFormer deliberately omits this (Section III-C1); it exists for the
// baselines and for the +LN ablation (Table X).
class LayerNorm : public Module {
 public:
  LayerNorm(int64_t features, Rng& rng, float eps = 1e-5f);

  Variable Forward(const Variable& x) const;

 private:
  int64_t features_;
  float eps_;
  Variable gamma_;
  Variable beta_;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_LAYER_NORM_H_
