#ifndef LIPFORMER_NN_ACTIVATIONS_H_
#define LIPFORMER_NN_ACTIVATIONS_H_

#include "autograd/ops.h"

namespace lipformer {

enum class Activation { kNone, kRelu, kGelu, kTanh, kSigmoid };

// Applies the selected nonlinearity elementwise.
Variable ApplyActivation(const Variable& x, Activation act);

const char* ActivationName(Activation act);

}  // namespace lipformer

#endif  // LIPFORMER_NN_ACTIVATIONS_H_
