#include "nn/positional_encoding.h"

#include <cmath>

#include "tensor/ops.h"

namespace lipformer {

PositionalEncoding::PositionalEncoding(int64_t max_len, int64_t model_dim)
    : max_len_(max_len), model_dim_(model_dim),
      table_(Shape{max_len, model_dim}) {
  float* p = table_.data();
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < model_dim; ++i) {
      const double div =
          std::pow(10000.0, static_cast<double>(2 * (i / 2)) /
                                static_cast<double>(model_dim));
      const double ang = static_cast<double>(pos) / div;
      p[pos * model_dim + i] = static_cast<float>(
          (i % 2 == 0) ? std::sin(ang) : std::cos(ang));
    }
  }
}

Variable PositionalEncoding::Forward(const Variable& x) const {
  LIPF_CHECK_EQ(x.dim(), 3);
  const int64_t s = x.size(1);
  LIPF_CHECK_LE(s, max_len_);
  LIPF_CHECK_EQ(x.size(2), model_dim_);
  Tensor rows = Slice(table_, 0, 0, s);  // [S, D], broadcasts over batch
  return AddConst(x, rows);
}

}  // namespace lipformer
