#include "nn/layer_norm.h"

namespace lipformer {

LayerNorm::LayerNorm(int64_t features, Rng& rng, float eps)
    : features_(features), eps_(eps) {
  (void)rng;  // deterministic init; kept for constructor-signature symmetry
  gamma_ = RegisterParameter("gamma",
                             Variable(Tensor::Ones(Shape{features})));
  beta_ = RegisterParameter("beta", Variable(Tensor::Zeros(Shape{features})));
}

Variable LayerNorm::Forward(const Variable& x) const {
  LIPF_CHECK_EQ(x.size(-1), features_);
  const int64_t last = x.dim() - 1;
  Variable mu = Mean(x, last, /*keepdim=*/true);
  Variable centered = Sub(x, mu);
  Variable var = Mean(Mul(centered, centered), last, /*keepdim=*/true);
  Variable denom = Sqrt(AddScalar(var, eps_));
  Variable xhat = Div(centered, denom);
  return Add(Mul(xhat, gamma_), beta_);
}

}  // namespace lipformer
