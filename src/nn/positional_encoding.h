#ifndef LIPFORMER_NN_POSITIONAL_ENCODING_H_
#define LIPFORMER_NN_POSITIONAL_ENCODING_H_

#include "nn/module.h"

namespace lipformer {

// Sinusoidal positional encoding (Vaswani et al.). LiPFormer eliminates
// this (its Cross-Patch attention carries order information); the vanilla
// Transformer / PatchTST / Informer baselines use it.
class PositionalEncoding : public Module {
 public:
  PositionalEncoding(int64_t max_len, int64_t model_dim);

  // Adds the first S rows of the table to x [B, S, D].
  Variable Forward(const Variable& x) const;

  const Tensor& table() const { return table_; }

 private:
  int64_t max_len_;
  int64_t model_dim_;
  Tensor table_;  // [max_len, model_dim], not a parameter
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_POSITIONAL_ENCODING_H_
