#include "nn/embedding.h"

#include <cmath>

namespace lipformer {

Embedding::Embedding(int64_t num_embeddings, int64_t embedding_dim, Rng& rng)
    : num_embeddings_(num_embeddings), embedding_dim_(embedding_dim) {
  LIPF_CHECK_GT(num_embeddings, 0);
  LIPF_CHECK_GT(embedding_dim, 0);
  weight_ = RegisterParameter(
      "weight",
      Variable(Tensor::Randn(Shape{num_embeddings, embedding_dim}, rng,
                             1.0f / std::sqrt(
                                        static_cast<float>(embedding_dim)))));
}

Variable Embedding::Forward(const std::vector<int64_t>& ids) const {
  for (int64_t id : ids) {
    LIPF_CHECK_GE(id, 0);
    LIPF_CHECK_LT(id, num_embeddings_);
  }
  return IndexSelect(weight_, 0, ids);
}

Variable Embedding::Forward(const Tensor& ids) const {
  std::vector<int64_t> flat(static_cast<size_t>(ids.numel()));
  const float* p = ids.data();
  for (int64_t i = 0; i < ids.numel(); ++i) {
    flat[static_cast<size_t>(i)] = static_cast<int64_t>(p[i]);
  }
  Variable out = Forward(flat);
  Shape shape = ids.shape();
  shape.push_back(embedding_dim_);
  return Reshape(out, std::move(shape));
}

}  // namespace lipformer
