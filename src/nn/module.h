#ifndef LIPFORMER_NN_MODULE_H_
#define LIPFORMER_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/random.h"
#include "common/status.h"

// Module base class: owns named parameters, composes child modules, and
// provides recursive parameter listing, train/eval switching, zero-grad and
// binary save/load of parameters.

namespace lipformer {

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and its children (depth-first). The
  // returned handles share storage with the module's members, so optimizer
  // updates are visible to the module.
  std::vector<Variable> Parameters() const;

  // Parameter names qualified by child-module path, aligned with
  // Parameters().
  std::vector<std::string> ParameterNames() const;

  void ZeroGrad();

  // Total number of scalar parameters.
  int64_t ParameterCount() const;

  // Train/eval mode (affects Dropout); recursive.
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Marks every parameter as not requiring grad (and vice versa); used to
  // freeze the Covariate Encoder during prediction training.
  void SetRequiresGrad(bool requires_grad);

  // Binary parameter (de)serialization in the self-describing checkpoint
  // v2 format (serve/checkpoint.h): every parameter is stored with its
  // qualified name and shape, and loading verifies both per tensor, so a
  // checkpoint from a different architecture fails with an error naming
  // the offending parameter instead of silently producing garbage.
  // Tensors whose name starts with serve::kReservedTensorPrefix ("__",
  // e.g. the fitted scaler of a serving bundle) are ignored by
  // LoadParameters. Legacy v1 files (shape-blind flat dumps) are detected
  // and rejected with migration advice; convert them with the
  // `checkpoint_convert` tool.
  Status SaveParameters(const std::string& path) const;
  Status LoadParameters(const std::string& path);

  // Reads the legacy v1 layout (u64 count, then u64 numel + raw floats
  // per parameter, in Parameters() order). Only the flat sizes can be
  // verified — kept solely so `checkpoint_convert` can migrate old files;
  // new code must use LoadParameters. Rejects short/truncated files and
  // trailing bytes.
  Status LoadParametersLegacyV1(const std::string& path);

  // This module and every (transitive) child, depth-first, paired with
  // the child-module path ("" for this module itself) that prefixes its
  // parameter names in ParameterNames(). Used by the serving quantizer to
  // locate the nn::Linear modules owning each "<path>.weight" parameter.
  std::vector<std::pair<std::string, Module*>> NamedModules();

  // Live RNG streams of this module tree (e.g. per-Dropout mask streams),
  // named by child-module path like ParameterNames(). Exact training
  // resume serializes them: a mid-run snapshot that restored weights but
  // not these streams would draw different dropout masks after resume.
  std::vector<std::pair<std::string, Rng*>> NamedRngs();

 protected:
  // Modules owning an RNG stream override this to expose it (and must
  // still recurse via Module::CollectRngs for children).
  virtual void CollectRngs(const std::string& prefix,
                           std::vector<std::pair<std::string, Rng*>>* out);

  // Registers a parameter; returns a handle sharing storage.
  Variable RegisterParameter(std::string name, Variable param);
  // Registers a child; the child must outlive this module (normally a
  // member object).
  void RegisterModule(std::string name, Module* child);

 private:
  void CollectParameters(const std::string& prefix,
                         std::vector<std::pair<std::string, Variable>>* out)
      const;

  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_MODULE_H_
