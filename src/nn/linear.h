#ifndef LIPFORMER_NN_LINEAR_H_
#define LIPFORMER_NN_LINEAR_H_

#include <vector>

#include "nn/activations.h"
#include "nn/module.h"

namespace lipformer {

// Affine map y = x W + b applied to the last dimension: x [..., in] ->
// y [..., out]. Weight layout is [in, out] so the forward is a plain
// matmul. Initialization follows the fan-in uniform rule U(-1/sqrt(in),
// 1/sqrt(in)).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Variable Forward(const Variable& x) const;
  // Forward with the activation fused into the bias-add epilogue (ReLU /
  // GELU / none run as one kernel; tanh and sigmoid fall back to the
  // unfused activation after the fused bias-add).
  Variable Forward(const Variable& x, Activation act) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Variable weight_;
  Variable bias_;
};

// Multi-layer perceptron: Linear -> act -> ... -> Linear. `dims` lists
// layer widths including input and output (at least 2 entries). No
// activation after the final layer.
class Mlp : public Module {
 public:
  Mlp(std::vector<int64_t> dims, Rng& rng,
      Activation activation = Activation::kRelu);

  Variable Forward(const Variable& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_LINEAR_H_
