#ifndef LIPFORMER_NN_LINEAR_H_
#define LIPFORMER_NN_LINEAR_H_

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"

namespace lipformer {

// Affine map y = x W + b applied to the last dimension: x [..., in] ->
// y [..., out]. Weight layout is [in, out] so the forward is a plain
// matmul. Initialization follows the fan-in uniform rule U(-1/sqrt(in),
// 1/sqrt(in)).
//
// Quantized serving: AttachQuantizedWeights installs prepacked
// per-channel int8 weights (loaded from an int8 serving bundle, see
// serve/quantize.h). While attached, eval-mode forwards under NoGradGuard
// run the int8 path — activations quantized row-wise on the fly,
// int8 x int8 -> int32 GEMM, dequantize + fp32 bias/activation epilogue.
// Training-mode or grad-enabled forwards keep using the fp32 weight (the
// bundle loader fills it with the dequantized values), so autograd never
// sees the integer path.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Variable Forward(const Variable& x) const;
  // Forward with the activation fused into the bias-add epilogue (ReLU /
  // GELU / none run as one kernel; tanh and sigmoid fall back to the
  // unfused activation after the fused bias-add).
  Variable Forward(const Variable& x, Activation act) const;

  // w8: [in, out] row-major per-channel symmetric int8 weight, scale:
  // [out] fp32 per-output-channel scales. Also overwrites the fp32
  // weight parameter with the dequantized values so both execution paths
  // describe the same (quantized) function. InvalidArgument on shape
  // mismatch.
  Status AttachQuantizedWeights(const std::vector<int8_t>& w8,
                                const Tensor& scale);
  bool has_quantized_weights() const { return quant_ != nullptr; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  struct QuantState {
    Int8PackedWeight packed;  // prepacked at attach time
    Tensor scale;             // [out]
  };

  // x [..., in] -> [..., out]: row-wise dynamic activation quantization,
  // Int8GemmBlocked, per-element dequantize (no bias/activation).
  Tensor QuantizedMatMul(const Tensor& x) const;

  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Variable weight_;
  Variable bias_;
  std::unique_ptr<QuantState> quant_;
};

// Raw quantized-linear forward shared by Linear::QuantizedMatMul and the
// AOT plan executor (serve/plan_exec.cc): row-wise dynamic activation
// quantization into a8 (m*in int8s), Int8GemmBlocked into c32 (m*out
// int32s), per-element dequantize into y (m*out floats) with the
// separable scale row_scale[r] * col_scale[j]. Caller provides all
// scratch; row_scale holds m floats. One compiled loop for both paths
// keeps them bitwise identical by construction. Charges m*out*in MACs.
// A non-null `epi` fuses bias/activation and a residual binary into the
// dequantize pass (AOT plans): each row is dequantized first and the
// epilogue applied to the rounded fp32 values — the whole pass is
// compiled with fp-contract off — so results stay bitwise identical to
// running the unfused op sequence.
void QuantLinearForward(const float* x, int64_t m, int64_t in_features,
                        int64_t out_features, const Int8PackedWeight& packed,
                        const float* col_scale, int8_t* a8, float* row_scale,
                        int32_t* c32, float* y,
                        const GemmEpilogue* epi = nullptr);

// Multi-layer perceptron: Linear -> act -> ... -> Linear. `dims` lists
// layer widths including input and output (at least 2 entries). No
// activation after the final layer.
class Mlp : public Module {
 public:
  Mlp(std::vector<int64_t> dims, Rng& rng,
      Activation activation = Activation::kRelu);

  Variable Forward(const Variable& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_LINEAR_H_
