#include "nn/attention.h"

#include <cmath>

namespace lipformer {

Tensor MakeCausalMask(int64_t sq, int64_t sk) {
  Tensor mask = Tensor::Empty(Shape{sq, sk});
  float* pm = mask.data();
  for (int64_t i = 0; i < sq; ++i) {
    for (int64_t j = 0; j < sk; ++j) {
      pm[i * sk + j] = j > i ? -1e9f : 0.0f;
    }
  }
  return mask;
}

namespace {

Variable AttentionCore(const Variable& q, const Variable& k,
                       const Variable& v, const Tensor* causal_mask) {
  const int64_t dh = q.size(-1);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  // Scores q k^T without materializing a transposed copy of k: the
  // transpose is folded into the packed GEMM's operand packing. Scaling,
  // masking and softmax run as one fused kernel (one intermediate tensor
  // instead of three; bitwise identical to the unfused chain).
  Variable scores = MatMulTransB(q, k);
  Variable attn = ScaledMaskedSoftmax(scores, scale, causal_mask);
  return MatMul(attn, v);
}

}  // namespace

Variable ScaledDotProductAttention(const Variable& q, const Variable& k,
                                   const Variable& v, bool causal) {
  if (!causal) return AttentionCore(q, k, v, nullptr);
  const Tensor mask = MakeCausalMask(q.size(-2), k.size(-2));
  return AttentionCore(q, k, v, &mask);
}

Variable ScaledDotProductAttention(const Variable& q, const Variable& k,
                                   const Variable& v,
                                   const Tensor& causal_mask) {
  return AttentionCore(q, k, v, &causal_mask);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t model_dim,
                                               int64_t num_heads, Rng& rng,
                                               float dropout, bool causal)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      causal_(causal) {
  LIPF_CHECK_EQ(model_dim % num_heads, 0)
      << "model_dim must be divisible by num_heads";
  wq_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wk_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wv_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wo_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
  if (dropout > 0.0f) {
    attn_dropout_ = std::make_unique<Dropout>(dropout, rng);
    RegisterModule("attn_dropout", attn_dropout_.get());
  }
}

Variable MultiHeadSelfAttention::Forward(const Variable& x) const {
  return Attend(x, x);
}

Variable MultiHeadSelfAttention::Forward(const Variable& q_input,
                                         const Variable& kv_input) const {
  return Attend(q_input, kv_input);
}

const Tensor& MultiHeadSelfAttention::CausalMask(int64_t sq,
                                                 int64_t sk) const {
  if (sq != mask_sq_ || sk != mask_sk_) {
    mask_cache_ = MakeCausalMask(sq, sk);
    mask_sq_ = sq;
    mask_sk_ = sk;
  }
  return mask_cache_;
}

Variable MultiHeadSelfAttention::Attend(const Variable& q_in,
                                        const Variable& kv_in) const {
  LIPF_CHECK_EQ(q_in.dim(), 3);
  LIPF_CHECK_EQ(q_in.size(-1), model_dim_);
  const int64_t b = q_in.size(0);
  const int64_t sq = q_in.size(1);
  const int64_t skv = kv_in.size(1);

  auto split_heads = [&](const Variable& t, int64_t s) {
    // [B, S, D] -> [B, h, S, dh]
    Variable r = Reshape(t, Shape{b, s, num_heads_, head_dim_});
    return Permute(r, {0, 2, 1, 3});
  };

  Variable q = split_heads(wq_->Forward(q_in), sq);
  Variable k = split_heads(wk_->Forward(kv_in), skv);
  Variable v = split_heads(wv_->Forward(kv_in), skv);

  Variable ctx = causal_
                     ? ScaledDotProductAttention(q, k, v, CausalMask(sq, skv))
                     : ScaledDotProductAttention(q, k, v, /*causal=*/false);
  if (attn_dropout_) ctx = attn_dropout_->Forward(ctx);

  // [B, h, Sq, dh] -> [B, Sq, D]
  Variable merged = Reshape(Permute(ctx, {0, 2, 1, 3}),
                            Shape{b, sq, model_dim_});
  return wo_->Forward(merged);
}

}  // namespace lipformer
