#include "nn/attention.h"

#include <cmath>

namespace lipformer {

Variable ScaledDotProductAttention(const Variable& q, const Variable& k,
                                   const Variable& v, bool causal) {
  const int64_t dh = q.size(-1);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Variable scores = MulScalar(MatMul(q, Transpose(k, -2, -1)), scale);
  if (causal) {
    const int64_t sq = scores.size(-2);
    const int64_t sk = scores.size(-1);
    Tensor mask(Shape{sq, sk});
    float* pm = mask.data();
    for (int64_t i = 0; i < sq; ++i) {
      for (int64_t j = 0; j < sk; ++j) {
        pm[i * sk + j] = j > i ? -1e9f : 0.0f;
      }
    }
    scores = AddConst(scores, mask);
  }
  Variable attn = Softmax(scores, -1);
  return MatMul(attn, v);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t model_dim,
                                               int64_t num_heads, Rng& rng,
                                               float dropout, bool causal)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      causal_(causal) {
  LIPF_CHECK_EQ(model_dim % num_heads, 0)
      << "model_dim must be divisible by num_heads";
  wq_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wk_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wv_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wo_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
  if (dropout > 0.0f) {
    attn_dropout_ = std::make_unique<Dropout>(dropout, rng);
    RegisterModule("attn_dropout", attn_dropout_.get());
  }
}

Variable MultiHeadSelfAttention::Forward(const Variable& x) const {
  return Attend(x, x);
}

Variable MultiHeadSelfAttention::Forward(const Variable& q_input,
                                         const Variable& kv_input) const {
  return Attend(q_input, kv_input);
}

Variable MultiHeadSelfAttention::Attend(const Variable& q_in,
                                        const Variable& kv_in) const {
  LIPF_CHECK_EQ(q_in.dim(), 3);
  LIPF_CHECK_EQ(q_in.size(-1), model_dim_);
  const int64_t b = q_in.size(0);
  const int64_t sq = q_in.size(1);
  const int64_t skv = kv_in.size(1);

  auto split_heads = [&](const Variable& t, int64_t s) {
    // [B, S, D] -> [B, h, S, dh]
    Variable r = Reshape(t, Shape{b, s, num_heads_, head_dim_});
    return Permute(r, {0, 2, 1, 3});
  };

  Variable q = split_heads(wq_->Forward(q_in), sq);
  Variable k = split_heads(wk_->Forward(kv_in), skv);
  Variable v = split_heads(wv_->Forward(kv_in), skv);

  Variable ctx = ScaledDotProductAttention(q, k, v, causal_);
  if (attn_dropout_) ctx = attn_dropout_->Forward(ctx);

  // [B, h, Sq, dh] -> [B, Sq, D]
  Variable merged = Reshape(Permute(ctx, {0, 2, 1, 3}),
                            Shape{b, sq, model_dim_});
  return wo_->Forward(merged);
}

}  // namespace lipformer
