#ifndef LIPFORMER_NN_EMBEDDING_H_
#define LIPFORMER_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"

namespace lipformer {

// Lookup table mapping integer ids to learned dim-`embedding_dim` vectors.
// Used to embed textual/categorical weak labels (weather condition,
// holiday, weekday) in the Covariate Encoder (Eq. 3 of the paper).
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t embedding_dim, Rng& rng);

  // ids are flat indices; output shape is [ids.size(), embedding_dim].
  Variable Forward(const std::vector<int64_t>& ids) const;

  // ids tensor of any shape holding integral values; output appends
  // embedding_dim to its shape.
  Variable Forward(const Tensor& ids) const;

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t embedding_dim() const { return embedding_dim_; }

 private:
  int64_t num_embeddings_;
  int64_t embedding_dim_;
  Variable weight_;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_EMBEDDING_H_
