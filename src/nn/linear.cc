#include "nn/linear.h"

#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "tensor/op_trace.h"
#include "tensor/ops.h"
#include "tensor/ops_raw.h"
#include "tensor/storage_pool.h"

namespace lipformer {

namespace {
inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

// The dequantize pass (with its optional fused epilogue) is compiled with
// fp-contract off: the epilogue's bias add must see the dequantized value
// already rounded to fp32 — exactly what the unfused path stores to
// memory — and contraction into an FMA would skip that rounding and break
// the plan compiler's bitwise fused == unfused gate. The plain dequant
// expression has no mul+add pair, so this costs the unfused path nothing.
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")
namespace {

void DequantRowsEpilogue(const int32_t* c32, const float* row_scale,
                         const float* col_scale, float* y, int64_t m,
                         int64_t out, const GemmEpilogue* epi) {
  const bool fused = epi != nullptr && epi->enabled();
  ParallelFor(m, /*grain=*/CeilDiv(8192, out), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float sr = row_scale[r];
      const int32_t* crow = c32 + r * out;
      float* yrow = y + r * out;
      for (int64_t j = 0; j < out; ++j) {
        yrow[j] = static_cast<float>(crow[j]) * (sr * col_scale[j]);
      }
      if (fused) {
        raw::GemmEpilogueRegion(
            yrow, out, 0, 1, 0, out, epi->bias, epi->act,
            epi->residual != nullptr ? epi->residual + r * out : nullptr,
            epi->res_op, epi->res_is_lhs);
      }
    }
  });
}

}  // namespace
#pragma GCC pop_options

void QuantLinearForward(const float* x, int64_t m, int64_t in_features,
                        int64_t out_features, const Int8PackedWeight& packed,
                        const float* col_scale, int8_t* a8, float* row_scale,
                        int32_t* c32, float* y, const GemmEpilogue* epi) {
  const int64_t in = in_features;
  const int64_t out = out_features;
  // Row-quantize the activations.
  ParallelFor(m, /*grain=*/CeilDiv(4096, in), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      row_scale[r] = QuantizeRowDynamic(x + r * in, in, a8 + r * in);
    }
  });

  // Exact int32 GEMM, then dequantize with the separable scale
  // row_scale[r] * col_scale[j] (+ the optional fused epilogue).
  Int8GemmBlocked(a8, packed, m, c32);
  AddMacCount(m * out * in);
  DequantRowsEpilogue(c32, row_scale, col_scale, y, m, out, epi);
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  LIPF_CHECK_GT(in_features, 0);
  LIPF_CHECK_GT(out_features, 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = RegisterParameter(
      "weight", Variable(Tensor::RandUniform(Shape{in_features, out_features},
                                             rng, -bound, bound)));
  if (has_bias_) {
    bias_ = RegisterParameter(
        "bias", Variable(Tensor::RandUniform(Shape{out_features}, rng, -bound,
                                             bound)));
  }
}

Variable Linear::Forward(const Variable& x) const {
  return Forward(x, Activation::kNone);
}

Status Linear::AttachQuantizedWeights(const std::vector<int8_t>& w8,
                                      const Tensor& scale) {
  if (scale.numel() != out_features_) {
    return Status::InvalidArgument(
        "quantized scale has " + std::to_string(scale.numel()) +
        " entries, Linear has " + std::to_string(out_features_) +
        " output features");
  }
  if (static_cast<int64_t>(w8.size()) != in_features_ * out_features_) {
    return Status::InvalidArgument(
        "quantized weight has " + std::to_string(w8.size()) +
        " entries, Linear expects " +
        std::to_string(in_features_ * out_features_));
  }
  auto state = std::make_unique<QuantState>();
  state->packed = PackInt8Weight(w8.data(), in_features_, out_features_);
  state->scale = scale.Clone();
  // Keep the fp32 parameter in sync so a grad-enabled forward (or a
  // re-save of the module) sees the same function the int8 path computes.
  DequantizeWeightPerChannel(w8.data(), scale.data(), in_features_,
                             out_features_,
                             weight_.mutable_value().data());
  quant_ = std::move(state);
  return Status::OK();
}

Tensor Linear::QuantizedMatMul(const Tensor& x) const {
  const int64_t in = in_features_;
  const int64_t out = out_features_;
  const int64_t m = x.numel() / in;
  Shape out_shape = x.shape();
  out_shape.back() = out;
  Tensor y = Tensor::Empty(std::move(out_shape));
  if (m == 0) return y;

  // Scratch from the pool: int8 rows live in reinterpreted float storage
  // (4 bytes per float), row scales and the int32 accumulator (same width
  // as float) in their own blocks.
  Storage a8_storage = Storage::Acquire(CeilDiv(m * in, 4));
  Storage row_scale_storage = Storage::Acquire(m);
  Storage c32_storage = Storage::Acquire(m * out);
  QuantLinearForward(x.data(), m, in, out, quant_->packed,
                     quant_->scale.data(),
                     reinterpret_cast<int8_t*>(a8_storage.data()),
                     row_scale_storage.data(),
                     reinterpret_cast<int32_t*>(c32_storage.data()),
                     y.data());
  if (trace::Active()) {
    trace::RecordQuantLinear(x, quant_->scale, y, m, in, out,
                             &quant_->packed);
  }
  return y;
}

Variable Linear::Forward(const Variable& x, Activation act) const {
  LIPF_CHECK_EQ(x.size(-1), in_features_)
      << "Linear expects last dim " << in_features_;
  const bool use_quant = quant_ != nullptr && !training() && !GradEnabled();
  Variable y = use_quant ? Variable(QuantizedMatMul(x.value()))
                         : MatMul(x, weight_);
  if (!has_bias_) return ApplyActivation(y, act);
  switch (act) {
    case Activation::kNone:
      return AddBiasAct(y, bias_, FusedAct::kNone);
    case Activation::kRelu:
      return AddBiasAct(y, bias_, FusedAct::kRelu);
    case Activation::kGelu:
      return AddBiasAct(y, bias_, FusedAct::kGelu);
    case Activation::kTanh:
    case Activation::kSigmoid:
      break;
  }
  return ApplyActivation(AddBiasAct(y, bias_, FusedAct::kNone), act);
}

Mlp::Mlp(std::vector<int64_t> dims, Rng& rng, Activation activation)
    : activation_(activation) {
  LIPF_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    h = layers_[i]->Forward(h, last ? Activation::kNone : activation_);
  }
  return h;
}

}  // namespace lipformer
