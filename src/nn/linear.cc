#include "nn/linear.h"

#include <cmath>

namespace lipformer {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  LIPF_CHECK_GT(in_features, 0);
  LIPF_CHECK_GT(out_features, 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = RegisterParameter(
      "weight", Variable(Tensor::RandUniform(Shape{in_features, out_features},
                                             rng, -bound, bound)));
  if (has_bias_) {
    bias_ = RegisterParameter(
        "bias", Variable(Tensor::RandUniform(Shape{out_features}, rng, -bound,
                                             bound)));
  }
}

Variable Linear::Forward(const Variable& x) const {
  return Forward(x, Activation::kNone);
}

Variable Linear::Forward(const Variable& x, Activation act) const {
  LIPF_CHECK_EQ(x.size(-1), in_features_)
      << "Linear expects last dim " << in_features_;
  Variable y = MatMul(x, weight_);
  if (!has_bias_) return ApplyActivation(y, act);
  switch (act) {
    case Activation::kNone:
      return AddBiasAct(y, bias_, FusedAct::kNone);
    case Activation::kRelu:
      return AddBiasAct(y, bias_, FusedAct::kRelu);
    case Activation::kGelu:
      return AddBiasAct(y, bias_, FusedAct::kGelu);
    case Activation::kTanh:
    case Activation::kSigmoid:
      break;
  }
  return ApplyActivation(AddBiasAct(y, bias_, FusedAct::kNone), act);
}

Mlp::Mlp(std::vector<int64_t> dims, Rng& rng, Activation activation)
    : activation_(activation) {
  LIPF_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    h = layers_[i]->Forward(h, last ? Activation::kNone : activation_);
  }
  return h;
}

}  // namespace lipformer
