#include "nn/module.h"

#include <cstdio>
#include <fstream>

namespace lipformer {

std::vector<Variable> Module::Parameters() const {
  std::vector<std::pair<std::string, Variable>> named;
  CollectParameters("", &named);
  std::vector<Variable> out;
  out.reserve(named.size());
  for (auto& [name, v] : named) out.push_back(v);
  return out;
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<std::pair<std::string, Variable>> named;
  CollectParameters("", &named);
  std::vector<std::string> out;
  out.reserve(named.size());
  for (auto& [name, v] : named) out.push_back(name);
  return out;
}

void Module::CollectParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable>>* out) const {
  for (const auto& [name, v] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->CollectParameters(prefix.empty() ? name : prefix + "." + name,
                             out);
  }
}

void Module::ZeroGrad() {
  for (Variable& v : const_cast<Module*>(this)->Parameters()) {
    v.ZeroGrad();
  }
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const Variable& v : Parameters()) n += v.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::SetRequiresGrad(bool requires_grad) {
  for (Variable& v : Parameters()) v.set_requires_grad(requires_grad);
}

Status Module::SaveParameters(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const std::vector<Variable> params = Parameters();
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Variable& v : params) {
    const uint64_t n = static_cast<uint64_t>(v.numel());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(v.value().data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Module::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<Variable> params = Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch in " + path);
  }
  for (Variable& v : params) {
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (n != static_cast<uint64_t>(v.numel())) {
      return Status::InvalidArgument("parameter size mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(v.mutable_value().data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) return Status::IOError("truncated parameter file: " + path);
  }
  return Status::OK();
}

Variable Module::RegisterParameter(std::string name, Variable param) {
  param.set_requires_grad(true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterModule(std::string name, Module* child) {
  LIPF_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace lipformer
