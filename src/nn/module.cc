#include "nn/module.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "serve/checkpoint.h"

namespace lipformer {

std::vector<Variable> Module::Parameters() const {
  std::vector<std::pair<std::string, Variable>> named;
  CollectParameters("", &named);
  std::vector<Variable> out;
  out.reserve(named.size());
  for (auto& [name, v] : named) out.push_back(v);
  return out;
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<std::pair<std::string, Variable>> named;
  CollectParameters("", &named);
  std::vector<std::string> out;
  out.reserve(named.size());
  for (auto& [name, v] : named) out.push_back(name);
  return out;
}

void Module::CollectParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable>>* out) const {
  for (const auto& [name, v] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->CollectParameters(prefix.empty() ? name : prefix + "." + name,
                             out);
  }
}

std::vector<std::pair<std::string, Module*>> Module::NamedModules() {
  std::vector<std::pair<std::string, Module*>> out;
  // Iterative depth-first walk matching CollectParameters' ordering.
  std::vector<std::pair<std::string, Module*>> stack{{"", this}};
  while (!stack.empty()) {
    auto [prefix, module] = stack.back();
    stack.pop_back();
    out.emplace_back(prefix, module);
    for (auto it = module->children_.rbegin(); it != module->children_.rend();
         ++it) {
      stack.emplace_back(
          prefix.empty() ? it->first : prefix + "." + it->first, it->second);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Rng*>> Module::NamedRngs() {
  std::vector<std::pair<std::string, Rng*>> out;
  CollectRngs("", &out);
  return out;
}

void Module::CollectRngs(const std::string& prefix,
                         std::vector<std::pair<std::string, Rng*>>* out) {
  for (auto& [name, child] : children_) {
    child->CollectRngs(prefix.empty() ? name : prefix + "." + name, out);
  }
}

void Module::ZeroGrad() {
  for (Variable& v : const_cast<Module*>(this)->Parameters()) {
    v.ZeroGrad();
  }
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const Variable& v : Parameters()) n += v.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::SetRequiresGrad(bool requires_grad) {
  for (Variable& v : Parameters()) v.set_requires_grad(requires_grad);
}

Status Module::SaveParameters(const std::string& path) const {
  std::vector<std::pair<std::string, Variable>> named;
  CollectParameters("", &named);
  serve::Checkpoint ckpt;
  ckpt.tensors.reserve(named.size());
  for (const auto& [name, v] : named) {
    // Clone() detaches the saved bytes from the live (optimizer-mutated)
    // storage; WriteCheckpoint may interleave with further training.
    ckpt.tensors.push_back({name, v.value().Clone()});
  }
  return serve::WriteCheckpoint(path, ckpt);
}

Status Module::LoadParameters(const std::string& path) {
  Result<serve::Checkpoint> loaded = serve::ReadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const serve::Checkpoint& ckpt = loaded.value();

  std::vector<std::pair<std::string, Variable>> named;
  CollectParameters("", &named);

  // Count only the parameter tensors; reserved "__" entries (e.g. a
  // serving bundle's scaler) ride along and are ignored here.
  size_t param_tensors = 0;
  for (const serve::CheckpointTensor& t : ckpt.tensors) {
    if (t.name.rfind(serve::kReservedTensorPrefix, 0) != 0) ++param_tensors;
  }
  if (param_tensors != named.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch in " + path + ": checkpoint has " +
        std::to_string(param_tensors) + " tensors, module has " +
        std::to_string(named.size()));
  }

  for (auto& [name, v] : named) {
    const serve::CheckpointTensor* entry = ckpt.Find(name);
    if (entry == nullptr) {
      return Status::InvalidArgument("checkpoint " + path +
                                     " has no tensor named '" + name + "'");
    }
    if (!SameShape(entry->data.shape(), v.shape())) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + name + "' in " + path +
          ": checkpoint has " + ShapeToString(entry->data.shape()) +
          ", module expects " + ShapeToString(v.shape()));
    }
    const float* src = entry->data.data();
    std::copy(src, src + v.numel(), v.mutable_value().data());
  }
  return Status::OK();
}

Status Module::LoadParametersLegacyV1(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (static_cast<size_t>(in.gcount()) != sizeof(count)) {
    return Status::InvalidArgument(
        "not a v1 parameter file: " + path +
        " is shorter than the 8-byte header");
  }
  // A v2 file starts with the ASCII magic "LPFCKPT2"; read as a little-
  // endian u64 count it would be a nonsense number. Catch it here so
  // running the converter on an already-converted file says so instead of
  // reporting a garbage parameter count.
  if (std::memcmp(&count, "LPFCKPT2", sizeof(count)) == 0) {
    return Status::InvalidArgument(
        path + " is already a v2 checkpoint; load it with LoadParameters");
  }
  std::vector<Variable> params = Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch in " + path + ": file has " +
        std::to_string(count) + ", module has " +
        std::to_string(params.size()));
  }
  for (Variable& v : params) {
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (static_cast<size_t>(in.gcount()) != sizeof(n)) {
      return Status::InvalidArgument("truncated v1 parameter file: " + path);
    }
    if (n != static_cast<uint64_t>(v.numel())) {
      return Status::InvalidArgument("parameter size mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(v.mutable_value().data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (static_cast<uint64_t>(in.gcount()) != n * sizeof(float)) {
      return Status::InvalidArgument("truncated v1 parameter file: " + path);
    }
  }
  char extra;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return Status::InvalidArgument(
        "trailing bytes after the last parameter in " + path);
  }
  return Status::OK();
}

Variable Module::RegisterParameter(std::string name, Variable param) {
  param.set_requires_grad(true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterModule(std::string name, Module* child) {
  LIPF_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace lipformer
