#include "nn/dropout.h"

namespace lipformer {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.Fork()) {
  LIPF_CHECK_GE(p, 0.0f);
  LIPF_CHECK_LT(p, 1.0f);
}

void Dropout::CollectRngs(const std::string& prefix,
                          std::vector<std::pair<std::string, Rng*>>* out) {
  out->emplace_back(prefix.empty() ? "rng" : prefix, &rng_);
  Module::CollectRngs(prefix, out);
}

Variable Dropout::Forward(const Variable& x) const {
  if (!training() || p_ == 0.0f) return x;
  Tensor mask(x.shape());
  float* pm = mask.data();
  const float scale = 1.0f / (1.0f - p_);
  // Mask generation must stay a serial loop on this thread: each draw
  // advances rng_ (see the mutable comment in dropout.h), so spreading it
  // over the thread pool would both race and reorder the stream.
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng_.Bernoulli(p_) ? 0.0f : scale;
  }
  return MulConst(x, mask);
}

}  // namespace lipformer
