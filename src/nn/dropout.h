#ifndef LIPFORMER_NN_DROPOUT_H_
#define LIPFORMER_NN_DROPOUT_H_

#include "nn/module.h"

namespace lipformer {

// Inverted dropout: in training mode each element is zeroed with
// probability p and survivors are scaled by 1/(1-p); identity in eval mode.
// Holds its own RNG stream so runs are reproducible.
class Dropout : public Module {
 public:
  Dropout(float p, Rng& rng);

  Variable Forward(const Variable& x) const;

  float p() const { return p_; }

 protected:
  void CollectRngs(const std::string& prefix,
                   std::vector<std::pair<std::string, Rng*>>* out) override;

 private:
  float p_;
  // Deliberately mutated from the const Forward(): drawing a mask advances
  // the stream, which is hidden state, not logical state. The draw loop
  // runs serially on the calling thread (never on the tensor thread pool),
  // and a given Dropout instance is only ever driven by one thread at a
  // time, so masks are deterministic per seed at any --threads setting.
  // Calling Forward on the same instance from multiple threads would race
  // on this stream and is not supported.
  mutable Rng rng_;
};

}  // namespace lipformer

#endif  // LIPFORMER_NN_DROPOUT_H_
