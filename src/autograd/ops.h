#ifndef LIPFORMER_AUTOGRAD_OPS_H_
#define LIPFORMER_AUTOGRAD_OPS_H_

#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "tensor/ops.h"

// Differentiable ops over Variables. Each op computes its value with the
// forward kernels from tensor/ops.h and records a closure implementing the
// corresponding vector-Jacobian product. Overloads share names with the
// Tensor kernels; overload resolution picks by argument type.
//
// Inference fast path: when gradients are off (NoGradGuard) or no input
// requires grad, every op returns a plain Variable WITHOUT calling
// Variable::MakeNode — no backward closure is built and no parent
// reference is captured, so intermediate tensors return to the storage
// pool the moment their Variable goes out of scope.

namespace lipformer {

// ---- Elementwise binary (broadcasting) ----
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// ---- Scalar ----
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable PowScalar(const Variable& a, float p);

// ---- Unary ----
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Abs(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Relu(const Variable& a);
Variable Gelu(const Variable& a);

// ---- Linear algebra ----
Variable MatMul(const Variable& a, const Variable& b);
// a [..., m, k] x b^T for b [..., n, k] -> [..., m, n]. Forward and
// backward are transpose-free (the fold happens inside the packed GEMM),
// which is what attention score computation uses.
Variable MatMulTransB(const Variable& a, const Variable& b);
// a^T x b for a [..., k, m], b [..., k, n] -> [..., m, n].
Variable MatMulTransA(const Variable& a, const Variable& b);

// ---- Shape ----
Variable Reshape(const Variable& a, Shape new_shape);
Variable Permute(const Variable& a, const std::vector<int64_t>& perm);
Variable Transpose(const Variable& a, int64_t d0, int64_t d1);
Variable Slice(const Variable& a, int64_t dim, int64_t start, int64_t end);
Variable Concat(const std::vector<Variable>& vs, int64_t dim);
// Backward scatter-adds into the selected rows (indices may repeat).
Variable IndexSelect(const Variable& a, int64_t dim,
                     const std::vector<int64_t>& indices);

// ---- Reductions ----
Variable Sum(const Variable& a, int64_t dim, bool keepdim = false);
Variable Mean(const Variable& a, int64_t dim, bool keepdim = false);
// Scalar (shape {}) outputs.
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

// ---- Normalization ----
Variable Softmax(const Variable& a, int64_t dim);
Variable LogSoftmax(const Variable& a, int64_t dim);

// Elementwise product with a constant (non-differentiated) mask/tensor.
Variable MulConst(const Variable& a, const Tensor& c);
// Elementwise sum with a constant tensor (broadcasting).
Variable AddConst(const Variable& a, const Tensor& c);

// ---- Fused ops (single-pass kernels from tensor/ops.h) ----
// softmax(scale * a [+ mask], dim=-1); mask is a constant 2-d additive
// mask (or null). Value and gradient are bitwise identical to the
// Softmax(AddConst(MulScalar(a, scale), mask), -1) chain.
Variable ScaledMaskedSoftmax(const Variable& a, float scale,
                             const Tensor* mask);
// act(a + bias) with bias broadcast over the last dim — the Linear
// epilogue. The backward recomputes the pre-activation from the saved
// inputs instead of storing it.
Variable AddBiasAct(const Variable& a, const Variable& bias, FusedAct act);
// a [B, T, C] -/+ b [B, 1, C]: instance-norm shift and unshift without
// the generic odometer broadcast.
Variable SubBroadcastMid(const Variable& a, const Variable& b);
Variable AddBroadcastMid(const Variable& a, const Variable& b);

// ---- Operator sugar ----
inline Variable operator+(const Variable& a, const Variable& b) {
  return Add(a, b);
}
inline Variable operator-(const Variable& a, const Variable& b) {
  return Sub(a, b);
}
inline Variable operator*(const Variable& a, const Variable& b) {
  return Mul(a, b);
}
inline Variable operator/(const Variable& a, const Variable& b) {
  return Div(a, b);
}

}  // namespace lipformer

#endif  // LIPFORMER_AUTOGRAD_OPS_H_
