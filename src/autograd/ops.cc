#include "autograd/ops.h"

#include <cmath>
#include <cstring>

namespace lipformer {

namespace {

// True when this op must be recorded on the tape: gradients are on and at
// least one input requires grad. When false, ops return a plain Variable
// without touching Variable::MakeNode — no closure allocation and no
// captured parent tensors, so inference intermediates release their
// pooled storage as soon as the Variable dies.
inline bool Taped(const Variable& a) {
  return GradEnabled() && a.requires_grad();
}

inline bool Taped(const Variable& a, const Variable& b) {
  return GradEnabled() && (a.requires_grad() || b.requires_grad());
}

inline bool Taped(const std::vector<Variable>& vs) {
  if (!GradEnabled()) return false;
  for (const Variable& v : vs) {
    if (v.requires_grad()) return true;
  }
  return false;
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor value = Add(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Shape sa = a.shape();
  const Shape sb = b.shape();
  return Variable::MakeNode(
      std::move(value), {a, b}, [sa, sb](const Tensor& g) {
        return std::vector<Tensor>{ReduceToShape(g, sa), ReduceToShape(g, sb)};
      });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor value = Sub(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Shape sa = a.shape();
  const Shape sb = b.shape();
  return Variable::MakeNode(
      std::move(value), {a, b}, [sa, sb](const Tensor& g) {
        return std::vector<Tensor>{ReduceToShape(g, sa),
                                   ReduceToShape(Neg(g), sb)};
      });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor value = Mul(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return Variable::MakeNode(
      std::move(value), {a, b}, [av, bv](const Tensor& g) {
        return std::vector<Tensor>{ReduceToShape(Mul(g, bv), av.shape()),
                                   ReduceToShape(Mul(g, av), bv.shape())};
      });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor value = Div(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return Variable::MakeNode(
      std::move(value), {a, b}, [av, bv](const Tensor& g) {
        Tensor ga = ReduceToShape(Div(g, bv), av.shape());
        // d/db (a/b) = -a / b^2
        Tensor gb = ReduceToShape(Neg(Div(Mul(g, av), Mul(bv, bv))),
                                  bv.shape());
        return std::vector<Tensor>{std::move(ga), std::move(gb)};
      });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor value = AddScalar(a.value(), s);
  if (!Taped(a)) return Variable(std::move(value));
  return Variable::MakeNode(std::move(value), {a}, [](const Tensor& g) {
    return std::vector<Tensor>{g};
  });
}

Variable MulScalar(const Variable& a, float s) {
  Tensor value = MulScalar(a.value(), s);
  if (!Taped(a)) return Variable(std::move(value));
  return Variable::MakeNode(std::move(value), {a}, [s](const Tensor& g) {
    return std::vector<Tensor>{MulScalar(g, s)};
  });
}

Variable PowScalar(const Variable& a, float p) {
  Tensor value = PowScalar(a.value(), p);
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor av = a.value();
  return Variable::MakeNode(std::move(value), {a}, [av, p](const Tensor& g) {
    // d/dx x^p = p * x^(p-1)
    return std::vector<Tensor>{
        Mul(g, MulScalar(PowScalar(av, p - 1.0f), p))};
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  Tensor value = Exp(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(std::move(value), {a}, [out](const Tensor& g) {
    return std::vector<Tensor>{Mul(g, out)};
  });
}

Variable Log(const Variable& a) {
  Tensor value = Log(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor av = a.value();
  return Variable::MakeNode(std::move(value), {a}, [av](const Tensor& g) {
    return std::vector<Tensor>{Div(g, av)};
  });
}

Variable Sqrt(const Variable& a) {
  Tensor value = Sqrt(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(std::move(value), {a}, [out](const Tensor& g) {
    return std::vector<Tensor>{Div(g, MulScalar(out, 2.0f))};
  });
}

Variable Abs(const Variable& a) {
  Tensor value = Abs(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor av = a.value();
  return Variable::MakeNode(std::move(value), {a}, [av](const Tensor& g) {
    Tensor sign = Tensor::Empty(av.shape());
    const float* p = av.data();
    float* ps = sign.data();
    for (int64_t i = 0; i < av.numel(); ++i) {
      ps[i] = p[i] > 0.0f ? 1.0f : (p[i] < 0.0f ? -1.0f : 0.0f);
    }
    return std::vector<Tensor>{Mul(g, sign)};
  });
}

Variable Tanh(const Variable& a) {
  Tensor value = Tanh(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(std::move(value), {a}, [out](const Tensor& g) {
    // 1 - tanh^2
    Tensor one_minus = AddScalar(Neg(Mul(out, out)), 1.0f);
    return std::vector<Tensor>{Mul(g, one_minus)};
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor value = Sigmoid(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(std::move(value), {a}, [out](const Tensor& g) {
    Tensor d = Mul(out, AddScalar(Neg(out), 1.0f));
    return std::vector<Tensor>{Mul(g, d)};
  });
}

Variable Relu(const Variable& a) {
  Tensor value = Relu(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor av = a.value();
  return Variable::MakeNode(std::move(value), {a}, [av](const Tensor& g) {
    Tensor mask = Tensor::Empty(av.shape());
    const float* p = av.data();
    float* pm = mask.data();
    for (int64_t i = 0; i < av.numel(); ++i) pm[i] = p[i] > 0.0f ? 1.0f : 0.0f;
    return std::vector<Tensor>{Mul(g, mask)};
  });
}

Variable Gelu(const Variable& a) {
  Tensor value = Gelu(a.value());
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor av = a.value();
  return Variable::MakeNode(std::move(value), {a}, [av](const Tensor& g) {
    // Derivative of the tanh-approximation GELU (same formula as the
    // fused AddBiasActBackward in tensor/ops.cc).
    constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
    Tensor d = Tensor::Empty(av.shape());
    const float* p = av.data();
    float* pd = d.data();
    for (int64_t i = 0; i < av.numel(); ++i) {
      const float x = p[i];
      const float inner = kC * (x + 0.044715f * x * x * x);
      const float th = std::tanh(inner);
      const float sech2 = 1.0f - th * th;
      const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
      pd[i] = 0.5f * (1.0f + th) + 0.5f * x * sech2 * dinner;
    }
    return std::vector<Tensor>{Mul(g, d)};
  });
}

Variable MatMul(const Variable& a_in, const Variable& b_in) {
  // Promote 1-d operands via differentiable reshapes so the core rule only
  // deals with >=2-d inputs.
  Variable a = a_in;
  Variable b = b_in;
  bool squeeze_m = false;
  bool squeeze_n = false;
  if (a.dim() == 1) {
    a = Reshape(a, Shape{1, a.size(0)});
    squeeze_m = true;
  }
  if (b.dim() == 1) {
    b = Reshape(b, Shape{b.size(0), 1});
    squeeze_n = true;
  }
  Tensor value = MatMul(a.value(), b.value());
  Variable out;
  if (!Taped(a, b)) {
    out = Variable(std::move(value));
  } else {
    const Tensor av = a.value();
    const Tensor bv = b.value();
    out = Variable::MakeNode(
        std::move(value), {a, b}, [av, bv](const Tensor& g) {
          // da = g b^T, db = a^T g; both transposes are folded into the
          // packed GEMM instead of materialized.
          Tensor ga = ReduceToShape(MatMulTransB(g, bv), av.shape());
          Tensor gb = ReduceToShape(MatMulTransA(av, g), bv.shape());
          return std::vector<Tensor>{std::move(ga), std::move(gb)};
        });
  }
  if (squeeze_m || squeeze_n) {
    Shape s = out.shape();
    if (squeeze_n) s.erase(s.end() - 1);
    if (squeeze_m) s.erase(s.end() - (squeeze_n ? 1 : 2));
    out = Reshape(out, std::move(s));
  }
  return out;
}

Variable MatMulTransB(const Variable& a, const Variable& b) {
  Tensor value = MatMulTransB(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return Variable::MakeNode(
      std::move(value), {a, b}, [av, bv](const Tensor& g) {
        // c = a b^T with g [..., m, n]: da = g b, db = g^T a.
        Tensor ga = ReduceToShape(MatMul(g, bv), av.shape());
        Tensor gb = ReduceToShape(MatMulTransA(g, av), bv.shape());
        return std::vector<Tensor>{std::move(ga), std::move(gb)};
      });
}

Variable MatMulTransA(const Variable& a, const Variable& b) {
  Tensor value = MatMulTransA(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return Variable::MakeNode(
      std::move(value), {a, b}, [av, bv](const Tensor& g) {
        // c = a^T b with g [..., m, n]: da = b g^T, db = a g.
        Tensor ga = ReduceToShape(MatMulTransB(bv, g), av.shape());
        Tensor gb = ReduceToShape(MatMul(av, g), bv.shape());
        return std::vector<Tensor>{std::move(ga), std::move(gb)};
      });
}

Variable Reshape(const Variable& a, Shape new_shape) {
  Tensor value = a.value().Reshape(std::move(new_shape));
  if (!Taped(a)) return Variable(std::move(value));
  const Shape orig = a.shape();
  return Variable::MakeNode(std::move(value), {a}, [orig](const Tensor& g) {
    return std::vector<Tensor>{g.Reshape(orig)};
  });
}

Variable Permute(const Variable& a, const std::vector<int64_t>& perm) {
  Tensor value = Permute(a.value(), perm);
  if (!Taped(a)) return Variable(std::move(value));
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  return Variable::MakeNode(std::move(value), {a},
                            [inverse](const Tensor& g) {
                              return std::vector<Tensor>{Permute(g, inverse)};
                            });
}

Variable Transpose(const Variable& a, int64_t d0, int64_t d1) {
  const int64_t nd = a.dim();
  if (d0 < 0) d0 += nd;
  if (d1 < 0) d1 += nd;
  std::vector<int64_t> perm(nd);
  for (int64_t i = 0; i < nd; ++i) perm[i] = i;
  std::swap(perm[d0], perm[d1]);
  return Permute(a, perm);
}

Variable Slice(const Variable& a, int64_t dim, int64_t start, int64_t end) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  if (start < 0) start += a.size(dim);
  if (end < 0) end += a.size(dim);
  Tensor value = Slice(a.value(), dim, start, end);
  if (!Taped(a)) return Variable(std::move(value));
  const Shape orig = a.shape();
  return Variable::MakeNode(
      std::move(value), {a}, [orig, dim, start, end](const Tensor& g) {
        // Scatter g back into a zero tensor of the original shape.
        Tensor out = Pad(g, dim, start, orig[dim] - end);
        return std::vector<Tensor>{std::move(out)};
      });
}

Variable Concat(const std::vector<Variable>& vs, int64_t dim) {
  LIPF_CHECK(!vs.empty());
  const int64_t nd = vs[0].dim();
  if (dim < 0) dim += nd;
  std::vector<Tensor> values;
  values.reserve(vs.size());
  std::vector<int64_t> sizes;
  for (const Variable& v : vs) {
    values.push_back(v.value());
    sizes.push_back(v.size(dim));
  }
  Tensor value = Concat(values, dim);
  if (!Taped(vs)) return Variable(std::move(value));
  return Variable::MakeNode(
      std::move(value), vs, [sizes, dim](const Tensor& g) {
        std::vector<Tensor> grads;
        grads.reserve(sizes.size());
        int64_t off = 0;
        for (int64_t s : sizes) {
          grads.push_back(Slice(g, dim, off, off + s));
          off += s;
        }
        return grads;
      });
}

Variable IndexSelect(const Variable& a, int64_t dim,
                     const std::vector<int64_t>& indices) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  Tensor value = IndexSelect(a.value(), dim, indices);
  if (!Taped(a)) return Variable(std::move(value));
  const Shape orig = a.shape();
  return Variable::MakeNode(
      std::move(value), {a}, [orig, dim, indices](const Tensor& g) {
        Tensor out = Tensor::Zeros(orig);
        // scatter-add rows of g into out along dim.
        int64_t outer = 1;
        int64_t inner = 1;
        for (int64_t i = 0; i < dim; ++i) outer *= orig[i];
        for (size_t i = dim + 1; i < orig.size(); ++i) inner *= orig[i];
        const int64_t mid = orig[dim];
        const int64_t nsel = static_cast<int64_t>(indices.size());
        const float* pg = g.data();
        float* po = out.data();
        for (int64_t o = 0; o < outer; ++o) {
          for (int64_t s = 0; s < nsel; ++s) {
            const int64_t idx = indices[s];
            const float* src = pg + (o * nsel + s) * inner;
            float* dst = po + (o * mid + idx) * inner;
            for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
          }
        }
        return std::vector<Tensor>{std::move(out)};
      });
}

Variable Sum(const Variable& a, int64_t dim, bool keepdim) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  Tensor value = Sum(a.value(), dim, keepdim);
  if (!Taped(a)) return Variable(std::move(value));
  const Shape orig = a.shape();
  return Variable::MakeNode(
      std::move(value), {a}, [orig, dim, keepdim](const Tensor& g) {
        Tensor gk = g;
        if (!keepdim) gk = g.Unsqueeze(dim);
        // Broadcast back over the reduced dim.
        Tensor out = BroadcastTo(gk, orig);
        return std::vector<Tensor>{std::move(out)};
      });
}

Variable Mean(const Variable& a, int64_t dim, bool keepdim) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  const float inv = 1.0f / static_cast<float>(a.size(dim));
  return MulScalar(Sum(a, dim, keepdim), inv);
}

Variable SumAll(const Variable& a) {
  Tensor value = Tensor::Scalar(SumAll(a.value()));
  if (!Taped(a)) return Variable(std::move(value));
  const Shape orig = a.shape();
  return Variable::MakeNode(std::move(value), {a}, [orig](const Tensor& g) {
    return std::vector<Tensor>{Tensor::Full(orig, g.item())};
  });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return MulScalar(SumAll(a), inv);
}

Variable Softmax(const Variable& a, int64_t dim) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  Tensor value = Softmax(a.value(), dim);
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(
      std::move(value), {a}, [out, dim](const Tensor& g) {
        // dx = (g - sum(g*y, dim)) * y
        Tensor gy = Mul(g, out);
        Tensor s = Sum(gy, dim, /*keepdim=*/true);
        Tensor dx = Mul(Sub(g, s), out);
        return std::vector<Tensor>{std::move(dx)};
      });
}

Variable LogSoftmax(const Variable& a, int64_t dim) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  Tensor value = LogSoftmax(a.value(), dim);
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(
      std::move(value), {a}, [out, dim](const Tensor& g) {
        // dx = g - softmax(x) * sum(g, dim)
        Tensor s = Sum(g, dim, /*keepdim=*/true);
        Tensor dx = Sub(g, Mul(Exp(out), s));
        return std::vector<Tensor>{std::move(dx)};
      });
}

Variable MulConst(const Variable& a, const Tensor& c) {
  Tensor value = Mul(a.value(), c);
  if (!Taped(a)) return Variable(std::move(value));
  const Shape sa = a.shape();
  return Variable::MakeNode(std::move(value), {a}, [sa, c](const Tensor& g) {
    return std::vector<Tensor>{ReduceToShape(Mul(g, c), sa)};
  });
}

Variable AddConst(const Variable& a, const Tensor& c) {
  Tensor value = Add(a.value(), c);
  if (!Taped(a)) return Variable(std::move(value));
  const Shape sa = a.shape();
  return Variable::MakeNode(std::move(value), {a}, [sa](const Tensor& g) {
    return std::vector<Tensor>{ReduceToShape(g, sa)};
  });
}

Variable ScaledMaskedSoftmax(const Variable& a, float scale,
                             const Tensor* mask) {
  Tensor value = ScaledMaskedSoftmax(a.value(), scale, mask);
  if (!Taped(a)) return Variable(std::move(value));
  const Tensor out = value;
  return Variable::MakeNode(
      std::move(value), {a}, [out, scale](const Tensor& g) {
        return std::vector<Tensor>{
            ScaledMaskedSoftmaxBackward(g, out, scale)};
      });
}

Variable AddBiasAct(const Variable& a, const Variable& bias, FusedAct act) {
  Tensor value = AddBiasAct(a.value(), bias.value(), act);
  if (!Taped(a, bias)) return Variable(std::move(value));
  const Tensor av = a.value();
  const Tensor bv = bias.value();
  return Variable::MakeNode(
      std::move(value), {a, bias}, [av, bv, act](const Tensor& g) {
        // dz = g * act'(a + bias); da is dz itself, dbias reduces dz over
        // every dim but the last (same column order as the unfused chain).
        Tensor dz = AddBiasActBackward(g, av, bv, act);
        Tensor db = ReduceToShape(dz, bv.shape());
        return std::vector<Tensor>{dz, std::move(db)};
      });
}

Variable SubBroadcastMid(const Variable& a, const Variable& b) {
  Tensor value = SubBroadcastMid(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Shape sb = b.shape();
  return Variable::MakeNode(
      std::move(value), {a, b}, [sb](const Tensor& g) {
        return std::vector<Tensor>{g, ReduceToShape(Neg(g), sb)};
      });
}

Variable AddBroadcastMid(const Variable& a, const Variable& b) {
  Tensor value = AddBroadcastMid(a.value(), b.value());
  if (!Taped(a, b)) return Variable(std::move(value));
  const Shape sb = b.shape();
  return Variable::MakeNode(
      std::move(value), {a, b}, [sb](const Tensor& g) {
        return std::vector<Tensor>{g, ReduceToShape(g, sb)};
      });
}

}  // namespace lipformer
