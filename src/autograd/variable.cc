#include "autograd/variable.h"

#include <atomic>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "tensor/ops.h"

namespace lipformer {

namespace {
// Per-thread, like the dispatch-time checks that read it: a NoGradGuard
// in one serving thread must not turn off tape recording for a trainer
// (or another session) running concurrently, and a plain global here is
// a data race once two threads predict at once.
thread_local bool g_grad_enabled = true;
std::atomic<int64_t> g_make_node_calls{0};
}  // namespace

namespace internal {

void VarImpl::AccumulateGrad(const Tensor& g) {
  LIPF_CHECK(SameShape(g.shape(), value.shape()))
      << "gradient shape " << ShapeToString(g.shape())
      << " does not match value shape " << ShapeToString(value.shape());
  if (!has_grad) {
    if (SameShape(grad.shape(), value.shape())) {
      // Buffer kept by ZeroGrad (or the lazy grad() accessor): overwrite
      // in place instead of allocating a fresh clone every step.
      std::memcpy(grad.data(), g.data(),
                  static_cast<size_t>(g.numel()) * sizeof(float));
    } else {
      grad = g.Clone();
    }
    has_grad = true;
  } else {
    float* pg = grad.data();
    const float* ps = g.data();
    for (int64_t i = 0; i < grad.numel(); ++i) pg[i] += ps[i];
  }
}

int64_t MakeNodeCalls() {
  return g_make_node_calls.load(std::memory_order_relaxed);
}

void ResetMakeNodeCalls() {
  g_make_node_calls.store(0, std::memory_order_relaxed);
}

}  // namespace internal

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

Variable::Variable(Tensor value, bool requires_grad)
    : impl_(std::make_shared<internal::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  LIPF_CHECK(defined());
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  LIPF_CHECK(defined());
  return impl_->value;
}

const Tensor& Variable::grad() const {
  LIPF_CHECK(defined());
  if (!impl_->has_grad) {
    if (SameShape(impl_->grad.shape(), impl_->value.shape())) {
      impl_->grad.Fill(0.0f);  // stale buffer kept by ZeroGrad
    } else {
      impl_->grad = Tensor::Zeros(impl_->value.shape());
    }
    impl_->has_grad = true;
  }
  return impl_->grad;
}

bool Variable::has_grad() const {
  LIPF_CHECK(defined());
  return impl_->has_grad;
}

void Variable::ZeroGrad() {
  LIPF_CHECK(defined());
  // Keep the buffer: AccumulateGrad's first write overwrites it in place,
  // so steady-state training never reallocates parameter gradients.
  impl_->has_grad = false;
}

bool Variable::requires_grad() const {
  LIPF_CHECK(defined());
  return impl_->requires_grad;
}

void Variable::set_requires_grad(bool v) {
  LIPF_CHECK(defined());
  impl_->requires_grad = v;
}

Variable Variable::Detach() const {
  LIPF_CHECK(defined());
  return Variable(impl_->value, /*requires_grad=*/false);
}

Variable Variable::MakeNode(Tensor value, std::vector<Variable> parents,
                            internal::BackwardFn backward_fn) {
  g_make_node_calls.fetch_add(1, std::memory_order_relaxed);
  bool any_grad = false;
  for (const Variable& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  Variable out(std::move(value), /*requires_grad=*/any_grad && GradEnabled());
  if (out.requires_grad()) {
    out.impl_->backward_fn = std::move(backward_fn);
    out.impl_->parents.reserve(parents.size());
    for (const Variable& p : parents) out.impl_->parents.push_back(p.impl());
  }
  return out;
}

void Variable::Backward() const {
  LIPF_CHECK(defined());
  LIPF_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";
  LIPF_CHECK(requires_grad()) << "Backward() on a non-grad Variable";

  // Topological order via iterative post-order DFS.
  std::vector<internal::VarImpl*> order;
  std::unordered_set<internal::VarImpl*> visited;
  std::vector<std::pair<internal::VarImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      internal::VarImpl* next = node->parents[child].get();
      ++child;
      if (next->requires_grad && !visited.count(next)) {
        visited.insert(next);
        stack.emplace_back(next, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->AccumulateGrad(Tensor::Ones(impl_->value.shape()));

  // Reverse topological order: every node's grad is complete before use.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarImpl* node = *it;
    if (!node->backward_fn || node->parents.empty()) continue;
    if (!node->has_grad) continue;  // unreachable from the loss
    std::vector<Tensor> parent_grads = node->backward_fn(node->grad);
    LIPF_CHECK_EQ(parent_grads.size(), node->parents.size());
    for (size_t i = 0; i < node->parents.size(); ++i) {
      internal::VarImpl* parent = node->parents[i].get();
      if (parent->requires_grad && parent_grads[i].numel() > 0) {
        parent->AccumulateGrad(parent_grads[i]);
      }
    }
    // Free intermediate gradient memory; keep leaf grads.
    if (node != impl_.get() && !node->parents.empty()) {
      node->grad = Tensor();
      node->has_grad = false;
    }
  }
}

}  // namespace lipformer
