#ifndef LIPFORMER_AUTOGRAD_VARIABLE_H_
#define LIPFORMER_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

// Tape-based reverse-mode automatic differentiation. A Variable is a handle
// to a tensor value plus (optionally) a node in the backward graph. Ops on
// Variables (autograd/ops.h) record a backward closure that maps the output
// gradient to the input gradients; Backward() runs a topological sweep and
// accumulates gradients into leaf Variables.

namespace lipformer {

class Variable;

namespace internal {

// Maps the gradient w.r.t. the op output to gradients w.r.t. each parent
// (aligned with the parents vector).
using BackwardFn = std::function<std::vector<Tensor>(const Tensor& grad_out)>;

struct VarImpl {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  bool has_grad = false;
  std::vector<std::shared_ptr<VarImpl>> parents;
  BackwardFn backward_fn;

  void AccumulateGrad(const Tensor& g);
};

// Running count of MakeNode calls (tape nodes built). Tests assert the
// inference fast path never reaches MakeNode under NoGradGuard.
int64_t MakeNodeCalls();
void ResetMakeNodeCalls();

}  // namespace internal

// Returns false inside a NoGradGuard scope; ops then skip tape recording.
bool GradEnabled();

// RAII scope that disables gradient recording (inference / frozen modules).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

class Variable {
 public:
  // Empty handle; boolean-tests false.
  Variable() = default;

  // Leaf variable holding `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();

  // Gradient accumulated by the last Backward(); zeros-shaped if never set.
  const Tensor& grad() const;
  bool has_grad() const;
  // Marks the gradient cleared but KEEPS the buffer: the next Backward()
  // overwrites it in place instead of allocating. Consequently the tensor
  // returned by grad() is reused across steps — callers that need a
  // snapshot must Clone() it.
  void ZeroGrad();

  bool requires_grad() const;
  void set_requires_grad(bool v);

  // Convenience shape accessors.
  const Shape& shape() const { return value().shape(); }
  int64_t size(int64_t d) const { return value().size(d); }
  int64_t dim() const { return value().dim(); }
  int64_t numel() const { return value().numel(); }

  // New Variable sharing the value but cut off from the tape.
  Variable Detach() const;

  // Runs reverse-mode accumulation from this (scalar) Variable.
  void Backward() const;

  // Internal: builds an op-output variable. Public for autograd/ops.cc.
  static Variable MakeNode(Tensor value, std::vector<Variable> parents,
                           internal::BackwardFn backward_fn);

  std::shared_ptr<internal::VarImpl> impl() const { return impl_; }

 private:
  std::shared_ptr<internal::VarImpl> impl_;
};

}  // namespace lipformer

#endif  // LIPFORMER_AUTOGRAD_VARIABLE_H_
