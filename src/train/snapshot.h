#ifndef LIPFORMER_TRAIN_SNAPSHOT_H_
#define LIPFORMER_TRAIN_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "nn/module.h"
#include "optim/adamw.h"
#include "optim/early_stopping.h"

// Training-state snapshots: everything TrainAndEvaluate mutates, captured
// so a killed run resumes to a final model bitwise identical to an
// uninterrupted one. The on-disk form is a checkpoint v2 file whose
// non-reserved tensors are the live model weights (so the snapshot is
// also loadable by Module::LoadParameters), plus reserved namespaces:
//
//   __best__.<param>     best-validation weights held by early stopping
//   __opt__.m.<param>    AdamW first moments   (+ __opt__.step metadata)
//   __opt__.v.<param>    AdamW second moments
//   __rng__.loader       shuffle stream of the train DataLoader, exported
//                        at the start of the snapshot's epoch (Reset()
//                        then regenerates the identical order)
//   __rng__.module.<path> per-module streams (Dropout masks)
//   __train__.*          metadata: epoch/batch cursors, counters, early-
//                        stopping scalars, lr — floats stored as hexfloat
//                        strings so they round-trip bit-exactly
//
// All writes go through the atomic write layer (common/atomic_file.h): a
// crash mid-snapshot leaves the previous snapshot intact.

namespace lipformer {

// Where the training loop stands. `epoch` is the epoch the next step
// belongs to; `batch` counts batches already consumed inside it (0 at an
// epoch boundary). `global_step` is monotonic across rollbacks (fault
// injection and logging key on it).
struct TrainCursor {
  int64_t epoch = 0;
  int64_t batch = 0;
  int64_t global_step = 0;
  int64_t epochs_run = 0;
  double epoch_loss = 0.0;  // partial-epoch loss accumulator
  int64_t nonfinite_steps = 0;
  int64_t rollbacks = 0;
  float lr = 0.0f;       // effective lr (schedule x lr_scale)
  float lr_scale = 1.0f; // accumulated non-finite rollback halvings
};

// In-memory image of the full training state; also the unit of rollback.
struct TrainState {
  std::vector<std::string> param_names;  // aligned with the tensor vectors
  std::vector<Tensor> params;
  std::vector<Tensor> best_params;
  std::vector<Tensor> opt_m;
  std::vector<Tensor> opt_v;
  int64_t opt_step = 0;
  float stopper_best = 0.0f;
  int64_t stopper_best_epoch = -1;
  int64_t stopper_bad = 0;
  int64_t stopper_epoch = -1;
  std::array<uint64_t, Rng::kStateWords> loader_rng{};
  std::vector<std::pair<std::string, std::array<uint64_t, Rng::kStateWords>>>
      module_rngs;
  TrainCursor cursor;
};

// Clones the live training state (tensors are deep copies, detached from
// optimizer-mutated storage).
TrainState CaptureTrainState(Module* model,
                             const std::vector<Tensor>& best_params,
                             const AdamW& optimizer,
                             const EarlyStopping& stopper,
                             const Rng& loader_rng, const TrainCursor& cursor);

// Restores a captured/loaded state into the live objects. Every parameter
// name, shape, and RNG stream is validated against `model` before
// anything is mutated, so a snapshot from a different architecture fails
// with a typed error and an untouched model.
Status RestoreTrainState(const TrainState& state, Module* model,
                         std::vector<Tensor>* best_params, AdamW* optimizer,
                         EarlyStopping* stopper, Rng* loader_rng,
                         TrainCursor* cursor);

// Atomically serializes `state` to `path` (temp file + fsync + rename).
Status SaveTrainState(const std::string& path, const TrainState& state);

// Reads and fully validates a snapshot written by SaveTrainState. Plain
// checkpoints/bundles are rejected (missing __train__ namespace).
Result<TrainState> LoadTrainState(const std::string& path);

}  // namespace lipformer

#endif  // LIPFORMER_TRAIN_SNAPSHOT_H_
