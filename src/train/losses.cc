#include "train/losses.h"

#include <cmath>

namespace lipformer {

Variable MseLoss(const Variable& pred, const Tensor& target) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  Variable diff = AddConst(pred, Neg(target));
  return MeanAll(Mul(diff, diff));
}

Variable MaeLoss(const Variable& pred, const Tensor& target) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  Variable diff = AddConst(pred, Neg(target));
  return MeanAll(Abs(diff));
}

Variable SmoothL1Loss(const Variable& pred, const Tensor& target,
                      float beta) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  LIPF_CHECK_GT(beta, 0.0f);
  Variable diff = AddConst(pred, Neg(target));
  Variable absdiff = Abs(diff);

  // Piecewise selection via a constant 0/1 mask evaluated at the current
  // point; correct a.e. and matching the subgradient at the seam.
  Tensor mask(absdiff.shape());
  const float* pa = absdiff.value().data();
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = pa[i] < beta ? 1.0f : 0.0f;
  }
  Tensor inv_mask = AddScalar(Neg(mask), 1.0f);

  Variable quadratic = MulScalar(Mul(diff, diff), 0.5f / beta);
  Variable linear = AddScalar(absdiff, -0.5f * beta);
  Variable per_element =
      Add(MulConst(quadratic, mask), MulConst(linear, inv_mask));
  return MeanAll(per_element);
}

Variable ForecastLoss(LossKind kind, const Variable& pred,
                      const Tensor& target, float smooth_l1_beta) {
  switch (kind) {
    case LossKind::kMse:
      return MseLoss(pred, target);
    case LossKind::kMae:
      return MaeLoss(pred, target);
    case LossKind::kSmoothL1:
      return SmoothL1Loss(pred, target, smooth_l1_beta);
  }
  LIPF_CHECK(false) << "unknown loss kind";
  return MseLoss(pred, target);
}

Variable SymmetricContrastiveLoss(const Variable& logits) {
  LIPF_CHECK_EQ(logits.dim(), 2);
  const int64_t b = logits.size(0);
  LIPF_CHECK_EQ(logits.size(1), b);
  Tensor eye(Shape{b, b});
  float* pe = eye.data();
  for (int64_t i = 0; i < b; ++i) pe[i * b + i] = 1.0f;
  const float inv_b = 1.0f / static_cast<float>(b);
  // CE over rows: labels are the diagonal.
  Variable row_ce =
      MulScalar(SumAll(MulConst(LogSoftmax(logits, 1), eye)), -inv_b);
  Variable col_ce =
      MulScalar(SumAll(MulConst(LogSoftmax(logits, 0), eye)), -inv_b);
  return MulScalar(Add(row_ce, col_ce), 0.5f);
}

}  // namespace lipformer
