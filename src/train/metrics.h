#ifndef LIPFORMER_TRAIN_METRICS_H_
#define LIPFORMER_TRAIN_METRICS_H_

#include "tensor/tensor.h"

namespace lipformer {

// Accuracy metrics on the standardized scale, matching the benchmark
// protocol (Section IV-A2).
float MseMetric(const Tensor& pred, const Tensor& target);
float MaeMetric(const Tensor& pred, const Tensor& target);

// Running aggregate over many batches (element-weighted).
class MetricAccumulator {
 public:
  void Add(const Tensor& pred, const Tensor& target);
  float mse() const;
  float mae() const;
  int64_t count() const { return count_; }

 private:
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace lipformer

#endif  // LIPFORMER_TRAIN_METRICS_H_
