#include "train/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace lipformer {

float MseMetric(const Tensor& pred, const Tensor& target) {
  MetricAccumulator acc;
  acc.Add(pred, target);
  return acc.mse();
}

float MaeMetric(const Tensor& pred, const Tensor& target) {
  MetricAccumulator acc;
  acc.Add(pred, target);
  return acc.mae();
}

void MetricAccumulator::Add(const Tensor& pred, const Tensor& target) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  const float* pp = pred.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    sum_sq_ += d * d;
    sum_abs_ += std::fabs(d);
  }
  count_ += pred.numel();
}

float MetricAccumulator::mse() const {
  LIPF_CHECK_GT(count_, 0);
  return static_cast<float>(sum_sq_ / static_cast<double>(count_));
}

float MetricAccumulator::mae() const {
  LIPF_CHECK_GT(count_, 0);
  return static_cast<float>(sum_abs_ / static_cast<double>(count_));
}

}  // namespace lipformer
