#include "train/trainer.h"

#include <chrono>
#include <vector>

#include "optim/adamw.h"
#include "optim/early_stopping.h"
#include "train/metrics.h"

namespace lipformer {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// In-memory snapshot of parameter values, used to restore the
// best-validation weights.
std::vector<Tensor> SnapshotParameters(Forecaster* model) {
  std::vector<Tensor> snap;
  for (const Variable& p : model->Parameters()) {
    snap.push_back(p.value().Clone());
  }
  return snap;
}

void RestoreParameters(Forecaster* model, const std::vector<Tensor>& snap) {
  std::vector<Variable> params = model->Parameters();
  LIPF_CHECK_EQ(params.size(), snap.size());
  for (size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i].mutable_value().data();
    const float* src = snap[i].data();
    std::copy(src, src + params[i].numel(), dst);
  }
}

}  // namespace

EvalResult Evaluate(Forecaster* model, const WindowDataset& data, Split split,
                    int64_t batch_size, int64_t max_batches) {
  NoGradGuard no_grad;
  const bool was_training = model->training();
  model->SetTraining(false);
  DataLoader loader(&data, split, batch_size, /*shuffle=*/false, Rng(0));
  MetricAccumulator acc;
  int64_t batches = 0;
  for (loader.Reset(); loader.HasNext();) {
    Batch batch = loader.Next();
    Variable pred = model->Forward(batch);
    acc.Add(pred.value(), batch.y);
    if (max_batches > 0 && ++batches >= max_batches) break;
  }
  model->SetTraining(was_training);
  // An empty split leaves the NaN defaults in place: returning 0.0 here
  // used to register as the best validation score ever, snapshot untrained
  // weights and early-stop on them.
  EvalResult result;
  if (acc.count() > 0) {
    result.mse = acc.mse();
    result.mae = acc.mae();
  }
  return result;
}

TrainResult TrainAndEvaluate(Forecaster* model, const WindowDataset& data,
                             const TrainConfig& config) {
  AdamW optimizer(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                  config.weight_decay);
  EarlyStopping stopper(config.patience);
  Rng rng(config.seed);
  DataLoader train_loader(&data, Split::kTrain, config.batch_size,
                          /*shuffle=*/true, rng.Fork());

  TrainResult result;
  std::vector<Tensor> best_params = SnapshotParameters(model);
  const auto t0 = Clock::now();

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    model->SetTraining(true);
    int64_t batches = 0;
    double epoch_loss = 0.0;
    for (train_loader.Reset(); train_loader.HasNext();) {
      Batch batch = train_loader.Next();
      optimizer.ZeroGrad();
      Variable pred = model->Forward(batch);
      Variable loss = ForecastLoss(config.loss, pred, batch.y,
                                   config.smooth_l1_beta);
      loss.Backward();
      if (config.clip_norm > 0.0f) {
        ClipGradNorm(optimizer.params(), config.clip_norm);
      }
      optimizer.Step();
      epoch_loss += loss.value().item();
      ++batches;
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
    }
    ++result.epochs_run;

    const EvalResult val = Evaluate(model, data, Split::kVal,
                                    config.batch_size,
                                    config.max_eval_batches);
    if (config.verbose) {
      LIPF_LOG(Info) << model->name() << " epoch " << epoch << " train_loss="
                     << (batches > 0 ? epoch_loss / batches : 0.0)
                     << " val_mse=" << val.mse;
    }
    if (stopper.Update(val.mse)) {
      best_params = SnapshotParameters(model);
      if (!config.checkpoint_path.empty()) {
        const Status st = model->SaveParameters(config.checkpoint_path);
        if (!st.ok()) {
          LIPF_LOG(Warning) << "checkpoint write failed: " << st.ToString();
        }
      }
    }
    if (stopper.ShouldStop()) break;
  }

  result.total_seconds = SecondsSince(t0);
  result.seconds_per_epoch =
      result.epochs_run > 0
          ? result.total_seconds / static_cast<double>(result.epochs_run)
          : 0.0;
  result.best_val_loss = stopper.best_score();

  RestoreParameters(model, best_params);
  result.test = Evaluate(model, data, Split::kTest, config.batch_size,
                         config.max_eval_batches);
  return result;
}

}  // namespace lipformer
