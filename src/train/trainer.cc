#include "train/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/interrupt.h"
#include "optim/adamw.h"
#include "optim/early_stopping.h"
#include "optim/lr_scheduler.h"
#include "train/metrics.h"
#include "train/snapshot.h"

namespace lipformer {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// In-memory snapshot of parameter values, used to restore the
// best-validation weights.
std::vector<Tensor> SnapshotParameters(Forecaster* model) {
  std::vector<Tensor> snap;
  for (const Variable& p : model->Parameters()) {
    snap.push_back(p.value().Clone());
  }
  return snap;
}

void RestoreParameters(Forecaster* model, const std::vector<Tensor>& snap) {
  std::vector<Variable> params = model->Parameters();
  LIPF_CHECK_EQ(params.size(), snap.size());
  for (size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i].mutable_value().data();
    const float* src = snap[i].data();
    std::copy(src, src + params[i].numel(), dst);
  }
}

std::unique_ptr<LrScheduler> MakeScheduler(const TrainConfig& config,
                                           Optimizer* optimizer) {
  switch (config.lr_schedule) {
    case LrScheduleKind::kCosine:
      return std::make_unique<CosineLr>(optimizer,
                                        std::max<int64_t>(1, config.epochs));
    case LrScheduleKind::kStep:
      return std::make_unique<StepLr>(
          optimizer, std::max<int64_t>(1, config.epochs / 3));
    case LrScheduleKind::kNone:
      break;
  }
  return nullptr;
}

// Fault-injection hook: overwrites the first gradient element with NaN so
// the non-finite guard path is exercised end to end.
void PoisonFirstGradient(const std::vector<Variable>& params) {
  for (const Variable& p : params) {
    if (!p.has_grad() || p.numel() == 0) continue;
    const_cast<float*>(p.grad().data())[0] =
        std::numeric_limits<float>::quiet_NaN();
    return;
  }
}

}  // namespace

EvalResult Evaluate(Forecaster* model, const WindowDataset& data, Split split,
                    int64_t batch_size, int64_t max_batches) {
  NoGradGuard no_grad;
  const bool was_training = model->training();
  model->SetTraining(false);
  DataLoader loader(&data, split, batch_size, /*shuffle=*/false, Rng(0));
  MetricAccumulator acc;
  int64_t batches = 0;
  for (loader.Reset(); loader.HasNext();) {
    Batch batch = loader.Next();
    Variable pred = model->Forward(batch);
    acc.Add(pred.value(), batch.y);
    if (max_batches > 0 && ++batches >= max_batches) break;
  }
  model->SetTraining(was_training);
  // An empty split leaves the NaN defaults in place: returning 0.0 here
  // used to register as the best validation score ever, snapshot untrained
  // weights and early-stop on them.
  EvalResult result;
  if (acc.count() > 0) {
    result.mse = acc.mse();
    result.mae = acc.mae();
  }
  return result;
}

TrainResult TrainAndEvaluate(Forecaster* model, const WindowDataset& data,
                             const TrainConfig& config) {
  fault::ArmFromEnv();
  if (config.handle_signals) InstallInterruptHandlers();

  AdamW optimizer(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                  config.weight_decay);
  EarlyStopping stopper(config.patience);
  Rng rng(config.seed);
  DataLoader train_loader(&data, Split::kTrain, config.batch_size,
                          /*shuffle=*/true, rng.Fork());
  std::unique_ptr<LrScheduler> scheduler = MakeScheduler(config, &optimizer);

  TrainResult result;
  std::vector<Tensor> best_params = SnapshotParameters(model);
  TrainCursor cursor;
  cursor.lr = optimizer.lr();

  // Epoch-start (or resume-point) image: the rollback anchor for the
  // non-finite guard and the source of periodic disk snapshots.
  TrainState stable;
  int64_t epoch = 0;
  int64_t resume_skip = 0;  // batches to fast-forward inside the first epoch

  if (!config.resume_path.empty()) {
    Result<TrainState> loaded = LoadTrainState(config.resume_path);
    if (!loaded.ok()) {
      result.status = loaded.status();
      return result;
    }
    const Status st = RestoreTrainState(
        loaded.value(), model, &best_params, &optimizer, &stopper,
        train_loader.mutable_rng(), &cursor);
    if (!st.ok()) {
      result.status = st;
      return result;
    }
    // Schedules are pure functions of the epoch counter; fast-forward the
    // counter, then restore the exact effective lr (schedule x lr_scale)
    // rather than recomputing it.
    if (scheduler) scheduler->SetEpoch(cursor.epoch);
    optimizer.set_lr(cursor.lr);
    result.epochs_run = cursor.epochs_run;
    result.nonfinite_steps = cursor.nonfinite_steps;
    result.rollbacks = cursor.rollbacks;
    stable = std::move(loaded.value());
    epoch = cursor.epoch;
    resume_skip = cursor.batch;
    LIPF_LOG(Info) << model->name() << " resumed from " << config.resume_path
                   << " at epoch " << epoch << " batch " << resume_skip;
  }

  const auto t0 = Clock::now();
  int64_t consecutive_bad = 0;

  while (epoch < config.epochs && !stopper.ShouldStop()) {
    cursor.epoch = epoch;
    if (resume_skip == 0) {
      cursor.batch = 0;
      cursor.epoch_loss = 0.0;
      // Capture BEFORE Reset(): the snapshot's loader stream must be the
      // one whose Reset() generates this epoch's shuffle order.
      stable = CaptureTrainState(model, best_params, optimizer, stopper,
                                 *train_loader.mutable_rng(), cursor);
      if (!config.snapshot_path.empty() &&
          epoch % std::max<int64_t>(1, config.snapshot_every) == 0) {
        const Status st = SaveTrainState(config.snapshot_path, stable);
        if (!st.ok()) {
          LIPF_LOG(Warning) << "snapshot write failed (training continues): "
                            << st.ToString();
        }
      }
    }

    model->SetTraining(true);
    train_loader.Reset();
    if (resume_skip > 0) train_loader.Skip(resume_skip);
    int64_t batches = resume_skip;
    double epoch_loss = cursor.epoch_loss;
    resume_skip = 0;
    bool rolled_back = false;

    while (train_loader.HasNext()) {
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
      Batch batch = train_loader.Next();
      optimizer.ZeroGrad();
      Variable pred = model->Forward(batch);
      Variable loss = ForecastLoss(config.loss, pred, batch.y,
                                   config.smooth_l1_beta);
      loss.Backward();
      ++cursor.global_step;
      if (fault::ShouldPoisonGrad(cursor.global_step)) {
        PoisonFirstGradient(optimizer.params());
      }

      const float loss_value = loss.value().item();
      const float grad_norm = GlobalGradNorm(optimizer.params());
      if (!std::isfinite(loss_value) || !std::isfinite(grad_norm)) {
        // Non-finite guard: skip the poisoned step (the batch stays
        // consumed so cursors keep matching the loader position).
        ++result.nonfinite_steps;
        ++consecutive_bad;
        LIPF_LOG(Warning) << model->name() << " step " << cursor.global_step
                          << ": non-finite loss=" << loss_value
                          << " grad_norm=" << grad_norm << ", step skipped ("
                          << consecutive_bad << "/"
                          << config.nonfinite_patience << ")";
        if (consecutive_bad >= config.nonfinite_patience) {
          const int64_t global_step = cursor.global_step;
          const Status st = RestoreTrainState(
              stable, model, &best_params, &optimizer, &stopper,
              train_loader.mutable_rng(), &cursor);
          LIPF_CHECK(st.ok()) << st.ToString();
          cursor.global_step = global_step;  // monotonic across rollbacks
          cursor.lr_scale *= 0.5f;
          cursor.nonfinite_steps = result.nonfinite_steps;
          cursor.rollbacks = ++result.rollbacks;
          if (scheduler) {
            scheduler->SetEpoch(cursor.epoch);
          } else {
            optimizer.set_lr(config.lr);
          }
          optimizer.set_lr(optimizer.lr() * cursor.lr_scale);
          cursor.lr = optimizer.lr();
          LIPF_LOG(Warning) << model->name() << ": " << consecutive_bad
                            << " consecutive non-finite steps; rolled back to"
                            << " epoch " << cursor.epoch << " batch "
                            << cursor.batch << ", lr -> " << cursor.lr;
          consecutive_bad = 0;
          rolled_back = true;
          break;
        }
      } else {
        consecutive_bad = 0;
        if (config.clip_norm > 0.0f && grad_norm > config.clip_norm &&
            grad_norm > 0.0f) {
          ScaleGradients(optimizer.params(), config.clip_norm / grad_norm);
        }
        optimizer.Step();
        epoch_loss += loss_value;
        fault::OnOptimizerStep(cursor.global_step);
      }
      ++batches;
      cursor.batch = batches;
      cursor.epoch_loss = epoch_loss;

      if (InterruptRequested()) {
        // Graceful stop after the in-flight step: persist a mid-epoch
        // snapshot (with the epoch-START loader stream, so Reset() on
        // resume regenerates this epoch's order) and return without the
        // best-weights restore or test eval.
        result.interrupted = true;
        if (!config.snapshot_path.empty()) {
          TrainState s =
              CaptureTrainState(model, best_params, optimizer, stopper,
                                *train_loader.mutable_rng(), cursor);
          s.loader_rng = stable.loader_rng;
          const Status st = SaveTrainState(config.snapshot_path, s);
          if (st.ok()) {
            LIPF_LOG(Info) << model->name() << " interrupted at epoch "
                           << epoch << " batch " << batches
                           << "; snapshot written to "
                           << config.snapshot_path;
          } else {
            LIPF_LOG(Warning) << "interrupt snapshot write failed: "
                              << st.ToString();
          }
        } else {
          LIPF_LOG(Warning) << model->name()
                            << " interrupted with no snapshot path;"
                            << " progress is lost";
        }
        result.total_seconds = SecondsSince(t0);
        result.seconds_per_epoch =
            result.epochs_run > 0
                ? result.total_seconds /
                      static_cast<double>(result.epochs_run)
                : 0.0;
        result.best_val_loss = stopper.best_score();
        return result;
      }
    }
    if (rolled_back) {
      epoch = cursor.epoch;
      resume_skip = cursor.batch;
      continue;
    }
    ++result.epochs_run;

    const EvalResult val = Evaluate(model, data, Split::kVal,
                                    config.batch_size,
                                    config.max_eval_batches);
    if (config.verbose) {
      LIPF_LOG(Info) << model->name() << " epoch " << epoch << " train_loss="
                     << (batches > 0 ? epoch_loss / batches : 0.0)
                     << " val_mse=" << val.mse << " lr=" << optimizer.lr();
    }
    if (stopper.Update(val.mse)) {
      best_params = SnapshotParameters(model);
      if (!config.checkpoint_path.empty()) {
        const Status st = model->SaveParameters(config.checkpoint_path);
        if (!st.ok()) {
          LIPF_LOG(Warning) << "checkpoint write failed: " << st.ToString();
        }
      }
    }
    if (scheduler) {
      scheduler->Step();
      optimizer.set_lr(optimizer.lr() * cursor.lr_scale);
      cursor.lr = optimizer.lr();
    }
    cursor.epochs_run = result.epochs_run;
    cursor.nonfinite_steps = result.nonfinite_steps;
    cursor.rollbacks = result.rollbacks;
    ++epoch;
  }

  // Final snapshot: a finished run's snapshot resumes straight to the
  // best-restore + test eval below, so re-running --resume after
  // completion is idempotent.
  if (!config.snapshot_path.empty()) {
    cursor.epoch = epoch;
    cursor.batch = 0;
    cursor.epoch_loss = 0.0;
    const Status st = SaveTrainState(
        config.snapshot_path,
        CaptureTrainState(model, best_params, optimizer, stopper,
                          *train_loader.mutable_rng(), cursor));
    if (!st.ok()) {
      LIPF_LOG(Warning) << "final snapshot write failed: " << st.ToString();
    }
  }

  result.total_seconds = SecondsSince(t0);
  result.seconds_per_epoch =
      result.epochs_run > 0
          ? result.total_seconds / static_cast<double>(result.epochs_run)
          : 0.0;
  result.best_val_loss = stopper.best_score();

  RestoreParameters(model, best_params);
  result.test = Evaluate(model, data, Split::kTest, config.batch_size,
                         config.max_eval_batches);
  return result;
}

}  // namespace lipformer
