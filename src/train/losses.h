#ifndef LIPFORMER_TRAIN_LOSSES_H_
#define LIPFORMER_TRAIN_LOSSES_H_

#include "autograd/ops.h"

namespace lipformer {

enum class LossKind { kMse, kMae, kSmoothL1 };

// Mean squared error between a prediction and a constant target.
Variable MseLoss(const Variable& pred, const Tensor& target);

// Mean absolute error.
Variable MaeLoss(const Variable& pred, const Tensor& target);

// Smooth L1 (Huber) with threshold beta, as used for LiPFormer training
// (Section III-B): quadratic below beta, linear above.
Variable SmoothL1Loss(const Variable& pred, const Tensor& target, float beta);

Variable ForecastLoss(LossKind kind, const Variable& pred,
                      const Tensor& target, float smooth_l1_beta = 1.0f);

// CLIP-style symmetric cross-entropy over a [b, b] logits matrix whose
// diagonal entries are the positive covariate-target pairs:
//   L = 1/2 (CE_rows(logits, diag) + CE_cols(logits, diag)).
Variable SymmetricContrastiveLoss(const Variable& logits);

}  // namespace lipformer

#endif  // LIPFORMER_TRAIN_LOSSES_H_
