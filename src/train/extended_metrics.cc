#include "train/extended_metrics.h"

#include <cmath>

#include "common/logging.h"
#include "train/metrics.h"

namespace lipformer {

float RseMetric(const Tensor& pred, const Tensor& target) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  const float* pp = pred.data();
  const float* pt = target.data();
  const int64_t n = pred.numel();
  LIPF_CHECK_GT(n, 0);
  double mean = 0.0;
  for (int64_t i = 0; i < n; ++i) mean += pt[i];
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double e = static_cast<double>(pp[i]) - pt[i];
    const double d = pt[i] - mean;
    num += e * e;
    den += d * d;
  }
  if (den <= 0.0) return 0.0f;
  return static_cast<float>(std::sqrt(num / den));
}

float CorrMetric(const Tensor& pred, const Tensor& target) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  const float* pp = pred.data();
  const float* pt = target.data();
  const int64_t n = pred.numel();
  LIPF_CHECK_GT(n, 0);
  double sp = 0, st = 0, spp = 0, stt = 0, spt = 0;
  for (int64_t i = 0; i < n; ++i) {
    sp += pp[i];
    st += pt[i];
    spp += static_cast<double>(pp[i]) * pp[i];
    stt += static_cast<double>(pt[i]) * pt[i];
    spt += static_cast<double>(pp[i]) * pt[i];
  }
  const double cov = spt / n - (sp / n) * (st / n);
  const double vp = spp / n - (sp / n) * (sp / n);
  const double vt = stt / n - (st / n) * (st / n);
  if (vp <= 0.0 || vt <= 0.0) return 0.0f;
  return static_cast<float>(cov / std::sqrt(vp * vt));
}

float SmapeMetric(const Tensor& pred, const Tensor& target) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  const float* pp = pred.data();
  const float* pt = target.data();
  const int64_t n = pred.numel();
  LIPF_CHECK_GT(n, 0);
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double denom =
        std::fabs(pp[i]) + std::fabs(pt[i]) + 1e-8;
    acc += 2.0 * std::fabs(static_cast<double>(pp[i]) - pt[i]) / denom;
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

float MaseMetric(const Tensor& pred, const Tensor& target,
                 int64_t seasonality) {
  LIPF_CHECK(SameShape(pred.shape(), target.shape()));
  LIPF_CHECK_GE(pred.dim(), 2);
  LIPF_CHECK_GT(seasonality, 0);
  // Interpret the last two dims as [L, c]; earlier dims are batch.
  const int64_t c = pred.size(-1);
  const int64_t l = pred.size(-2);
  LIPF_CHECK_GT(l, seasonality) << "horizon shorter than seasonality";
  const int64_t batch = pred.numel() / (l * c);
  const float* pp = pred.data();
  const float* pt = target.data();
  double err = 0.0;
  double scale = 0.0;
  int64_t err_n = 0;
  int64_t scale_n = 0;
  for (int64_t b = 0; b < batch; ++b) {
    const float* tp = pp + b * l * c;
    const float* tt = pt + b * l * c;
    for (int64_t t = 0; t < l; ++t) {
      for (int64_t j = 0; j < c; ++j) {
        err += std::fabs(static_cast<double>(tp[t * c + j]) - tt[t * c + j]);
        ++err_n;
        if (t >= seasonality) {
          scale += std::fabs(static_cast<double>(tt[t * c + j]) -
                             tt[(t - seasonality) * c + j]);
          ++scale_n;
        }
      }
    }
  }
  const double mean_err = err / static_cast<double>(err_n);
  const double mean_scale =
      scale_n > 0 ? scale / static_cast<double>(scale_n) : 0.0;
  if (mean_scale <= 1e-12) return 0.0f;
  return static_cast<float>(mean_err / mean_scale);
}

ExtendedMetrics ComputeExtendedMetrics(const Tensor& pred,
                                       const Tensor& target) {
  ExtendedMetrics m;
  m.mse = MseMetric(pred, target);
  m.mae = MaeMetric(pred, target);
  m.rse = RseMetric(pred, target);
  m.corr = CorrMetric(pred, target);
  m.smape = SmapeMetric(pred, target);
  return m;
}

}  // namespace lipformer
