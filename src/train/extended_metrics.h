#ifndef LIPFORMER_TRAIN_EXTENDED_METRICS_H_
#define LIPFORMER_TRAIN_EXTENDED_METRICS_H_

#include "tensor/tensor.h"

// Additional accuracy metrics common in the long-term forecasting
// literature, complementing the paper's MSE/MAE: RSE, empirical
// correlation, sMAPE and MASE. All operate on same-shaped prediction /
// target tensors (any rank).

namespace lipformer {

// Root relative squared error: ||pred - y|| / ||y - mean(y)||.
float RseMetric(const Tensor& pred, const Tensor& target);

// Pearson correlation between flattened prediction and target.
float CorrMetric(const Tensor& pred, const Tensor& target);

// Symmetric mean absolute percentage error in [0, 2]:
// mean(2|p - y| / (|p| + |y| + eps)).
float SmapeMetric(const Tensor& pred, const Tensor& target);

// Mean absolute scaled error. pred/target: [b, L, c] (or [L, c]); the
// scale is the in-sample seasonal-naive MAE of the target with the given
// seasonality m (m=1 -> naive one-step).
float MaseMetric(const Tensor& pred, const Tensor& target,
                 int64_t seasonality = 1);

struct ExtendedMetrics {
  float mse = 0;
  float mae = 0;
  float rse = 0;
  float corr = 0;
  float smape = 0;
};

ExtendedMetrics ComputeExtendedMetrics(const Tensor& pred,
                                       const Tensor& target);

}  // namespace lipformer

#endif  // LIPFORMER_TRAIN_EXTENDED_METRICS_H_
