#ifndef LIPFORMER_TRAIN_TRAINER_H_
#define LIPFORMER_TRAIN_TRAINER_H_

#include <cstdint>
#include <limits>
#include <string>

#include "data/dataloader.h"
#include "models/forecaster.h"
#include "train/losses.h"

namespace lipformer {

struct TrainConfig {
  int64_t epochs = 10;
  int64_t patience = 3;  // early stopping, as in the paper
  float lr = 1e-3f;
  float weight_decay = 1e-2f;
  int64_t batch_size = 32;
  // 0 disables clipping.
  float clip_norm = 5.0f;
  uint64_t seed = 1;
  LossKind loss = LossKind::kSmoothL1;
  float smooth_l1_beta = 1.0f;
  bool verbose = false;
  // Caps the number of training batches per epoch (0 = no cap); keeps the
  // bench sweeps tractable on one core while exercising the full pipeline.
  int64_t max_batches_per_epoch = 0;
  int64_t max_eval_batches = 0;
  // When non-empty, the best-validation parameters are also written here
  // every time validation improves (binary Module::SaveParameters format).
  std::string checkpoint_path;
};

// NaN means "no data": an evaluation over a split that yields zero batches
// must not look like a perfect score (EarlyStopping treats NaN as a
// non-improvement; see the empty-split regression test in
// tests/parallel_test.cc).
struct EvalResult {
  float mse = std::numeric_limits<float>::quiet_NaN();
  float mae = std::numeric_limits<float>::quiet_NaN();
};

struct TrainResult {
  float best_val_loss = 0.0f;
  int64_t epochs_run = 0;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  EvalResult test;
};

// Evaluates a model (eval mode, no grad) over a split.
EvalResult Evaluate(Forecaster* model, const WindowDataset& data, Split split,
                    int64_t batch_size = 32, int64_t max_batches = 0);

// Full training protocol from the paper: AdamW, SmoothL1 loss, early
// stopping with patience on validation MSE, best-validation weights
// restored before the final test evaluation.
TrainResult TrainAndEvaluate(Forecaster* model, const WindowDataset& data,
                             const TrainConfig& config);

}  // namespace lipformer

#endif  // LIPFORMER_TRAIN_TRAINER_H_
