#ifndef LIPFORMER_TRAIN_TRAINER_H_
#define LIPFORMER_TRAIN_TRAINER_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "data/dataloader.h"
#include "models/forecaster.h"
#include "train/losses.h"

namespace lipformer {

// Per-epoch learning-rate schedule applied on top of TrainConfig::lr.
enum class LrScheduleKind {
  kNone,    // constant lr
  kCosine,  // cosine decay to 0 over `epochs`
  kStep,    // halve every max(1, epochs/3) epochs
};

struct TrainConfig {
  int64_t epochs = 10;
  int64_t patience = 3;  // early stopping, as in the paper
  float lr = 1e-3f;
  float weight_decay = 1e-2f;
  int64_t batch_size = 32;
  // 0 disables clipping.
  float clip_norm = 5.0f;
  uint64_t seed = 1;
  LossKind loss = LossKind::kSmoothL1;
  float smooth_l1_beta = 1.0f;
  bool verbose = false;
  // Caps the number of training batches per epoch (0 = no cap); keeps the
  // bench sweeps tractable on one core while exercising the full pipeline.
  int64_t max_batches_per_epoch = 0;
  int64_t max_eval_batches = 0;
  // When non-empty, the best-validation parameters are also written here
  // every time validation improves (binary Module::SaveParameters format).
  std::string checkpoint_path;

  // ---- Crash safety (DESIGN.md "Fault tolerance") ----
  // When non-empty, a full training-state snapshot (weights, AdamW
  // moments, early-stopping state, RNG streams, epoch/batch cursors) is
  // written here atomically at the start of every `snapshot_every`-th
  // epoch, after the in-flight step on SIGINT/SIGTERM, and once more when
  // the epoch loop finishes.
  std::string snapshot_path;
  int64_t snapshot_every = 1;
  // When non-empty, training state is restored from this snapshot before
  // the first epoch. With an identical config the run then continues
  // bitwise identically to an uninterrupted run with the same seed.
  std::string resume_path;
  LrScheduleKind lr_schedule = LrScheduleKind::kNone;
  // Non-finite guard: a step whose loss or global gradient norm is
  // NaN/Inf is skipped and counted; after this many consecutive bad
  // steps the trainer rolls back to the last stable state with the
  // learning rate halved.
  int64_t nonfinite_patience = 3;
  // Install SIGINT/SIGTERM handlers and stop gracefully after the
  // in-flight step (the CLI sets this; library callers and tests arm
  // fault injection instead).
  bool handle_signals = false;
};

// NaN means "no data": an evaluation over a split that yields zero batches
// must not look like a perfect score (EarlyStopping treats NaN as a
// non-improvement; see the empty-split regression test in
// tests/parallel_test.cc).
struct EvalResult {
  float mse = std::numeric_limits<float>::quiet_NaN();
  float mae = std::numeric_limits<float>::quiet_NaN();
};

struct TrainResult {
  float best_val_loss = 0.0f;
  int64_t epochs_run = 0;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  EvalResult test;
  // Crash-safety accounting. `status` is non-OK when --resume failed
  // (bad path, corrupt or mismatched snapshot) and no training ran.
  Status status;
  int64_t nonfinite_steps = 0;  // optimizer steps skipped by the guard
  int64_t rollbacks = 0;        // rollbacks after nonfinite_patience runs
  // True when training stopped early on SIGINT/SIGTERM. The model then
  // holds the mid-run (not best-validation) weights and `test` was not
  // evaluated; resume from the snapshot to finish the run.
  bool interrupted = false;
};

// Evaluates a model (eval mode, no grad) over a split.
EvalResult Evaluate(Forecaster* model, const WindowDataset& data, Split split,
                    int64_t batch_size = 32, int64_t max_batches = 0);

// Full training protocol from the paper: AdamW, SmoothL1 loss, early
// stopping with patience on validation MSE, best-validation weights
// restored before the final test evaluation. Crash safety (snapshots,
// exact resume, non-finite guard, graceful interrupt) is controlled by
// the TrainConfig fields above.
TrainResult TrainAndEvaluate(Forecaster* model, const WindowDataset& data,
                             const TrainConfig& config);

}  // namespace lipformer

#endif  // LIPFORMER_TRAIN_TRAINER_H_
