#include "train/snapshot.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/logging.h"
#include "serve/checkpoint.h"

namespace lipformer {

namespace {

constexpr char kFormatKey[] = "__train__.format";
constexpr char kFormatValue[] = "1";

constexpr char kBestPrefix[] = "__best__.";
constexpr char kMomentMPrefix[] = "__opt__.m.";
constexpr char kMomentVPrefix[] = "__opt__.v.";
constexpr char kLoaderRngName[] = "__rng__.loader";
constexpr char kModuleRngPrefix[] = "__rng__.module.";

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---- Exact scalar <-> string codecs -------------------------------------
//
// Floats go through printf's hexfloat ("%a"), which prints the exact bit
// pattern in a form strtod parses back losslessly (including inf, and the
// +inf EarlyStopping starts from). Decimal "%g" would not round-trip.

std::string EncodeDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string EncodeInt(int64_t v) { return std::to_string(v); }

Status ParseDouble(const std::string& key, const std::string& text,
                   double* out) {
  if (text.empty()) {
    return Status::InvalidArgument("snapshot metadata " + key + " is empty");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("snapshot metadata " + key +
                                   " is not a number: '" + text + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseInt(const std::string& key, const std::string& text,
                int64_t* out) {
  if (text.empty()) {
    return Status::InvalidArgument("snapshot metadata " + key + " is empty");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("snapshot metadata " + key +
                                   " is not an integer: '" + text + "'");
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status GetInt(const serve::Checkpoint& ckpt, const std::string& key,
              int64_t* out) {
  auto it = ckpt.metadata.find(key);
  if (it == ckpt.metadata.end()) {
    return Status::InvalidArgument("snapshot is missing metadata key " + key);
  }
  return ParseInt(key, it->second, out);
}

Status GetDouble(const serve::Checkpoint& ckpt, const std::string& key,
                 double* out) {
  auto it = ckpt.metadata.find(key);
  if (it == ckpt.metadata.end()) {
    return Status::InvalidArgument("snapshot is missing metadata key " + key);
  }
  return ParseDouble(key, it->second, out);
}

Status GetFloat(const serve::Checkpoint& ckpt, const std::string& key,
                float* out) {
  double v = 0.0;
  const Status st = GetDouble(ckpt, key, &v);
  if (!st.ok()) return st;
  *out = static_cast<float>(v);
  return Status::OK();
}

// ---- RNG state <-> tensor ------------------------------------------------
//
// The xoshiro words are memcpy'd into float storage and back; the bytes
// are never interpreted as floats, so signaling-NaN bit patterns survive.

static_assert(sizeof(uint64_t) == 2 * sizeof(float),
              "rng word packing assumes 2 floats per u64");

constexpr int64_t kRngTensorLen = Rng::kStateWords * 2;

Tensor RngStateToTensor(const std::array<uint64_t, Rng::kStateWords>& words) {
  Tensor t(Shape{kRngTensorLen});
  std::memcpy(t.data(), words.data(), sizeof(uint64_t) * Rng::kStateWords);
  return t;
}

Status TensorToRngState(const std::string& name, const Tensor& t,
                        std::array<uint64_t, Rng::kStateWords>* words) {
  if (t.numel() != kRngTensorLen) {
    return Status::InvalidArgument(
        "snapshot rng tensor " + name + " has " + std::to_string(t.numel()) +
        " elements, expected " + std::to_string(kRngTensorLen));
  }
  std::memcpy(words->data(), t.data(), sizeof(uint64_t) * Rng::kStateWords);
  return Status::OK();
}

std::array<uint64_t, Rng::kStateWords> ExportRng(const Rng& rng) {
  std::array<uint64_t, Rng::kStateWords> words{};
  rng.ExportState(words.data());
  return words;
}

}  // namespace

TrainState CaptureTrainState(Module* model,
                             const std::vector<Tensor>& best_params,
                             const AdamW& optimizer,
                             const EarlyStopping& stopper,
                             const Rng& loader_rng,
                             const TrainCursor& cursor) {
  TrainState state;
  state.param_names = model->ParameterNames();
  const std::vector<Variable> params = model->Parameters();
  LIPF_CHECK_EQ(state.param_names.size(), params.size());
  LIPF_CHECK_EQ(best_params.size(), params.size());
  state.params.reserve(params.size());
  state.best_params.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    state.params.push_back(params[i].value().Clone());
    state.best_params.push_back(best_params[i].Clone());
  }
  LIPF_CHECK_EQ(optimizer.moment1().size(), params.size());
  state.opt_m.reserve(params.size());
  state.opt_v.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    state.opt_m.push_back(optimizer.moment1()[i].Clone());
    state.opt_v.push_back(optimizer.moment2()[i].Clone());
  }
  state.opt_step = optimizer.step_count();
  state.stopper_best = stopper.best_score();
  state.stopper_best_epoch = stopper.best_epoch();
  state.stopper_bad = stopper.bad_epochs();
  state.stopper_epoch = stopper.epoch();
  state.loader_rng = ExportRng(loader_rng);
  for (auto& [name, rng] : model->NamedRngs()) {
    state.module_rngs.emplace_back(name, ExportRng(*rng));
  }
  state.cursor = cursor;
  return state;
}

Status RestoreTrainState(const TrainState& state, Module* model,
                         std::vector<Tensor>* best_params, AdamW* optimizer,
                         EarlyStopping* stopper, Rng* loader_rng,
                         TrainCursor* cursor) {
  // Validate everything against the live model before mutating anything.
  const std::vector<std::string> names = model->ParameterNames();
  std::vector<Variable> params = model->Parameters();
  if (state.param_names.size() != names.size()) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(state.param_names.size()) +
        " parameters, model expects " + std::to_string(names.size()));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    if (state.param_names[i] != names[i]) {
      return Status::InvalidArgument("snapshot parameter " +
                                     std::to_string(i) + " is '" +
                                     state.param_names[i] +
                                     "', model expects '" + names[i] + "'");
    }
    const Shape& want = params[i].value().shape();
    if (!SameShape(state.params[i].shape(), want) ||
        !SameShape(state.best_params[i].shape(), want) ||
        !SameShape(state.opt_m[i].shape(), want) ||
        !SameShape(state.opt_v[i].shape(), want)) {
      return Status::InvalidArgument(
          "snapshot tensors for parameter '" + names[i] +
          "' do not match the model shape " + ShapeToString(want));
    }
  }
  std::vector<std::pair<std::string, Rng*>> rngs = model->NamedRngs();
  if (state.module_rngs.size() != rngs.size()) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(state.module_rngs.size()) +
        " module rng streams, model expects " + std::to_string(rngs.size()));
  }
  for (size_t i = 0; i < rngs.size(); ++i) {
    if (state.module_rngs[i].first != rngs[i].first) {
      return Status::InvalidArgument(
          "snapshot rng stream " + std::to_string(i) + " is '" +
          state.module_rngs[i].first + "', model expects '" + rngs[i].first +
          "'");
    }
  }

  // All checked; now mutate the live objects.
  best_params->clear();
  for (size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i].mutable_value().data();
    const float* src = state.params[i].data();
    std::copy(src, src + params[i].numel(), dst);
    best_params->push_back(state.best_params[i].Clone());
  }
  optimizer->RestoreState(state.opt_m, state.opt_v, state.opt_step);
  stopper->Restore(state.stopper_best, state.stopper_best_epoch,
                   state.stopper_bad, state.stopper_epoch);
  loader_rng->ImportState(state.loader_rng.data());
  for (size_t i = 0; i < rngs.size(); ++i) {
    rngs[i].second->ImportState(state.module_rngs[i].second.data());
  }
  *cursor = state.cursor;
  return Status::OK();
}

Status SaveTrainState(const std::string& path, const TrainState& state) {
  serve::Checkpoint ckpt;
  ckpt.metadata[kFormatKey] = kFormatValue;
  ckpt.metadata["__train__.epoch"] = EncodeInt(state.cursor.epoch);
  ckpt.metadata["__train__.batch"] = EncodeInt(state.cursor.batch);
  ckpt.metadata["__train__.global_step"] = EncodeInt(state.cursor.global_step);
  ckpt.metadata["__train__.epochs_run"] = EncodeInt(state.cursor.epochs_run);
  ckpt.metadata["__train__.epoch_loss"] = EncodeDouble(state.cursor.epoch_loss);
  ckpt.metadata["__train__.nonfinite_steps"] =
      EncodeInt(state.cursor.nonfinite_steps);
  ckpt.metadata["__train__.rollbacks"] = EncodeInt(state.cursor.rollbacks);
  ckpt.metadata["__train__.lr"] = EncodeDouble(state.cursor.lr);
  ckpt.metadata["__train__.lr_scale"] = EncodeDouble(state.cursor.lr_scale);
  ckpt.metadata["__train__.stopper_best"] = EncodeDouble(state.stopper_best);
  ckpt.metadata["__train__.stopper_best_epoch"] =
      EncodeInt(state.stopper_best_epoch);
  ckpt.metadata["__train__.stopper_bad"] = EncodeInt(state.stopper_bad);
  ckpt.metadata["__train__.stopper_epoch"] = EncodeInt(state.stopper_epoch);
  ckpt.metadata["__opt__.step"] = EncodeInt(state.opt_step);

  // Live weights go in under their plain names first, so the snapshot
  // doubles as a normal checkpoint for Module::LoadParameters.
  for (size_t i = 0; i < state.param_names.size(); ++i) {
    ckpt.tensors.push_back({state.param_names[i], state.params[i]});
  }
  for (size_t i = 0; i < state.param_names.size(); ++i) {
    ckpt.tensors.push_back(
        {kBestPrefix + state.param_names[i], state.best_params[i]});
    ckpt.tensors.push_back(
        {kMomentMPrefix + state.param_names[i], state.opt_m[i]});
    ckpt.tensors.push_back(
        {kMomentVPrefix + state.param_names[i], state.opt_v[i]});
  }
  ckpt.tensors.push_back({kLoaderRngName, RngStateToTensor(state.loader_rng)});
  for (const auto& [name, words] : state.module_rngs) {
    ckpt.tensors.push_back({kModuleRngPrefix + name, RngStateToTensor(words)});
  }
  return serve::WriteCheckpoint(path, ckpt);
}

Result<TrainState> LoadTrainState(const std::string& path) {
  Result<serve::Checkpoint> read = serve::ReadCheckpoint(path);
  if (!read.ok()) return read.status();
  const serve::Checkpoint& ckpt = read.value();

  if (ckpt.Meta(kFormatKey, "") != kFormatValue) {
    return Status::InvalidArgument(
        path + " is not a training snapshot (missing " + std::string(kFormatKey) +
        " metadata); plain checkpoints cannot seed --resume");
  }

  TrainState state;
  Status st;
  if (!(st = GetInt(ckpt, "__train__.epoch", &state.cursor.epoch)).ok() ||
      !(st = GetInt(ckpt, "__train__.batch", &state.cursor.batch)).ok() ||
      !(st = GetInt(ckpt, "__train__.global_step", &state.cursor.global_step))
           .ok() ||
      !(st = GetInt(ckpt, "__train__.epochs_run", &state.cursor.epochs_run))
           .ok() ||
      !(st = GetDouble(ckpt, "__train__.epoch_loss", &state.cursor.epoch_loss))
           .ok() ||
      !(st = GetInt(ckpt, "__train__.nonfinite_steps",
                    &state.cursor.nonfinite_steps))
           .ok() ||
      !(st = GetInt(ckpt, "__train__.rollbacks", &state.cursor.rollbacks))
           .ok() ||
      !(st = GetFloat(ckpt, "__train__.lr", &state.cursor.lr)).ok() ||
      !(st = GetFloat(ckpt, "__train__.lr_scale", &state.cursor.lr_scale))
           .ok() ||
      !(st = GetFloat(ckpt, "__train__.stopper_best", &state.stopper_best))
           .ok() ||
      !(st = GetInt(ckpt, "__train__.stopper_best_epoch",
                    &state.stopper_best_epoch))
           .ok() ||
      !(st = GetInt(ckpt, "__train__.stopper_bad", &state.stopper_bad)).ok() ||
      !(st = GetInt(ckpt, "__train__.stopper_epoch", &state.stopper_epoch))
           .ok() ||
      !(st = GetInt(ckpt, "__opt__.step", &state.opt_step)).ok()) {
    return st;
  }
  if (state.cursor.epoch < 0 || state.cursor.batch < 0 ||
      state.cursor.global_step < 0 || state.cursor.epochs_run < 0) {
    return Status::InvalidArgument("snapshot cursors are negative in " + path);
  }

  // Partition tensors. File order is capture order, so plain parameter
  // tensors arrive in ParameterNames() order and module rng streams in
  // NamedRngs() order; RestoreTrainState re-validates both against the
  // live model.
  std::map<std::string, const Tensor*> best, mom_m, mom_v;
  bool have_loader_rng = false;
  for (const serve::CheckpointTensor& t : ckpt.tensors) {
    if (HasPrefix(t.name, kBestPrefix)) {
      best[t.name.substr(std::strlen(kBestPrefix))] = &t.data;
    } else if (HasPrefix(t.name, kMomentMPrefix)) {
      mom_m[t.name.substr(std::strlen(kMomentMPrefix))] = &t.data;
    } else if (HasPrefix(t.name, kMomentVPrefix)) {
      mom_v[t.name.substr(std::strlen(kMomentVPrefix))] = &t.data;
    } else if (t.name == kLoaderRngName) {
      const Status rst = TensorToRngState(t.name, t.data, &state.loader_rng);
      if (!rst.ok()) return rst;
      have_loader_rng = true;
    } else if (HasPrefix(t.name, kModuleRngPrefix)) {
      std::array<uint64_t, Rng::kStateWords> words{};
      const Status rst = TensorToRngState(t.name, t.data, &words);
      if (!rst.ok()) return rst;
      state.module_rngs.emplace_back(
          t.name.substr(std::strlen(kModuleRngPrefix)), words);
    } else if (HasPrefix(t.name, serve::kReservedTensorPrefix)) {
      return Status::InvalidArgument("snapshot has unknown reserved tensor '" +
                                     t.name + "'");
    } else {
      state.param_names.push_back(t.name);
      state.params.push_back(t.data);
    }
  }
  if (!have_loader_rng) {
    return Status::InvalidArgument("snapshot is missing the " +
                                   std::string(kLoaderRngName) + " stream");
  }
  if (state.param_names.empty()) {
    return Status::InvalidArgument("snapshot has no model parameters");
  }
  for (const std::string& name : state.param_names) {
    auto b = best.find(name);
    auto m = mom_m.find(name);
    auto v = mom_v.find(name);
    if (b == best.end() || m == mom_m.end() || v == mom_v.end()) {
      return Status::InvalidArgument(
          "snapshot is missing best/moment tensors for parameter '" + name +
          "'");
    }
    state.best_params.push_back(*b->second);
    state.opt_m.push_back(*m->second);
    state.opt_v.push_back(*v->second);
  }
  if (best.size() != state.param_names.size() ||
      mom_m.size() != state.param_names.size() ||
      mom_v.size() != state.param_names.size()) {
    return Status::InvalidArgument(
        "snapshot has best/moment tensors for unknown parameters");
  }
  return state;
}

}  // namespace lipformer
